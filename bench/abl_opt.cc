/**
 * @file
 * §6 remark, quantified: "Noticeably, compiler optimizations can
 * remove some correlations, reducing the detection rate."
 *
 * Runs the Figure 7 campaign on unoptimized vs optimized builds of
 * every workload and reports branch counts, checkable shares, table
 * sizes and detection rates side by side.
 */

#include <cstdio>

#include "attack/campaign.h"
#include "core/program.h"
#include "frontend/codegen.h"
#include "opt/passes.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

struct Row
{
    uint32_t branches = 0;
    uint32_t checkable = 0;
    uint64_t tableBits = 0;
    uint32_t cf = 0;
    uint32_t det = 0;
    uint32_t attacks = 0;
    bool fp = false;
};

Row
evaluate(bool optimize)
{
    Row row;
    for (const auto &wl : allWorkloads()) {
        Module m = compileMiniC(wl.source, wl.name);
        if (optimize)
            optimizeModule(m);
        CompiledProgram prog = analyzeModule(std::move(m));
        CampaignConfig cfg;
        cfg.numAttacks = 60;
        CampaignResult res = runCampaign(prog, wl.benignInputs, cfg);
        row.branches += prog.stats.numBranches;
        row.checkable += prog.stats.numCheckable;
        row.tableBits += prog.stats.totalBsvBits +
            prog.stats.totalBcvBits + prog.stats.totalBatBits;
        row.cf += res.numCfChanged();
        row.det += res.numDetected();
        row.attacks += res.attacks();
        row.fp |= res.falsePositive;
    }
    return row;
}

void
print(const char *name, const Row &r)
{
    std::printf("%-12s %9u %10.1f%% %11llu %11.1f%% %12.1f%% %6s\n",
                name, r.branches,
                100.0 * r.checkable / r.branches,
                static_cast<unsigned long long>(r.tableBits),
                100.0 * r.cf / r.attacks,
                r.cf ? 100.0 * r.det / r.cf : 0.0,
                r.fp ? "YES!" : "0");
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: compiler optimization vs correlation "
                "(60 attacks x 10 workloads) ===\n\n");
    std::printf("%-12s %9s %11s %11s %12s %13s %6s\n", "build",
                "branches", "checkable", "table-bits", "cf-changed",
                "det-of-cf", "FP");
    print("unoptimized", evaluate(false));
    print("optimized", evaluate(true));
    std::printf("\n(paper: \"compiler optimizations can remove some "
                "correlations, reducing the\n detection rate\". Our "
                "store-to-load forwarding + DCE remove a slice of the\n"
                " checkable branches and shrink the tables; detection "
                "on these workloads is\n dominated by cross-block "
                "flags that only full register promotion (phi-based\n"
                " mem2reg, which this memory-resident IR deliberately "
                "avoids) would remove.\n Zero false positives either "
                "way.)\n");
    return 0;
}
