/**
 * @file
 * Figure 7 companion: the buffer-overflow attack mode. The paper
 * plants overflow vulnerabilities into each server and attacks
 * through the input channel; this bench does exactly that — every
 * bounded read becomes, in one variant, an unbounded `get_input`, and
 * attacks send overlong payloads that genuinely overrun into
 * neighbouring stack state.
 *
 * Classification: the reference is the ORIGINAL bounded program on
 * the same attack inputs, so trace divergence isolates the corruption
 * (not the input change).
 */

#include <cstdio>

#include "attack/overflow.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 7 (overflow mode): planted buffer "
                "overflows, 100 attacks each ===\n\n");
    std::printf("%-10s %8s %14s %12s %16s %6s\n", "benchmark",
                "reads", "cf-changed(%)", "detected(%)",
                "det-of-cf(%)", "FP");

    double sumCf = 0, sumDet = 0;
    uint32_t totalCf = 0, totalDet = 0;
    bool anyFp = false;

    for (const auto &wl : allWorkloads()) {
        uint32_t reads = countInputReads(wl.source);
        if (reads == 0) {
            std::printf("%-10s %8s (no bounded reads)\n",
                        wl.name.c_str(), "-");
            continue;
        }
        CampaignConfig cfg;
        cfg.numAttacks = 100;
        CampaignResult res = runOverflowCampaign(
            wl.source, wl.name, wl.benignInputs, cfg);
        anyFp |= res.falsePositive;
        sumCf += res.pctCfChanged();
        sumDet += res.pctDetected();
        totalCf += res.numCfChanged();
        totalDet += res.numDetected();
        std::printf("%-10s %8u %14.1f %12.1f %16.1f %6s\n",
                    wl.name.c_str(), reads, res.pctCfChanged(),
                    res.pctDetected(), res.pctDetectedOfCf(),
                    res.falsePositive ? "YES!" : "0");
    }

    size_t n = allWorkloads().size();
    std::printf("%-10s %8s %14.1f %12.1f %16.1f %6s\n", "average",
                "-", sumCf / n, sumDet / n,
                totalCf ? 100.0 * totalDet / totalCf : 0.0,
                anyFp ? "YES!" : "0");
    std::printf("\n(same shape target as the poke campaign; every "
                "reference run on the bounded\n build is also a "
                "zero-false-positive check on arbitrary attack "
                "inputs)\n");
    return anyFp ? 1 : 0;
}
