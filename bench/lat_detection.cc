/**
 * @file
 * §6 detection-latency experiment: mean cycles from a branch being
 * sent to the IPDS engine until its verification completes (the paper
 * reports 11.7 cycles on average, comfortably inside a 20-stage
 * pipeline's decode-to-retire window).
 */

#include <cstdio>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "timing/cpu.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main()
{
    setQuiet(true);
    std::printf("=== Detection latency: branch dispatch -> verdict "
                "===\n\n");
    std::printf("%-10s %10s %14s %14s\n", "benchmark", "checks",
                "avg-lat(cyc)", "queue-stalls");

    double sum = 0;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        CpuModel cpu(table1Config());
        for (int s = 0; s < 100; s++) {
            Vm vm(prog.mod);
            vm.setInputs(wl.benignInputs);
            vm.setRecordTrace(false);
            Detector det(prog);
            det.setRequestSink(cpu.requestSink());
            vm.addObserver(&det);
            vm.addObserver(&cpu);
            vm.run();
        }
        EngineStats es = cpu.stats().engine;
        double lat = es.avgCheckLatency();
        sum += lat;
        std::printf("%-10s %10llu %14.2f %14llu\n", wl.name.c_str(),
                    static_cast<unsigned long long>(
                        es.checkLatencyCount),
                    lat,
                    static_cast<unsigned long long>(
                        es.queueFullStalls));
    }
    std::printf("%-10s %10s %14.2f\n", "average", "-",
                sum / allWorkloads().size());
    std::printf("\npaper average: 11.7 cycles (checks complete before "
                "retirement in a >20-stage pipeline)\n");
    return 0;
}
