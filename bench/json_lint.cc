/**
 * @file
 * Minimal JSON validator for the bench-smoke suite: checks that a
 * bench's --json artifact is well-formed (full RFC 8259 grammar, no
 * extensions) so a malformed BENCH_*.json fails CI instead of
 * poisoning downstream tooling. No third-party parser: the grammar
 * fits in a page.
 *
 * Usage: json_lint FILE...   (exit 0 iff every file parses)
 */

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

struct Parser
{
    const std::string &s;
    size_t i = 0;
    std::string err;

    explicit Parser(const std::string &text) : s(text) {}

    bool fail(const std::string &msg)
    {
        if (err.empty())
            err = msg + " at offset " + std::to_string(i);
        return false;
    }

    void skipWs()
    {
        while (i < s.size() &&
               (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                s[i] == '\r'))
            i++;
    }

    bool eat(char c)
    {
        if (i < s.size() && s[i] == c) {
            i++;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool literal(const char *lit)
    {
        for (const char *p = lit; *p; p++)
            if (i >= s.size() || s[i++] != *p)
                return fail(std::string("bad literal ") + lit);
        return true;
    }

    bool string()
    {
        if (!eat('"'))
            return false;
        while (i < s.size() && s[i] != '"') {
            if (static_cast<unsigned char>(s[i]) < 0x20)
                return fail("raw control character in string");
            if (s[i] == '\\') {
                i++;
                if (i >= s.size())
                    return fail("truncated escape");
                char e = s[i++];
                if (e == 'u') {
                    for (int k = 0; k < 4; k++, i++)
                        if (i >= s.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s[i])))
                            return fail("bad \\u escape");
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape");
                }
            } else {
                i++;
            }
        }
        return eat('"');
    }

    bool digits()
    {
        if (i >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[i])))
            return fail("expected digit");
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i])))
            i++;
        return true;
    }

    bool number()
    {
        if (i < s.size() && s[i] == '-')
            i++;
        if (i < s.size() && s[i] == '0') {
            i++;
        } else if (!digits()) {
            return false;
        }
        if (i < s.size() && s[i] == '.') {
            i++;
            if (!digits())
                return false;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            i++;
            if (i < s.size() && (s[i] == '+' || s[i] == '-'))
                i++;
            if (!digits())
                return false;
        }
        return true;
    }

    bool value()
    {
        skipWs();
        if (i >= s.size())
            return fail("unexpected end of input");
        switch (s[i]) {
          case '{': {
            i++;
            skipWs();
            if (i < s.size() && s[i] == '}') {
                i++;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (!eat(':'))
                    return false;
                if (!value())
                    return false;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    i++;
                    continue;
                }
                return eat('}');
            }
          }
          case '[': {
            i++;
            skipWs();
            if (i < s.size() && s[i] == ']') {
                i++;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    i++;
                    continue;
                }
                return eat(']');
            }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool document()
    {
        if (!value())
            return false;
        skipWs();
        if (i != s.size())
            return fail("trailing garbage");
        return true;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: json_lint FILE...\n");
        return 1;
    }
    int rc = 0;
    for (int a = 1; a < argc; a++) {
        std::ifstream in(argv[a], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "json_lint: cannot open %s\n",
                         argv[a]);
            rc = 1;
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string text = ss.str();
        Parser p(text);
        if (!p.document()) {
            std::fprintf(stderr, "json_lint: %s: %s\n", argv[a],
                         p.err.c_str());
            rc = 1;
        } else {
            std::printf("json_lint: %s OK (%zu bytes)\n", argv[a],
                        text.size());
        }
    }
    return rc;
}
