/**
 * @file
 * Granularity comparison (§7 related work, quantified): IPDS versus a
 * Forrest-style system-call-sequence detector (stide, the paper's [7])
 * on the identical attack campaign.
 *
 * Protocol per workload:
 *  - train stide on the benign session's system-call trace (plus the
 *    rotated variants, the most charitable training set we can give
 *    it without leaking attack data);
 *  - run the same 100 attacks used for Figure 7; stide "detects" an
 *    attack if the tampered run's call trace contains any window
 *    absent from training; IPDS detection comes from the campaign;
 *  - measure stide's false-positive exposure by withholding the
 *    rotations from training and re-checking them.
 */

#include <cstdio>

#include "attack/campaign.h"
#include "baseline/stide.h"
#include "core/program.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

/** Both trace granularities from one run. */
struct Traces
{
    std::vector<uint16_t> calls;    ///< system-call ids
    std::vector<uint16_t> branches; ///< (pc, direction) tokens
};

Traces
traceOf(const CompiledProgram &prog,
        const std::vector<std::string> &inputs,
        const TamperSpec *tamper = nullptr)
{
    Vm vm(prog.mod);
    vm.setInputs(inputs);
    vm.setFuel(2'000'000);
    SyscallTrace st;
    vm.addObserver(&st);
    if (tamper)
        vm.setTamper(*tamper);
    RunResult r = vm.run();
    Traces out;
    out.calls = st.sequence();
    out.branches.reserve(r.branchTrace.size());
    for (const auto &ev : r.branchTrace) {
        // Token = branch identity plus direction (an FSA edge).
        out.branches.push_back(static_cast<uint16_t>(
            ((ev.pc >> 2) << 1) | (ev.taken ? 1 : 0)));
    }
    return out;
}

std::vector<std::string>
rotate(const std::vector<std::string> &v, size_t k)
{
    std::vector<std::string> out(v.begin() + static_cast<ptrdiff_t>(k),
                                 v.end());
    out.insert(out.end(), v.begin(),
               v.begin() + static_cast<ptrdiff_t>(k));
    return out;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Baseline: IPDS vs learned trace models "
                "(stide window 6) ===\n\n");
    std::printf("detectors: ipds = this paper; sc = learned "
                "system-call sequences (Forrest [7]);\n"
                "           br = learned branch sequences (FSA-style, "
                "[8][9] granularity)\n\n");
    std::printf("%-10s | %8s %8s %8s | %8s %8s %8s\n", "benchmark",
                "ipds-det", "sc-det", "br-det", "ipds-FP", "sc-FP",
                "br-FP");

    uint32_t ipdsTotal = 0, scTotal = 0, brTotal = 0, attacks = 0;
    uint32_t scFp = 0, brFp = 0, fpChecks = 0;

    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

        // --- training: benign session + all rotations -------------
        StideModel scModel(6), brModel(6);
        {
            Traces t = traceOf(prog, wl.benignInputs);
            scModel.train(t.calls);
            brModel.train(t.branches);
        }
        for (size_t r = 2; r < wl.benignInputs.size(); r += 2) {
            Traces t = traceOf(prog, rotate(wl.benignInputs, r));
            scModel.train(t.calls);
            brModel.train(t.branches);
        }

        // --- FP exposure: train on base only, test the rotations ---
        StideModel scNarrow(6), brNarrow(6);
        {
            Traces t = traceOf(prog, wl.benignInputs);
            scNarrow.train(t.calls);
            brNarrow.train(t.branches);
        }
        uint32_t scFpHere = 0, brFpHere = 0, checksHere = 0;
        for (size_t r = 2; r < wl.benignInputs.size(); r += 2) {
            Traces t = traceOf(prog, rotate(wl.benignInputs, r));
            checksHere++;
            scFpHere += scNarrow.flags(t.calls) ? 1 : 0;
            brFpHere += brNarrow.flags(t.branches) ? 1 : 0;
        }
        scFp += scFpHere;
        brFp += brFpHere;
        fpChecks += checksHere;

        // --- the Figure 7 campaign, scored by all detectors --------
        CampaignConfig cfg;
        cfg.numAttacks = 100;
        CampaignResult res = runCampaign(prog, wl.benignInputs, cfg);
        uint32_t scDet = 0, brDet = 0;
        for (uint32_t i = 0; i < cfg.numAttacks; i++) {
            // Reconstruct the identical attack (same seeds/triggers).
            uint64_t seed = cfg.baseSeed + 0x9e37 * (i + 1);
            Rng trigRng(seed ^ 0xabcdef);
            TamperSpec spec;
            spec.randomStackTarget = true;
            spec.seed = seed;
            spec.afterInputEvent = 1 + static_cast<uint32_t>(
                trigRng.below(std::max(1u, res.goldenInputEvents)));
            Traces t = traceOf(prog, wl.benignInputs, &spec);
            scDet += scModel.flags(t.calls) ? 1 : 0;
            brDet += brModel.flags(t.branches) ? 1 : 0;
        }

        ipdsTotal += res.numDetected();
        scTotal += scDet;
        brTotal += brDet;
        attacks += res.attacks();
        std::printf("%-10s | %7u%% %7u%% %7u%% | %8s %7.0f%% "
                    "%7.0f%%\n",
                    wl.name.c_str(), res.numDetected(), scDet, brDet,
                    res.falsePositive ? "YES!" : "0",
                    checksHere ? 100.0 * scFpHere / checksHere : 0.0,
                    checksHere ? 100.0 * brFpHere / checksHere : 0.0);
    }

    std::printf("%-10s | %7.1f%% %6.1f%% %6.1f%% | %8s %7.0f%% "
                "%7.0f%%\n", "average",
                100.0 * ipdsTotal / attacks, 100.0 * scTotal / attacks,
                100.0 * brTotal / attacks, "0",
                fpChecks ? 100.0 * scFp / fpChecks : 0.0,
                fpChecks ? 100.0 * brFp / fpChecks : 0.0);
    std::printf("\n(§2's trade-off, measured: for LEARNED models, "
                "finer granularity buys\n detection and costs false "
                "positives — branch-level stide detects the most\n "
                "attacks AND flags nearly every unseen benign "
                "session. IPDS is the paper's\n answer: branch "
                "granularity with zero false positives, because its "
                "model is\n COMPUTED from the program, not learned "
                "from samples.)\n");
    return 0;
}
