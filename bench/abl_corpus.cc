/**
 * @file
 * Corpus ablation: throughput of the generator pipeline and the
 * corpus campaign, gated by the differential oracles.
 *
 * Three numbers per run:
 *
 *   gen_programs_per_sec    seed → (source + script + recipes),
 *                           generation alone;
 *   compile_programs_per_sec  generation + compileAndAnalyze — what
 *                           a corpus sweep actually pays per seed;
 *   campaign_events_per_sec detector branch events per second across
 *                           the full recipe campaign (golden + 9
 *                           recipes per program, all worker threads).
 *
 * Before timing, a subset of seeds runs through the differential
 * harness (gen::diffOne: switch vs threaded VM, fast vs reference
 * detector, capture vs replay) — the numbers are only reported over
 * demonstrably equivalent implementations ("differential":
 * "equivalent" in the JSON), the same discipline as abl_vm and
 * abl_replay.
 *
 * Emits machine-readable JSON, default BENCH_corpus.json.
 *
 * Usage: abl_corpus [--quick] [--seed-range A:B] [--trials N]
 *                   [--threads N] [--json PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/corpus.h"
#include "gen/gen.h"
#include "support/cli.h"
#include "support/diag.h"

using namespace ipds;

namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
parseRange(const std::string &s, uint64_t *lo, uint64_t *hi)
{
    size_t colon = s.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= s.size())
        return false;
    char *endp = nullptr;
    *lo = std::strtoull(s.c_str(), &endp, 0);
    if (endp != s.c_str() + colon)
        return false;
    *hi = std::strtoull(s.c_str() + colon + 1, &endp, 0);
    return !*endp && *lo <= *hi;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args("abl_corpus",
                        "corpus generation & campaign throughput");
    bool quick = false;
    std::string range;
    uint32_t trials = 5;
    unsigned threads = 0;
    std::string jsonPath = "BENCH_corpus.json";
    args.boolOpt("quick", &quick,
                 "small range + fewer trials (CI smoke)");
    args.strOpt("seed-range", &range,
                "inclusive seed range A:B (default 1:50; quick 1:10)");
    args.uintOpt("trials", &trials, "timing trials (fastest wins)");
    args.threadsOpt(&threads);
    args.jsonOpt(&jsonPath);
    if (!args.parse(argc, argv))
        return args.exitCode();

    uint64_t lo = 1, hi = quick ? 10 : 50;
    if (!range.empty() && !parseRange(range, &lo, &hi)) {
        std::fprintf(stderr, "abl_corpus: bad --seed-range '%s'\n",
                     range.c_str());
        return 1;
    }
    if (quick && trials > 2)
        trials = 2;
    const uint64_t n = hi - lo + 1;

    // -- differential gate -----------------------------------------------
    // A throughput number over divergent implementations would be
    // meaningless; check a subset of the range first.
    const uint64_t diffSeeds = quick ? 3 : 10;
    char tmpl[] = "/tmp/abl_corpus.XXXXXX";
    char *tmp = mkdtemp(tmpl);
    bool equivalent = true;
    std::string firstMismatch;
    for (uint64_t s = lo; s < lo + diffSeeds && s <= hi; s++) {
        gen::DiffResult dr = gen::diffOne(s, tmp ? tmp : "");
        if (!dr.ok) {
            equivalent = false;
            firstMismatch = dr.firstMismatch;
            break;
        }
    }
    if (tmp) {
        const std::string cleanup = std::string("rm -rf ") + tmp;
        if (std::system(cleanup.c_str()) != 0)
            warn("abl_corpus: could not remove %s", tmp);
    }
    if (!equivalent)
        std::fprintf(stderr, "abl_corpus: DIFFERENTIAL GATE FAILED: "
                             "%s\n",
                     firstMismatch.c_str());

    // -- generation throughput -------------------------------------------
    double genSecs = 1e9, compileSecs = 1e9;
    for (uint32_t t = 0; t < trials; t++) {
        auto t0 = std::chrono::steady_clock::now();
        uint64_t sink = 0;
        for (uint64_t s = lo; s <= hi; s++)
            sink ^= gen::fingerprint(gen::generate(s));
        genSecs = std::min(genSecs, seconds(t0));
        if (!sink)
            warn("abl_corpus: zero fingerprint xor (unexpected)");
    }
    for (uint32_t t = 0; t < trials; t++) {
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t s = lo; s <= hi; s++) {
            gen::GeneratedProgram gp = gen::generate(s);
            gen::compileGenerated(gp);
        }
        compileSecs = std::min(compileSecs, seconds(t0));
    }

    // -- campaign throughput ---------------------------------------------
    gen::CorpusCampaignConfig cfg;
    cfg.firstSeed = lo;
    cfg.lastSeed = hi;
    cfg.numThreads = threads;
    double campSecs = 1e9;
    gen::CorpusCampaignResult res;
    for (uint32_t t = 0; t < trials; t++) {
        auto t0 = std::chrono::steady_clock::now();
        res = gen::runCorpusCampaign(cfg);
        campSecs = std::min(campSecs, seconds(t0));
    }
    const double genPps = n / genSecs;
    const double compilePps = n / compileSecs;
    const double campEps = res.totalBranchesSeen() / campSecs;

    std::printf("abl_corpus: seeds %llu:%llu (%llu programs)\n",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(n));
    std::printf("  differential gate:      %s\n",
                equivalent ? "equivalent" : "DIVERGED");
    std::printf("  generation:             %.0f programs/s\n",
                genPps);
    std::printf("  generation + compile:   %.0f programs/s\n",
                compilePps);
    std::printf("  campaign:               %.2e branch events/s "
                "(%u attacks, %u detected, fp=%u)\n",
                campEps, res.attacks(), res.numDetected(),
                res.numFalsePositives());

    std::string j = "{\n";
    j += strprintf("  \"first_seed\": %llu,\n",
                   static_cast<unsigned long long>(lo));
    j += strprintf("  \"last_seed\": %llu,\n",
                   static_cast<unsigned long long>(hi));
    j += strprintf("  \"differential\": \"%s\",\n",
                   equivalent ? "equivalent" : "diverged");
    j += strprintf("  \"gen_programs_per_sec\": %.1f,\n", genPps);
    j += strprintf("  \"compile_programs_per_sec\": %.1f,\n",
                   compilePps);
    j += strprintf("  \"campaign_events_per_sec\": %.1f,\n", campEps);
    j += strprintf("  \"campaign_attacks\": %u,\n", res.attacks());
    j += strprintf("  \"campaign_detected\": %u,\n",
                   res.numDetected());
    j += strprintf("  \"campaign_pct_detected_of_cf\": %.1f,\n",
                   res.pctDetectedOfCf());
    j += strprintf("  \"campaign_false_positives\": %u\n",
                   res.numFalsePositives());
    j += "}\n";
    std::FILE *f = std::fopen(jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "abl_corpus: cannot write %s\n",
                     jsonPath.c_str());
        return 1;
    }
    std::fputs(j.c_str(), f);
    std::fclose(f);

    return (equivalent && !res.numFalsePositives()) ? 0 : 1;
}
