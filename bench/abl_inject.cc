/**
 * @file
 * Fault-injection ablation: what does the FaultInjector interposition
 * layer cost when it is wired in but injecting nothing?
 *
 * The injector only exists in a run that armed a fault plan — deployed
 * wiring never interposes it, so the deployed hot path pays nothing
 * (the < 2% acceptance bar on that path is abl_hotpath's to check
 * against its pre-fault-subsystem baseline). What THIS bench prices is
 * the differential-harness tax: the injector becomes the Vm's only
 * observer and forwards every event to the real targets. Three
 * configurations replay the identical recorded event trace:
 *
 *   direct  — events straight into the production Detector (the
 *             deployed wiring, the abl_hotpath fast path);
 *   off     — events through a FaultInjector with a disabled plan
 *             (the pure forwarding tax: one loop + virtual call);
 *   active  — events through an armed plan (BSV flips + ring
 *             drop/dup), for context on what injection itself costs.
 *
 * The off replay is also differentially checked against direct:
 * identical alarms and statistics, or the bench fails.
 *
 * Emits machine-readable JSON (events/sec per configuration and the
 * off-overhead ratio per workload), default BENCH_inject.json.
 *
 * Usage: abl_inject [--sessions N] [--repeat N] [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

/** One recorded observer event. */
struct Event
{
    enum class Kind : uint8_t { Enter, Exit, Branch };
    Kind kind = Kind::Branch;
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    bool taken = false;
};

/** Captures the exact event stream a detector would see. */
struct Recorder : ExecObserver
{
    std::vector<Event> events;
    uint64_t branches = 0;

    void
    onFunctionEnter(FuncId f) override
    {
        events.push_back({Event::Kind::Enter, f, 0, false});
    }
    void
    onFunctionExit(FuncId f) override
    {
        events.push_back({Event::Kind::Exit, f, 0, false});
    }
    void
    onBranch(FuncId f, uint64_t pc, bool taken) override
    {
        events.push_back({Event::Kind::Branch, f, pc, taken});
        branches++;
    }
};

/**
 * Replay the trace into @p obs (the detector itself, or the injector
 * interposed in front of it), draining @p ring after each event — the
 * cadence the timing model uses.
 */
template <typename Consume>
void
replay(ExecObserver &obs, RequestRing &ring,
       const std::vector<Event> &trace, Consume &&consume)
{
    for (const Event &ev : trace) {
        switch (ev.kind) {
          case Event::Kind::Enter:
            obs.onFunctionEnter(ev.func);
            break;
          case Event::Kind::Exit:
            obs.onFunctionExit(ev.func);
            break;
          case Event::Kind::Branch:
            obs.onBranch(ev.func, ev.pc, ev.taken);
            break;
        }
        ring.drain(consume);
    }
}

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Row
{
    std::string name;
    uint64_t events = 0;
    uint64_t branches = 0;
    double directEps = 0; ///< events/sec, no injector
    double offEps = 0;    ///< events/sec, disarmed injector in front
    double activeEps = 0; ///< events/sec, armed plan
    uint64_t faults = 0;  ///< bsv flips + ring drops/dups (active)

    /** Fractional slowdown of the disarmed interposition layer. */
    double
    overheadOff() const
    {
        return offEps > 0 ? directEps / offEps - 1.0 : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    uint32_t sessions = 24;
    uint32_t repeat = 300;
    std::string jsonPath = "BENCH_inject.json";
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--sessions") && i + 1 < argc)
            sessions = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--sessions N] [--repeat N] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (sessions == 0)
        sessions = 1;
    if (repeat == 0)
        repeat = 1;
    constexpr uint32_t kTrials = 3;

    setQuiet(true);
    std::printf("=== Fault-injection ablation: interposition cost on "
                "the detector hot path ===\n");
    std::printf("(%u recorded sessions per workload, %u replays, "
                "best of %u trials)\n\n", sessions, repeat, kTrials);
    std::printf("%-10s %10s %14s %14s %14s %9s\n", "benchmark",
                "events", "direct-ev/s", "off-ev/s", "active-ev/s",
                "off-ovh");

    // The armed plan for the `active` column: branch-table flips plus
    // ring perturbation (the classes that touch the replayed path).
    FaultPlan armed;
    armed.seed = 12345;
    armed.bsvEveryBranches = 64;
    armed.ringDropPermille = 20;
    armed.ringDupPermille = 20;

    std::vector<Row> rows;
    uint64_t consumed = 0; // keeps the request path observable
    bool mismatch = false;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

        Recorder rec;
        for (uint32_t s = 0; s < sessions; s++) {
            Vm vm(prog.mod);
            vm.setInputs(wl.benignInputs);
            vm.setRecordTrace(false);
            vm.addObserver(&rec);
            vm.run();
        }

        Detector det(prog);
        RequestRing ring;
        det.setRequestRing(&ring);
        auto count = [&](const IpdsRequest &) { consumed++; };

        // Differential check: a disarmed injector must be invisible.
        FaultPlan off; // seed 0: disabled
        FaultInjector offInj(off, 0);
        offInj.addTarget(&det);
        offInj.wantsInstEvents(); // cache the forwarding mode
        det.reset();
        replay(det, ring, rec.events, count);
        DetectorStats directStats = det.stats();
        size_t directAlarms = det.alarms().size();
        det.reset();
        replay(offInj, ring, rec.events, count);
        if (!(det.stats() == directStats) ||
            det.alarms().size() != directAlarms) {
            std::fprintf(stderr,
                         "MISMATCH: %s disarmed injector perturbs "
                         "the detector\n", wl.name.c_str());
            mismatch = true;
        }

        double directSec = 1e100, offSec = 1e100, activeSec = 1e100;
        uint64_t faults = 0;
        for (uint32_t trial = 0; trial < kTrials; trial++) {
            auto t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++) {
                det.reset();
                replay(det, ring, rec.events, count);
            }
            directSec = std::min(directSec, seconds(t0));

            t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++) {
                det.reset();
                replay(offInj, ring, rec.events, count);
            }
            offSec = std::min(offSec, seconds(t0));

            t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++) {
                FaultInjector inj(armed, r);
                inj.addTarget(&det);
                inj.addDetector(&det);
                inj.wantsInstEvents();
                ring.setFault(armed.ringDropPermille,
                              armed.ringDupPermille, armed.seed ^ r);
                det.reset();
                replay(inj, ring, rec.events, count);
                faults = inj.stats().bsvFlips +
                    ring.faultDropCount() + ring.faultDupCount();
            }
            activeSec = std::min(activeSec, seconds(t0));
            ring.setFault(0, 0, 1); // disarm for the next trial
        }

        Row row;
        row.name = wl.name;
        row.events = rec.events.size();
        row.branches = rec.branches;
        row.faults = faults;
        double total = double(repeat) * double(rec.events.size());
        row.directEps = directSec > 0 ? total / directSec : 0;
        row.offEps = offSec > 0 ? total / offSec : 0;
        row.activeEps = activeSec > 0 ? total / activeSec : 0;
        std::printf("%-10s %10llu %14.0f %14.0f %14.0f %8.1f%%\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.events),
                    row.directEps, row.offEps, row.activeEps,
                    row.overheadOff() * 100.0);
        rows.push_back(std::move(row));
    }

    // Aggregate off-overhead over total replayed time, not per-row
    // ratios: short workloads have noisy per-row percentages.
    double sumDirect = 0, sumOff = 0;
    for (const Row &r : rows) {
        if (r.directEps > 0)
            sumDirect += double(r.events) / r.directEps;
        if (r.offEps > 0)
            sumOff += double(r.events) / r.offEps;
    }
    double overallOff =
        sumDirect > 0 ? sumOff / sumDirect - 1.0 : 0.0;
    std::printf("%-10s %10s %14s %14s %14s %8.1f%%\n", "overall",
                "-", "-", "-", "-", overallOff * 100.0);
    std::printf("(transport consumed %llu requests)\n",
                static_cast<unsigned long long>(consumed));

    FILE *js = std::fopen(jsonPath.c_str(), "w");
    if (!js) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(js, "{\n  \"bench\": \"abl_inject\",\n"
                     "  \"sessions\": %u,\n"
                     "  \"repeat\": %u,\n  \"workloads\": [\n",
                 sessions, repeat);
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(js,
                     "    {\"name\": \"%s\", \"events\": %llu, "
                     "\"direct_eps\": %.0f, \"off_eps\": %.0f, "
                     "\"active_eps\": %.0f, \"overhead_off\": %.4f, "
                     "\"active_faults\": %llu}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.events),
                     r.directEps, r.offEps, r.activeEps,
                     r.overheadOff(),
                     static_cast<unsigned long long>(r.faults),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(js, "  ],\n  \"overall_overhead_off\": %.4f,\n"
                     "  \"equivalent\": %s\n}\n",
                 overallOff, mismatch ? "false" : "true");
    bool writeFailed = std::ferror(js) != 0;
    writeFailed |= std::fclose(js) != 0;
    if (writeFailed) {
        std::fprintf(stderr, "write to %s failed\n", jsonPath.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", jsonPath.c_str());

    return mismatch ? 1 : 0;
}
