/**
 * @file
 * Figure 9 reproduction: "Normalized performance" — execution time
 * with IPDS enabled, normalized to a baseline without infeasible-path
 * detection, under the Table 1 processor configuration.
 *
 * Each benchmark serves a long stream of sessions (the paper simulates
 * 2 billion instructions per benchmark; we scale the same mechanism to
 * a few million committed IR instructions) through the trace-driven
 * superscalar model. The only program-visible IPDS cost is request-
 * queue back-pressure, so the expected degradation is well under 1%
 * (paper average: 0.79%).
 */

#include <cstdio>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "timing/cpu.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

constexpr uint32_t kSessions = 300;

/** Run @p sessions benign sessions through one persistent CPU model. */
TimingStats
simulate(const CompiledProgram &prog,
         const std::vector<std::string> &inputs, bool ipds_on)
{
    TimingConfig cfg = table1Config();
    cfg.ipdsEnabled = ipds_on;
    CpuModel cpu(cfg);
    for (uint32_t s = 0; s < kSessions; s++) {
        Vm vm(prog.mod);
        vm.setInputs(inputs);
        vm.setRecordTrace(false);
        Detector det(prog);
        if (ipds_on) {
            det.setRequestSink(cpu.requestSink());
            vm.addObserver(&det);
        }
        vm.addObserver(&cpu);
        vm.run();
    }
    return cpu.stats();
}

void
printTable1()
{
    TimingConfig c = table1Config();
    std::printf("--- Table 1: simulated processor (defaults) ---\n");
    std::printf("fetch queue %u | decode/issue/commit %u/%u/%u | "
                "RUU %u | LSQ %u\n",
                c.fetchQueue, c.decodeWidth, c.issueWidth,
                c.commitWidth, c.ruuSize, c.lsqSize);
    std::printf("L1 I/D %uK %u-way %uB %ucyc | L2 %uK %u-way %uB "
                "%ucyc\n",
                c.l1i.sizeBytes / 1024, c.l1i.ways, c.l1i.blockBytes,
                c.l1i.latency, c.l2.sizeBytes / 1024, c.l2.ways,
                c.l2.blockBytes, c.l2.latency);
    std::printf("memory %u+%u cyc | TLB miss %u cyc | 2-level "
                "branch predictor\n",
                c.memFirstChunk, c.memInterChunk, c.tlbMissCycles);
    std::printf("IPDS stacks: BSV %u bits, BCV %u bits, BAT %u bits; "
                "table latency %u cyc\n\n",
                c.bsvStackBits, c.bcvStackBits, c.batStackBits,
                c.tableLatency);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 9: normalized performance "
                "(%u sessions per benchmark) ===\n\n", kSessions);
    printTable1();

    std::printf("%-10s %12s %12s %12s %10s %10s\n", "benchmark",
                "base-cycles", "ipds-cycles", "normalized",
                "degr(%)", "stalls");

    double sumDegr = 0;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        TimingStats base = simulate(prog, wl.benignInputs, false);
        TimingStats ipds = simulate(prog, wl.benignInputs, true);
        double norm = ipds.cycles
            ? double(base.cycles) / double(ipds.cycles) : 1.0;
        double degr = base.cycles
            ? 100.0 * (double(ipds.cycles) - double(base.cycles)) /
                double(base.cycles)
            : 0.0;
        sumDegr += degr;
        std::printf("%-10s %12llu %12llu %12.4f %10.3f %10llu\n",
                    wl.name.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(ipds.cycles),
                    norm, degr,
                    static_cast<unsigned long long>(
                        ipds.ipdsStallCycles));
    }
    size_t n = allWorkloads().size();
    std::printf("%-10s %12s %12s %12s %10.3f\n", "average", "-", "-",
                "-", sumDegr / n);
    std::printf("\npaper average degradation: 0.79%% "
                "(negligible in most cases)\n");
    return 0;
}
