/**
 * @file
 * Figure 9 reproduction: "Normalized performance" — execution time
 * with IPDS enabled, normalized to a baseline without infeasible-path
 * detection, under the Table 1 processor configuration.
 *
 * Each benchmark serves a long stream of sessions (the paper simulates
 * 2 billion instructions per benchmark; we scale the same mechanism to
 * a few million committed IR instructions) through the trace-driven
 * superscalar model. The only program-visible IPDS cost is request-
 * queue back-pressure, so the expected degradation is well under 1%
 * (paper average: 0.79%).
 *
 * The session stream runs through the ipds::Session facade with a
 * fixed kShards-way shard split: each shard owns its CpuModel + Vm +
 * Detector, and shard stats merge in shard order, so aggregate results
 * are identical for any --threads value.
 *
 * Usage: fig9_performance [--sessions N] [--threads N] [--json PATH]
 *   --sessions  benign sessions per benchmark (default 300)
 *   --threads   worker threads (default 0 = one per hardware core)
 *   --json      write a machine-readable report (BENCH_fig9.json)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/program.h"
#include "obs/session.h"
#include "support/cli.h"
#include "support/diag.h"
#include "support/threadpool.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

/** Fixed shard count — independent of the worker thread count. */
constexpr uint32_t kShards = 8;

/** Run @p sessions benign sessions through the Session facade. */
TimingStats
simulate(const CompiledProgram &prog,
         const std::vector<std::string> &inputs, bool ipds_on,
         uint32_t sessions, unsigned threads)
{
    TimingConfig cfg = table1Config();
    cfg.ipdsEnabled = ipds_on;
    return Session::builder()
        .program(prog)
        .inputs(inputs)
        .timing(cfg)
        .sessions(sessions)
        .shards(kShards)
        .threads(threads)
        .build()
        .run()
        .timingStats();
}

void
printTable1()
{
    TimingConfig c = table1Config();
    std::printf("--- Table 1: simulated processor (defaults) ---\n");
    std::printf("fetch queue %u | decode/issue/commit %u/%u/%u | "
                "RUU %u | LSQ %u\n",
                c.fetchQueue, c.decodeWidth, c.issueWidth,
                c.commitWidth, c.ruuSize, c.lsqSize);
    std::printf("L1 I/D %uK %u-way %uB %ucyc | L2 %uK %u-way %uB "
                "%ucyc\n",
                c.l1i.sizeBytes / 1024, c.l1i.ways, c.l1i.blockBytes,
                c.l1i.latency, c.l2.sizeBytes / 1024, c.l2.ways,
                c.l2.blockBytes, c.l2.latency);
    std::printf("memory %u+%u cyc | TLB miss %u cyc | 2-level "
                "branch predictor\n",
                c.memFirstChunk, c.memInterChunk, c.tlbMissCycles);
    std::printf("IPDS stacks: BSV %u bits, BCV %u bits, BAT %u bits; "
                "table latency %u cyc\n\n",
                c.bsvStackBits, c.bcvStackBits, c.batStackBits,
                c.tableLatency);
}

struct Row
{
    std::string name;
    uint64_t baseCycles = 0, ipdsCycles = 0, stalls = 0;
    double norm = 1.0, degr = 0.0;
};

void
writeJson(const char *path, uint32_t sessions,
          const std::vector<Row> &rows, double avgDegr)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fig9_performance\",\n");
    std::fprintf(f, "  \"sessions\": %u,\n", sessions);
    std::fprintf(f, "  \"shards\": %u,\n", kShards);
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"base_cycles\": %llu, "
            "\"ipds_cycles\": %llu, \"normalized\": %.4f, "
            "\"degradation_pct\": %.3f, \"stall_cycles\": %llu}%s\n",
            r.name.c_str(),
            static_cast<unsigned long long>(r.baseCycles),
            static_cast<unsigned long long>(r.ipdsCycles), r.norm,
            r.degr, static_cast<unsigned long long>(r.stalls),
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"avg_degradation_pct\": %.3f\n", avgDegr);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args("fig9_performance",
                        "Figure 9: normalized performance");
    uint32_t sessions = 300;
    unsigned threads = 0;
    std::string jsonPath;
    args.uintOpt("sessions", &sessions,
                 "benign sessions per benchmark");
    args.threadsOpt(&threads);
    args.jsonOpt(&jsonPath);
    if (!args.parse(argc, argv))
        return args.exitCode();

    setQuiet(true);
    std::printf("=== Figure 9: normalized performance "
                "(%u sessions per benchmark, %u shards, %u threads) "
                "===\n\n",
                sessions, kShards, ThreadPool(threads).workerCount());
    printTable1();

    std::printf("%-10s %12s %12s %12s %10s %10s\n", "benchmark",
                "base-cycles", "ipds-cycles", "normalized",
                "degr(%)", "stalls");

    double sumDegr = 0;
    std::vector<Row> rows;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        TimingStats base =
            simulate(prog, wl.benignInputs, false, sessions, threads);
        TimingStats ipds =
            simulate(prog, wl.benignInputs, true, sessions, threads);
        double norm = ipds.cycles
            ? double(base.cycles) / double(ipds.cycles) : 1.0;
        double degr = base.cycles
            ? 100.0 * (double(ipds.cycles) - double(base.cycles)) /
                double(base.cycles)
            : 0.0;
        sumDegr += degr;
        rows.push_back({wl.name, base.cycles, ipds.cycles,
                        ipds.ipdsStallCycles, norm, degr});
        std::printf("%-10s %12llu %12llu %12.4f %10.3f %10llu\n",
                    wl.name.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(ipds.cycles),
                    norm, degr,
                    static_cast<unsigned long long>(
                        ipds.ipdsStallCycles));
    }
    size_t n = allWorkloads().size();
    double avgDegr = sumDegr / n;
    std::printf("%-10s %12s %12s %12s %10.3f\n", "average", "-", "-",
                "-", avgDegr);
    std::printf("\npaper average degradation: 0.79%% "
                "(negligible in most cases)\n");
    if (!jsonPath.empty())
        writeJson(jsonPath.c_str(), sessions, rows, avgDegr);
    return 0;
}
