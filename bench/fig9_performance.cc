/**
 * @file
 * Figure 9 reproduction: "Normalized performance" — execution time
 * with IPDS enabled, normalized to a baseline without infeasible-path
 * detection, under the Table 1 processor configuration.
 *
 * Each benchmark serves a long stream of sessions (the paper simulates
 * 2 billion instructions per benchmark; we scale the same mechanism to
 * a few million committed IR instructions) through the trace-driven
 * superscalar model. The only program-visible IPDS cost is request-
 * queue back-pressure, so the expected degradation is well under 1%
 * (paper average: 0.79%).
 *
 * The session stream is split into kShards fixed shards, each with its
 * own CpuModel + Vm + Detector, and the shards run across a thread
 * pool. Because the shard partition is fixed (never derived from the
 * thread count) and shard stats merge in shard order, aggregate
 * results are identical for any --threads value.
 *
 * Usage: fig9_performance [--sessions N] [--threads N]
 *   --sessions  benign sessions per benchmark (default 300)
 *   --threads   worker threads (default 0 = one per hardware core)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "support/threadpool.h"
#include "timing/cpu.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

/** Fixed shard count — independent of the worker thread count. */
constexpr uint32_t kShards = 8;

/** Run @p sessions benign sessions, sharded over @p pool. */
TimingStats
simulate(const CompiledProgram &prog,
         const std::vector<std::string> &inputs, bool ipds_on,
         uint32_t sessions, ThreadPool &pool)
{
    std::vector<TimingStats> shardStats(kShards);
    pool.parallelFor(kShards, [&](uint32_t shard) {
        uint32_t begin = shard * sessions / kShards;
        uint32_t end = (shard + 1) * sessions / kShards;
        TimingConfig cfg = table1Config();
        cfg.ipdsEnabled = ipds_on;
        CpuModel cpu(cfg);
        for (uint32_t s = begin; s < end; s++) {
            Vm vm(prog.mod);
            vm.setInputs(inputs);
            vm.setRecordTrace(false);
            Detector det(prog);
            if (ipds_on) {
                det.setRequestRing(&cpu.requestRing());
                vm.addObserver(&det);
            }
            vm.addObserver(&cpu);
            vm.run();
        }
        shardStats[shard] = cpu.stats();
    });

    TimingStats total;
    for (const TimingStats &s : shardStats)
        total.merge(s);
    return total;
}

void
printTable1()
{
    TimingConfig c = table1Config();
    std::printf("--- Table 1: simulated processor (defaults) ---\n");
    std::printf("fetch queue %u | decode/issue/commit %u/%u/%u | "
                "RUU %u | LSQ %u\n",
                c.fetchQueue, c.decodeWidth, c.issueWidth,
                c.commitWidth, c.ruuSize, c.lsqSize);
    std::printf("L1 I/D %uK %u-way %uB %ucyc | L2 %uK %u-way %uB "
                "%ucyc\n",
                c.l1i.sizeBytes / 1024, c.l1i.ways, c.l1i.blockBytes,
                c.l1i.latency, c.l2.sizeBytes / 1024, c.l2.ways,
                c.l2.blockBytes, c.l2.latency);
    std::printf("memory %u+%u cyc | TLB miss %u cyc | 2-level "
                "branch predictor\n",
                c.memFirstChunk, c.memInterChunk, c.tlbMissCycles);
    std::printf("IPDS stacks: BSV %u bits, BCV %u bits, BAT %u bits; "
                "table latency %u cyc\n\n",
                c.bsvStackBits, c.bcvStackBits, c.batStackBits,
                c.tableLatency);
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t sessions = 300;
    unsigned threads = 0;
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--sessions") && i + 1 < argc)
            sessions = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
        else {
            std::fprintf(stderr,
                         "usage: %s [--sessions N] [--threads N]\n",
                         argv[0]);
            return 2;
        }
    }

    setQuiet(true);
    ThreadPool pool(threads);
    std::printf("=== Figure 9: normalized performance "
                "(%u sessions per benchmark, %u shards, %u threads) "
                "===\n\n",
                sessions, kShards, pool.workerCount());
    printTable1();

    std::printf("%-10s %12s %12s %12s %10s %10s\n", "benchmark",
                "base-cycles", "ipds-cycles", "normalized",
                "degr(%)", "stalls");

    double sumDegr = 0;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        TimingStats base =
            simulate(prog, wl.benignInputs, false, sessions, pool);
        TimingStats ipds =
            simulate(prog, wl.benignInputs, true, sessions, pool);
        double norm = ipds.cycles
            ? double(base.cycles) / double(ipds.cycles) : 1.0;
        double degr = base.cycles
            ? 100.0 * (double(ipds.cycles) - double(base.cycles)) /
                double(base.cycles)
            : 0.0;
        sumDegr += degr;
        std::printf("%-10s %12llu %12llu %12.4f %10.3f %10llu\n",
                    wl.name.c_str(),
                    static_cast<unsigned long long>(base.cycles),
                    static_cast<unsigned long long>(ipds.cycles),
                    norm, degr,
                    static_cast<unsigned long long>(
                        ipds.ipdsStallCycles));
    }
    size_t n = allWorkloads().size();
    std::printf("%-10s %12s %12s %12s %10.3f\n", "average", "-", "-",
                "-", sumDegr / n);
    std::printf("\npaper average degradation: 0.79%% "
                "(negligible in most cases)\n");
    return 0;
}
