/**
 * @file
 * Hot-path ablation: branch-events/second through the detector, before
 * vs after the runtime fast-path overhaul.
 *
 * "Before" is the preserved pre-overhaul implementation
 * (ReferenceDetector: per-branch rehash, per-entry BSV heap
 * allocation, std::function request sink). "After" is the production
 * Detector (precomputed slots, pooled generation-stamped frames,
 * inline RequestRing). Both replay the identical recorded event trace
 * — a batch of benign sessions per workload, captured once from the VM
 * — so the measurement isolates detector cost from interpreter cost.
 * Each side is timed over several trials and the fastest trial wins,
 * which suppresses scheduler noise on short runs.
 *
 * The replay also asserts the two detectors produce identical alarms,
 * statistics and request streams (a cheap standing differential check;
 * the authoritative ones live in tests/).
 *
 * Transport is measured as deployed: the reference pays its
 * std::function sink into a pending vector cleared per event (what the
 * old CpuModel did); the fast path pays its inline ring push plus a
 * per-event batch drain (what the new CpuModel does).
 *
 * Emits machine-readable JSON (events/sec per workload + speedup) for
 * the perf trajectory, default BENCH_hotpath.json.
 *
 * Usage: abl_hotpath [--sessions N] [--repeat N] [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/program.h"
#include "ipds/detector.h"
#include "ipds/reference.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

/** One recorded observer event. */
struct Event
{
    enum class Kind : uint8_t { Enter, Exit, Branch };
    Kind kind = Kind::Branch;
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    bool taken = false;
};

/** Captures the exact event stream a detector would see. */
struct Recorder : ExecObserver
{
    std::vector<Event> events;
    uint64_t branches = 0;

    void
    onFunctionEnter(FuncId f) override
    {
        events.push_back({Event::Kind::Enter, f, 0, false});
    }
    void
    onFunctionExit(FuncId f) override
    {
        events.push_back({Event::Kind::Exit, f, 0, false});
    }
    void
    onBranch(FuncId f, uint64_t pc, bool taken) override
    {
        events.push_back({Event::Kind::Branch, f, pc, taken});
        branches++;
    }
};

/**
 * Replay the trace into the legacy detector. The detector's sink must
 * already append into @p pending; after each event the batch is handed
 * to @p consume and cleared — the pre-overhaul CpuModel transport
 * (std::function sink into a std::vector, drained per instruction).
 */
template <typename Consume>
void
replayLegacy(ReferenceDetector &det, std::vector<IpdsRequest> &pending,
             const std::vector<Event> &trace, Consume &&consume)
{
    for (const Event &ev : trace) {
        switch (ev.kind) {
          case Event::Kind::Enter:
            det.onFunctionEnter(ev.func);
            break;
          case Event::Kind::Exit:
            det.onFunctionExit(ev.func);
            break;
          case Event::Kind::Branch:
            det.onBranch(ev.func, ev.pc, ev.taken);
            break;
        }
        if (!pending.empty()) {
            for (const IpdsRequest &rq : pending)
                consume(rq);
            pending.clear();
        }
    }
}

/**
 * Replay the trace into the fast detector, draining @p ring after each
 * event into @p consume — the same cadence the timing model uses (one
 * drain per committed instruction).
 */
template <typename Consume>
void
replayFast(Detector &det, RequestRing &ring,
           const std::vector<Event> &trace, Consume &&consume)
{
    for (const Event &ev : trace) {
        switch (ev.kind) {
          case Event::Kind::Enter:
            det.onFunctionEnter(ev.func);
            break;
          case Event::Kind::Exit:
            det.onFunctionExit(ev.func);
            break;
          case Event::Kind::Branch:
            det.onBranch(ev.func, ev.pc, ev.taken);
            break;
        }
        ring.drain(consume);
    }
}

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
sameStats(const DetectorStats &a, const DetectorStats &b)
{
    return a.branchesSeen == b.branchesSeen &&
        a.checksEnqueued == b.checksEnqueued &&
        a.updatesApplied == b.updatesApplied &&
        a.actionsApplied == b.actionsApplied &&
        a.framesPushed == b.framesPushed &&
        a.maxStackDepth == b.maxStackDepth;
}

struct Row
{
    std::string name;
    uint64_t events = 0;
    uint64_t branches = 0;
    double legacyEps = 0; ///< events/sec, reference detector
    double fastEps = 0;   ///< events/sec, production detector
    double speedup() const
    {
        return legacyEps > 0 ? fastEps / legacyEps : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    uint32_t sessions = 24;
    uint32_t repeat = 300;
    std::string jsonPath = "BENCH_hotpath.json";
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--sessions") && i + 1 < argc)
            sessions = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--sessions N] [--repeat N] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (sessions == 0)
        sessions = 1;
    if (repeat == 0)
        repeat = 1;
    constexpr uint32_t kTrials = 3;

    setQuiet(true);
    std::printf("=== Hot-path ablation: detector events/second, "
                "legacy vs fast path ===\n");
    std::printf("(%u recorded sessions per workload, %u replays, "
                "best of %u trials)\n\n", sessions, repeat, kTrials);
    std::printf("%-10s %10s %10s %14s %14s %9s\n", "benchmark",
                "events", "branches", "legacy-ev/s", "fast-ev/s",
                "speedup");

    std::vector<Row> rows;
    uint64_t consumed = 0; // keeps the request path observable
    bool mismatch = false;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

        // Record a batch of benign sessions as one event stream.
        Recorder rec;
        for (uint32_t s = 0; s < sessions; s++) {
            Vm vm(prog.mod);
            vm.setInputs(wl.benignInputs);
            vm.setRecordTrace(false);
            vm.addObserver(&rec);
            vm.run();
        }

        // Differential check first (one replay each, full compare).
        ReferenceDetector refDet(prog);
        Detector fastDet(prog);
        RequestRing ring;
        fastDet.setRequestRing(&ring);
        std::vector<IpdsRequest> pending;
        refDet.setRequestSink([&pending](const IpdsRequest &rq) {
            pending.push_back(rq);
        });
        {
            std::vector<IpdsRequest> refReqs, fastReqs;
            replayLegacy(refDet, pending, rec.events,
                         [&](const IpdsRequest &rq) {
                             refReqs.push_back(rq);
                         });
            replayFast(fastDet, ring, rec.events,
                       [&](const IpdsRequest &rq) {
                           fastReqs.push_back(rq);
                       });
            if (!sameStats(refDet.stats(), fastDet.stats()) ||
                refDet.alarms().size() != fastDet.alarms().size() ||
                !(refReqs == fastReqs)) {
                std::fprintf(stderr,
                             "MISMATCH: %s fast path diverges from "
                             "reference\n", wl.name.c_str());
                mismatch = true;
            }
        }

        // Timed replays: each side pays its deployed transport into
        // the same counting consumer. Best trial wins.
        auto count = [&](const IpdsRequest &) { consumed++; };
        double legacySec = 1e100, fastSec = 1e100;
        for (uint32_t trial = 0; trial < kTrials; trial++) {
            auto t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++) {
                refDet.reset();
                pending.clear();
                replayLegacy(refDet, pending, rec.events, count);
            }
            legacySec = std::min(legacySec, seconds(t0));

            t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++) {
                fastDet.reset();
                replayFast(fastDet, ring, rec.events, count);
            }
            fastSec = std::min(fastSec, seconds(t0));
        }

        Row row;
        row.name = wl.name;
        row.events = rec.events.size();
        row.branches = rec.branches;
        double total = double(repeat) * double(rec.events.size());
        row.legacyEps = legacySec > 0 ? total / legacySec : 0;
        row.fastEps = fastSec > 0 ? total / fastSec : 0;
        std::printf("%-10s %10llu %10llu %14.0f %14.0f %8.2fx\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.events),
                    static_cast<unsigned long long>(row.branches),
                    row.legacyEps, row.fastEps, row.speedup());
        rows.push_back(std::move(row));
    }

    double geo = 1.0;
    for (const Row &r : rows)
        geo *= r.speedup();
    geo = rows.empty() ? 0.0 : std::pow(geo, 1.0 / rows.size());
    std::printf("%-10s %10s %10s %14s %14s %8.2fx\n", "geomean", "-",
                "-", "-", "-", geo);
    std::printf("(transport consumed %llu requests)\n",
                static_cast<unsigned long long>(consumed));

    // Machine-readable trajectory record.
    FILE *js = std::fopen(jsonPath.c_str(), "w");
    if (!js) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(js, "{\n  \"bench\": \"abl_hotpath\",\n"
                     "  \"sessions\": %u,\n"
                     "  \"repeat\": %u,\n  \"workloads\": [\n",
                 sessions, repeat);
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(js,
                     "    {\"name\": \"%s\", \"events\": %llu, "
                     "\"branches\": %llu, \"legacy_eps\": %.0f, "
                     "\"fast_eps\": %.0f, \"speedup\": %.3f}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.events),
                     static_cast<unsigned long long>(r.branches),
                     r.legacyEps, r.fastEps, r.speedup(),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(js, "  ],\n  \"geomean_speedup\": %.3f,\n"
                     "  \"equivalent\": %s\n}\n",
                 geo, mismatch ? "false" : "true");
    bool writeFailed = std::ferror(js) != 0;
    writeFailed |= std::fclose(js) != 0;
    if (writeFailed) {
        std::fprintf(stderr, "write to %s failed\n", jsonPath.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", jsonPath.c_str());

    return mismatch ? 1 : 0;
}
