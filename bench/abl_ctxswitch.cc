/**
 * @file
 * §5.4 context-switch ablation. The paper: "we can swap the top of
 * BSV and BAT stacks (around 1K bits) first and let the new process
 * start. Lower layers of stacks are context switched in parallel with
 * the execution of the new process to reduce context switch latency."
 *
 * This bench quantifies that claim: synchronous context-switch
 * latency under the eager strategy (save/restore every resident
 * frame) versus the paper's lazy top-of-stack swap, as a function of
 * the protected process's call depth.
 */

#include <cstdio>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "timing/engine.h"

using namespace ipds;

namespace {

/** Build a chain program with @p depth nested active calls. */
std::string
chainProgram(int depth)
{
    // Each chain function carries a realistic number of correlated
    // branches so its tables have realistic sizes (several hundred
    // bits, as in Figure 8).
    const char *body =
        "    int s;\n"
        "    s = 0;\n"
        "    if (x > 0) { s = 1; }\n"
        "    if (s == 1) { print_int(s); }\n"
        "    if (x > 4) { s = 2; }\n"
        "    if (s == 2) { print_int(s); }\n"
        "    if (x < -3) { s = 3; }\n"
        "    if (s == 3) { print_int(s); }\n"
        "    if (s > 3) { print_str(\"corrupt\\n\"); }\n";
    std::string src;
    src += strprintf("void leaf(int x) {\n%s}\n", body);
    for (int d = depth - 1; d >= 0; d--) {
        std::string callee =
            d == depth - 1 ? "leaf" : strprintf("f%d", d + 1);
        src += strprintf("void f%d(int x) {\n%s    %s(x + 1);\n}\n",
                         d, body, callee.c_str());
    }
    src += "void main() { f0(1); }\n";
    return src;
}

/**
 * Drive the engine to the deepest stack state the program reaches,
 * then measure one context switch.
 */
uint64_t
switchLatencyAtDeepest(const CompiledProgram &prog, bool lazy)
{
    TimingConfig cfg = table1Config();
    IpdsEngine eng(cfg);
    uint64_t worst = 0;

    Detector det(prog);
    uint64_t now = 0;
    det.setRequestSink([&](const IpdsRequest &rq) {
        eng.enqueue(rq, now++);
        if (rq.kind == IpdsRequest::Kind::PushFrame) {
            // Probe: what would a switch cost right now? Use a copy
            // so probing does not disturb the real engine state.
            IpdsEngine probe = eng;
            worst = std::max(worst, probe.contextSwitch(lazy));
        }
    });

    Vm vm(prog.mod);
    vm.addObserver(&det);
    vm.run();
    return worst;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: context-switch latency (§5.4) ===\n\n");
    std::printf("%8s %18s %18s %10s\n", "depth", "eager-sync(cyc)",
                "lazy-sync(cyc)", "speedup");

    for (int depth : {1, 2, 4, 8, 12, 16, 24, 32}) {
        CompiledProgram prog =
            compileAndAnalyze(chainProgram(depth), "chain");
        uint64_t eager = switchLatencyAtDeepest(prog, false);
        uint64_t lazy = switchLatencyAtDeepest(prog, true);
        std::printf("%8d %18llu %18llu %9.1fx\n", depth,
                    static_cast<unsigned long long>(eager),
                    static_cast<unsigned long long>(lazy),
                    lazy ? double(eager) / double(lazy) : 0.0);
    }
    std::printf("\n(claim: lazy top-of-stack swapping makes the "
                "synchronous cost independent of\n call depth — deep "
                "stacks migrate in parallel with the new process)\n");
    return 0;
}
