/**
 * @file
 * §5.2 design-claim ablation: the trial-and-error perfect-hash search
 * "quickly" finds collision-free shift/XOR parameters in near-optimal
 * spaces. Sweeps branch-set sizes drawn from realistic PC layouts and
 * reports tries, space inflation over the optimum, and search time.
 */

#include <chrono>
#include <cstdio>

#include "core/hashfn.h"
#include "support/rng.h"

using namespace ipds;

namespace {

/** Branch PCs of a synthetic function: 4-byte slots, ~1 branch per 6
 *  instructions, as in compiled code. */
std::vector<uint64_t>
branchPcs(Rng &rng, size_t n)
{
    std::vector<uint64_t> pcs;
    uint64_t pc = 0x1000 + rng.below(1 << 20) * 4;
    for (size_t i = 0; i < n; i++) {
        pc += 4 * (1 + rng.below(12));
        pcs.push_back(pc);
    }
    return pcs;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: perfect-hash search (§5.2) ===\n\n");
    std::printf("%8s %10s %12s %14s %12s\n", "branches", "avg-tries",
                "avg-space", "space/optimal", "avg-us");

    Rng rng(7);
    for (size_t n : {2, 4, 8, 16, 32, 64, 128, 256}) {
        const int reps = 200;
        uint64_t tries = 0, space = 0;
        double us = 0;
        uint32_t optimal = 1;
        while (optimal < n)
            optimal <<= 1;
        for (int r = 0; r < reps; r++) {
            auto pcs = branchPcs(rng, n);
            auto t0 = std::chrono::steady_clock::now();
            HashParams p = findPerfectHash(pcs);
            us += std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0).count();
            tries += p.tries;
            space += p.space();
        }
        std::printf("%8zu %10.1f %12.1f %14.2f %12.2f\n", n,
                    double(tries) / reps, double(space) / reps,
                    double(space) / reps / optimal, us / reps);
    }
    std::printf("\n(claim: a collision-free hash is found within a "
                "handful of tries and\n little or no space inflation, "
                "so the runtime tables need no tags)\n");
    return 0;
}
