/**
 * @file
 * Figure 7 reproduction: "Detection rate for simulated attacks".
 *
 * For each of the ten server workloads, runs N independent memory
 * tampering attacks (random live stack location, random input-event
 * trigger, random value) and reports
 *   - the percentage whose tampering changed program control flow, and
 *   - the percentage detected by IPDS,
 * plus the derived detection rate among control-flow-changing attacks
 * (the paper's headline 59.3%) and the false-positive row (must be 0).
 *
 * Usage: fig7_detection [--attacks N] [--threads T] [--json PATH]
 *                       [--gen-seeds A:B]
 *
 * --gen-seeds A:B registers the generated corpus programs (src/gen)
 * for the inclusive seed range into the workload registry, so the
 * campaign sweeps them alongside — and identically to — the ten
 * hand-written paper workloads.
 *
 * --json writes a machine-readable report (BENCH_fig7.json in CI):
 * the per-workload table plus the campaign aggregates exported
 * through the obs metrics registry (ipds.campaign.* names).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "attack/campaign.h"
#include "core/program.h"
#include "gen/gen.h"
#include "obs/metrics.h"
#include "support/cli.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

struct Row
{
    std::string name;
    uint32_t attacks = 0;
    uint32_t cfChanged = 0;
    uint32_t detected = 0;
    double pctCf = 0, pctDet = 0, pctDetOfCf = 0;
    bool fp = false;
};

void
writeJson(const char *path, uint32_t attacksPer,
          const std::vector<Row> &rows, double avgCf, double avgDet,
          double totalDetOfCf, bool anyFp,
          const obs::MetricsRegistry &reg)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"fig7_detection\",\n");
    std::fprintf(f, "  \"attacks_per_workload\": %u,\n", attacksPer);
    std::fprintf(f, "  \"workloads\": [\n");
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"name\": \"%s\", \"attacks\": %u, "
            "\"cf_changed\": %u, \"detected\": %u, "
            "\"pct_cf_changed\": %.1f, \"pct_detected\": %.1f, "
            "\"pct_detected_of_cf\": %.1f, "
            "\"false_positive\": %s}%s\n",
            r.name.c_str(), r.attacks, r.cfChanged, r.detected,
            r.pctCf, r.pctDet, r.pctDetOfCf,
            r.fp ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"avg_pct_cf_changed\": %.1f,\n", avgCf);
    std::fprintf(f, "  \"avg_pct_detected\": %.1f,\n", avgDet);
    std::fprintf(f, "  \"total_pct_detected_of_cf\": %.1f,\n",
                 totalDetOfCf);
    std::fprintf(f, "  \"false_positives\": %s,\n",
                 anyFp ? "true" : "false");
    // The aggregated ipds.campaign.* metrics, via the obs exporter —
    // already a complete JSON object, embedded verbatim.
    std::fprintf(f, "  \"metrics\": %s\n", reg.toJson().c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args("fig7_detection",
                        "Figure 7: detection rate for simulated "
                        "attacks");
    uint32_t attacks = 100;
    unsigned threads = 0; // one worker per core; results unchanged
    std::string jsonPath, genSeeds;
    args.uintOpt("attacks", &attacks, "attacks per benchmark");
    args.strOpt("gen-seeds", &genSeeds,
                "also campaign generated programs for seed range A:B");
    args.threadsOpt(&threads);
    args.jsonOpt(&jsonPath);
    if (!args.parse(argc, argv))
        return args.exitCode();

    if (!genSeeds.empty()) {
        // Generated corpus programs join the registry and flow
        // through the identical campaign loop below.
        size_t colon = genSeeds.find(':');
        char *endp = nullptr;
        uint64_t lo = std::strtoull(genSeeds.c_str(), &endp, 0);
        bool okLo = colon != std::string::npos &&
            endp == genSeeds.c_str() + colon;
        uint64_t hi =
            std::strtoull(genSeeds.c_str() + colon + 1, &endp, 0);
        if (!okLo || *endp || lo > hi) {
            std::fprintf(stderr,
                         "fig7_detection: bad --gen-seeds '%s' "
                         "(want A:B with A <= B)\n",
                         genSeeds.c_str());
            return 1;
        }
        std::vector<Workload> corpus = gen::corpusWorkloads(lo, hi);
        registerWorkloads(corpus);
    }

    setQuiet(true);
    std::printf("=== Figure 7: detection rate for simulated attacks "
                "(%u attacks per benchmark) ===\n\n", attacks);
    std::printf("%-10s %14s %12s %16s %6s\n", "benchmark",
                "cf-changed(%)", "detected(%)", "det-of-cf(%)", "FP");

    double sumCf = 0, sumDet = 0;
    uint32_t totalCf = 0, totalDet = 0;
    bool anyFp = false;
    std::vector<Row> rows;
    obs::MetricsRegistry reg; // aggregated over all workloads

    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        CampaignConfig cfg;
        cfg.numAttacks = attacks;
        cfg.numThreads = threads;
        CampaignResult res = runCampaign(prog, wl.benignInputs, cfg);
        res.exportMetrics(reg);
        anyFp |= res.falsePositive;
        sumCf += res.pctCfChanged();
        sumDet += res.pctDetected();
        totalCf += res.numCfChanged();
        totalDet += res.numDetected();
        rows.push_back({wl.name, res.attacks(), res.numCfChanged(),
                        res.numDetected(), res.pctCfChanged(),
                        res.pctDetected(), res.pctDetectedOfCf(),
                        res.falsePositive});
        std::printf("%-10s %14.1f %12.1f %16.1f %6s\n",
                    wl.name.c_str(), res.pctCfChanged(),
                    res.pctDetected(), res.pctDetectedOfCf(),
                    res.falsePositive ? "YES!" : "0");
    }

    size_t n = allWorkloads().size();
    double totalDetOfCf = totalCf ? 100.0 * totalDet / totalCf : 0.0;
    std::printf("%-10s %14.1f %12.1f %16.1f %6s\n", "average",
                sumCf / n, sumDet / n, totalDetOfCf,
                anyFp ? "YES!" : "0");
    std::printf("\npaper      %14s %12s %16s %6s\n", "49.4", "29.3",
                "59.3", "0");
    std::printf("\n(shape target: roughly half of tamperings change "
                "control flow; more than\n half of those are detected; "
                "false positives are structurally impossible)\n");

    if (!jsonPath.empty())
        writeJson(jsonPath.c_str(), attacks, rows, sumCf / n, sumDet / n,
                  totalDetOfCf, anyFp, reg);
    return anyFp ? 1 : 0;
}
