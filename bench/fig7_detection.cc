/**
 * @file
 * Figure 7 reproduction: "Detection rate for simulated attacks".
 *
 * For each of the ten server workloads, runs 100 independent memory
 * tampering attacks (random live stack location, random input-event
 * trigger, random value) and reports
 *   - the percentage whose tampering changed program control flow, and
 *   - the percentage detected by IPDS,
 * plus the derived detection rate among control-flow-changing attacks
 * (the paper's headline 59.3%) and the false-positive row (must be 0).
 */

#include <cstdio>

#include "attack/campaign.h"
#include "core/program.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 7: detection rate for simulated attacks "
                "(100 attacks per benchmark) ===\n\n");
    std::printf("%-10s %14s %12s %16s %6s\n", "benchmark",
                "cf-changed(%)", "detected(%)", "det-of-cf(%)", "FP");

    double sumCf = 0, sumDet = 0;
    uint32_t totalCf = 0, totalDet = 0, totalAttacks = 0;
    bool anyFp = false;

    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        CampaignConfig cfg;
        cfg.numAttacks = 100;
        cfg.numThreads = 0; // one worker per core; results unchanged
        CampaignResult res = runCampaign(prog, wl.benignInputs, cfg);
        anyFp |= res.falsePositive;
        sumCf += res.pctCfChanged();
        sumDet += res.pctDetected();
        totalCf += res.numCfChanged();
        totalDet += res.numDetected();
        totalAttacks += res.attacks();
        std::printf("%-10s %14.1f %12.1f %16.1f %6s\n",
                    wl.name.c_str(), res.pctCfChanged(),
                    res.pctDetected(), res.pctDetectedOfCf(),
                    res.falsePositive ? "YES!" : "0");
    }

    size_t n = allWorkloads().size();
    std::printf("%-10s %14.1f %12.1f %16.1f %6s\n", "average",
                sumCf / n, sumDet / n,
                totalCf ? 100.0 * totalDet / totalCf : 0.0,
                anyFp ? "YES!" : "0");
    std::printf("\npaper      %14s %12s %16s %6s\n", "49.4", "29.3",
                "59.3", "0");
    std::printf("\n(shape target: roughly half of tamperings change "
                "control flow; more than\n half of those are detected; "
                "false positives are structurally impossible)\n");
    return anyFp ? 1 : 0;
}
