/**
 * @file
 * Trace replay ablation: detection events/second (committed branches
 * through the detector) for three ways of driving the same stream:
 *
 *   live_switch    golden-reference interpreter + detector
 *   live_threaded  threaded+batched engine + detector (deployment)
 *   replay         ReplayEngine over a recorded trace — no VM at all
 *
 * This is the tentpole's wire-speed claim in one number: once a
 * stream is recorded, re-detecting it costs varint decode plus the
 * detector hot path, not interpretation. Each workload records a
 * multi-session trace (repeat benign sessions) once through
 * Session::captureTo(); the live drivers then execute the same
 * session stream VM-by-VM while the replay driver decodes the whole
 * trace in one pass — the deployment shape on both sides.
 * Configurations interleave within each trial and the fastest trial
 * wins (same discipline as abl_vm).
 *
 * Before timing, the capture is replayed through Session::replayFrom()
 * and through every live engine, and alarms + DetectorStats are
 * compared — the speedup is only reported over demonstrably
 * equivalent drivers ("equivalent" in the JSON).
 *
 * The parallel sweep (--par-threads, default 1,2,4,8) replays the
 * same trace through ReplayPlan::parallel(N) — the v2 chunk-index
 * fan-out — and reports events/s and per-worker events/s for each
 * worker count, with an embedded sequential-vs-parallel equivalence
 * check (alarms + DetectorStats bit-identical) gating the numbers.
 *
 * Emits machine-readable JSON (events/sec per workload per driver +
 * replay speedups + the parallel sweep), default BENCH_replay.json.
 *
 * Usage: abl_replay [--repeat N] [--quick] [--par-threads CSV]
 *                   [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/program.h"
#include "ipds/detector.h"
#include "obs/names.h"
#include "obs/session.h"
#include "replay/reader.h"
#include "replay/replay.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
sameAlarms(const std::vector<Alarm> &a, const std::vector<Alarm> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++)
        if (a[i].pc != b[i].pc || a[i].func != b[i].func ||
            a[i].branchIndex != b[i].branchIndex)
            return false;
    return true;
}

void
runLive(const CompiledProgram &prog,
        const std::shared_ptr<const DecodedProgram> &dec,
        const std::vector<std::string> &inputs, VmEngine engine,
        bool batched, Detector &det)
{
    Vm vm(prog.mod, dec);
    vm.setInputs(inputs);
    vm.setRecordTrace(false);
    vm.setEngine(engine);
    vm.setBatchedDelivery(batched);
    det.reset();
    vm.addObserver(&det);
    vm.run();
}

struct ParPoint
{
    unsigned workers = 1;
    double eps = 0; ///< replay events/s at this worker count
};

struct Row
{
    std::string name;
    uint64_t events = 0; ///< committed branches per session
    double epsSwitch = 0, epsThreaded = 0, epsReplay = 0;
    std::vector<ParPoint> par;
};

} // namespace

int
main(int argc, char **argv)
{
    uint32_t repeat = 200;
    uint32_t trials = 5;
    std::string jsonPath = "BENCH_replay.json";
    std::vector<unsigned> parSweep = {1, 2, 4, 8};
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--quick")) {
            repeat = 3;
            trials = 2;
        } else if (!std::strcmp(argv[i], "--par-threads") &&
                   i + 1 < argc) {
            parSweep.clear();
            for (const char *p = argv[++i]; *p;) {
                unsigned w = static_cast<unsigned>(std::strtoul(
                    p, const_cast<char **>(&p), 10));
                if (w)
                    parSweep.push_back(w);
                if (*p == ',')
                    p++;
                else
                    break;
            }
            if (parSweep.empty()) {
                std::fprintf(stderr,
                             "--par-threads wants e.g. 1,2,4,8\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--repeat N] [--quick] "
                         "[--par-threads CSV] [--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (repeat == 0)
        repeat = 1;

    setQuiet(true);
    std::printf("=== Trace replay ablation: detection events/second, "
                "live VM vs recorded-trace replay ===\n");
    std::printf("(benign session per workload, %u runs per trial, "
                "best of %u trials)\n\n",
                repeat, trials);
    std::printf("%-10s %9s %14s %15s %14s %9s\n", "benchmark",
                "events", "switch-e/s", "threaded-e/s", "replay-e/s",
                "speedup");

    std::vector<Row> rows;
    bool mismatch = false;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        auto dec = decodeModule(prog.mod);
        Detector det(prog);

        // Record the whole repeat-session stream once through the
        // public facade; the trace is the replay driver's input and
        // the equivalence oracle's pivot.
        std::string tracePath = "abl_replay_" + wl.name + ".trc";
        Session live = Session::builder()
                           .program(prog)
                           .inputs(wl.benignInputs)
                           .sessions(repeat)
                           .plan(CapturePlan(tracePath))
                           .build();
        live.run();

        Session rep = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(tracePath))
                          .build();
        rep.run();
        if (!(rep.detectorStats() == live.detectorStats()) ||
            !sameAlarms(rep.alarms(), live.alarms())) {
            std::fprintf(stderr, "MISMATCH: %s replay diverges\n",
                         wl.name.c_str());
            mismatch = true;
        }

        // The live engines must agree with each other too (the
        // capture itself ran on the default threaded engine).
        DetectorStats switchStats;
        size_t switchAlarms = 0;
        for (bool batched : {false, true}) {
            runLive(prog, dec, wl.benignInputs,
                    batched ? VmEngine::Threaded : VmEngine::Switch,
                    batched, det);
            if (!batched) {
                switchStats = det.stats();
                switchAlarms = det.alarms().size();
            } else if (!(det.stats() == switchStats) ||
                       det.alarms().size() != switchAlarms) {
                std::fprintf(stderr,
                             "MISMATCH: %s diverges across live "
                             "engines\n",
                             wl.name.c_str());
                mismatch = true;
            }
        }

        replay::TraceFile file = replay::TraceFile::load(tracePath);
        replay::ReplayEngine eng(file, prog);

        // Timed loops, interleaved within each trial: the live
        // drivers execute the repeat sessions VM-by-VM, the replay
        // driver decodes the whole recorded stream in one pass.
        double best[3] = {1e100, 1e100, 1e100};
        for (uint32_t trial = 0; trial < trials; trial++) {
            auto t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++)
                runLive(prog, dec, wl.benignInputs, VmEngine::Switch,
                        false, det);
            best[0] = std::min(best[0], seconds(t0));

            t0 = std::chrono::steady_clock::now();
            for (uint32_t r = 0; r < repeat; r++)
                runLive(prog, dec, wl.benignInputs,
                        VmEngine::Threaded, true, det);
            best[1] = std::min(best[1], seconds(t0));

            t0 = std::chrono::steady_clock::now();
            replay::ReplayShardResult out;
            eng.replayShard(0, out);
            best[2] = std::min(best[2], seconds(t0));
        }

        Row row;
        row.name = wl.name;
        row.events = live.detectorStats().branchesSeen / repeat;
        double total = double(live.detectorStats().branchesSeen);
        row.epsSwitch = best[0] > 0 ? total / best[0] : 0;
        row.epsThreaded = best[1] > 0 ? total / best[1] : 0;
        row.epsReplay = best[2] > 0 ? total / best[2] : 0;
        std::printf("%-10s %9llu %14.0f %15.0f %14.0f %8.2fx\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.events),
                    row.epsSwitch, row.epsThreaded, row.epsReplay,
                    row.epsThreaded > 0
                        ? row.epsReplay / row.epsThreaded
                        : 0.0);

        // Parallel sweep over the v2 chunk index. The session's own
        // events_per_sec gauge times just the replay section (load
        // excluded), the same window as the sequential loop above;
        // every parallel run is equivalence-checked against the
        // sequential replay before its number counts.
        for (unsigned w : parSweep) {
            ParPoint pt;
            pt.workers = w;
            for (uint32_t trial = 0; trial < trials; trial++) {
                Session par =
                    Session::builder()
                        .program(prog)
                        .plan(ReplayPlan(tracePath).parallel(w))
                        .build();
                par.run();
                if (!(par.detectorStats() == rep.detectorStats()) ||
                    !sameAlarms(par.alarms(), rep.alarms())) {
                    std::fprintf(stderr,
                                 "MISMATCH: %s parallel(%u) diverges "
                                 "from sequential replay\n",
                                 wl.name.c_str(), w);
                    mismatch = true;
                }
                const obs::MetricsRegistry &m = par.metrics();
                pt.eps = std::max(
                    pt.eps,
                    double(m.value(m.find(
                        obs::names::kReplayEventsPerSec))));
            }
            row.par.push_back(pt);
            std::printf("  par %2uw %36.0f e/s %13.0f e/s/w\n", w,
                        pt.eps, pt.eps / w);
        }
        std::remove(tracePath.c_str());
        rows.push_back(std::move(row));
    }

    // Geomean replay speedup against each live driver; the headline
    // number is vs the deployment engine (threaded+batched).
    double geoVsSwitch = 1.0, geoVsThreaded = 1.0;
    for (const Row &r : rows) {
        geoVsSwitch *=
            r.epsSwitch > 0 ? r.epsReplay / r.epsSwitch : 1.0;
        geoVsThreaded *=
            r.epsThreaded > 0 ? r.epsReplay / r.epsThreaded : 1.0;
    }
    if (!rows.empty()) {
        geoVsSwitch = std::pow(geoVsSwitch, 1.0 / rows.size());
        geoVsThreaded = std::pow(geoVsThreaded, 1.0 / rows.size());
    }
    std::printf("%-10s %9s %14s %15s %14s %8.2fx\n", "geomean", "-",
                "-", "-", "-", geoVsThreaded);

    // Parallel scaling geomean: best sweep point vs the 1-worker
    // point of the same sweep (same code path, same timing window).
    double geoPar = 1.0;
    size_t geoParRows = 0;
    for (const Row &r : rows) {
        double base = 0, peak = 0;
        for (const ParPoint &p : r.par) {
            if (p.workers == 1)
                base = p.eps;
            peak = std::max(peak, p.eps);
        }
        if (base > 0 && peak > 0) {
            geoPar *= peak / base;
            geoParRows++;
        }
    }
    if (geoParRows)
        geoPar = std::pow(geoPar, 1.0 / geoParRows);
    if (!rows.empty() && !rows.front().par.empty())
        std::printf("%-10s parallel scaling geomean %8.2fx\n",
                    "geomean", geoPar);

    FILE *js = std::fopen(jsonPath.c_str(), "w");
    if (!js) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(js, "{\n  \"bench\": \"abl_replay\",\n"
                     "  \"repeat\": %u,\n  \"workloads\": [\n",
                 repeat);
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(
            js,
            "    {\"name\": \"%s\", \"events\": %llu, "
            "\"live_switch_eps\": %.0f, \"live_threaded_eps\": %.0f, "
            "\"replay_eps\": %.0f, \"speedup\": %.3f,\n"
            "     \"parallel\": [",
            r.name.c_str(),
            static_cast<unsigned long long>(r.events), r.epsSwitch,
            r.epsThreaded, r.epsReplay,
            r.epsThreaded > 0 ? r.epsReplay / r.epsThreaded : 0.0);
        for (size_t j = 0; j < r.par.size(); j++)
            std::fprintf(js,
                         "{\"workers\": %u, \"eps\": %.0f, "
                         "\"eps_per_worker\": %.0f}%s",
                         r.par[j].workers, r.par[j].eps,
                         r.par[j].eps / r.par[j].workers,
                         j + 1 < r.par.size() ? ", " : "");
        std::fprintf(js, "]}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(js,
                 "  ],\n  \"geomean_speedup_vs_switch\": %.3f,\n"
                 "  \"geomean_speedup\": %.3f,\n"
                 "  \"geomean_parallel_scaling\": %.3f,\n"
                 "  \"equivalent\": %s\n}\n",
                 geoVsSwitch, geoVsThreaded, geoPar,
                 mismatch ? "false" : "true");
    bool writeFailed = std::ferror(js) != 0;
    writeFailed |= std::fclose(js) != 0;
    if (writeFailed) {
        std::fprintf(stderr, "write to %s failed\n",
                     jsonPath.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", jsonPath.c_str());

    return mismatch ? 1 : 0;
}
