/**
 * @file
 * VM engine ablation: instructions/second through the full protected
 * pipeline (VM + detector attached), comparing the three execution
 * configurations:
 *
 *   switch            golden-reference big-switch interpreter
 *   threaded          predecoded blocks + threaded dispatch,
 *                     per-event observer delivery
 *   threaded+batched  same core, per-block EventBatch delivery
 *
 * Each configuration runs every workload's benign session repeatedly
 * (a fresh Vm per run, sharing one predecode handle per workload —
 * the session-per-run deployment shape; the detector is reused via
 * reset()). Configurations are interleaved within each trial and the
 * fastest trial per configuration wins, suppressing scheduler noise
 * and frequency drift.
 *
 * Before timing, each workload runs once per configuration with full
 * trace recording and the results are compared — exit state, output,
 * step count, branch stream, detector statistics and alarms — so the
 * speedup number is only reported over demonstrably equivalent
 * engines ("equivalent" in the JSON).
 *
 * Emits machine-readable JSON (instructions/sec per workload per
 * configuration + speedups), default BENCH_vm.json.
 *
 * Usage: abl_vm [--repeat N] [--quick] [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

struct EngineCfg
{
    const char *name;
    VmEngine engine;
    bool batched;
};

constexpr EngineCfg kConfigs[] = {
    {"switch", VmEngine::Switch, false},
    {"threaded", VmEngine::Threaded, false},
    {"threaded_batched", VmEngine::Threaded, true},
};
constexpr size_t kNumCfg = std::size(kConfigs);

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

RunResult
runOnce(const CompiledProgram &prog,
        const std::shared_ptr<const DecodedProgram> &dec,
        const std::vector<std::string> &inputs, const EngineCfg &cfg,
        Detector &det, bool record_trace)
{
    Vm vm(prog.mod, dec);
    vm.setInputs(inputs);
    vm.setRecordTrace(record_trace);
    vm.setEngine(cfg.engine);
    vm.setBatchedDelivery(cfg.batched);
    det.reset();
    vm.addObserver(&det);
    return vm.run();
}

bool
sameStats(const DetectorStats &a, const DetectorStats &b)
{
    return a.branchesSeen == b.branchesSeen &&
        a.checksEnqueued == b.checksEnqueued &&
        a.updatesApplied == b.updatesApplied &&
        a.actionsApplied == b.actionsApplied &&
        a.framesPushed == b.framesPushed &&
        a.maxStackDepth == b.maxStackDepth;
}

struct Row
{
    std::string name;
    uint64_t insts = 0;          ///< instructions per session
    double ips[kNumCfg] = {};    ///< instructions/sec per config
    double speedup(size_t c) const
    {
        return ips[0] > 0 ? ips[c] / ips[0] : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    uint32_t repeat = 400;
    std::string jsonPath = "BENCH_vm.json";
    for (int i = 1; i < argc; i++) {
        if (!std::strcmp(argv[i], "--repeat") && i + 1 < argc)
            repeat = static_cast<uint32_t>(std::atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--quick"))
            repeat = 3;
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s [--repeat N] [--quick] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (repeat == 0)
        repeat = 1;
    constexpr uint32_t kTrials = 5;

    setQuiet(true);
    std::printf("=== VM engine ablation: instructions/second, "
                "switch vs threaded vs threaded+batched ===\n");
    std::printf("(benign session per workload, %u runs per trial, "
                "best of %u trials, detector attached)\n\n",
                repeat, kTrials);
    std::printf("%-10s %10s %14s %14s %16s %9s\n", "benchmark",
                "insts", "switch-i/s", "threaded-i/s", "batched-i/s",
                "speedup");

    std::vector<Row> rows;
    bool mismatch = false;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        // One shared predecode per workload (the session-per-run
        // deployment shape): no per-run cache validation in the
        // timed loop, for any engine.
        auto dec = decodeModule(prog.mod);
        Detector det(prog);

        // Differential check first: all configurations must agree
        // before their relative speed means anything.
        RunResult golden;
        DetectorStats goldenStats;
        size_t goldenAlarms = 0;
        for (size_t c = 0; c < kNumCfg; c++) {
            RunResult r = runOnce(prog, dec, wl.benignInputs,
                                  kConfigs[c], det,
                                  /*record_trace=*/true);
            if (c == 0) {
                golden = std::move(r);
                goldenStats = det.stats();
                goldenAlarms = det.alarms().size();
                continue;
            }
            if (r.exit != golden.exit || r.output != golden.output ||
                r.steps != golden.steps ||
                !(r.branchTrace == golden.branchTrace) ||
                !sameStats(det.stats(), goldenStats) ||
                det.alarms().size() != goldenAlarms) {
                std::fprintf(stderr,
                             "MISMATCH: %s diverges on %s\n",
                             wl.name.c_str(), kConfigs[c].name);
                mismatch = true;
            }
        }

        // Timed runs: trace recording off (deployment configuration);
        // fuel stays at the default so no run is clipped. Configs are
        // interleaved WITHIN each trial so frequency drift and
        // scheduler noise land on all three equally; best-of-trials
        // then approaches each config's true floor.
        Row row;
        row.name = wl.name;
        row.insts = golden.steps;
        double best[kNumCfg];
        std::fill(best, best + kNumCfg, 1e100);
        for (uint32_t trial = 0; trial < kTrials; trial++) {
            for (size_t c = 0; c < kNumCfg; c++) {
                auto t0 = std::chrono::steady_clock::now();
                for (uint32_t r = 0; r < repeat; r++)
                    runOnce(prog, dec, wl.benignInputs, kConfigs[c],
                            det, /*record_trace=*/false);
                best[c] = std::min(best[c], seconds(t0));
            }
        }
        for (size_t c = 0; c < kNumCfg; c++) {
            double total = double(repeat) * double(golden.steps);
            row.ips[c] = best[c] > 0 ? total / best[c] : 0;
        }
        std::printf("%-10s %10llu %14.0f %14.0f %16.0f %8.2fx\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.insts),
                    row.ips[0], row.ips[1], row.ips[2],
                    row.speedup(kNumCfg - 1));
        rows.push_back(std::move(row));
    }

    // Geomean speedup of the full overhaul (threaded+batched vs
    // switch); the per-config geomeans land in the JSON.
    double geo[kNumCfg] = {};
    for (size_t c = 0; c < kNumCfg; c++) {
        double g = 1.0;
        for (const Row &r : rows)
            g *= r.speedup(c);
        geo[c] = rows.empty() ? 0.0 : std::pow(g, 1.0 / rows.size());
    }
    std::printf("%-10s %10s %14s %14s %16s %8.2fx\n", "geomean", "-",
                "-", "-", "-", geo[kNumCfg - 1]);

    FILE *js = std::fopen(jsonPath.c_str(), "w");
    if (!js) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(js, "{\n  \"bench\": \"abl_vm\",\n"
                     "  \"repeat\": %u,\n  \"workloads\": [\n",
                 repeat);
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(js,
                     "    {\"name\": \"%s\", \"insts\": %llu, "
                     "\"switch_ips\": %.0f, \"threaded_ips\": %.0f, "
                     "\"threaded_batched_ips\": %.0f, "
                     "\"speedup\": %.3f}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.insts),
                     r.ips[0], r.ips[1], r.ips[2],
                     r.speedup(kNumCfg - 1),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(js,
                 "  ],\n  \"geomean_speedup_threaded\": %.3f,\n"
                 "  \"geomean_speedup\": %.3f,\n"
                 "  \"equivalent\": %s\n}\n",
                 geo[1], geo[kNumCfg - 1],
                 mismatch ? "false" : "true");
    bool writeFailed = std::ferror(js) != 0;
    writeFailed |= std::fclose(js) != 0;
    if (writeFailed) {
        std::fprintf(stderr, "write to %s failed\n", jsonPath.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", jsonPath.c_str());

    return mismatch ? 1 : 0;
}
