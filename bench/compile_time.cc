/**
 * @file
 * §6 compile-time experiment (google-benchmark): the full IPDS
 * pipeline — parse, lower, alias/effect analysis, branch correlation,
 * BAT construction, perfect-hash search, table packing — per
 * benchmark. The paper reports "up to a few seconds" for all ten
 * benchmarks on a 2 GHz Pentium 4; our MiniC workloads compile in
 * microseconds each, so the claim holds with orders of magnitude of
 * slack.
 */

#include <benchmark/benchmark.h>

#include "core/program.h"
#include "frontend/codegen.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

void
BM_CompileWorkload(benchmark::State &state,
                   const std::string &name)
{
    setQuiet(true);
    const Workload &wl = workloadByName(name);
    for (auto _ : state) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        benchmark::DoNotOptimize(prog.stats.numBranches);
    }
}

void
BM_CompileAllTen(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        uint64_t branches = 0;
        for (const auto &wl : allWorkloads()) {
            CompiledProgram prog =
                compileAndAnalyze(wl.source, wl.name);
            branches += prog.stats.numBranches;
        }
        benchmark::DoNotOptimize(branches);
    }
}

void
BM_FrontendOnly(benchmark::State &state, const std::string &name)
{
    setQuiet(true);
    const Workload &wl = workloadByName(name);
    for (auto _ : state) {
        Module mod = compileMiniC(wl.source, wl.name);
        benchmark::DoNotOptimize(mod.functions.size());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_CompileWorkload, telnetd, "telnetd");
BENCHMARK_CAPTURE(BM_CompileWorkload, wu_ftpd, "wu-ftpd");
BENCHMARK_CAPTURE(BM_CompileWorkload, xinetd, "xinetd");
BENCHMARK_CAPTURE(BM_CompileWorkload, crond, "crond");
BENCHMARK_CAPTURE(BM_CompileWorkload, sysklogd, "sysklogd");
BENCHMARK_CAPTURE(BM_CompileWorkload, atftpd, "atftpd");
BENCHMARK_CAPTURE(BM_CompileWorkload, httpd, "httpd");
BENCHMARK_CAPTURE(BM_CompileWorkload, sendmail, "sendmail");
BENCHMARK_CAPTURE(BM_CompileWorkload, sshd, "sshd");
BENCHMARK_CAPTURE(BM_CompileWorkload, portmap, "portmap");
BENCHMARK_CAPTURE(BM_FrontendOnly, sendmail, "sendmail");
BENCHMARK(BM_CompileAllTen);

BENCHMARK_MAIN();
