/**
 * @file
 * §5.4 design-claim ablation: the request queue keeps up with the
 * commit rate and the 2K/1K/32K-bit on-chip table buffers suffice.
 * Sweeps the queue capacity and the BAT stack buffer size and reports
 * the resulting program slowdown and spill traffic.
 */

#include <cstdio>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "timing/cpu.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

TimingStats
simulate(const CompiledProgram &prog,
         const std::vector<std::string> &inputs,
         const TimingConfig &cfg, int sessions)
{
    CpuModel cpu(cfg);
    for (int s = 0; s < sessions; s++) {
        Vm vm(prog.mod);
        vm.setInputs(inputs);
        vm.setRecordTrace(false);
        Detector det(prog);
        if (cfg.ipdsEnabled) {
            det.setRequestSink(cpu.requestSink());
            vm.addObserver(&det);
        }
        vm.addObserver(&cpu);
        vm.run();
    }
    return cpu.stats();
}

} // namespace

int
main()
{
    setQuiet(true);
    const int kSessions = 100;
    // sendmail has the densest BAT lists; telnetd the deepest calls.
    const Workload &wl = workloadByName("sendmail");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    TimingConfig base = table1Config();
    base.ipdsEnabled = false;
    uint64_t baseCycles =
        simulate(prog, wl.benignInputs, base, kSessions).cycles;

    std::printf("=== Ablation: request queue depth (§5.4), workload "
                "sendmail ===\n\n");
    std::printf("%8s %12s %10s %14s %14s\n", "queue", "cycles",
                "degr(%)", "full-events", "stall-cycles");
    for (uint32_t q : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        TimingConfig cfg = table1Config();
        cfg.requestQueueSize = q;
        TimingStats st =
            simulate(prog, wl.benignInputs, cfg, kSessions);
        std::printf("%8u %12llu %10.3f %14llu %14llu\n", q,
                    static_cast<unsigned long long>(st.cycles),
                    100.0 * (double(st.cycles) - double(baseCycles)) /
                        double(baseCycles),
                    static_cast<unsigned long long>(
                        st.engine.queueFullStalls),
                    static_cast<unsigned long long>(
                        st.engine.stallCycles));
    }

    // The server workloads have shallow call chains, so the spill
    // sweep uses a synthetic program with a 24-deep active call chain
    // of branchy functions — the stress case for the table stacks.
    std::string deep;
    deep += "void leaf(int x) { int j; j = 0;"
            " while (j < 3) { if (j < x) { print_int(j); } j = j + 1; } }\n";
    for (int d = 23; d >= 0; d--) {
        std::string callee =
            d == 23 ? "leaf" : strprintf("f%d", d + 1);
        deep += strprintf(
            "void f%d(int x) { int k; k = 0; if (x > 0) { k = 1; }\n"
            "  if (k == 1) { %s(x - 1); } else { %s(x); }\n"
            "  if (k > 1) { print_str(\"corrupt\\n\"); } }\n",
            d, callee.c_str(), callee.c_str());
    }
    deep += "void main() { int r; r = 0; while (r < 20) "
            "{ f0(input_int()); r = r + 1; } }\n";
    std::vector<std::string> deepInputs(20, "7");
    CompiledProgram deepProg = compileAndAnalyze(deep, "deepcalls");

    TimingConfig deepBase = table1Config();
    deepBase.ipdsEnabled = false;
    uint64_t deepBaseCycles =
        simulate(deepProg, deepInputs, deepBase, kSessions).cycles;

    std::printf("\n=== Ablation: on-chip table stack buffers "
                "(24-deep call chain; BSV/BCV/BAT\n    scaled "
                "together at the Table 1 2:1:32 ratio; queue widened "
                "to isolate spills) ===\n\n");
    std::printf("%10s %12s %10s %14s %14s\n", "BAT-bits", "cycles",
                "degr(%)", "spill-events", "spill-bits");
    for (uint32_t bits : {256u, 512u, 1024u, 2048u, 4096u, 8192u,
                          32768u}) {
        TimingConfig cfg = table1Config();
        cfg.batStackBits = bits;
        cfg.bsvStackBits = std::max(64u, bits / 16);
        cfg.bcvStackBits = std::max(32u, bits / 32);
        cfg.requestQueueSize = 64;
        TimingStats st = simulate(deepProg, deepInputs, cfg, kSessions);
        std::printf("%10u %12llu %10.3f %14llu %14llu\n", bits,
                    static_cast<unsigned long long>(st.cycles),
                    100.0 * (double(st.cycles) -
                             double(deepBaseCycles)) /
                        double(deepBaseCycles),
                    static_cast<unsigned long long>(
                        st.engine.spillEvents),
                    static_cast<unsigned long long>(
                        st.engine.spillBits));
    }
    std::printf("\n(claim: at the Table 1 configuration — BAT 32K "
                "bits — the active call chain\n fits on chip and "
                "spill traffic is zero; only pathologically small "
                "buffers pay a\n visible cost. The residual plateau "
                "is engine-throughput-bound: this stress\n case is "
                "100%% protected branchy code with no library time "
                "to hide behind,\n unlike the server workloads of "
                "Figure 9.)\n");
    return 0;
}
