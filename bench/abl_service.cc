/**
 * @file
 * Detection-service ablation: ingest throughput and latency for the
 * multi-tenant server (src/serve/) fed by concurrent clients.
 *
 * Each workload records a multi-session trace once through a
 * CapturePlan, replays it offline for the baseline verdict, then —
 * per trial — stands up an in-process serve::Server and streams the
 * same bytes from N concurrent client threads (one tenant each).
 * The timed window covers connect → stream → Result frame for every
 * client, i.e. the full transport + ingest-detection path. Before
 * anything is reported, every client's alarm digest is checked
 * against the offline replay ("equivalent" in the JSON): throughput
 * is only claimed over streams whose verdicts are bit-identical to
 * Session::ReplayPlan of the same trace.
 *
 * Reported per workload:
 *   ingest_eps      detection events/second across all streams
 *   p50/p99_ingest  per-frame ingest latency (enqueue -> detected),
 *                   microseconds, from the server's own histogram
 *
 * With --tcp the transport is a loopback TCP listener (ephemeral
 * port) and the clients use the versioned hello; each workload then
 * also runs a RECONNECT STORM — one stream killed and resumed
 * between every slice of the trace — reporting storm_eps and the
 * reconnect count. The storm verdict is digest-checked against
 * offline replay like every other stream: resume is only benched
 * where it is bit-identical.
 *
 * Emits machine-readable JSON, default BENCH_service.json.
 *
 * Usage: abl_service [--sessions N] [--clients N] [--trials N]
 *                    [--quick] [--tcp] [--threads N] [--json PATH]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/program.h"
#include "obs/session.h"
#include "replay/format.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/cli.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot read '%s'", path.c_str());
    std::vector<uint8_t> out;
    uint8_t buf[65536];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    std::fclose(f);
    return out;
}

uint64_t
percentile(std::vector<uint64_t> &samples, double p)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

struct Row
{
    std::string name;
    uint64_t events = 0; ///< detection events per stream
    double eps = 0;      ///< aggregate events/sec across streams
    uint64_t p50us = 0, p99us = 0;
    double stormEps = 0;         ///< --tcp: eps through the storm
    uint64_t stormReconnects = 0; ///< --tcp: resumes in the storm
};

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args("abl_service",
                        "Service ingest throughput and latency vs "
                        "offline replay");
    uint32_t sessions = 64;
    uint32_t clients = 4;
    uint32_t trials = 3;
    bool quick = false;
    bool tcp = false;
    unsigned threads = 0;
    std::string jsonPath = "BENCH_service.json";
    args.uintOpt("sessions", &sessions,
                 "recorded sessions per workload trace");
    args.uintOpt("clients", &clients,
                 "concurrent client streams per trial");
    args.uintOpt("trials", &trials, "trials; fastest wins");
    args.boolOpt("quick", &quick,
                 "smoke footprint (4 sessions, 1 trial)");
    args.boolOpt("tcp", &tcp,
                 "loopback TCP transport + reconnect-storm runs");
    args.threadsOpt(&threads);
    args.jsonOpt(&jsonPath);
    if (!args.parse(argc, argv))
        return args.exitCode();
    if (quick) {
        sessions = 4;
        trials = 1;
    }
    if (sessions == 0)
        sessions = 1;
    if (clients == 0)
        clients = 1;
    if (trials == 0)
        trials = 1;

    setQuiet(true);
    std::printf("=== Service ablation: concurrent ingest-time "
                "detection vs offline replay ===\n");
    std::printf("(%u-session trace per workload, %u concurrent "
                "streams, best of %u trials, %s transport)\n\n",
                sessions, clients, trials,
                tcp ? "loopback TCP" : "unix-socket");
    if (tcp)
        std::printf("%-10s %9s %7s %14s %10s %10s %14s %6s\n",
                    "benchmark", "events", "streams", "ingest-e/s",
                    "p50-us", "p99-us", "storm-e/s", "drops");
    else
        std::printf("%-10s %9s %7s %14s %10s %10s\n", "benchmark",
                    "events", "streams", "ingest-e/s", "p50-us",
                    "p99-us");

    std::vector<Row> rows;
    bool mismatch = false;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

        std::string tracePath = "abl_service_" + wl.name + ".trc";
        Session live = Session::builder()
                           .program(prog)
                           .inputs(wl.benignInputs)
                           .sessions(sessions)
                           .plan(CapturePlan(tracePath))
                           .build();
        live.run();
        Session off = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(tracePath))
                          .build();
        off.run();
        const uint64_t wantDigest = serve::alarmDigest(off.alarms());
        const uint64_t events = off.detectorStats().branchesSeen;
        std::vector<uint8_t> trace = readBytes(tracePath);
        std::remove(tracePath.c_str());

        const uint64_t modHash = replay::moduleContentHash(prog.mod);
        std::string sock = "abl_service_" + wl.name + ".sock";
        double best = 1e100;
        std::vector<uint64_t> latencies;
        for (uint32_t trial = 0; trial < trials; trial++) {
            serve::ServerConfig cfg;
            if (tcp) {
                cfg.tcpHost = "127.0.0.1";
                cfg.tcpPort = 0; // ephemeral
            } else {
                cfg.socketPath = sock;
            }
            cfg.threads = threads;
            serve::Server srv(prog, cfg);
            srv.start();
            const uint16_t port = tcp ? srv.boundTcpPort() : 0;

            auto t0 = std::chrono::steady_clock::now();
            std::vector<std::thread> ts;
            std::vector<uint8_t> bad(clients, 0);
            for (uint32_t i = 0; i < clients; i++) {
                ts.emplace_back([&, i] {
                    try {
                        serve::Client c;
                        if (tcp) {
                            c.connectTcp("127.0.0.1", port);
                            c.helloV2("tenant" + std::to_string(i),
                                      modHash);
                        } else {
                            c.connect(sock);
                            c.hello("tenant" + std::to_string(i));
                        }
                        c.sendTraceBytes(trace.data(), trace.size(),
                                         0);
                        serve::StreamResult r = c.end();
                        if (!r.ok || r.alarmDigest != wantDigest)
                            bad[i] = 1;
                    } catch (const FatalError &) {
                        bad[i] = 1;
                    }
                });
            }
            for (auto &t : ts)
                t.join();
            best = std::min(best, seconds(t0));

            srv.waitForStreams(clients);
            srv.stopAndJoin();
            for (uint8_t b : bad)
                if (b)
                    mismatch = true;
            if (srv.streamsFailed() != 0)
                mismatch = true;
            std::vector<uint64_t> ls =
                srv.ingestLatencySamplesMicros();
            latencies.insert(latencies.end(), ls.begin(), ls.end());
        }

        Row row;
        row.name = wl.name;
        row.events = events;
        row.eps = best > 0
                      ? double(events) * double(clients) / best
                      : 0;
        row.p50us = percentile(latencies, 0.50);
        row.p99us = percentile(latencies, 0.99);

        if (tcp) {
            // Reconnect storm: the same trace through one stream
            // killed between every slice — the cost of resume
            // (redial, re-feed, server-side dedup) under fire.
            serve::ServerConfig cfg;
            cfg.tcpHost = "127.0.0.1";
            cfg.threads = threads;
            serve::Server srv(prog, cfg);
            srv.start();
            auto t0 = std::chrono::steady_clock::now();
            try {
                serve::Client c;
                c.connectTcp("127.0.0.1", srv.boundTcpPort());
                c.helloV2("storm", modHash);
                const size_t slice = trace.size() / 16 + 1;
                for (size_t off = 0; off < trace.size();
                     off += slice) {
                    c.sendTraceBytes(trace.data() + off,
                                     std::min(slice,
                                              trace.size() - off),
                                     0);
                    c.abortConnection();
                }
                serve::StreamResult r = c.end();
                if (!r.ok || r.alarmDigest != wantDigest)
                    mismatch = true;
                row.stormReconnects = c.reconnects();
            } catch (const FatalError &) {
                mismatch = true;
            }
            double elapsed = seconds(t0);
            srv.stopAndJoin();
            if (srv.streamsFailed() != 0)
                mismatch = true;
            row.stormEps =
                elapsed > 0 ? double(events) / elapsed : 0;
        }

        if (tcp)
            std::printf(
                "%-10s %9llu %7u %14.0f %10llu %10llu %14.0f %6llu\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.events), clients,
                row.eps, static_cast<unsigned long long>(row.p50us),
                static_cast<unsigned long long>(row.p99us),
                row.stormEps,
                static_cast<unsigned long long>(row.stormReconnects));
        else
            std::printf("%-10s %9llu %7u %14.0f %10llu %10llu\n",
                        row.name.c_str(),
                        static_cast<unsigned long long>(row.events),
                        clients, row.eps,
                        static_cast<unsigned long long>(row.p50us),
                        static_cast<unsigned long long>(row.p99us));
        rows.push_back(std::move(row));
    }

    if (mismatch)
        std::fprintf(stderr, "MISMATCH: at least one stream verdict "
                             "diverged from offline replay\n");

    FILE *js = std::fopen(jsonPath.c_str(), "w");
    if (!js) {
        std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
        return 1;
    }
    std::fprintf(js,
                 "{\n  \"bench\": \"abl_service\",\n"
                 "  \"sessions\": %u,\n  \"clients\": %u,\n"
                 "  \"transport\": \"%s\",\n"
                 "  \"workloads\": [\n",
                 sessions, clients, tcp ? "tcp" : "unix");
    for (size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::fprintf(
            js,
            "    {\"name\": \"%s\", \"events\": %llu, "
            "\"ingest_eps\": %.0f, \"p50_ingest_us\": %llu, "
            "\"p99_ingest_us\": %llu",
            r.name.c_str(),
            static_cast<unsigned long long>(r.events), r.eps,
            static_cast<unsigned long long>(r.p50us),
            static_cast<unsigned long long>(r.p99us));
        if (tcp)
            std::fprintf(
                js,
                ", \"storm_eps\": %.0f, \"storm_reconnects\": %llu",
                r.stormEps,
                static_cast<unsigned long long>(r.stormReconnects));
        std::fprintf(js, "}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(js, "  ],\n  \"equivalent\": %s\n}\n",
                 mismatch ? "false" : "true");
    bool writeFailed = std::ferror(js) != 0;
    writeFailed |= std::fclose(js) != 0;
    if (writeFailed) {
        std::fprintf(stderr, "write to %s failed\n",
                     jsonPath.c_str());
        return 1;
    }
    std::printf("\nwrote %s\n", jsonPath.c_str());
    return mismatch ? 1 : 0;
}
