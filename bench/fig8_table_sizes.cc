/**
 * @file
 * Figure 8 reproduction: "Average sizes (in bits) of BSV, BCV and BAT
 * tables" per function, for each benchmark and on average.
 *
 * Paper averages: BSV 34, BCV 17, BAT 393 bits per function.
 */

#include <cstdio>

#include "core/program.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main()
{
    setQuiet(true);
    std::printf("=== Figure 8: average table sizes in bits per "
                "function ===\n\n");
    std::printf("%-10s %6s %8s %8s %8s %8s %10s\n", "benchmark",
                "funcs", "branches", "BSV", "BCV", "BAT",
                "hash-tries");

    double sumBsv = 0, sumBcv = 0, sumBat = 0;
    uint64_t funcs = 0, bsvBits = 0, bcvBits = 0, batBits = 0;

    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        const auto &st = prog.stats;
        std::printf("%-10s %6u %8u %8.1f %8.1f %8.1f %10.1f\n",
                    wl.name.c_str(), st.numFunctions, st.numBranches,
                    st.avgBsvBits(), st.avgBcvBits(), st.avgBatBits(),
                    st.numFunctions
                        ? double(st.totalHashTries) / st.numFunctions
                        : 0.0);
        sumBsv += st.avgBsvBits();
        sumBcv += st.avgBcvBits();
        sumBat += st.avgBatBits();
        funcs += st.numFunctions;
        bsvBits += st.totalBsvBits;
        bcvBits += st.totalBcvBits;
        batBits += st.totalBatBits;
    }

    size_t n = allWorkloads().size();
    std::printf("%-10s %6llu %8s %8.1f %8.1f %8.1f\n", "average",
                static_cast<unsigned long long>(funcs), "-",
                sumBsv / n, sumBcv / n, sumBat / n);
    std::printf("%-10s %6s %8s %8.1f %8.1f %8.1f   "
                "(weighted by function)\n", "", "", "",
                funcs ? double(bsvBits) / funcs : 0.0,
                funcs ? double(bcvBits) / funcs : 0.0,
                funcs ? double(batBits) / funcs : 0.0);
    std::printf("\npaper averages: BSV 34   BCV 17   BAT 393\n");
    std::printf("\n(shape target: BSV and BCV fit in a couple of "
                "machine words; the BAT is\n roughly an order of "
                "magnitude larger)\n");
    return 0;
}
