/**
 * @file
 * Analysis-feature ablation (DESIGN.md §5): how much detection each
 * correlation mechanism contributes. Runs the Figure 7 campaign with
 * individual features disabled:
 *
 *   full        — everything on
 *   -affine     — no +/-const chains (paper Figure 3.c disabled)
 *   -purecall   — no strncmp-style virtual locations (Figure 1 class)
 *   -conststore — stores of constants establish no facts
 *   -memconst   — no SUIF-style memory constant propagation
 *   minimal     — only plain load-compare range correlation
 */

#include <cstdio>

#include "attack/campaign.h"
#include "core/program.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

struct Config
{
    const char *name;
    CorrOptions opts;
};

/** Aggregate campaign over all ten workloads for one feature set. */
void
runAll(const Config &cfg)
{
    uint32_t attacks = 0, cf = 0, det = 0, checkable = 0, branches = 0;
    bool fp = false;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name, cfg.opts);
        CampaignConfig cc;
        cc.numAttacks = 60;
        cc.corr = cfg.opts;
        CampaignResult res = runCampaign(prog, wl.benignInputs, cc);
        fp |= res.falsePositive;
        attacks += res.attacks();
        cf += res.numCfChanged();
        det += res.numDetected();
        checkable += prog.stats.numCheckable;
        branches += prog.stats.numBranches;
    }
    std::printf("%-12s %10.1f%% %10.1f%% %12.1f%% %10.1f%% %6s\n",
                cfg.name, 100.0 * checkable / branches,
                100.0 * cf / attacks, 100.0 * det / attacks,
                cf ? 100.0 * det / cf : 0.0, fp ? "YES!" : "0");
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: correlation features "
                "(60 attacks x 10 workloads each) ===\n\n");
    std::printf("%-12s %11s %11s %13s %11s %6s\n", "config",
                "checkable", "cf-changed", "detected", "det-of-cf",
                "FP");

    CorrOptions full;
    Config configs[] = {
        {"full", full},
        {"-affine", full},
        {"-purecall", full},
        {"-conststore", full},
        {"-memconst", full},
        {"-interproc", full},
        {"minimal", full},
    };
    configs[1].opts.affineChains = false;
    configs[2].opts.pureCalls = false;
    configs[3].opts.constStoreFacts = false;
    configs[4].opts.memConstProp = false;
    configs[5].opts.interprocArgs = false;
    configs[6].opts.affineChains = false;
    configs[6].opts.pureCalls = false;
    configs[6].opts.constStoreFacts = false;
    configs[6].opts.memConstProp = false;
    configs[6].opts.interprocArgs = false;

    for (const auto &c : configs)
        runAll(c);

    std::printf("\n(every row must report zero false positives: each "
                "feature only ever ADDS\n sound correlations)\n");
    return 0;
}
