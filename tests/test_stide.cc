/**
 * @file
 * Baseline (stide) unit tests: n-gram database semantics, trace
 * capture, and the granularity properties the comparison bench
 * relies on.
 */

#include <gtest/gtest.h>

#include "baseline/stide.h"
#include "core/program.h"
#include "support/diag.h"

namespace ipds {
namespace {

TEST(Stide, LearnsAndMatches)
{
    StideModel m(3);
    m.train({1, 2, 3, 4, 5});
    EXPECT_EQ(m.patterns(), 3u); // 123, 234, 345
    EXPECT_EQ(m.anomalies({1, 2, 3, 4, 5}), 0u);
    EXPECT_EQ(m.anomalies({2, 3, 4}), 0u);
    EXPECT_FALSE(m.flags({1, 2, 3}));
}

TEST(Stide, FlagsNovelWindows)
{
    StideModel m(3);
    m.train({1, 2, 3, 4});
    EXPECT_TRUE(m.flags({1, 2, 4}));
    // Windows of {1,2,3,9,4}: (1,2,3) known; (2,3,9) and (3,9,4) novel.
    EXPECT_EQ(m.anomalies({1, 2, 3, 9, 4}), 2u);
    EXPECT_EQ(m.anomalies({1, 2, 3, 9}), 1u);
}

TEST(Stide, ShortTraces)
{
    StideModel m(6);
    m.train({7, 8});
    EXPECT_FALSE(m.flags({7, 8}));
    EXPECT_TRUE(m.flags({8, 7}));
    EXPECT_TRUE(m.flags({}));
    m.train({});
    EXPECT_FALSE(m.flags({}));
}

TEST(Stide, ZeroWindowPanics)
{
    EXPECT_THROW(StideModel(0), PanicError);
}

TEST(Stide, TraceCaptureRecordsBuiltinsOnly)
{
    CompiledProgram prog = compileAndAnalyze(R"(
int add(int a, int b) { return a + b; }
void main() {
    int x;
    x = input_int();
    if (x < 5) { print_str("lo"); } else { print_int(add(x, 1)); }
}
)", "t");
    SyscallTrace st;
    Vm vm(prog.mod);
    vm.setInputs({"2"});
    vm.addObserver(&st);
    vm.run();
    // input_int then print_str; the user-function call is invisible.
    ASSERT_EQ(st.sequence().size(), 2u);
    EXPECT_EQ(st.sequence()[0],
              static_cast<uint16_t>(Builtin::InputInt));
    EXPECT_EQ(st.sequence()[1],
              static_cast<uint16_t>(Builtin::PrintStr));
}

TEST(Stide, GranularityGapIsReal)
{
    // Two runs with DIFFERENT control flow but the SAME call
    // sequence: a call-sequence model cannot distinguish them, while
    // the branch trace differs. This is the paper's core argument.
    CompiledProgram prog = compileAndAnalyze(R"(
void main() {
    int x;
    x = input_int();
    if (x < 5) {
        print_str("low path");
    } else {
        print_str("high path");
    }
}
)", "t");
    auto runWith = [&](const char *in) {
        SyscallTrace st;
        Vm vm(prog.mod);
        vm.setInputs({in});
        vm.addObserver(&st);
        RunResult r = vm.run();
        return std::make_pair(st.sequence(), r.branchTrace);
    };
    auto [callsA, branchesA] = runWith("1");
    auto [callsB, branchesB] = runWith("9");
    EXPECT_EQ(callsA, callsB);          // identical to stide
    EXPECT_FALSE(branchesA == branchesB); // distinct to IPDS
}

} // namespace
} // namespace ipds
