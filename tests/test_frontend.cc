/**
 * @file
 * Frontend unit tests: lexer token streams, parser AST shapes and
 * error reporting, and code generation checked structurally on the IR.
 */

#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "support/diag.h"

namespace ipds {
namespace {

// ----------------------------------------------------------------- lexer

TEST(Lexer, PunctuationAndOperators)
{
    auto toks = tokenize("(){}[],; = + - * / % & | ^ << >> && || ! "
                         "== != < <= > >=");
    std::vector<Tok> kinds;
    for (const auto &t : toks)
        kinds.push_back(t.kind);
    std::vector<Tok> want = {
        Tok::LParen, Tok::RParen, Tok::LBrace, Tok::RBrace,
        Tok::LBracket, Tok::RBracket, Tok::Comma, Tok::Semi,
        Tok::Assign, Tok::Plus, Tok::Minus, Tok::Star, Tok::Slash,
        Tok::Percent, Tok::Amp, Tok::Pipe, Tok::Caret, Tok::Shl,
        Tok::Shr, Tok::AmpAmp, Tok::PipePipe, Tok::Bang, Tok::Eq,
        Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::End};
    EXPECT_EQ(kinds, want);
}

TEST(Lexer, KeywordsVersusIdentifiers)
{
    auto toks = tokenize("int interval if iffy while whileX");
    EXPECT_EQ(toks[0].kind, Tok::KwInt);
    EXPECT_EQ(toks[1].kind, Tok::Ident);
    EXPECT_EQ(toks[1].text, "interval");
    EXPECT_EQ(toks[2].kind, Tok::KwIf);
    EXPECT_EQ(toks[3].kind, Tok::Ident);
    EXPECT_EQ(toks[4].kind, Tok::KwWhile);
    EXPECT_EQ(toks[5].kind, Tok::Ident);
}

TEST(Lexer, LiteralsAndEscapes)
{
    auto toks = tokenize(R"(123 'a' '\n' '\0' "hi\tthere\\")");
    EXPECT_EQ(toks[0].kind, Tok::IntLit);
    EXPECT_EQ(toks[0].value, 123);
    EXPECT_EQ(toks[1].value, 'a');
    EXPECT_EQ(toks[2].value, '\n');
    EXPECT_EQ(toks[3].value, 0);
    EXPECT_EQ(toks[4].kind, Tok::StrLit);
    EXPECT_EQ(toks[4].text, "hi\tthere\\");
}

TEST(Lexer, CommentsAndLineNumbers)
{
    auto toks = tokenize("a // line comment\nb /* block\nspans */ c");
    ASSERT_EQ(toks.size(), 4u); // a b c <eof>
    EXPECT_EQ(toks[0].line, 1u);
    EXPECT_EQ(toks[1].line, 2u);
    EXPECT_EQ(toks[2].line, 3u);
}

TEST(Lexer, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(tokenize("a\n@"), FatalError);
    EXPECT_THROW(tokenize("\"unterminated"), FatalError);
    EXPECT_THROW(tokenize("'ab'"), FatalError);
    EXPECT_THROW(tokenize("/* never closed"), FatalError);
    try {
        tokenize("ok\nok\n$");
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------- parser

TEST(Parser, FunctionAndGlobalShapes)
{
    Program p = parseProgram(R"(
int counter;
char name[32] = "boot";
int add(int a, int b) { return a + b; }
void main() { }
)");
    ASSERT_EQ(p.globals.size(), 2u);
    EXPECT_EQ(p.globals[0].name, "counter");
    EXPECT_EQ(p.globals[1].arrayLen, 32u);
    EXPECT_EQ(p.globals[1].initStr, "boot");
    ASSERT_EQ(p.functions.size(), 2u);
    EXPECT_EQ(p.functions[0].params.size(), 2u);
    EXPECT_EQ(p.functions[0].retTy, MiniTy::Int);
    EXPECT_EQ(p.functions[1].retTy, MiniTy::Void);
}

TEST(Parser, PrecedenceShape)
{
    // 1 + 2 * 3 == 7 && x < 4  parses as ((1+(2*3)) == 7) && (x < 4)
    Program p = parseProgram(
        "void main() { int x; x = 0; if (1 + 2 * 3 == 7 && x < 4) "
        "{ x = 1; } }");
    const Stmt &blk = *p.functions[0].body;
    // body: [decl] [assign] [if]
    const Stmt &ifs = *blk.body[2];
    ASSERT_EQ(ifs.kind, StmtKind::If);
    const Expr &cond = *ifs.cond;
    ASSERT_EQ(cond.kind, ExprKind::Binary);
    EXPECT_EQ(cond.binOp, BinKind::LogAnd);
    ASSERT_EQ(cond.lhs->kind, ExprKind::Binary);
    EXPECT_EQ(cond.lhs->binOp, BinKind::Eq);
    const Expr &sum = *cond.lhs->lhs;
    EXPECT_EQ(sum.binOp, BinKind::Add);
    EXPECT_EQ(sum.rhs->binOp, BinKind::Mul);
}

TEST(Parser, ForLoopDesugarsParts)
{
    Program p = parseProgram(
        "void main() { int i; for (i = 0; i < 4; i = i + 1) { } }");
    const Stmt &blk = *p.functions[0].body;
    const Stmt &f = *blk.body[1];
    ASSERT_EQ(f.kind, StmtKind::For);
    EXPECT_NE(f.init, nullptr);
    EXPECT_NE(f.cond, nullptr);
    EXPECT_NE(f.step, nullptr);
}

TEST(Parser, DeclWithInitializerDesugars)
{
    Program p = parseProgram("void main() { int x = 5; }");
    const Stmt &blk = *p.functions[0].body;
    ASSERT_EQ(blk.body.size(), 1u);
    const Stmt &wrapped = *blk.body[0];
    ASSERT_EQ(wrapped.kind, StmtKind::Block);
    ASSERT_EQ(wrapped.body.size(), 2u);
    EXPECT_EQ(wrapped.body[0]->kind, StmtKind::Decl);
    EXPECT_EQ(wrapped.body[1]->kind, StmtKind::Assign);
}

TEST(Parser, SyntaxErrors)
{
    EXPECT_THROW(parseProgram("void main() { if }"), FatalError);
    EXPECT_THROW(parseProgram("void main() { x = ; }"), FatalError);
    EXPECT_THROW(parseProgram("void main() { 1 = 2; }"), FatalError);
    EXPECT_THROW(parseProgram("int g["), FatalError);
    EXPECT_THROW(parseProgram("int g[0];"), FatalError);
    EXPECT_THROW(parseProgram("void v; "), FatalError);
}

// --------------------------------------------------------------- codegen

TEST(Codegen, RequiresMain)
{
    EXPECT_THROW(compileMiniC("void notmain() { }", "t"), FatalError);
}

TEST(Codegen, SemanticErrors)
{
    EXPECT_THROW(compileMiniC("void main() { x = 1; }", "t"),
                 FatalError);
    EXPECT_THROW(compileMiniC("void main() { int x; int x; }", "t"),
                 FatalError);
    EXPECT_THROW(
        compileMiniC("void main() { break; }", "t"), FatalError);
    EXPECT_THROW(
        compileMiniC("void main() { int x; x = nosuch(); }", "t"),
        FatalError);
    EXPECT_THROW(
        compileMiniC("void strcpy(int a) { }", "t"), FatalError);
    // A value function may fall off its end; it returns 0 (like C's
    // implicit int behaviour, but defined). Must NOT throw.
    EXPECT_NO_THROW(
        compileMiniC("int f() { } void main() { f(); }", "t"));
    // arity mismatch on builtin
    EXPECT_THROW(
        compileMiniC("void main() { print_str(); }", "t"),
        FatalError);
}

TEST(Codegen, ScalarAccessIsDirect)
{
    Module m = compileMiniC(
        "void main() { int x; x = 3; if (x < 5) { x = 4; } }", "t");
    const Function &fn = m.functions[m.entry];
    int directLoads = 0, directStores = 0, indirect = 0;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op == Op::Load)
                directLoads++;
            if (in.op == Op::Store)
                directStores++;
            if (in.op == Op::LoadInd || in.op == Op::StoreInd)
                indirect++;
        }
    }
    EXPECT_EQ(directLoads, 1);
    EXPECT_EQ(directStores, 2);
    EXPECT_EQ(indirect, 0);
}

TEST(Codegen, ConstantArrayIndexIsDirect)
{
    Module m = compileMiniC(
        "void main() { int a[4]; a[2] = 9; if (a[2] > 0) { } }", "t");
    const Function &fn = m.functions[m.entry];
    bool sawDirectStoreAtOffset16 = false;
    bool sawDirectLoadAtOffset16 = false;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op == Op::Store && in.imm == 16)
                sawDirectStoreAtOffset16 = true;
            if (in.op == Op::Load && in.imm == 16)
                sawDirectLoadAtOffset16 = true;
        }
    }
    EXPECT_TRUE(sawDirectStoreAtOffset16);
    EXPECT_TRUE(sawDirectLoadAtOffset16);
    EXPECT_THROW(
        compileMiniC("void main() { int a[4]; a[4] = 1; }", "t"),
        FatalError); // constant index out of bounds
}

TEST(Codegen, VariableIndexIsIndirect)
{
    Module m = compileMiniC(
        "void main() { int a[4]; int i; i = 1; a[i] = 2; }", "t");
    const Function &fn = m.functions[m.entry];
    bool sawIndirect = false;
    for (const auto &bb : fn.blocks)
        for (const auto &in : bb.insts)
            sawIndirect |= in.op == Op::StoreInd;
    EXPECT_TRUE(sawIndirect);
}

TEST(Codegen, ParamsAreSpilledToMemory)
{
    Module m = compileMiniC(
        "int f(int a, int b) { return a + b; } "
        "void main() { f(1, 2); }", "t");
    const Function &f = m.functions[m.findFunction("f")];
    EXPECT_EQ(f.locals.size(), 2u);
    // Entry block starts with getarg/store pairs.
    const auto &entry = f.blocks[0].insts;
    EXPECT_EQ(entry[0].op, Op::GetArg);
    EXPECT_EQ(entry[1].op, Op::Store);
    EXPECT_EQ(entry[2].op, Op::GetArg);
    EXPECT_EQ(entry[3].op, Op::Store);
}

TEST(Codegen, ShortCircuitBecomesControlFlow)
{
    Module m = compileMiniC(
        "void main() { int x; int y; x = 1; y = 2; "
        "if (x < 3 && y < 4) { x = 9; } }", "t");
    const Function &fn = m.functions[m.entry];
    int branches = 0;
    for (const auto &bb : fn.blocks)
        branches += bb.terminator().isCondBranch() ? 1 : 0;
    EXPECT_EQ(branches, 2); // one per conjunct, no materialized value
}

TEST(Codegen, StringLiteralsInternedOnce)
{
    Module m = compileMiniC(
        "void main() { print_str(\"x\"); print_str(\"x\"); "
        "print_str(\"y\"); }", "t");
    int constObjs = 0;
    for (const auto &obj : m.objects)
        constObjs += obj.kind == ObjectKind::Const ? 1 : 0;
    EXPECT_EQ(constObjs, 2);
}

TEST(Codegen, VerifierAcceptsAllWorkloadModules)
{
    // compileMiniC runs the verifier internally; this asserts it stays
    // green for a more complex program with every statement kind.
    const char *src = R"(
int g = 3;
char banner[8] = "ok";
int helper(int *p, char *s) {
    *p = *p + 1;
    return strlen(s);
}
void main() {
    int x;
    int arr[5];
    char buf[16];
    int i;
    x = 0;
    for (i = 0; i < 5; i = i + 1) {
        arr[i] = i * 2;
        if (arr[i] > 6) { break; }
        if (arr[i] == 2) { continue; }
        x = x + arr[i];
    }
    while (x > 0 || g > 100) {
        x = x - 1;
    }
    strcpy(buf, banner);
    x = helper(&x, buf) + g;
    print_int(x);
}
)";
    Module m = compileMiniC(src, "kitchen-sink");
    EXPECT_GE(m.functions.size(), 2u);
}

} // namespace
} // namespace ipds
