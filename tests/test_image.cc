/**
 * @file
 * Program-image tests (§5.4): the function information table plus
 * packed tables round-trip byte-exactly into working runtime tables,
 * and the loader rejects malformed blobs rather than crashing.
 */

#include <gtest/gtest.h>

#include "core/image.h"
#include "support/rng.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

TEST(Image, RoundTripsEveryWorkload)
{
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        std::vector<uint8_t> blob = buildImage(prog);
        ProgramImage img = loadImage(blob);

        ASSERT_EQ(img.functions.size(), prog.funcs.size()) << wl.name;
        for (size_t i = 0; i < prog.funcs.size(); i++) {
            const FuncTables &t = prog.funcs[i].tables;
            const FuncTables &u = img.tables[i];
            EXPECT_EQ(img.functions[i].entryPc,
                      prog.mod.functions[i].entryPc);
            EXPECT_EQ(u.hash.log2Space, t.hash.log2Space);
            EXPECT_EQ(u.bcv, t.bcv);
            ASSERT_EQ(u.onTaken.size(), t.onTaken.size());
            for (size_t s = 0; s < t.onTaken.size(); s++) {
                ASSERT_EQ(u.onTaken[s].size(), t.onTaken[s].size());
                for (size_t k = 0; k < t.onTaken[s].size(); k++) {
                    EXPECT_EQ(u.onTaken[s][k].slot,
                              t.onTaken[s][k].slot);
                    EXPECT_EQ(u.onTaken[s][k].act,
                              t.onTaken[s][k].act);
                }
            }
        }
    }
}

TEST(Image, LoadedTablesDriveTheDetectorIdentically)
{
    const Workload &wl = workloadByName("httpd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::vector<uint8_t> blob = buildImage(prog);
    ProgramImage img = loadImage(blob);

    // Substitute the loaded tables into a second program instance and
    // check both benign cleanliness and attack detection.
    CompiledProgram reprog = compileAndAnalyze(wl.source, wl.name);
    for (size_t i = 0; i < reprog.funcs.size(); i++)
        reprog.funcs[i].tables = img.tables[i];

    {
        Vm vm(reprog.mod);
        vm.setInputs(wl.benignInputs);
        Detector det(reprog);
        vm.addObserver(&det);
        vm.run();
        EXPECT_FALSE(det.alarmed());
    }
    {
        Vm vm(reprog.mod);
        vm.setInputs(wl.benignInputs);
        Detector det(reprog);
        vm.addObserver(&det);
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 4;
        spec.addr = vm.entryLocalAddr("maintenance");
        spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
        vm.setTamper(spec);
        vm.run();
        EXPECT_TRUE(det.alarmed());
    }
}

TEST(Image, LoaderRejectsGarbage)
{
    EXPECT_THROW(loadImage({}), FatalError);
    EXPECT_THROW(loadImage({1, 2, 3, 4, 5, 6, 7, 8}), FatalError);

    // Valid header, truncated body.
    CompiledProgram prog = compileAndAnalyze(
        "void main() { int x; x = input_int(); "
        "if (x < 3) { print_int(x); } }", "t");
    std::vector<uint8_t> blob = buildImage(prog);
    std::vector<uint8_t> cut(blob.begin(),
                             blob.begin() + blob.size() / 2);
    EXPECT_THROW(loadImage(cut), FatalError);

    // Corrupt the magic.
    std::vector<uint8_t> bad = blob;
    bad[0] ^= 0xff;
    EXPECT_THROW(loadImage(bad), FatalError);
}

/**
 * Property: no corruption of a valid image can crash the loader — it
 * either loads (harmlessly different tables) or throws FatalError.
 * On the paper's hardware the image lives in protected memory, but a
 * robust loader must still never trust its contents.
 */
class ImageCorruptionFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ImageCorruptionFuzz, LoaderNeverCrashes)
{
    CompiledProgram prog = compileAndAnalyze(
        workloadByName("sendmail").source, "s");
    std::vector<uint8_t> blob = buildImage(prog);

    Rng rng(GetParam());
    for (int trial = 0; trial < 50; trial++) {
        std::vector<uint8_t> bad = blob;
        int flips = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < flips; i++) {
            size_t pos = rng.below(bad.size());
            bad[pos] ^= static_cast<uint8_t>(1u << rng.below(8));
        }
        if (rng.chance(0.3))
            bad.resize(rng.below(bad.size() + 1)); // truncate too
        try {
            ProgramImage img = loadImage(bad);
            // Loaded: structural invariants must still hold.
            for (const auto &t : img.tables) {
                EXPECT_EQ(t.bcv.size(), t.hash.space());
                EXPECT_EQ(t.onTaken.size(), t.hash.space());
            }
        } catch (const FatalError &) {
            // Rejected cleanly: also fine.
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageCorruptionFuzz,
                         ::testing::Range<uint64_t>(1, 7));

TEST(Image, SizesMatchFigure8Accounting)
{
    const Workload &wl = workloadByName("sendmail");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::vector<uint8_t> blob = buildImage(prog);
    // The blob must be in the same ballpark as the bit accounting
    // (packing adds parse preambles and byte padding).
    uint64_t accountedBits = prog.stats.totalBcvBits +
        prog.stats.totalBatBits;
    EXPECT_GT(blob.size() * 8, accountedBits);
    EXPECT_LT(blob.size() * 8, accountedBits * 3 + 4096);
}

} // namespace
} // namespace ipds
