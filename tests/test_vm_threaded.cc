/**
 * @file
 * Engine differential suite (ctest label `vm-diff`): the threaded
 * dispatch engine — per-event and batched delivery — must be
 * observationally identical to the golden-reference switch
 * interpreter. Every workload of the paper's suite plus the fuzz seed
 * corpus runs through all three configurations and we compare:
 *
 *  - the complete RunResult (exit kind/code, output, step count,
 *    input events, branch trace, trap message, tamper record);
 *  - the full observer event stream (enter/exit/branch/inst with
 *    effective addresses), captured by a recording observer;
 *  - detector statistics and alarm lists (benign and tampered runs);
 *  - cycle-accurate timing statistics, which pins down the
 *    seq-stamped request-ring drain that keeps batched delivery
 *    bit-identical to per-event delivery.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "timing/cpu.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

#include "program_gen.h"

namespace ipds {
namespace {

using testutil::ProgramGen;

/** One observer callback, flattened for equality comparison. */
struct RecEvent
{
    enum Kind : uint8_t { Enter, Exit, Branch, Inst } kind;
    FuncId func = kNoFunc;  ///< Enter/Exit/Branch
    uint64_t pc = 0;        ///< Branch/Inst
    uint64_t memAddr = 0;   ///< Inst
    uint32_t memSize = 0;   ///< Inst
    bool flag = false;      ///< Branch: taken; Inst: isLoad

    bool
    operator==(const RecEvent &o) const
    {
        return kind == o.kind && func == o.func && pc == o.pc &&
            memAddr == o.memAddr && memSize == o.memSize &&
            flag == o.flag;
    }
};

/** Records every per-event callback (batches arrive via the default
 *  onBatch replay, so batched delivery is compared post-expansion). */
class Recorder final : public ExecObserver
{
  public:
    std::vector<RecEvent> events;

    void
    onFunctionEnter(FuncId f) override
    {
        events.push_back({RecEvent::Enter, f, 0, 0, 0, false});
    }

    void
    onFunctionExit(FuncId f) override
    {
        events.push_back({RecEvent::Exit, f, 0, 0, 0, false});
    }

    void
    onBranch(FuncId f, uint64_t pc, bool taken) override
    {
        events.push_back({RecEvent::Branch, f, pc, 0, 0, taken});
    }

    void
    onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
           bool is_load) override
    {
        events.push_back({RecEvent::Inst, kNoFunc, in.pc, mem_addr,
                          mem_size, is_load});
    }
};

/** One engine configuration under test. */
struct EngineCfg
{
    const char *name;
    VmEngine engine;
    bool batched;
};

constexpr EngineCfg kConfigs[] = {
    {"switch", VmEngine::Switch, false},
    {"threaded", VmEngine::Threaded, false},
    {"threaded+batched", VmEngine::Threaded, true},
};

/** Everything one run produces that must match across engines. */
struct RunCapture
{
    RunResult res;
    std::vector<RecEvent> events;
    DetectorStats det;
    std::vector<Alarm> alarms;
    VmStats vm;
};

RunCapture
runOne(const CompiledProgram &prog,
       const std::vector<std::string> &inputs, const EngineCfg &cfg,
       uint64_t fuel = 50'000'000,
       const TamperSpec *tamper = nullptr)
{
    RunCapture cap;
    Vm vm(prog.mod);
    vm.setInputs(inputs);
    vm.setFuel(fuel);
    vm.setEngine(cfg.engine);
    vm.setBatchedDelivery(cfg.batched);
    if (tamper)
        vm.setTamper(*tamper);
    Detector det(prog);
    Recorder rec;
    vm.addObserver(&det);
    vm.addObserver(&rec);
    cap.res = vm.run();
    cap.events = std::move(rec.events);
    cap.det = det.stats();
    cap.alarms = det.alarms();
    cap.vm = vm.vmStats();
    return cap;
}

void
expectSameResult(const RunResult &a, const RunResult &b,
                 const char *what)
{
    EXPECT_EQ(a.exit, b.exit) << what;
    EXPECT_EQ(a.exitCode, b.exitCode) << what;
    EXPECT_EQ(a.output, b.output) << what;
    EXPECT_EQ(a.steps, b.steps) << what;
    EXPECT_EQ(a.inputEventCount, b.inputEventCount) << what;
    EXPECT_EQ(a.inputEventPcs, b.inputEventPcs) << what;
    EXPECT_EQ(a.branchTrace, b.branchTrace) << what;
    EXPECT_EQ(a.trapMessage, b.trapMessage) << what;
    EXPECT_EQ(a.tamper.fired, b.tamper.fired) << what;
    EXPECT_EQ(a.tamper.addr, b.tamper.addr) << what;
    EXPECT_EQ(a.tamper.oldBytes, b.tamper.oldBytes) << what;
    EXPECT_EQ(a.tamper.newBytes, b.tamper.newBytes) << what;
}

void
expectSameDetector(const RunCapture &a, const RunCapture &b,
                   const char *what)
{
    EXPECT_EQ(a.det.branchesSeen, b.det.branchesSeen) << what;
    EXPECT_EQ(a.det.checksEnqueued, b.det.checksEnqueued) << what;
    EXPECT_EQ(a.det.updatesApplied, b.det.updatesApplied) << what;
    EXPECT_EQ(a.det.actionsApplied, b.det.actionsApplied) << what;
    EXPECT_EQ(a.det.framesPushed, b.det.framesPushed) << what;
    EXPECT_EQ(a.det.maxStackDepth, b.det.maxStackDepth) << what;
    ASSERT_EQ(a.alarms.size(), b.alarms.size()) << what;
    for (size_t i = 0; i < a.alarms.size(); i++) {
        EXPECT_EQ(a.alarms[i].func, b.alarms[i].func) << what;
        EXPECT_EQ(a.alarms[i].pc, b.alarms[i].pc) << what;
        EXPECT_EQ(a.alarms[i].actualTaken, b.alarms[i].actualTaken)
            << what;
        EXPECT_EQ(a.alarms[i].branchIndex, b.alarms[i].branchIndex)
            << what;
    }
}

void
expectAllEqual(const CompiledProgram &prog,
               const std::vector<std::string> &inputs,
               uint64_t fuel = 50'000'000,
               const TamperSpec *tamper = nullptr)
{
    RunCapture golden = runOne(prog, inputs, kConfigs[0], fuel,
                               tamper);
    for (size_t c = 1; c < std::size(kConfigs); c++) {
        RunCapture got = runOne(prog, inputs, kConfigs[c], fuel,
                                tamper);
        const char *what = kConfigs[c].name;
        expectSameResult(golden.res, got.res, what);
        expectSameDetector(golden, got, what);
        ASSERT_EQ(golden.events.size(), got.events.size()) << what;
        for (size_t i = 0; i < golden.events.size(); i++)
            ASSERT_TRUE(golden.events[i] == got.events[i])
                << what << ": event stream diverges at index " << i;
        // Instruction counts agree regardless of engine; batching is
        // a delivery detail, never an execution one.
        EXPECT_EQ(golden.vm.instructions, got.vm.instructions)
            << what;
    }
}

// ---------------------------------------------------------------------
// Workload corpus: the paper's ten servers, benign and tampered.
// ---------------------------------------------------------------------

class WorkloadDiff : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &wl() const { return workloadByName(GetParam()); }
};

TEST_P(WorkloadDiff, BenignRunIdentical)
{
    CompiledProgram prog = compileAndAnalyze(wl().source, wl().name);
    expectAllEqual(prog, wl().benignInputs);
}

TEST_P(WorkloadDiff, TamperedRunIdentical)
{
    CompiledProgram prog = compileAndAnalyze(wl().source, wl().name);
    // Several distinct tamper points: detector verdicts (alarm or
    // not) must agree exactly across engines either way.
    for (uint32_t atk = 0; atk < 4; atk++) {
        TamperSpec spec;
        spec.afterInputEvent = 1 + atk;
        spec.randomStackTarget = true;
        spec.seed = 1000 + atk * 77;
        expectAllEqual(prog, wl().benignInputs, 500'000, &spec);
    }
}

TEST_P(WorkloadDiff, FuelCapIdentical)
{
    CompiledProgram prog = compileAndAnalyze(wl().source, wl().name);
    // Cap fuel mid-run: both engines must stop at exactly the cap
    // with identical partial traces.
    RunCapture full = runOne(prog, wl().benignInputs, kConfigs[0]);
    uint64_t cap = full.res.steps / 2 + 1;
    RunCapture golden =
        runOne(prog, wl().benignInputs, kConfigs[0], cap);
    EXPECT_EQ(golden.res.exit, ExitKind::OutOfFuel);
    EXPECT_EQ(golden.res.steps, cap);
    for (size_t c = 1; c < std::size(kConfigs); c++) {
        RunCapture got =
            runOne(prog, wl().benignInputs, kConfigs[c], cap);
        expectSameResult(golden.res, got.res, kConfigs[c].name);
        expectSameDetector(golden, got, kConfigs[c].name);
    }
}

TEST_P(WorkloadDiff, TimingIdentical)
{
    // The cycle-accurate model must produce bit-identical statistics
    // whatever the engine or delivery mode: the seq-stamped request
    // ring drains detector requests at exactly the same commit points
    // either way.
    CompiledProgram prog = compileAndAnalyze(wl().source, wl().name);
    TimingStats golden;
    for (size_t c = 0; c < std::size(kConfigs); c++) {
        TimingConfig cfg;
        CpuModel cpu(cfg);
        Vm vm(prog.mod);
        vm.setInputs(wl().benignInputs);
        vm.setEngine(kConfigs[c].engine);
        vm.setBatchedDelivery(kConfigs[c].batched);
        Detector det(prog);
        det.setRequestRing(&cpu.requestRing());
        vm.addObserver(&det);
        vm.addObserver(&cpu);
        RunResult r = vm.run();
        ASSERT_NE(r.exit, ExitKind::Trapped) << r.trapMessage;
        TimingStats s = cpu.stats();
        if (c == 0) {
            golden = s;
            continue;
        }
        const char *what = kConfigs[c].name;
        EXPECT_EQ(golden.instructions, s.instructions) << what;
        EXPECT_EQ(golden.cycles, s.cycles) << what;
        EXPECT_EQ(golden.branches, s.branches) << what;
        EXPECT_EQ(golden.mispredicts, s.mispredicts) << what;
        EXPECT_EQ(golden.l1iMisses, s.l1iMisses) << what;
        EXPECT_EQ(golden.l1dMisses, s.l1dMisses) << what;
        EXPECT_EQ(golden.l2Misses, s.l2Misses) << what;
        EXPECT_EQ(golden.tlbMisses, s.tlbMisses) << what;
        EXPECT_EQ(golden.ipdsStallCycles, s.ipdsStallCycles) << what;
        EXPECT_EQ(golden.engine.requests, s.engine.requests) << what;
        EXPECT_EQ(golden.engine.busyCycles, s.engine.busyCycles)
            << what;
        EXPECT_EQ(golden.engine.queueFullStalls,
                  s.engine.queueFullStalls)
            << what;
    }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadDiff,
    ::testing::Values("telnetd", "wu-ftpd", "xinetd", "crond",
                      "sysklogd", "atftpd", "httpd", "sendmail",
                      "sshd", "portmap"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Fuzz corpus: the same seed range the zero-FP suite uses.
// ---------------------------------------------------------------------

class FuzzDiff : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzDiff, RandomProgramIdentical)
{
    ProgramGen gen(GetParam());
    std::string src = gen.generate();
    CompiledProgram prog;
    ASSERT_NO_THROW(prog = compileAndAnalyze(src, "fuzz"))
        << "generator produced invalid MiniC:\n" << src;
    expectAllEqual(prog, gen.inputs(), 500'000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDiff,
                         ::testing::Range<uint64_t>(1, 41));

// ---------------------------------------------------------------------
// Edge cases the corpora cannot pin down precisely.
// ---------------------------------------------------------------------

TEST(VmDiffEdge, StepTamperAtExactFuelBoundary)
{
    // A step-count tamper armed exactly at the fuel cap must fire in
    // every engine before the out-of-fuel exit is reported.
    const Workload &w = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(w.source, w.name);
    RunCapture full = runOne(prog, w.benignInputs, kConfigs[0]);
    uint64_t cap = full.res.steps / 2 + 1;
    for (const EngineCfg &cfg : kConfigs) {
        TamperSpec spec;
        spec.atStep = cap;
        spec.randomStackTarget = true;
        spec.seed = 7;
        RunCapture got = runOne(prog, w.benignInputs, cfg, cap,
                                &spec);
        EXPECT_EQ(got.res.exit, ExitKind::OutOfFuel) << cfg.name;
        EXPECT_EQ(got.res.steps, cap) << cfg.name;
        EXPECT_TRUE(got.res.tamper.fired) << cfg.name;
    }
}

TEST(VmDiffEdge, SwitchEngineStillSelectable)
{
    // setEngine(Switch) genuinely changes the core; the two engines
    // otherwise agree, so check the knob via an engine-visible
    // counter: only the threaded engine with batched delivery ever
    // flushes event batches.
    const Workload &w = workloadByName("portmap");
    CompiledProgram prog = compileAndAnalyze(w.source, w.name);
    RunCapture sw = runOne(prog, w.benignInputs, kConfigs[0]);
    RunCapture th = runOne(prog, w.benignInputs, kConfigs[2]);
    EXPECT_EQ(sw.vm.eventBatchFlushes, 0u);
    EXPECT_GT(th.vm.eventBatchFlushes, 0u);
    EXPECT_EQ(sw.vm.instructions, th.vm.instructions);
}

} // namespace
} // namespace ipds
