/**
 * @file
 * End-to-end integration tests: MiniC source -> compiled & analyzed
 * program -> execution under the ipds::Session facade (VM + IPDS
 * detector). Covers the paper's motivating scenario (Figure 1),
 * benign zero-false-positive runs, direct tamper detection, and
 * equivalence of the RequestRing transport against the legacy
 * std::function sink (the one test that still hand-wires the layers,
 * because it observes the transport itself).
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "ipds/reference.h"
#include "obs/session.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

/**
 * The paper's Figure 1 program: an admin check, an overflowable buffer
 * fed by attacker input, and a second admin check. `str` is declared
 * before `user` so the unbounded copy overruns into `user`.
 */
const char *kFigure1 = R"(
void main() {
    char str[16];
    char user[16];

    // verify_user(): benign sessions type "guest".
    get_input_n(user, 16);

    if (strncmp(user, "admin", 5) == 0) {
        print_str("pre: admin\n");
    } else {
        print_str("pre: guest\n");
    }

    // The vulnerable input: unbounded copy into str.
    get_input(str);

    if (strncmp(user, "admin", 5) == 0) {
        print_str("post: admin\n");
    } else {
        print_str("post: guest\n");
    }
}
)";

TEST(EndToEnd, Figure1BenignRunHasNoAlarm)
{
    CompiledProgram prog = compileAndAnalyze(kFigure1, "fig1");
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"guest", "hello"})
                    .build();
    s.run();
    EXPECT_EQ(s.result().exit, ExitKind::Returned);
    EXPECT_NE(s.result().output.find("pre: guest"),
              std::string::npos);
    EXPECT_NE(s.result().output.find("post: guest"),
              std::string::npos);
    EXPECT_FALSE(s.alarmed());
}

TEST(EndToEnd, Figure1AdminBenignRunHasNoAlarm)
{
    CompiledProgram prog = compileAndAnalyze(kFigure1, "fig1");
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"admin", "hello"})
                    .build();
    s.run();
    EXPECT_NE(s.result().output.find("pre: admin"),
              std::string::npos);
    EXPECT_NE(s.result().output.find("post: admin"),
              std::string::npos);
    EXPECT_FALSE(s.alarmed());
}

TEST(EndToEnd, Figure1OverflowAttackIsDetected)
{
    CompiledProgram prog = compileAndAnalyze(kFigure1, "fig1");
    // 16 filler bytes to cross str[16], then "admin" lands in user.
    std::string payload(16, 'A');
    payload += "admin";
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"guest", payload})
                    .build();
    s.run();
    // The tampering flipped the second check: privilege escalation...
    EXPECT_NE(s.result().output.find("pre: guest"),
              std::string::npos);
    EXPECT_NE(s.result().output.find("post: admin"),
              std::string::npos);
    // ...and IPDS must flag the infeasible path.
    EXPECT_TRUE(s.alarmed());
}

TEST(EndToEnd, Figure1ChecksAreMarked)
{
    CompiledProgram prog = compileAndAnalyze(kFigure1, "fig1");
    const CompiledFunction &cf = prog.funcs[prog.mod.entry];
    // Both admin checks must classify as checkable pure calls.
    uint32_t pureChecked = 0;
    for (const auto &b : cf.corr.branches) {
        if (b.kind == CondKind::PureCall && b.checkable)
            pureChecked++;
    }
    EXPECT_EQ(pureChecked, 2u);
}

/** Figure 2 of the paper: loop whose backward path is range-forced. */
const char *kFigure2 = R"(
int x;
void main() {
    int i;
    x = input_int();
    i = 0;
    while (i < 3) {
        if (x < 0) {
            x = x - 1;
        } else {
            x = input_int();
        }
        i = i + 1;
    }
}
)";

TEST(EndToEnd, Figure2BenignLoopNoAlarm)
{
    CompiledProgram prog = compileAndAnalyze(kFigure2, "fig2");
    for (auto inputs : std::vector<std::vector<std::string>>{
             {"-5"}, {"7", "3", "2", "-1"}, {"0", "0", "0", "0"}}) {
        Session s = Session::builder()
                        .program(prog)
                        .inputs(inputs)
                        .build();
        s.run();
        EXPECT_EQ(s.result().exit, ExitKind::Returned);
        EXPECT_FALSE(s.alarmed());
    }
}

TEST(EndToEnd, Figure2TamperIsDetected)
{
    // x starts negative; the x<0 branch is then always taken and x only
    // decreases. Corrupting x to a positive value between iterations
    // creates an infeasible path at the next x<0 test.
    CompiledProgram prog = compileAndAnalyze(kFigure2, "fig2");

    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.atStep = 40; // mid-loop
    for (const auto &obj : prog.mod.objects) {
        if (obj.name == "x")
            spec.addr = Vm(prog.mod).globalBase(obj.id);
    }
    ASSERT_NE(spec.addr, 0u);
    spec.bytes = {100, 0, 0, 0, 0, 0, 0, 0}; // x = 100

    Session s = Session::builder()
                    .program(prog)
                    .inputs({"-5"})
                    .plan(ExecPlan().tamper(spec))
                    .build();
    s.run();
    EXPECT_TRUE(s.result().tamper.fired);
    EXPECT_TRUE(s.alarmed());
}

/** Same-direction correlation (paper scenario 2): x unchanged between
 *  two executions of the same branch forces the same outcome. */
TEST(EndToEnd, ScalarRangeCorrelationDetectsTamper)
{
    const char *src2 = R"(
int secret;
void main() {
    int i;
    char junk[8];
    secret = 7;
    i = 0;
    while (i < 4) {
        if (secret > 5) {
            print_str("hi\n");
        } else {
            print_str("lo\n");
        }
        get_input_n(junk, 8);
        i = i + 1;
    }
}
)";
    CompiledProgram prog = compileAndAnalyze(src2, "corr2");

    // Benign: no alarm across all iterations.
    {
        Session s = Session::builder()
                        .program(prog)
                        .inputs({"a", "b", "c", "d"})
                        .build();
        s.run();
        EXPECT_EQ(s.result().exit, ExitKind::Returned);
        EXPECT_FALSE(s.alarmed());
    }

    // Tamper secret after the second input: next secret>5 test flips.
    {
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 2;
        for (const auto &obj : prog.mod.objects)
            if (obj.name == "secret")
                spec.addr = Vm(prog.mod).globalBase(obj.id);
        spec.bytes = {0, 0, 0, 0, 0, 0, 0, 0}; // secret = 0

        Session s = Session::builder()
                        .program(prog)
                        .inputs({"a", "b", "c", "d"})
                        .plan(ExecPlan().tamper(spec))
                        .build();
        s.run();
        EXPECT_TRUE(s.result().tamper.fired);
        EXPECT_TRUE(s.alarmed()) << "flip of secret not detected";
    }
}

/** Drains a RequestRing into a log at the timing model's cadence
 *  (once per committed instruction). */
struct RingDrainObserver : ExecObserver
{
    RequestRing *ring = nullptr;
    std::vector<IpdsRequest> log;

    void
    onInst(const Inst &, uint64_t, uint32_t, bool) override
    {
        ring->drain(
            [this](const IpdsRequest &rq) { log.push_back(rq); });
    }
};

TEST(EndToEnd, RequestRingStreamMatchesLegacySink)
{
    // The RequestRing transport must deliver byte-for-byte the stream
    // the pre-overhaul std::function sink produced: the timing model's
    // cycle accounting is driven by it. Both detectors watch the same
    // execution of every workload; the ring is drained per committed
    // instruction exactly as CpuModel does.
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

        std::vector<IpdsRequest> sinkLog;
        ReferenceDetector refDet(prog);
        refDet.setRequestSink([&sinkLog](const IpdsRequest &rq) {
            sinkLog.push_back(rq);
        });

        Detector fastDet(prog);
        RequestRing ring;
        fastDet.setRequestRing(&ring);
        RingDrainObserver drainer;
        drainer.ring = &ring;

        Vm vm(prog.mod);
        vm.setInputs(wl.benignInputs);
        vm.setRecordTrace(false);
        vm.addObserver(&refDet);
        vm.addObserver(&fastDet);
        vm.addObserver(&drainer);
        vm.run();
        // Requests emitted after the last committed instruction.
        ring.drain(
            [&drainer](const IpdsRequest &rq) {
                drainer.log.push_back(rq);
            });

        ASSERT_FALSE(sinkLog.empty()) << wl.name;
        EXPECT_TRUE(sinkLog == drainer.log) << wl.name;
    }
}

} // namespace
} // namespace ipds
