/**
 * @file
 * Unit tests for the support layer: bit vectors, bit streams,
 * deterministic RNG, diagnostics and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "support/bitstream.h"
#include "support/bitvec.h"
#include "support/diag.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ipds {
namespace {

// ---------------------------------------------------------------- BitVec

TEST(BitVec, BasicSetTestCount)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_TRUE(v.none());
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_EQ(v.count(), 3u);
    EXPECT_TRUE(v.test(64));
    EXPECT_FALSE(v.test(63));
    v.reset(64);
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, AllOnesConstructionClearsTail)
{
    BitVec v(70, true);
    EXPECT_EQ(v.count(), 70u);
    v.setAll();
    EXPECT_EQ(v.count(), 70u);
    v.clearAll();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, SetAlgebra)
{
    BitVec a(100), b(100);
    a.set(3);
    a.set(50);
    b.set(50);
    b.set(99);

    BitVec u = a;
    EXPECT_TRUE(u.orWith(b));
    EXPECT_EQ(u.count(), 3u);
    EXPECT_FALSE(u.orWith(b)); // no change the second time

    BitVec i = a;
    EXPECT_TRUE(i.andWith(b));
    EXPECT_EQ(i.count(), 1u);
    EXPECT_TRUE(i.test(50));

    BitVec d = a;
    EXPECT_TRUE(d.subtract(b));
    EXPECT_EQ(d.count(), 1u);
    EXPECT_TRUE(d.test(3));
}

TEST(BitVec, FindFirstIteration)
{
    BitVec v(200);
    std::set<size_t> want = {0, 5, 63, 64, 127, 199};
    for (size_t i : want)
        v.set(i);
    std::set<size_t> got;
    for (size_t i = v.findFirst(); i < v.size(); i = v.findFirst(i + 1))
        got.insert(i);
    EXPECT_EQ(got, want);
    BitVec empty(77);
    EXPECT_EQ(empty.findFirst(), empty.size());
}

TEST(BitVec, SizeMismatchPanics)
{
    BitVec a(10), b(11);
    EXPECT_THROW(a.orWith(b), PanicError);
    EXPECT_THROW(a.test(10), PanicError);
}

TEST(BitVec, Resize)
{
    BitVec v(10);
    v.set(9);
    v.resize(100);
    EXPECT_TRUE(v.test(9));
    EXPECT_FALSE(v.test(50));
    EXPECT_EQ(v.count(), 1u);
}

// ------------------------------------------------------------- BitStream

TEST(BitStream, RoundTripMixedWidths)
{
    BitWriter w;
    w.put(0b101, 3);
    w.put(0xdeadbeefcafebabeULL, 64);
    w.put(0, 1);
    w.put(0x7fff, 15);
    EXPECT_EQ(w.bitCount(), 83u);

    BitReader r(w.bytes());
    EXPECT_EQ(r.get(3), 0b101u);
    EXPECT_EQ(r.get(64), 0xdeadbeefcafebabeULL);
    EXPECT_EQ(r.get(1), 0u);
    EXPECT_EQ(r.get(15), 0x7fffu);
}

TEST(BitStream, ReadPastEndPanics)
{
    BitWriter w;
    w.put(3, 2);
    BitReader r(w.bytes());
    r.get(2);
    // The final partial byte was zero-padded: 6 more bits exist.
    r.get(6);
    EXPECT_THROW(r.get(1), PanicError);
}

TEST(BitStream, BitsFor)
{
    EXPECT_EQ(bitsFor(0), 1u);
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 2u);
    EXPECT_EQ(bitsFor(255), 8u);
    EXPECT_EQ(bitsFor(256), 9u);
}

/** Property: any sequence of (value, width) pairs round-trips. */
class BitStreamPropTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(BitStreamPropTest, RandomRoundTrip)
{
    Rng rng(GetParam());
    std::vector<std::pair<uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 200; i++) {
        unsigned width = 1 + static_cast<unsigned>(rng.below(64));
        uint64_t value = rng.next() &
            (width == 64 ? ~0ULL : ((1ULL << width) - 1));
        fields.emplace_back(value, width);
        w.put(value, width);
    }
    BitReader r(w.bytes());
    for (auto [value, width] : fields)
        ASSERT_EQ(r.get(width), value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStreamPropTest,
                         ::testing::Range<uint64_t>(1, 9));

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowIsInRangeAndCoversValues)
{
    Rng rng(1);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; i++) {
        uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(2);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 500; i++) {
        int64_t v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UnitInHalfOpenInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; i++) {
        double u = rng.unit();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, DegenerateArgsPanic)
{
    Rng rng(4);
    EXPECT_THROW(rng.below(0), PanicError);
    EXPECT_THROW(rng.range(5, 4), PanicError);
}

// ------------------------------------------------------------------ diag

TEST(Diag, StrprintfFormats)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Diag, FatalAndPanicThrowDistinctTypes)
{
    EXPECT_THROW(fatal("user error %d", 1), FatalError);
    EXPECT_THROW(panic("bug %d", 2), PanicError);
    try {
        fatal("code %d", 42);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "code 42");
    }
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, ResultsIndependentOfWorkerCount)
{
    // Per-index result slots: the outcome must be a pure function of
    // the index, whatever the pool size or scheduling.
    auto runWith = [](unsigned workers) {
        ThreadPool pool(workers);
        std::vector<uint64_t> out(97);
        pool.parallelFor(97, [&](uint32_t i) {
            out[i] = uint64_t(i) * i + 13;
        });
        return out;
    };
    std::vector<uint64_t> single = runWith(1);
    EXPECT_EQ(single, runWith(3));
    EXPECT_EQ(single, runWith(8));
    for (uint32_t i = 0; i < single.size(); i++)
        EXPECT_EQ(single[i], uint64_t(i) * i + 13);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<uint64_t> sum{0};
    std::vector<std::atomic<uint32_t>> hits(1000);
    pool.parallelFor(1000, [&](uint32_t i) {
        hits[i].fetch_add(1);
        sum.fetch_add(i);
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1u);
    EXPECT_EQ(sum.load(), 999u * 1000u / 2);
}

TEST(ThreadPool, ZeroItemsIsNoop)
{
    ThreadPool pool(3);
    bool ran = false;
    pool.parallelFor(0, [&](uint32_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](uint32_t i) {
                                      if (i == 17)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // The pool is reusable after a failed job.
    std::atomic<uint32_t> count{0};
    pool.parallelFor(32, [&](uint32_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 32u);
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::thread::id caller = std::this_thread::get_id();
    pool.parallelFor(8, [&](uint32_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

} // namespace
} // namespace ipds
