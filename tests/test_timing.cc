/**
 * @file
 * Timing-substrate tests: cache geometry/LRU, the two-level branch
 * predictor, the IPDS engine's queue and spill mechanics, and
 * whole-model sanity (determinism, IPC bounds, IPDS-off neutrality).
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "timing/branchpred.h"
#include "timing/cache.h"
#include "timing/cpu.h"
#include "timing/engine.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

// ----------------------------------------------------------------- cache

TEST(Cache, HitsAfterFill)
{
    Cache c({1024, 2, 32, 1});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x11f)); // same 32B block
    EXPECT_FALSE(c.access(0x120)); // next block
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.accesses(), 4u);
}

TEST(Cache, LruEviction)
{
    // 2 ways, 32B blocks, 2 sets => set stride 64.
    Cache c({128, 2, 32, 1});
    // Three blocks mapping to set 0: 0x0, 0x80, 0x100.
    c.access(0x0);
    c.access(0x80);
    c.access(0x0);    // refresh 0x0; LRU is now 0x80
    c.access(0x100);  // evicts 0x80
    EXPECT_TRUE(c.access(0x0));
    EXPECT_FALSE(c.access(0x80)); // was evicted
}

TEST(Cache, ResetClears)
{
    Cache c({1024, 2, 32, 1});
    c.access(0x40);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0x40));
}

TEST(Cache, BadGeometryPanics)
{
    EXPECT_THROW(Cache({0, 2, 32, 1}), PanicError);
    EXPECT_THROW(Cache({1000, 3, 32, 1}), PanicError); // non-pow2 sets
}

// ------------------------------------------------------------- predictor

TEST(BranchPred, LearnsAStableDirection)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    uint64_t pc = 0x4000;
    for (int i = 0; i < 50; i++)
        bp.update(pc, true);
    uint64_t before = bp.mispredicts();
    for (int i = 0; i < 50; i++)
        bp.update(pc, true);
    EXPECT_EQ(bp.mispredicts(), before); // fully learned
}

TEST(BranchPred, LearnsAlternatingPatternViaHistory)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    uint64_t pc = 0x4000;
    for (int i = 0; i < 400; i++)
        bp.update(pc, i % 2 == 0);
    uint64_t before = bp.mispredicts();
    for (int i = 0; i < 100; i++)
        bp.update(pc, i % 2 == 0);
    // The 2-level history disambiguates T/NT alternation perfectly.
    EXPECT_EQ(bp.mispredicts(), before);
}

TEST(BranchPred, CountsLookups)
{
    TimingConfig cfg;
    BranchPredictor bp(cfg);
    bp.update(0x10, true);
    bp.update(0x20, false);
    EXPECT_EQ(bp.lookups(), 2u);
}

// ---------------------------------------------------------------- engine

TEST(Engine, RequestCosts)
{
    TimingConfig cfg;
    IpdsEngine eng(cfg);
    IpdsRequest check;
    check.kind = IpdsRequest::Kind::Check;
    EXPECT_EQ(eng.enqueue(check, 0), 0u);
    EXPECT_EQ(eng.stats().checkRequests, 1u);
    EXPECT_EQ(eng.stats().busyCycles, cfg.tableLatency);

    IpdsRequest upd;
    upd.kind = IpdsRequest::Kind::Update;
    upd.actionCount = 9; // ceil(9/4) = 3 row fetches
    eng.enqueue(upd, 10);
    EXPECT_EQ(eng.stats().busyCycles,
              cfg.tableLatency + cfg.tableLatency + 3);
}

TEST(Engine, QueueBackpressureStallsCaller)
{
    TimingConfig cfg;
    cfg.requestQueueSize = 2;
    IpdsEngine eng(cfg);
    IpdsRequest slow;
    slow.kind = IpdsRequest::Kind::Update;
    slow.actionCount = 40; // 10 row fetches + 1
    // Fill the queue at time 0; the third enqueue must stall.
    EXPECT_EQ(eng.enqueue(slow, 0), 0u);
    EXPECT_EQ(eng.enqueue(slow, 0), 0u);
    uint64_t stall = eng.enqueue(slow, 0);
    EXPECT_GT(stall, 0u);
    EXPECT_EQ(eng.stats().queueFullStalls, 1u);
    EXPECT_EQ(eng.stats().stallCycles, stall);
}

TEST(Engine, CheckLatencyIncludesQueueing)
{
    TimingConfig cfg;
    IpdsEngine eng(cfg);
    IpdsRequest upd;
    upd.kind = IpdsRequest::Kind::Update;
    upd.actionCount = 40;
    eng.enqueue(upd, 0); // keeps the engine busy ~11 cycles
    IpdsRequest check;
    check.kind = IpdsRequest::Kind::Check;
    eng.enqueue(check, 0);
    // The check finished well after its enqueue time.
    EXPECT_GT(eng.stats().avgCheckLatency(), cfg.tableLatency);
}

TEST(Engine, SpillAndFillAccounting)
{
    TimingConfig cfg;
    cfg.bsvStackBits = 64;
    cfg.bcvStackBits = 32;
    cfg.batStackBits = 256; // total on-chip capacity: 352 bits
    IpdsEngine eng(cfg);

    auto push = [&](uint64_t bits) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::PushFrame;
        rq.tableBits = bits;
        eng.enqueue(rq, 0);
    };
    auto pop = [&](uint64_t bits) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::PopFrame;
        rq.tableBits = bits;
        eng.enqueue(rq, 0);
    };

    push(200);
    push(200); // 400 > 352: the deeper frame spills
    EXPECT_EQ(eng.stats().spillEvents, 1u);
    EXPECT_EQ(eng.stats().spillBits, 200u);
    pop(200);  // pop the top; the spilled frame must fill back
    EXPECT_EQ(eng.stats().fillEvents, 1u);
    EXPECT_EQ(eng.stats().fillBits, 200u);
}

// ------------------------------------------------------------- CpuModel

/** Run a workload session through the model. */
TimingStats
runTimed(const CompiledProgram &prog,
         const std::vector<std::string> &inputs, bool ipds_on,
         int sessions = 3)
{
    TimingConfig cfg;
    cfg.ipdsEnabled = ipds_on;
    CpuModel cpu(cfg);
    for (int s = 0; s < sessions; s++) {
        Vm vm(prog.mod);
        vm.setInputs(inputs);
        vm.setRecordTrace(false);
        Detector det(prog);
        if (ipds_on) {
            det.setRequestSink(cpu.requestSink());
            vm.addObserver(&det);
        }
        vm.addObserver(&cpu);
        vm.run();
    }
    return cpu.stats();
}

TEST(CpuModel, DeterministicCycleCounts)
{
    const Workload &wl = workloadByName("sendmail");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    TimingStats a = runTimed(prog, wl.benignInputs, true);
    TimingStats b = runTimed(prog, wl.benignInputs, true);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(CpuModel, IpcWithinPhysicalBounds)
{
    const Workload &wl = workloadByName("httpd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    TimingStats st = runTimed(prog, wl.benignInputs, false);
    EXPECT_GT(st.ipc(), 0.1);
    EXPECT_LE(st.ipc(), 8.0); // commit width is the hard ceiling
    EXPECT_GT(st.branches, 0u);
}

TEST(CpuModel, IpdsNeverSpeedsUpAndBarelySlowsDown)
{
    for (const char *name : {"telnetd", "sendmail"}) {
        const Workload &wl = workloadByName(name);
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        TimingStats off = runTimed(prog, wl.benignInputs, false);
        TimingStats on = runTimed(prog, wl.benignInputs, true);
        EXPECT_GE(on.cycles, off.cycles) << name;
        // Paper claim: well under a few percent.
        EXPECT_LT(double(on.cycles - off.cycles),
                  0.05 * double(off.cycles))
            << name;
        EXPECT_GT(on.engine.requests, 0u);
    }
}

TEST(CpuModel, CachesAndPredictorAreExercised)
{
    const Workload &wl = workloadByName("portmap");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    TimingStats st = runTimed(prog, wl.benignInputs, true);
    EXPECT_GT(st.l1iMisses, 0u);  // cold code blocks
    EXPECT_GT(st.tlbMisses, 0u);  // cold pages
    EXPECT_GT(st.mispredicts, 0u); // cold counters at least
}

TEST(CpuModel, ContextSwitchChargesCycles)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    auto runWithSwitches = [&](int switches, bool lazy) {
        TimingConfig cfg;
        CpuModel cpu(cfg);
        for (int s = 0; s < 5; s++) {
            Vm vm(prog.mod);
            vm.setInputs(wl.benignInputs);
            vm.setRecordTrace(false);
            Detector det(prog);
            det.setRequestSink(cpu.requestSink());
            vm.addObserver(&det);
            vm.addObserver(&cpu);
            vm.run();
            for (int k = 0; k < switches; k++)
                cpu.contextSwitch(lazy);
        }
        return cpu.stats().cycles;
    };

    uint64_t none = runWithSwitches(0, true);
    uint64_t lazy = runWithSwitches(50, true);
    uint64_t eager = runWithSwitches(50, false);
    EXPECT_GT(lazy, none);
    // With an empty active call chain between sessions the costs may
    // tie, but eager can never be cheaper than lazy.
    EXPECT_GE(eager, lazy);
}

TEST(CpuModel, CheckLatencyIsSmallAndPositive)
{
    const Workload &wl = workloadByName("sendmail");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    TimingStats st = runTimed(prog, wl.benignInputs, true, 10);
    ASSERT_GT(st.engine.checkLatencyCount, 0u);
    double lat = st.engine.avgCheckLatency();
    EXPECT_GE(lat, 1.0);
    // Paper: 11.7 cycles, comfortably inside a 20-stage pipeline.
    EXPECT_LT(lat, 20.0);
}

} // namespace
} // namespace ipds
