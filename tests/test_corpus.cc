/**
 * @file
 * Corpus differential-fuzzing suite (`ctest -L corpus`).
 *
 * The tentpole guarantee under test: for every generated seed, every
 * independent implementation of "run this program and detect" agrees
 * bit-for-bit — switch vs threaded VM, optimized vs reference
 * detector, live capture vs trace replay, streamed ingest vs offline
 * replay. One hundred seeds run through the oracle stack per CI
 * invocation (`diffOne`, gen/corpus.h), so a divergence anywhere in
 * the engine/detector/replay/serve matrix is named by seed.
 *
 * Alongside it, the corpus-scale zero-false-positive sweep and the
 * fig7-style recipe campaign invariants (thread-count invariance,
 * per-kind accounting).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gen/corpus.h"
#include "gen/gen.h"
#include "obs/session.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/diag.h"
#include "vm/vm.h"

using namespace ipds;

namespace {

std::string
tmpDirNoSlash()
{
    std::string d = testing::TempDir();
    while (!d.empty() && d.back() == '/')
        d.pop_back();
    return d;
}

/** Connect with retries — the server thread may still be binding. */
void
connectRetry(serve::Client &c, const std::string &sock)
{
    for (int i = 0;; i++) {
        try {
            c.connect(sock);
            return;
        } catch (const FatalError &) {
            if (i > 200)
                throw;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }
}

TEST(Corpus, DifferentialHundredSeeds)
{
    const std::string dir = tmpDirNoSlash();
    uint32_t runs = 0;
    for (uint64_t seed = 1; seed <= 100; seed++) {
        gen::DiffResult dr = gen::diffOne(seed, dir);
        EXPECT_TRUE(dr.ok) << dr.firstMismatch;
        runs += dr.runsCompared;
        // diffOne leaves its round-trip traces behind; drop them.
        for (const char *tag :
             {"benign", "single_word", "multi_write",
              "decision_chain"}) {
            std::string f = dir + "/diff-" + std::to_string(seed) +
                "-" + tag + ".ipds";
            std::remove(f.c_str());
        }
        if (!dr.ok)
            break; // first divergent seed is enough to act on
    }
    // benign + 9 recipes on two engines, plus 4 capture/replay round
    // trips, per seed.
    EXPECT_GE(runs, 100u * 28u);
}

TEST(Corpus, CampaignZeroFalsePositivesOverHundredPrograms)
{
    gen::CorpusCampaignConfig cfg;
    cfg.firstSeed = 1;
    cfg.lastSeed = 100;
    cfg.numThreads = 0;
    gen::CorpusCampaignResult res = gen::runCorpusCampaign(cfg);

    ASSERT_EQ(res.numPrograms(), 100u);
    EXPECT_EQ(res.numCompiled(), 100u);
    EXPECT_EQ(res.numFalsePositives(), 0u)
        << "a benign session alarmed — the zero-FP property broke";
    EXPECT_EQ(res.attacks(), 900u);
    for (size_t k = 0; k < gen::kNumRecipeKinds; k++)
        EXPECT_EQ(res.attacksOf(static_cast<gen::RecipeKind>(k)),
                  300u);
    // The corpus must put real pressure on the detector: a majority
    // of control-flow-changing recipes detected, as in fig7.
    EXPECT_GT(res.numCfChanged(), 300u);
    EXPECT_GT(res.pctDetectedOfCf(), 50.0);
    // Decision chains target correlated variables only — they must
    // detect at least as well as the overall mix.
    EXPECT_GE(res.pctDetectedOfCfOf(gen::RecipeKind::DecisionChain) +
                  1e-9,
              res.pctDetectedOfCf());
}

TEST(Corpus, CampaignIsThreadCountInvariant)
{
    gen::CorpusCampaignConfig cfg;
    cfg.firstSeed = 1;
    cfg.lastSeed = 20;
    cfg.numThreads = 1;
    gen::CorpusCampaignResult seq = gen::runCorpusCampaign(cfg);
    cfg.numThreads = 4;
    gen::CorpusCampaignResult par = gen::runCorpusCampaign(cfg);

    ASSERT_EQ(seq.numPrograms(), par.numPrograms());
    for (uint32_t i = 0; i < seq.numPrograms(); i++) {
        const gen::CorpusProgramResult &a = seq.programs[i];
        const gen::CorpusProgramResult &b = par.programs[i];
        EXPECT_EQ(a.seed, b.seed);
        EXPECT_EQ(a.falsePositive, b.falsePositive);
        EXPECT_EQ(a.goldenSteps, b.goldenSteps);
        EXPECT_EQ(a.branchesSeen, b.branchesSeen);
        ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
        for (size_t j = 0; j < a.outcomes.size(); j++) {
            EXPECT_EQ(a.outcomes[j].fired, b.outcomes[j].fired);
            EXPECT_EQ(a.outcomes[j].cfChanged,
                      b.outcomes[j].cfChanged);
            EXPECT_EQ(a.outcomes[j].detected,
                      b.outcomes[j].detected);
        }
    }
}

TEST(Corpus, ExecPlanAddTamperMatchesDirectVm)
{
    gen::GeneratedProgram gp = gen::generate(9);
    CompiledProgram prog = gen::compileGenerated(gp);
    // Pick a decision-chain recipe: several event-triggered writes.
    const gen::AttackRecipe *chain = nullptr;
    for (const gen::AttackRecipe &r : gp.recipes)
        if (r.kind == gen::RecipeKind::DecisionChain)
            chain = &r;
    ASSERT_NE(chain, nullptr);

    // Direct Vm + Detector.
    Vm vm(prog.mod);
    vm.setInputs(gp.workload.benignInputs);
    Detector det(prog);
    vm.addObserver(&det);
    gen::armRecipe(vm, *chain);
    RunResult direct = vm.run();

    // Session facade: the same recipe as ExecPlan::addTamper stack.
    ExecPlan exec;
    for (const TamperSpec &spec :
         gen::recipeSpecs(Vm(prog.mod), *chain))
        exec.addTamper(spec);
    Session s = Session::builder()
                    .program(prog)
                    .inputs(gp.workload.benignInputs)
                    .plan(std::move(exec))
                    .build();
    s.run();

    EXPECT_EQ(s.result().faultTampers.size(),
              direct.faultTampers.size());
    EXPECT_EQ(s.result().output, direct.output);
    EXPECT_TRUE(s.result().branchTrace == direct.branchTrace);
    ASSERT_EQ(s.alarms().size(), det.alarms().size());
    for (size_t i = 0; i < s.alarms().size(); i++) {
        EXPECT_EQ(s.alarms()[i].pc, det.alarms()[i].pc);
        EXPECT_EQ(s.alarms()[i].branchIndex,
                  det.alarms()[i].branchIndex);
    }
    EXPECT_TRUE(s.detectorStats() == det.stats());
}

TEST(Corpus, ServedStreamMatchesOfflineReplay)
{
    // The fourth oracle: a generated program's attacked session,
    // captured and streamed to the detection service, must produce
    // the same alarms as offline replay of the same trace.
    for (uint64_t seed : {3ull, 4ull}) {
        gen::GeneratedProgram gp = gen::generate(seed);
        CompiledProgram prog = gen::compileGenerated(gp);
        const gen::AttackRecipe *chain = nullptr;
        for (const gen::AttackRecipe &r : gp.recipes)
            if (r.kind == gen::RecipeKind::DecisionChain)
                chain = &r;
        ASSERT_NE(chain, nullptr);

        std::string path = tmpDirNoSlash() + "/corpus_serve_" +
            std::to_string(seed) + ".ipds";
        ExecPlan exec;
        for (const TamperSpec &spec :
             gen::recipeSpecs(Vm(prog.mod), *chain))
            exec.addTamper(spec);
        Session::builder()
            .program(prog)
            .inputs(gp.workload.benignInputs)
            .plan(CapturePlan(path).exec(std::move(exec)))
            .build()
            .run();

        Session off = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(path))
                          .build();
        off.run();

        serve::ServerConfig cfg;
        cfg.socketPath = tmpDirNoSlash() + "/corpus_serve_" +
            std::to_string(seed) + ".sock";
        serve::Server srv(prog, cfg);
        srv.start();
        serve::Client c;
        connectRetry(c, cfg.socketPath);
        c.hello("corpus");
        c.sendTraceFile(path);
        serve::StreamResult r = c.end();
        srv.stopAndJoin();

        ASSERT_TRUE(r.ok) << r.text;
        EXPECT_EQ(r.alarms, off.alarms().size());
        EXPECT_EQ(r.alarmDigest, serve::alarmDigest(off.alarms()));
        std::remove(path.c_str());
        std::remove(cfg.socketPath.c_str());
    }
}

} // namespace
