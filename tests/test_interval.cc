/**
 * @file
 * Unit tests for the interval algebra underlying branch subsumption.
 */

#include <gtest/gtest.h>

#include "core/interval.h"

namespace ipds {
namespace {

TEST(Interval, FromPredBasics)
{
    EXPECT_TRUE(Interval::fromPred(Pred::LT, 5).contains(4));
    EXPECT_FALSE(Interval::fromPred(Pred::LT, 5).contains(5));
    EXPECT_TRUE(Interval::fromPred(Pred::LE, 5).contains(5));
    EXPECT_TRUE(Interval::fromPred(Pred::GT, 5).contains(6));
    EXPECT_FALSE(Interval::fromPred(Pred::GT, 5).contains(5));
    EXPECT_TRUE(Interval::fromPred(Pred::GE, 5).contains(5));
    EXPECT_TRUE(Interval::fromPred(Pred::EQ, 5).isPoint());
    EXPECT_TRUE(Interval::fromPred(Pred::NE, 5).isPunctured());
    EXPECT_FALSE(Interval::fromPred(Pred::NE, 5).contains(5));
    EXPECT_TRUE(Interval::fromPred(Pred::NE, 5).contains(6));
}

TEST(Interval, PuncturedSubsumption)
{
    Interval ne5 = Interval::allBut(5);
    // allBut(5) subsumes allBut(5) but not allBut(6).
    EXPECT_TRUE(ne5.subsumedBy(Interval::allBut(5)));
    EXPECT_FALSE(ne5.subsumedBy(Interval::allBut(6)));
    // An interval missing the puncture point is subsumed.
    EXPECT_TRUE(Interval::range(0, 4).subsumedBy(ne5));
    EXPECT_FALSE(Interval::range(0, 5).subsumedBy(ne5));
    EXPECT_TRUE(Interval::point(7).subsumedBy(ne5));
    // Only full() subsumes a punctured set.
    EXPECT_TRUE(ne5.subsumedBy(Interval::full()));
    EXPECT_FALSE(ne5.subsumedBy(Interval::range(0, 100)));

    // Affine image moves the puncture point: v != 5, w = -v + 1.
    Interval w = ne5.affineImage(-1, 1);
    EXPECT_FALSE(w.contains(-4));
    EXPECT_TRUE(w.contains(4));
}

TEST(Interval, PredEdgeCases)
{
    // v < INT64_MIN is unsatisfiable; v > INT64_MAX likewise.
    EXPECT_TRUE(Interval::fromPred(Pred::LT, INT64_MIN).isEmpty());
    EXPECT_TRUE(Interval::fromPred(Pred::GT, INT64_MAX).isEmpty());
    // (-inf, INT64_MIN] contains exactly one representable value.
    EXPECT_TRUE(Interval::fromPred(Pred::LE, INT64_MIN)
                    .contains(INT64_MIN));
    EXPECT_FALSE(Interval::fromPred(Pred::LE, INT64_MIN)
                     .contains(INT64_MIN + 1));
    EXPECT_TRUE(Interval::fromPred(Pred::GE, INT64_MAX)
                    .contains(INT64_MAX));
    EXPECT_FALSE(Interval::fromPred(Pred::GE, INT64_MAX)
                     .contains(INT64_MAX - 1));
}

TEST(Interval, SubsumptionIsThePaperRelation)
{
    // Paper §4: range y<5 subsumes range y<10.
    Interval lt5 = Interval::fromPred(Pred::LT, 5);
    Interval lt10 = Interval::fromPred(Pred::LT, 10);
    EXPECT_TRUE(lt5.subsumedBy(lt10));
    EXPECT_FALSE(lt10.subsumedBy(lt5));

    // [0,5] subsumes [0,10] (the paper's example wording).
    EXPECT_TRUE(Interval::range(0, 5).subsumedBy(Interval::range(0, 10)));
    EXPECT_FALSE(
        Interval::range(0, 10).subsumedBy(Interval::range(0, 5)));

    // Everything is subsumed by full; full subsumes only full.
    EXPECT_TRUE(lt5.subsumedBy(Interval::full()));
    EXPECT_FALSE(Interval::full().subsumedBy(lt5));
    EXPECT_TRUE(Interval::full().subsumedBy(Interval::full()));

    // Empty is subsumed by everything.
    EXPECT_TRUE(Interval::empty().subsumedBy(lt5));
    EXPECT_FALSE(lt5.subsumedBy(Interval::empty()));

    // Invalid participates in nothing.
    EXPECT_FALSE(Interval::invalid().subsumedBy(Interval::full()));
    EXPECT_FALSE(Interval::full().subsumedBy(Interval::invalid()));
    EXPECT_FALSE(Interval::empty().subsumedBy(Interval::invalid()));
}

TEST(Interval, AffineImageFigure3c)
{
    // Paper Figure 3.c: y < 5, r1 = y - 1 => r1 < 4 which is < 10.
    Interval y = Interval::fromPred(Pred::LT, 5);
    Interval r1 = y.affineImage(1, -1);
    EXPECT_TRUE(r1.subsumedBy(Interval::fromPred(Pred::LT, 10)));
    EXPECT_TRUE(r1.contains(3));
    EXPECT_FALSE(r1.contains(4));
}

TEST(Interval, AffineImageNegation)
{
    // v in [2, 5], w = -v + 1 => w in [-4, -1].
    Interval v = Interval::range(2, 5);
    Interval w = v.affineImage(-1, 1);
    EXPECT_TRUE(w.contains(-4));
    EXPECT_TRUE(w.contains(-1));
    EXPECT_FALSE(w.contains(0));
    EXPECT_FALSE(w.contains(-5));
}

TEST(Interval, AffineImageOverflowIsInvalid)
{
    Interval v = Interval::range(INT64_MAX - 1, INT64_MAX);
    EXPECT_TRUE(v.affineImage(1, 10).isInvalid());
    Interval w = Interval::range(INT64_MIN, INT64_MIN + 1);
    EXPECT_TRUE(w.affineImage(-1, 0).isInvalid());
}

TEST(Interval, FromAffineCond)
{
    // -v + 3 < 1  =>  v > 2.
    Interval i = Interval::fromAffineCond(-1, 3, Pred::LT, 1);
    EXPECT_FALSE(i.contains(2));
    EXPECT_TRUE(i.contains(3));

    // v + 10 == 12  =>  v == 2.
    Interval j = Interval::fromAffineCond(1, 10, Pred::EQ, 12);
    EXPECT_TRUE(j.isPoint());
    EXPECT_TRUE(j.contains(2));
}

TEST(Interval, Intersect)
{
    Interval a = Interval::fromPred(Pred::GE, 0);
    Interval b = Interval::fromPred(Pred::LE, 10);
    Interval c = a.intersect(b);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(10));
    EXPECT_FALSE(c.contains(-1));
    EXPECT_FALSE(c.contains(11));
    EXPECT_TRUE(
        Interval::range(5, 3).isEmpty()); // inverted bounds are empty
    EXPECT_TRUE(Interval::range(0, 1)
                    .intersect(Interval::range(2, 3)).isEmpty());
}

/** Property sweep: subsumption matches pointwise containment. */
class IntervalPropTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(IntervalPropTest, SubsumptionMatchesContainment)
{
    auto [a, b] = GetParam();
    Interval x = Interval::range(a, b);
    for (int lo = -3; lo <= 3; lo++) {
        for (int hi = -3; hi <= 3; hi++) {
            Interval y = Interval::range(lo, hi);
            bool sub = x.subsumedBy(y);
            bool pointwise = true;
            for (int v = a; v <= b; v++)
                pointwise &= y.contains(v);
            EXPECT_EQ(sub, pointwise)
                << x.str() << " vs " << y.str();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntervalPropTest,
    ::testing::Combine(::testing::Range(-3, 4), ::testing::Range(-3, 4)));

} // namespace
} // namespace ipds
