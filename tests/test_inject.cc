/**
 * @file
 * Fault-injection suite (ctest label `fault`): the differential
 * oracle harness for src/inject plus regressions for every hardened
 * failure path.
 *
 * The standing contract under test: for ANY fault class the plan can
 * express — memory tampers, BSV flips, ring drop/duplicate, spill
 * pressure, context-switch storms — the fast Detector and the frozen
 * ReferenceDetector must report identical alarms and statistics, the
 * switch and threaded(+batched) VM engines must stay bit-identical,
 * clean runs must stay alarm-free, and no fault may reach a panic().
 */

#include <gtest/gtest.h>

#include <set>

#include "core/correlation.h"
#include "core/hashfn.h"
#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "ipds/reference.h"
#include "obs/names.h"
#include "obs/session.h"
#include "support/diag.h"
#include "support/rng.h"
#include "timing/cpu.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

// ------------------------------------------------- hashfn failure paths

TEST(FaultHashFn, ExhaustionIsRecoverable)
{
    // 8 distinct branches cannot fit a collision-free hash into a
    // 2^2-slot space: the search must exhaust and throw the
    // *recoverable* error class, never abort the process.
    std::vector<uint64_t> pcs;
    for (uint64_t i = 0; i < 8; i++)
        pcs.push_back(0x1000 + 4 * i);
    try {
        findPerfectHash(pcs, 24, 2);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("no collision-free"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultHashFn, DuplicatePcsNameTheCounts)
{
    try {
        findPerfectHash({0x1000, 0x2000, 0x1000});
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultCompile, HashExhaustionFailsOneProgramNotTheProcess)
{
    const char *src = R"(
void main() {
    int a;
    a = input_int();
    if (a > 1) { print_str("x"); }
    if (a > 2) { print_str("y"); }
    if (a > 3) { print_str("z"); }
}
)";
    // A 1-slot cap cannot host three branches: the pipeline must
    // surface a recoverable error naming the failing function...
    CorrOptions tight;
    tight.maxHashLog2 = 0;
    try {
        compileAndAnalyze(src, "cramped", tight);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("main"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cramped"), std::string::npos) << msg;
    }
    // ...and the process must be fully usable afterwards.
    CompiledProgram ok = compileAndAnalyze(src, "cramped");
    EXPECT_GT(ok.stats.numBranches, 0u);
}

// ---------------------------------------------- request-ring hardening

std::vector<IpdsRequest>
numberedRequests(uint32_t n)
{
    std::vector<IpdsRequest> out;
    for (uint32_t i = 0; i < n; i++) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::Update;
        rq.pc = i;
        out.push_back(rq);
    }
    return out;
}

TEST(FaultRing, OverflowGrowsInsteadOfAborting)
{
    RequestRing ring(64);
    EXPECT_EQ(ring.capacity(), 64u);
    auto reqs = numberedRequests(5000);
    for (const IpdsRequest &rq : reqs)
        ring.push(rq);
    EXPECT_GT(ring.growCount(), 0u);
    EXPECT_GE(ring.capacity(), 5000u);

    std::vector<IpdsRequest> got;
    ring.drain([&](const IpdsRequest &rq) { got.push_back(rq); });
    ASSERT_EQ(got.size(), reqs.size());
    EXPECT_TRUE(got == reqs) << "order lost across growth";
}

TEST(FaultRing, OverflowSinkChunkFlushesOldestHalf)
{
    RequestRing ring(64);
    std::vector<IpdsRequest> flushed;
    ring.setOverflowSink(
        [&](const IpdsRequest &rq) { flushed.push_back(rq); });
    auto reqs = numberedRequests(300);
    for (const IpdsRequest &rq : reqs)
        ring.push(rq);
    EXPECT_GT(ring.overflowFlushCount(), 0u);
    EXPECT_EQ(ring.growCount(), 0u);
    EXPECT_EQ(ring.capacity(), 64u) << "sink must prevent growth";

    // Flushed prefix + drained suffix must be the pushed sequence.
    std::vector<IpdsRequest> got = flushed;
    ring.drain([&](const IpdsRequest &rq) { got.push_back(rq); });
    ASSERT_EQ(got.size(), reqs.size());
    EXPECT_TRUE(got == reqs) << "order lost across chunk flushes";
}

TEST(FaultRing, DropDupFilterIsDeterministic)
{
    auto runFiltered = [](uint64_t seed) {
        RequestRing ring(256);
        ring.setFault(100, 50, seed); // 10% drop, 5% dup
        auto reqs = numberedRequests(200);
        std::vector<uint64_t> delivered;
        for (const IpdsRequest &rq : reqs)
            ring.push(rq);
        ring.drain(
            [&](const IpdsRequest &rq) { delivered.push_back(rq.pc); });
        return std::make_tuple(delivered, ring.faultDropCount(),
                               ring.faultDupCount());
    };
    auto [d1, drop1, dup1] = runFiltered(42);
    auto [d2, drop2, dup2] = runFiltered(42);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(drop1, drop2);
    EXPECT_EQ(dup1, dup2);
    EXPECT_GT(drop1, 0u);
    EXPECT_EQ(d1.size(), 200 - drop1 + dup1);

    auto [d3, drop3, dup3] = runFiltered(43);
    EXPECT_NE(d1, d3) << "different seeds, same perturbation";

    // Zero rates: the filter disarms completely.
    RequestRing clean(256);
    clean.setFault(0, 0, 42);
    auto reqs = numberedRequests(50);
    for (const IpdsRequest &rq : reqs)
        clean.push(rq);
    std::vector<IpdsRequest> got;
    clean.drain([&](const IpdsRequest &rq) { got.push_back(rq); });
    EXPECT_TRUE(got == reqs);
    EXPECT_EQ(clean.faultDropCount(), 0u);
    EXPECT_EQ(clean.faultDupCount(), 0u);
}

TEST(FaultRing, DetectorSurvivesThousandsPendingBetweenDrains)
{
    // Regression for the old panic at 1024 pending: a consumer that
    // never drains mid-run must see growth, not an abort.
    const char *src = R"(
void main() {
    int i;
    i = 0;
    while (i < 700) {
        if (i > 1000) { print_str("x"); }
        i = i + 1;
    }
}
)";
    CompiledProgram prog = compileAndAnalyze(src, "spin");
    Vm vm(prog.mod);
    Detector det(prog);
    RequestRing ring; // default 1024, never drained during the run
    det.setRequestRing(&ring);
    vm.addObserver(&det);
    RunResult r;
    ASSERT_NO_THROW(r = vm.run());
    EXPECT_EQ(r.exit, ExitKind::Returned);
    EXPECT_GT(ring.size(), 1024u);
    EXPECT_GT(ring.growCount(), 0u);

    // Every emitted request is intact: frame push/pop + one update
    // per branch + one check per checked branch.
    uint64_t drained = 0;
    ring.drain([&](const IpdsRequest &) { drained++; });
    const DetectorStats &s = det.stats();
    EXPECT_EQ(drained, 2 * s.framesPushed + s.updatesApplied +
                  s.checksEnqueued);
}

// ------------------------------------------- engine accounting guards

TEST(FaultEngine, ResidentBitsNeverUnderflows)
{
    // Randomized push/pop/ctx-switch streams, including the dropped
    // pushes and duplicated pops a faulted transport can produce. The
    // resident-bits accounting must clamp (counted), never wrap.
    for (uint64_t seed = 1; seed <= 10; seed++) {
        TimingConfig cfg;
        cfg.bsvStackBits = 256;
        cfg.bcvStackBits = 128;
        cfg.batStackBits = 2048;
        cfg.maxFrameDepth = 8;
        IpdsEngine eng(cfg);
        Rng rng(seed);
        uint64_t now = 0;
        uint32_t depth = 0;
        for (int op = 0; op < 4000; op++) {
            now += 1 + rng.below(5);
            uint32_t pick = static_cast<uint32_t>(rng.below(100));
            IpdsRequest rq;
            if (pick < 45) {
                rq.kind = IpdsRequest::Kind::PushFrame;
                rq.tableBits = 64 + rng.below(2048);
                if (rng.below(10) == 0)
                    continue; // dropped push
                eng.enqueue(rq, now);
                depth++;
            } else if (pick < 90) {
                rq.kind = IpdsRequest::Kind::PopFrame;
                rq.tableBits = 64 + rng.below(2048);
                eng.enqueue(rq, now);
                if (rng.below(10) == 0)
                    eng.enqueue(rq, now); // duplicated pop
            } else {
                eng.contextSwitch(rng.below(2) == 0);
            }
            // No wrap: bits bounded by what was ever pushed.
            EXPECT_LT(eng.residentTableBits(),
                      uint64_t(4000) * 4096)
                << "seed " << seed << " op " << op;
            EXPECT_LE(eng.frameDepth(), cfg.maxFrameDepth)
                << "seed " << seed << " op " << op;
        }
        EXPECT_GT(eng.stats().depthClamps, 0u) << "seed " << seed;
    }
}

TEST(FaultEngine, DepthGuardKeepsFillCostsAccounted)
{
    TimingConfig cfg;
    cfg.maxFrameDepth = 4;
    IpdsEngine eng(cfg);
    IpdsRequest push;
    push.kind = IpdsRequest::Kind::PushFrame;
    push.tableBits = 512;
    for (int i = 0; i < 20; i++)
        eng.enqueue(push, i);
    EXPECT_EQ(eng.frameDepth(), 4u);
    EXPECT_EQ(eng.stats().depthClamps, 16u);
    EXPECT_EQ(eng.stats().framesDepth, 4u);

    // Popping back out fills the merged deep frame: its bits were not
    // forgotten by the clamp.
    IpdsRequest pop;
    pop.kind = IpdsRequest::Kind::PopFrame;
    uint64_t fillsBefore = eng.stats().fillEvents;
    for (int i = 0; i < 4; i++)
        eng.enqueue(pop, 100 + i);
    EXPECT_EQ(eng.frameDepth(), 0u);
    EXPECT_GT(eng.stats().fillEvents, fillsBefore);
    EXPECT_EQ(eng.residentTableBits(), 0u);
    EXPECT_EQ(eng.stats().accountingClamps, 0u)
        << "clean stream must never need the clamp";
}

// --------------------------------------- differential fault oracles

/** Everything a faulted run produces that must match across models. */
struct Capture
{
    RunResult res;
    std::vector<Alarm> alarms;
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
};

void
expectSameAlarms(const std::vector<Alarm> &a,
                 const std::vector<Alarm> &b, const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].func, b[i].func) << what << " #" << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << what << " #" << i;
        EXPECT_EQ(a[i].actualTaken, b[i].actualTaken)
            << what << " #" << i;
        EXPECT_EQ(a[i].expected, b[i].expected) << what << " #" << i;
        EXPECT_EQ(a[i].branchIndex, b[i].branchIndex)
            << what << " #" << i;
    }
}

/**
 * One fully faulted run: injector interposed over detector + timing
 * model, ring filter armed, memory tampers armed. @p reference swaps
 * the fast Detector for the frozen ReferenceDetector (request sink
 * transport), @p eng / @p batched select the VM engine.
 */
Capture
runFaulted(const CompiledProgram &prog,
           const std::vector<std::string> &inputs,
           const FaultPlan &plan, VmEngine eng, bool batched,
           bool reference)
{
    TimingConfig cfg;
    plan.applyTo(cfg);
    CpuModel cpu(cfg);
    Vm vm(prog.mod);
    vm.setInputs(inputs);
    vm.setFuel(5'000'000);
    vm.setEngine(eng);
    vm.setBatchedDelivery(batched);

    Detector det(prog);
    ReferenceDetector ref(prog);
    FaultInjector inj(plan, 0);
    if (reference) {
        ref.setRequestSink(cpu.requestSink());
        inj.addTarget(&ref);
        inj.addReference(&ref);
    } else {
        det.setRequestRing(&cpu.requestRing());
        inj.addTarget(&det);
        inj.addDetector(&det);
    }
    inj.addTarget(&cpu);
    inj.setCpu(&cpu);
    if (plan.enabled()) {
        cpu.requestRing().setFault(plan.ringDropPermille,
                                   plan.ringDupPermille, plan.seed);
        for (const TamperSpec &spec : plan.memTamperSpecs(0))
            vm.addTamper(spec);
    }
    vm.addObserver(&inj);

    Capture c;
    c.res = vm.run();
    c.alarms = reference ? ref.alarms() : det.alarms();
    c.det = reference ? ref.stats() : det.stats();
    c.tim = cpu.stats();
    c.fault = inj.stats();
    c.fault.ringDrops = cpu.requestRing().faultDropCount();
    c.fault.ringDups = cpu.requestRing().faultDupCount();
    return c;
}

/** The named fault classes every oracle sweeps. */
struct PlanCase
{
    const char *name;
    FaultPlan plan;
};

std::vector<PlanCase>
faultClasses()
{
    std::vector<PlanCase> cases;
    cases.push_back({"clean", FaultPlan{}});

    FaultPlan bsv;
    bsv.seed = 7;
    bsv.bsvEveryBranches = 37;
    cases.push_back({"bsv-flips", bsv});

    FaultPlan ringF;
    ringF.seed = 11;
    ringF.ringDropPermille = 80;
    ringF.ringDupPermille = 40;
    cases.push_back({"ring-drop-dup", ringF});

    FaultPlan ctx;
    ctx.seed = 13;
    ctx.ctxEveryBranches = 53;
    ctx.lazyCtx = true;
    cases.push_back({"ctx-storm-lazy", ctx});

    FaultPlan spill;
    spill.seed = 17;
    spill.spillPressure = true;
    cases.push_back({"spill-pressure", spill});

    FaultPlan mem;
    mem.seed = 19;
    mem.memEveryInsts = 900;
    mem.maxMemFaults = 3;
    cases.push_back({"mem-tampers", mem});

    FaultPlan storm;
    storm.seed = 23;
    storm.memEveryInsts = 1500;
    storm.maxMemFaults = 2;
    storm.bsvEveryBranches = 41;
    storm.ringDropPermille = 60;
    storm.ringDupPermille = 60;
    storm.ctxEveryBranches = 61;
    storm.lazyCtx = false;
    storm.spillPressure = true;
    cases.push_back({"everything-storm", storm});
    return cases;
}

TEST(FaultOracle, FastAndReferenceDetectorsAgreeUnderEveryFault)
{
    for (const char *wlName : {"telnetd", "wu-ftpd"}) {
        const Workload &wl = workloadByName(wlName);
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        for (const PlanCase &pc : faultClasses()) {
            std::string what =
                std::string(wlName) + "/" + pc.name;
            Capture fast =
                runFaulted(prog, wl.benignInputs, pc.plan,
                           VmEngine::Threaded, false, false);
            Capture ref =
                runFaulted(prog, wl.benignInputs, pc.plan,
                           VmEngine::Threaded, false, true);
            expectSameAlarms(ref.alarms, fast.alarms, what);
            EXPECT_TRUE(ref.det == fast.det) << what;
            EXPECT_TRUE(ref.tim == fast.tim) << what;
            EXPECT_TRUE(ref.fault == fast.fault) << what;
            EXPECT_EQ(ref.res.output, fast.res.output) << what;
            EXPECT_EQ(ref.res.steps, fast.res.steps) << what;
            if (pc.plan.seed == 0) {
                EXPECT_TRUE(fast.alarms.empty())
                    << what << ": false alarm on clean run";
            }
        }
    }
}

TEST(FaultOracle, EnginesStayBitIdenticalUnderEveryFault)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    for (const PlanCase &pc : faultClasses()) {
        Capture sw = runFaulted(prog, wl.benignInputs, pc.plan,
                                VmEngine::Switch, false, false);
        Capture th = runFaulted(prog, wl.benignInputs, pc.plan,
                                VmEngine::Threaded, false, false);
        Capture tb = runFaulted(prog, wl.benignInputs, pc.plan,
                                VmEngine::Threaded, true, false);
        for (const Capture *c : {&th, &tb}) {
            std::string what = std::string(pc.name) +
                (c == &th ? "/threaded" : "/threaded+batched");
            expectSameAlarms(sw.alarms, c->alarms, what);
            EXPECT_TRUE(sw.det == c->det) << what;
            EXPECT_TRUE(sw.tim == c->tim) << what;
            EXPECT_TRUE(sw.fault == c->fault) << what;
            EXPECT_EQ(sw.res.output, c->res.output) << what;
            EXPECT_EQ(sw.res.steps, c->res.steps) << what;
            EXPECT_TRUE(sw.res.branchTrace == c->res.branchTrace)
                << what;
            ASSERT_EQ(sw.res.faultTampers.size(),
                      c->res.faultTampers.size())
                << what;
            for (size_t i = 0; i < sw.res.faultTampers.size(); i++) {
                EXPECT_EQ(sw.res.faultTampers[i].fired,
                          c->res.faultTampers[i].fired)
                    << what;
                EXPECT_EQ(sw.res.faultTampers[i].addr,
                          c->res.faultTampers[i].addr)
                    << what;
                EXPECT_TRUE(sw.res.faultTampers[i].newBytes ==
                            c->res.faultTampers[i].newBytes)
                    << what;
            }
        }
    }
}

TEST(FaultOracle, ZeroRatePlanIsFullyTransparent)
{
    // An *armed* injector with nothing to inject must be invisible:
    // same alarms, stats and cycles as the direct wiring.
    const Workload &wl = workloadByName("xinetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    FaultPlan inert;
    inert.seed = 99; // enabled, but every rate zero
    inert.maxMemFaults = 0;
    Capture viaInjector = runFaulted(
        prog, wl.benignInputs, inert, VmEngine::Threaded, true, false);

    TimingConfig cfg;
    CpuModel cpu(cfg);
    Vm vm(prog.mod);
    vm.setInputs(wl.benignInputs);
    Detector det(prog);
    det.setRequestRing(&cpu.requestRing());
    vm.addObserver(&det);
    vm.addObserver(&cpu);
    RunResult direct = vm.run();

    EXPECT_TRUE(det.stats() == viaInjector.det);
    EXPECT_TRUE(cpu.stats() == viaInjector.tim);
    EXPECT_TRUE(det.alarms().empty());
    EXPECT_TRUE(viaInjector.alarms.empty());
    EXPECT_EQ(direct.output, viaInjector.res.output);
    EXPECT_EQ(direct.steps, viaInjector.res.steps);
    FaultStats zero;
    EXPECT_TRUE(viaInjector.fault == zero);
}

TEST(FaultOracle, NoPanicReachableFromFaultStorms)
{
    // Aggressive derived plans across seeds: whatever fires, the run
    // must end in a clean ExitKind, never a PanicError.
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    for (uint64_t seed = 1; seed <= 6; seed++) {
        FaultPlan plan = FaultPlan::fromSeed(seed);
        plan.memEveryInsts = 500; // much hotter than fromSeed's
        plan.bsvEveryBranches = 11;
        plan.ringDropPermille = 200;
        plan.ringDupPermille = 200;
        plan.ctxEveryBranches = 17;
        plan.spillPressure = true;
        for (bool batched : {false, true}) {
            Capture c;
            ASSERT_NO_THROW(
                c = runFaulted(prog, wl.benignInputs, plan,
                               VmEngine::Threaded, batched, false))
                << "seed " << seed;
            EXPECT_TRUE(c.res.exit == ExitKind::Returned ||
                        c.res.exit == ExitKind::Exited ||
                        c.res.exit == ExitKind::Trapped ||
                        c.res.exit == ExitKind::OutOfFuel);
        }
    }
}

// ------------------------------------------------ session facade wiring

TEST(FaultSession, PlanRunsShardedAndExportsMetrics)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    FaultPlan plan;
    plan.seed = 31;
    plan.bsvEveryBranches = 43;
    plan.ringDropPermille = 50;
    plan.ringDupPermille = 30;
    plan.ctxEveryBranches = 71;
    plan.spillPressure = true;
    plan.memEveryInsts = 2000;
    plan.maxMemFaults = 2;

    auto make = [&](unsigned threads) {
        return Session::builder()
            .program(prog)
            .inputs(wl.benignInputs)
            .timing(TimingConfig{})
            .plan(ExecPlan().faults(plan))
            .sessions(6)
            .shards(3)
            .threads(threads)
            .build();
    };
    Session a = make(1);
    a.run();
    const FaultStats &fs = a.faultStats();
    EXPECT_GT(fs.bsvFlips + fs.ctxSwitches + fs.ringDrops +
                  fs.ringDups + fs.memTampers,
              0u);
    std::string json = a.metricsJson();
    EXPECT_NE(json.find(obs::names::kFaultBsvFlips),
              std::string::npos);
    EXPECT_NE(json.find(obs::names::kEngFramesDepth),
              std::string::npos);

    // Thread-count invariance survives fault injection: per-session
    // salts make the aggregate a pure function of (sessions, shards).
    Session b = make(3);
    b.run();
    EXPECT_EQ(json, b.metricsJson());
    EXPECT_TRUE(a.faultStats() == b.faultStats());
    EXPECT_TRUE(a.timingStats() == b.timingStats());
    expectSameAlarms(a.alarms(), b.alarms(), "threads 1 vs 3");
}

TEST(FaultSession, CleanRunsStayAlarmFreeUnderBenignFaults)
{
    // Ring perturbation, spill pressure and ctx storms do not corrupt
    // detector state: zero false alarms on benign inputs.
    for (const char *wlName : {"telnetd", "wu-ftpd", "xinetd"}) {
        const Workload &wl = workloadByName(wlName);
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        FaultPlan plan;
        plan.seed = 5;
        plan.ringDropPermille = 100;
        plan.ringDupPermille = 100;
        plan.ctxEveryBranches = 29;
        plan.spillPressure = true;
        Session s = Session::builder()
                        .program(prog)
                        .inputs(wl.benignInputs)
                        .timing(TimingConfig{})
                        .plan(ExecPlan().faults(plan))
                        .sessions(3)
                        .build();
        s.run();
        EXPECT_FALSE(s.alarmed()) << wlName
            << ": transport/timing faults must not fake an attack";
        EXPECT_GT(s.faultStats().ringDrops, 0u) << wlName;
        EXPECT_GT(s.faultStats().ctxSwitches, 0u) << wlName;
    }
}

// --------------------------------------- spilled-frame tamper e2e

/**
 * The victim's decision variable is corrupted while the table stack
 * is under heavy spill pressure and the victim frame's tables are
 * off-chip (deep recursion, shrunken stacks). Detection must survive
 * the spill/fill round trip in both delivery modes.
 */
TEST(FaultE2E, TamperWhileFrameSpilledIsStillDetected)
{
    const char *src = R"(
int secret;
int spin(int n) {
    if (n <= 0) { return 0; }
    return spin(n - 1) + 1;
}
void main() {
    int i;
    secret = 7;
    i = 0;
    while (i < 6) {
        if (secret > 5) { print_str("hi\n"); } else { print_str("lo\n"); }
        print_int(spin(40));
        i = i + 1;
    }
}
)";
    CompiledProgram prog = compileAndAnalyze(src, "spilltamper");

    uint64_t secretAddr = 0;
    for (const auto &obj : prog.mod.objects)
        if (obj.name == "secret")
            secretAddr = Vm(prog.mod).globalBase(obj.id);
    ASSERT_NE(secretAddr, 0u);

    // Shrunken on-chip stacks: spin's 40 frames evict main's tables.
    TimingConfig cfg;
    cfg.bsvStackBits = 64;
    cfg.bcvStackBits = 32;
    cfg.batStackBits = 512;

    for (bool batched : {false, true}) {
        std::string what =
            batched ? "batched delivery" : "per-event delivery";
        auto runOnce = [&](bool tampered) {
            CpuModel cpu(cfg);
            Vm vm(prog.mod);
            Detector det(prog);
            det.setRequestRing(&cpu.requestRing());
            vm.addObserver(&det);
            vm.addObserver(&cpu);
            vm.setBatchedDelivery(batched);
            if (tampered) {
                TamperSpec spec;
                spec.randomStackTarget = false;
                spec.atStep = 400; // deep inside a spin() recursion
                spec.addr = secretAddr;
                spec.bytes = {0, 0, 0, 0, 0, 0, 0, 0};
                vm.addTamper(spec);
            }
            RunResult r = vm.run();
            if (tampered) {
                EXPECT_EQ(r.faultTampers.size(), 1u) << what;
                EXPECT_TRUE(r.faultTampers[0].fired) << what;
            }
            EXPECT_GT(cpu.stats().engine.spillEvents, 0u) << what;
            EXPECT_GT(cpu.stats().engine.fillEvents, 0u) << what;
            return det.alarmed();
        };
        EXPECT_FALSE(runOnce(false))
            << what << ": clean deep-recursion run false-alarmed";
        EXPECT_TRUE(runOnce(true))
            << what
            << ": tamper under spill pressure went undetected";
    }
}

} // namespace
} // namespace ipds
