/**
 * @file
 * Trace capture & replay suite (ctest label `replay`).
 *
 * The standing contract under test: a Session run recorded with
 * captureTo() and replayed with replayFrom() reproduces alarms,
 * DetectorStats, TimingStats, FaultStats and the shared metrics
 * BIT-IDENTICALLY, with no VM in the loop; captures are byte-identical
 * across VM engines and delivery modes; sharded replay is
 * thread-count-invariant; and every corrupt, truncated, version-skewed
 * or foreign-module trace surfaces as a recoverable FatalError, never
 * a panic. A golden fixture in tests/data/ pins the on-disk encoding
 * to kTraceVersion: changing the format without bumping the version
 * fails loudly here.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "obs/names.h"
#include "obs/session.h"
#include "replay/format.h"
#include "replay/reader.h"
#include "replay/replay.h"
#include "replay/writer.h"
#include "support/diag.h"
#include "timing/config.h"
#include "timing/cpu.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

#ifndef IPDS_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define IPDS_TEST_DATA_DIR"
#endif

namespace ipds {
namespace {

// ------------------------------------------------------------- helpers

std::string
tmpTracePath(const std::string &name)
{
    return testing::TempDir() + "ipds_" + name + ".trc";
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Fix the header CRC after editing a header field (tests only). */
void
resealHeader(std::vector<uint8_t> &b)
{
    ASSERT_GE(b.size(), replay::kHeaderBytes);
    replay::putU32(b.data() + 36, replay::crc32(b.data(), 36));
}

bool
sameAlarms(const std::vector<Alarm> &a, const std::vector<Alarm> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (a[i].func != b[i].func || a[i].pc != b[i].pc ||
            a[i].actualTaken != b[i].actualTaken ||
            a[i].expected != b[i].expected ||
            a[i].branchIndex != b[i].branchIndex)
            return false;
    }
    return true;
}

/** metricsText() minus the replay-side meter lines (ipds.replay.* is
 *  new information the capture run cannot carry, and events_per_sec is
 *  wall-clock). Everything else must match bit-for-bit. */
std::string
stripReplayLines(const std::string &text)
{
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.rfind("ipds.replay.", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

/** Small server-ish program with a correlated privilege flag — the
 *  same shape the obs suite uses, pinned here for tamper and golden
 *  tests. */
const char *kLoopProgram = R"(
void main() {
    int role;
    int req;
    role = 0;
    if (input_int() == 42) {
        role = 1;
    }
    req = 0;
    while (req < 4) {
        if (role == 1) {
            print_str("p\n");
        } else {
            print_str("n\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

const std::vector<std::string> kLoopInputs{"7", "1", "2", "3", "4"};

// ------------------------------------------------- format primitives

TEST(ReplayFormat, ZigzagRoundTripsExtremes)
{
    for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1),
                      int64_t(1) << 40, -(int64_t(1) << 40),
                      INT64_MAX, INT64_MIN})
        EXPECT_EQ(replay::zigzagDecode(replay::zigzagEncode(v)), v);
}

TEST(ReplayFormat, Crc32MatchesReferenceVector)
{
    // The IEEE 802.3 check value for "123456789".
    const uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                           '9'};
    EXPECT_EQ(replay::crc32(msg, sizeof msg), 0xCBF43926u);
}

TEST(ReplayFormat, TimingConfigPackIsLossless)
{
    TimingConfig cfg = table1Config();
    uint32_t words[replay::kTimingConfigWords];
    replay::packTimingConfig(cfg, words);
    TimingConfig back = replay::unpackTimingConfig(words);
    uint32_t words2[replay::kTimingConfigWords];
    replay::packTimingConfig(back, words2);
    for (uint32_t i = 0; i < replay::kTimingConfigWords; i++)
        EXPECT_EQ(words[i], words2[i]) << "word " << i;
}

TEST(ReplayFormat, ModuleHashSeparatesPrograms)
{
    CompiledProgram a = compileAndAnalyze(kLoopProgram, "rt_a");
    CompiledProgram b = compileAndAnalyze(
        "void main() { print_str(\"x\"); }", "rt_b");
    EXPECT_EQ(replay::moduleContentHash(a.mod),
              replay::moduleContentHash(a.mod));
    EXPECT_NE(replay::moduleContentHash(a.mod),
              replay::moduleContentHash(b.mod));
}

// ------------------------------------------------------- round trips

TEST(ReplayRoundTrip, AllWorkloadsDetectorOnly)
{
    for (const Workload &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name);
        std::string path = tmpTracePath("det_" + wl.name);

        Session live = Session::builder()
                           .program(prog)
                           .inputs(wl.benignInputs)
                           .sessions(3)
                           .shards(2)
                           .plan(CapturePlan(path))
                           .build();
        live.run();

        Session rep = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(path))
                          .build();
        rep.run();

        EXPECT_TRUE(rep.detectorStats() == live.detectorStats())
            << wl.name;
        EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()))
            << wl.name;
        EXPECT_TRUE(rep.timingStats() == live.timingStats())
            << wl.name;
        std::remove(path.c_str());
    }
}

TEST(ReplayRoundTrip, AllWorkloadsTiming)
{
    for (const Workload &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name);
        std::string path = tmpTracePath("tim_" + wl.name);

        Session live = Session::builder()
                           .program(prog)
                           .inputs(wl.benignInputs)
                           .timing(table1Config())
                           .sessions(2)
                           .shards(2)
                           .plan(CapturePlan(path))
                           .build();
        live.run();

        Session rep = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(path))
                          .build();
        rep.run();

        // The full triple the tentpole promises: alarms,
        // DetectorStats AND cycle-exact TimingStats, with no VM.
        EXPECT_TRUE(rep.detectorStats() == live.detectorStats())
            << wl.name;
        EXPECT_TRUE(rep.timingStats() == live.timingStats())
            << wl.name;
        EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()))
            << wl.name;
        std::remove(path.c_str());
    }
}

TEST(ReplayRoundTrip, MetricsMatchModuloReplayMeters)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("metrics");

    Session live = Session::builder()
                       .program(prog)
                       .inputs(wl.benignInputs)
                       .timing(table1Config())
                       .sessions(4)
                       .shards(2)
                       .plan(CapturePlan(path))
                       .build();
    live.run();

    // The replay builder's geometry is deliberately wrong: the trace
    // header's (sessions, shards) must override it.
    Session rep = Session::builder()
                      .program(prog)
                      .sessions(999)
                      .shards(7)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();

    EXPECT_EQ(stripReplayLines(rep.metricsText()),
              live.metricsText());
    namespace n = obs::names;
    const obs::MetricsRegistry &m = rep.metrics();
    EXPECT_EQ(m.value(m.find(n::kSessRuns)), 4u);
    EXPECT_EQ(m.value(m.find(n::kReplaySessions)), 4u);
    EXPECT_GT(m.value(m.find(n::kReplayChunks)), 0u);
    EXPECT_GT(m.value(m.find(n::kReplayEvents)), 0u);
    EXPECT_EQ(m.value(m.find(n::kReplayBytes)),
              readBytes(path).size());
    EXPECT_EQ(m.value(m.find(n::kReplayCrcFailures)), 0u);
    // Replay has no VM output to reproduce.
    EXPECT_EQ(rep.result().output, "");
    std::remove(path.c_str());
}

TEST(ReplayRoundTrip, ShardedReplayIsThreadCountInvariant)
{
    const Workload &wl = workloadByName("wu-ftpd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("sharded");

    Session::builder()
        .program(prog)
        .inputs(wl.benignInputs)
        .timing(table1Config())
        .sessions(8)
        .shards(4)
        .plan(CapturePlan(path))
        .build()
        .run();

    auto replayWith = [&](unsigned threads) {
        Session s = Session::builder()
                        .program(prog)
                        .threads(threads)
                        .plan(ReplayPlan(path))
                        .build();
        s.run();
        // events_per_sec is wall-clock; everything else — including
        // the other ipds.replay.* meters — must be a pure function of
        // the trace, not of the worker count.
        std::istringstream in(s.metricsText());
        std::string out, line;
        while (std::getline(in, line))
            if (line.find("events_per_sec") == std::string::npos)
                out += line + "\n";
        return out;
    };
    std::string t1 = replayWith(1);
    EXPECT_EQ(t1, replayWith(2));
    EXPECT_EQ(t1, replayWith(8));
    std::remove(path.c_str());
}

// --------------------------------------- capture-side byte identity

TEST(ReplayCapture, CapturesAreByteIdenticalAcrossEnginesAndDelivery)
{
    // BranchesOnly capture must not depend on which engine ran or how
    // events were delivered — the compact stream is the committed
    // event order, which the vm-diff suite holds bit-identical.
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    auto captureWith = [&](VmEngine e, bool batched) {
        std::ostringstream os;
        replay::TraceWriter w(os,
                              replay::TraceWriter::Mode::BranchesOnly);
        Vm vm(prog.mod);
        vm.setInputs(wl.benignInputs);
        vm.setEngine(e);
        vm.setBatchedDelivery(batched);
        Detector det(prog);
        vm.addObserver(&det);
        vm.addObserver(&w);
        w.beginSession(0);
        RunResult r = vm.run();
        // Flush count differs across delivery modes by design, so it
        // is pinned to 0 here; steps/instructions/blocks are part of
        // the cross-engine equivalence contract.
        w.endSession(r.steps, r.inputEventCount, 0,
                     vm.vmStats().instructions, vm.vmStats().blocks,
                     0);
        w.finish();
        return os.str();
    };

    std::string switchStream = captureWith(VmEngine::Switch, false);
    std::string threadedBatched =
        captureWith(VmEngine::Threaded, true);
    std::string threadedPerEvent =
        captureWith(VmEngine::Threaded, false);
    EXPECT_FALSE(switchStream.empty());
    EXPECT_EQ(switchStream, threadedBatched);
    EXPECT_EQ(switchStream, threadedPerEvent);
}

// ------------------------------------------------ fault composition

TEST(ReplayFault, FaultPlanComposesAndReplaysIdentically)
{
    // Every fault class at once — mem tampers, BSV flips, ring
    // drop/dup, context-switch storms, spill pressure — recorded into
    // the trace and reproduced from it with identical stats.
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("fault");

    FaultPlan plan;
    plan.seed = 31;
    plan.bsvEveryBranches = 43;
    plan.ringDropPermille = 50;
    plan.ringDupPermille = 30;
    plan.ctxEveryBranches = 71;
    plan.spillPressure = true;
    plan.memEveryInsts = 2000;
    plan.maxMemFaults = 2;

    Session live = Session::builder()
                       .program(prog)
                       .inputs(wl.benignInputs)
                       .timing(table1Config())
                       .sessions(3)
                       .shards(1)
                       .plan(CapturePlan(path).exec(
                           ExecPlan().faults(plan)))
                       .build();
    live.run();
    EXPECT_GT(live.faultStats().bsvFlips +
                  live.faultStats().ctxSwitches +
                  live.faultStats().memTampers,
              0u);

    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();

    EXPECT_TRUE(rep.detectorStats() == live.detectorStats());
    EXPECT_TRUE(rep.timingStats() == live.timingStats());
    EXPECT_TRUE(rep.faultStats() == live.faultStats());
    EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()));
    std::remove(path.c_str());
}

TEST(ReplayFault, TamperedRunAlarmsIdenticallyOnReplay)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::string path = tmpTracePath("tamper");

    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 2;
    spec.addr = Vm(prog.mod).entryLocalAddr("role");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};

    Session live = Session::builder()
                       .program(prog)
                       .inputs(kLoopInputs)
                       .plan(CapturePlan(path).exec(
                           ExecPlan().tamper(spec)))
                       .build();
    live.run();
    ASSERT_TRUE(live.alarmed());

    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();
    ASSERT_TRUE(rep.alarmed());
    EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()));
    EXPECT_EQ(rep.alarms().front().pc, live.alarms().front().pc);
    std::remove(path.c_str());
}

// --------------------------------------------------- recipe guards

namespace {

void
expectBuildFatal(Session::Builder b, const char *what)
{
    try {
        b.build();
        FAIL() << "expected FatalError: " << what;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(what),
                  std::string::npos)
            << e.what();
    }
}

} // namespace

// The pre-plan setters remain as deprecated shims; they must still
// compile, behave identically, and hit the same build()-time guards.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ReplayBuilder, IncompatibleRecipesAreRejected)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .captureTo("a.trc")
                         .replayFrom("b.trc"),
                     "mutually exclusive");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .replayFrom("b.trc")
                         .faultPlan(FaultPlan::fromSeed(3)),
                     "faultPlan");
    TamperSpec spec;
    expectBuildFatal(Session::builder().program(prog).replayFrom(
                         "b.trc").tamper(spec),
                     "tamper");
}

TEST(ReplayBuilder, DeprecatedShimsStillCaptureAndReplay)
{
    // The one retained exercise of the old spelling end to end: a
    // shim-built capture must stay bit-identical to a plan-built
    // replay (and vice versa), so migration is purely mechanical.
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::string path = tmpTracePath("shim");
    Session live = Session::builder()
                       .program(prog)
                       .inputs(kLoopInputs)
                       .sessions(2)
                       .captureTo(path)
                       .build();
    live.run();
    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();
    EXPECT_TRUE(rep.detectorStats() == live.detectorStats());
    EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()));
    std::remove(path.c_str());
}
#pragma GCC diagnostic pop

TEST(ReplayBuilder, MixedPlansAreRejected)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .plan(CapturePlan("a.trc"))
                         .plan(ReplayPlan("b.trc")),
                     "mutually exclusive");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .plan(ExecPlan())
                         .plan(ServePlan("s.sock")),
                     "mutually exclusive");
}

// ------------------------------------------------- corrupt traces

/** One small captured trace, reused by the rejection tests. */
std::vector<uint8_t>
captureSmallTrace(const CompiledProgram &prog)
{
    std::string path = tmpTracePath("reject");
    Session::builder()
        .program(prog)
        .inputs(kLoopInputs)
        .sessions(2)
        .plan(CapturePlan(path))
        .build()
        .run();
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());
    return bytes;
}

TEST(ReplayReject, ChunkCrcCorruptionIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);
    ASSERT_GT(bytes.size(),
              replay::kHeaderBytes + replay::kChunkHeaderBytes + 4);

    // Flip one payload byte: load must throw the recoverable error
    // class, and validate must tally exactly one CRC failure.
    bytes[replay::kHeaderBytes + replay::kChunkHeaderBytes + 2] ^=
        0xff;
    try {
        replay::TraceFile::fromBytes(bytes);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << e.what();
    }
    replay::ValidateResult v =
        replay::TraceFile::validateBytes(bytes);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.crcFailures, 1u);
    EXPECT_EQ(v.versionMismatches, 0u);
}

TEST(ReplayReject, TruncationIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);

    std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 5);
    try {
        replay::TraceFile::fromBytes(cut);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_FALSE(replay::TraceFile::validateBytes(cut).ok);

    // Cutting mid-header must also stay recoverable.
    std::vector<uint8_t> stub(bytes.begin(), bytes.begin() + 10);
    EXPECT_THROW(replay::TraceFile::fromBytes(stub), FatalError);
}

TEST(ReplayReject, VersionSkewIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);

    replay::putU32(bytes.data() + 8, replay::kTraceVersion + 1);
    resealHeader(bytes);
    try {
        replay::TraceFile::fromBytes(bytes);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
    replay::ValidateResult v =
        replay::TraceFile::validateBytes(bytes);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.versionMismatches, 1u);
}

TEST(ReplayReject, BadMagicIsRecoverable)
{
    std::vector<uint8_t> junk(64, 0x5a);
    try {
        replay::TraceFile::fromBytes(junk);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReplayReject, ForeignModuleIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);
    replay::TraceFile file = replay::TraceFile::fromBytes(bytes);

    // Same program: accepted.
    replay::ReplayEngine ok(file, prog);
    EXPECT_EQ(ok.sessions(), 2u);

    // A different program — or the same source after an edit — is a
    // foreign module and must be rejected before any decoding.
    CompiledProgram other = compileAndAnalyze(
        "void main() { print_str(\"other\"); }", "replay_other");
    try {
        replay::ReplayEngine bad(file, other);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("different program"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReplayReject, CorruptPayloadCannotReachDetectorPanics)
{
    // A CRC-valid chunk whose records are garbage must fail as a
    // FatalError from the replay engine's own validation, never as a
    // detector panic. Corrupt the payload, then re-seal the chunk CRC
    // so only the defensive decoding stands between the bytes and the
    // detector.
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);

    size_t payloadOff =
        replay::kHeaderBytes + replay::kChunkHeaderBytes;
    uint32_t payloadLen = replay::getU32(
        bytes.data() + replay::kHeaderBytes);
    ASSERT_GT(payloadLen, 8u);
    for (size_t i = 1; i < 8; i++)
        bytes[payloadOff + i] ^= 0xa5;
    replay::putU32(
        bytes.data() + replay::kHeaderBytes + 12,
        replay::crc32(bytes.data() + payloadOff, payloadLen));

    replay::TraceFile file = replay::TraceFile::fromBytes(bytes);
    replay::ReplayEngine eng(file, prog);
    replay::ReplayShardResult out;
    EXPECT_THROW(eng.replayShard(0, out), FatalError);
}

// ------------------------------------------------- golden fixture

TEST(ReplayGolden, FixtureBytesArePinnedToFormatVersion)
{
    // The encoder's output for this pinned program and script is part
    // of the on-disk format. If this test fails you changed the trace
    // encoding: bump replay::kTraceVersion in src/replay/format.h and
    // regenerate the fixture with
    //   IPDS_REGEN_GOLDEN=1 ./build/tests/ipds_replay_tests
    //   (with --gtest_filter='ReplayGolden.*')
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "golden_loop");
    std::string path = tmpTracePath("golden");
    Session::builder()
        .program(prog)
        .inputs(kLoopInputs)
        .sessions(2)
        .shards(2)
        .plan(CapturePlan(path))
        .build()
        .run();
    std::vector<uint8_t> fresh = readBytes(path);
    std::remove(path.c_str());

    const std::string goldenPath =
        std::string(IPDS_TEST_DATA_DIR) + "/golden_v1.trc";
    if (std::getenv("IPDS_REGEN_GOLDEN")) {
        writeBytes(goldenPath, fresh);
        GTEST_SKIP() << "regenerated " << goldenPath;
    }

    std::vector<uint8_t> golden = readBytes(goldenPath);
    ASSERT_FALSE(golden.empty())
        << "missing fixture " << goldenPath
        << " — regenerate with IPDS_REGEN_GOLDEN=1";
    EXPECT_EQ(fresh, golden)
        << "trace encoding changed without bumping kTraceVersion "
           "(see the versioning policy in src/replay/format.h)";

    // And the pinned bytes still replay: the fixture guards decode
    // compatibility, not just encode stability.
    replay::TraceFile file =
        replay::TraceFile::fromBytes(std::move(golden));
    EXPECT_EQ(file.meta().version, replay::kTraceVersion);
    EXPECT_EQ(file.meta().sessions, 2u);
    EXPECT_EQ(file.meta().shards, 2u);
    replay::ReplayEngine eng(file, prog);
    replay::ReplayShardResult s0, s1;
    eng.replayShard(0, s0);
    eng.replayShard(1, s1);
    EXPECT_EQ(s0.runs + s1.runs, 2u);
    EXPECT_GT(s0.det.branchesSeen, 0u);
    EXPECT_TRUE(s0.alarms.empty());
    EXPECT_TRUE(s1.alarms.empty());
}

} // namespace
} // namespace ipds
