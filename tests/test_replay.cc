/**
 * @file
 * Trace capture & replay suite (ctest label `replay`).
 *
 * The standing contract under test: a Session run recorded with
 * captureTo() and replayed with replayFrom() reproduces alarms,
 * DetectorStats, TimingStats, FaultStats and the shared metrics
 * BIT-IDENTICALLY, with no VM in the loop; captures are byte-identical
 * across VM engines and delivery modes; sharded replay is
 * thread-count-invariant; and every corrupt, truncated, version-skewed
 * or foreign-module trace surfaces as a recoverable FatalError, never
 * a panic. A golden fixture in tests/data/ pins the on-disk encoding
 * to kTraceVersion: changing the format without bumping the version
 * fails loudly here.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "obs/names.h"
#include "obs/session.h"
#include "replay/format.h"
#include "replay/reader.h"
#include "replay/replay.h"
#include "replay/snapshot.h"
#include "replay/writer.h"
#include "support/diag.h"
#include "timing/config.h"
#include "timing/cpu.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

#ifndef IPDS_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define IPDS_TEST_DATA_DIR"
#endif

namespace ipds {
namespace {

// ------------------------------------------------------------- helpers

std::string
tmpTracePath(const std::string &name)
{
    return testing::TempDir() + "ipds_" + name + ".trc";
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::vector<uint8_t> &b)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(b.data()),
              static_cast<std::streamsize>(b.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** Fix the header CRC after editing a header field (tests only). */
void
resealHeader(std::vector<uint8_t> &b)
{
    ASSERT_GE(b.size(), replay::kHeaderBytes);
    replay::putU32(b.data() + 36, replay::crc32(b.data(), 36));
}

bool
sameAlarms(const std::vector<Alarm> &a, const std::vector<Alarm> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (a[i].func != b[i].func || a[i].pc != b[i].pc ||
            a[i].actualTaken != b[i].actualTaken ||
            a[i].expected != b[i].expected ||
            a[i].branchIndex != b[i].branchIndex)
            return false;
    }
    return true;
}

/** metricsText() minus the replay-side meter lines (ipds.replay.* is
 *  new information the capture run cannot carry, and events_per_sec is
 *  wall-clock). Everything else must match bit-for-bit. */
std::string
stripReplayLines(const std::string &text)
{
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.rfind("ipds.replay.", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

/** Small server-ish program with a correlated privilege flag — the
 *  same shape the obs suite uses, pinned here for tamper and golden
 *  tests. */
const char *kLoopProgram = R"(
void main() {
    int role;
    int req;
    role = 0;
    if (input_int() == 42) {
        role = 1;
    }
    req = 0;
    while (req < 4) {
        if (role == 1) {
            print_str("p\n");
        } else {
            print_str("n\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

const std::vector<std::string> kLoopInputs{"7", "1", "2", "3", "4"};

// ------------------------------------------------- format primitives

TEST(ReplayFormat, ZigzagRoundTripsExtremes)
{
    for (int64_t v : {int64_t(0), int64_t(1), int64_t(-1),
                      int64_t(1) << 40, -(int64_t(1) << 40),
                      INT64_MAX, INT64_MIN})
        EXPECT_EQ(replay::zigzagDecode(replay::zigzagEncode(v)), v);
}

TEST(ReplayFormat, Crc32MatchesReferenceVector)
{
    // The IEEE 802.3 check value for "123456789".
    const uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                           '9'};
    EXPECT_EQ(replay::crc32(msg, sizeof msg), 0xCBF43926u);
}

TEST(ReplayFormat, TimingConfigPackIsLossless)
{
    TimingConfig cfg = table1Config();
    uint32_t words[replay::kTimingConfigWords];
    replay::packTimingConfig(cfg, words);
    TimingConfig back = replay::unpackTimingConfig(words);
    uint32_t words2[replay::kTimingConfigWords];
    replay::packTimingConfig(back, words2);
    for (uint32_t i = 0; i < replay::kTimingConfigWords; i++)
        EXPECT_EQ(words[i], words2[i]) << "word " << i;
}

TEST(ReplayFormat, ModuleHashSeparatesPrograms)
{
    CompiledProgram a = compileAndAnalyze(kLoopProgram, "rt_a");
    CompiledProgram b = compileAndAnalyze(
        "void main() { print_str(\"x\"); }", "rt_b");
    EXPECT_EQ(replay::moduleContentHash(a.mod),
              replay::moduleContentHash(a.mod));
    EXPECT_NE(replay::moduleContentHash(a.mod),
              replay::moduleContentHash(b.mod));
}

// ------------------------------------------------------- round trips

TEST(ReplayRoundTrip, AllWorkloadsDetectorOnly)
{
    for (const Workload &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name);
        std::string path = tmpTracePath("det_" + wl.name);

        Session live = Session::builder()
                           .program(prog)
                           .inputs(wl.benignInputs)
                           .sessions(3)
                           .shards(2)
                           .plan(CapturePlan(path))
                           .build();
        live.run();

        Session rep = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(path))
                          .build();
        rep.run();

        EXPECT_TRUE(rep.detectorStats() == live.detectorStats())
            << wl.name;
        EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()))
            << wl.name;
        EXPECT_TRUE(rep.timingStats() == live.timingStats())
            << wl.name;
        std::remove(path.c_str());
    }
}

TEST(ReplayRoundTrip, AllWorkloadsTiming)
{
    for (const Workload &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name);
        std::string path = tmpTracePath("tim_" + wl.name);

        Session live = Session::builder()
                           .program(prog)
                           .inputs(wl.benignInputs)
                           .timing(table1Config())
                           .sessions(2)
                           .shards(2)
                           .plan(CapturePlan(path))
                           .build();
        live.run();

        Session rep = Session::builder()
                          .program(prog)
                          .plan(ReplayPlan(path))
                          .build();
        rep.run();

        // The full triple the tentpole promises: alarms,
        // DetectorStats AND cycle-exact TimingStats, with no VM.
        EXPECT_TRUE(rep.detectorStats() == live.detectorStats())
            << wl.name;
        EXPECT_TRUE(rep.timingStats() == live.timingStats())
            << wl.name;
        EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()))
            << wl.name;
        std::remove(path.c_str());
    }
}

TEST(ReplayRoundTrip, MetricsMatchModuloReplayMeters)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("metrics");

    Session live = Session::builder()
                       .program(prog)
                       .inputs(wl.benignInputs)
                       .timing(table1Config())
                       .sessions(4)
                       .shards(2)
                       .plan(CapturePlan(path))
                       .build();
    live.run();

    // The replay builder's geometry is deliberately wrong: the trace
    // header's (sessions, shards) must override it.
    Session rep = Session::builder()
                      .program(prog)
                      .sessions(999)
                      .shards(7)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();

    // Both sides strip ipds.replay.*: the replay side's meters and
    // the capture side's snapshots_written are replay-domain lines.
    EXPECT_EQ(stripReplayLines(rep.metricsText()),
              stripReplayLines(live.metricsText()));
    namespace n = obs::names;
    const obs::MetricsRegistry &m = rep.metrics();
    EXPECT_EQ(m.value(m.find(n::kSessRuns)), 4u);
    EXPECT_EQ(m.value(m.find(n::kReplaySessions)), 4u);
    EXPECT_GT(m.value(m.find(n::kReplayChunks)), 0u);
    EXPECT_GT(m.value(m.find(n::kReplayEvents)), 0u);
    EXPECT_EQ(m.value(m.find(n::kReplayBytes)),
              readBytes(path).size());
    EXPECT_EQ(m.value(m.find(n::kReplayCrcFailures)), 0u);
    // Replay has no VM output to reproduce.
    EXPECT_EQ(rep.result().output, "");
    std::remove(path.c_str());
}

TEST(ReplayRoundTrip, ShardedReplayIsThreadCountInvariant)
{
    const Workload &wl = workloadByName("wu-ftpd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("sharded");

    Session::builder()
        .program(prog)
        .inputs(wl.benignInputs)
        .timing(table1Config())
        .sessions(8)
        .shards(4)
        .plan(CapturePlan(path))
        .build()
        .run();

    auto replayWith = [&](unsigned threads) {
        Session s = Session::builder()
                        .program(prog)
                        .threads(threads)
                        .plan(ReplayPlan(path))
                        .build();
        s.run();
        // events_per_sec is wall-clock; everything else — including
        // the other ipds.replay.* meters — must be a pure function of
        // the trace, not of the worker count.
        std::istringstream in(s.metricsText());
        std::string out, line;
        while (std::getline(in, line))
            if (line.find("events_per_sec") == std::string::npos)
                out += line + "\n";
        return out;
    };
    std::string t1 = replayWith(1);
    EXPECT_EQ(t1, replayWith(2));
    EXPECT_EQ(t1, replayWith(8));
    std::remove(path.c_str());
}

// --------------------------------------- capture-side byte identity

TEST(ReplayCapture, CapturesAreByteIdenticalAcrossEnginesAndDelivery)
{
    // BranchesOnly capture must not depend on which engine ran or how
    // events were delivered — the compact stream is the committed
    // event order, which the vm-diff suite holds bit-identical.
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    auto captureWith = [&](VmEngine e, bool batched) {
        std::ostringstream os;
        replay::TraceWriter w(os,
                              replay::TraceWriter::Mode::BranchesOnly);
        Vm vm(prog.mod);
        vm.setInputs(wl.benignInputs);
        vm.setEngine(e);
        vm.setBatchedDelivery(batched);
        Detector det(prog);
        vm.addObserver(&det);
        vm.addObserver(&w);
        w.beginSession(0);
        RunResult r = vm.run();
        // Flush count differs across delivery modes by design, so it
        // is pinned to 0 here; steps/instructions/blocks are part of
        // the cross-engine equivalence contract.
        w.endSession(r.steps, r.inputEventCount, 0,
                     vm.vmStats().instructions, vm.vmStats().blocks,
                     0);
        w.finish();
        return os.str();
    };

    std::string switchStream = captureWith(VmEngine::Switch, false);
    std::string threadedBatched =
        captureWith(VmEngine::Threaded, true);
    std::string threadedPerEvent =
        captureWith(VmEngine::Threaded, false);
    EXPECT_FALSE(switchStream.empty());
    EXPECT_EQ(switchStream, threadedBatched);
    EXPECT_EQ(switchStream, threadedPerEvent);
}

// ------------------------------------------------ fault composition

TEST(ReplayFault, FaultPlanComposesAndReplaysIdentically)
{
    // Every fault class at once — mem tampers, BSV flips, ring
    // drop/dup, context-switch storms, spill pressure — recorded into
    // the trace and reproduced from it with identical stats.
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("fault");

    FaultPlan plan;
    plan.seed = 31;
    plan.bsvEveryBranches = 43;
    plan.ringDropPermille = 50;
    plan.ringDupPermille = 30;
    plan.ctxEveryBranches = 71;
    plan.spillPressure = true;
    plan.memEveryInsts = 2000;
    plan.maxMemFaults = 2;

    Session live = Session::builder()
                       .program(prog)
                       .inputs(wl.benignInputs)
                       .timing(table1Config())
                       .sessions(3)
                       .shards(1)
                       .plan(CapturePlan(path).exec(
                           ExecPlan().faults(plan)))
                       .build();
    live.run();
    EXPECT_GT(live.faultStats().bsvFlips +
                  live.faultStats().ctxSwitches +
                  live.faultStats().memTampers,
              0u);

    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();

    EXPECT_TRUE(rep.detectorStats() == live.detectorStats());
    EXPECT_TRUE(rep.timingStats() == live.timingStats());
    EXPECT_TRUE(rep.faultStats() == live.faultStats());
    EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()));
    std::remove(path.c_str());
}

TEST(ReplayFault, TamperedRunAlarmsIdenticallyOnReplay)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::string path = tmpTracePath("tamper");

    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 2;
    spec.addr = Vm(prog.mod).entryLocalAddr("role");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};

    Session live = Session::builder()
                       .program(prog)
                       .inputs(kLoopInputs)
                       .plan(CapturePlan(path).exec(
                           ExecPlan().tamper(spec)))
                       .build();
    live.run();
    ASSERT_TRUE(live.alarmed());

    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();
    ASSERT_TRUE(rep.alarmed());
    EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()));
    EXPECT_EQ(rep.alarms().front().pc, live.alarms().front().pc);
    std::remove(path.c_str());
}

// --------------------------------------------------- recipe guards

namespace {

void
expectBuildFatal(Session::Builder b, const char *what)
{
    try {
        b.build();
        FAIL() << "expected FatalError: " << what;
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(what),
                  std::string::npos)
            << e.what();
    }
}

} // namespace

// The pre-plan setters remain as deprecated shims; they must still
// compile, behave identically, and hit the same build()-time guards.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ReplayBuilder, IncompatibleRecipesAreRejected)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .captureTo("a.trc")
                         .replayFrom("b.trc"),
                     "mutually exclusive");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .replayFrom("b.trc")
                         .faultPlan(FaultPlan::fromSeed(3)),
                     "faultPlan");
    TamperSpec spec;
    expectBuildFatal(Session::builder().program(prog).replayFrom(
                         "b.trc").tamper(spec),
                     "tamper");
}

TEST(ReplayBuilder, DeprecatedShimsStillCaptureAndReplay)
{
    // The one retained exercise of the old spelling end to end: a
    // shim-built capture must stay bit-identical to a plan-built
    // replay (and vice versa), so migration is purely mechanical.
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::string path = tmpTracePath("shim");
    Session live = Session::builder()
                       .program(prog)
                       .inputs(kLoopInputs)
                       .sessions(2)
                       .captureTo(path)
                       .build();
    live.run();
    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();
    EXPECT_TRUE(rep.detectorStats() == live.detectorStats());
    EXPECT_TRUE(sameAlarms(rep.alarms(), live.alarms()));
    std::remove(path.c_str());
}
#pragma GCC diagnostic pop

TEST(ReplayBuilder, MixedPlansAreRejected)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .plan(CapturePlan("a.trc"))
                         .plan(ReplayPlan("b.trc")),
                     "mutually exclusive");
    expectBuildFatal(Session::builder()
                         .program(prog)
                         .plan(ExecPlan())
                         .plan(ServePlan("s.sock")),
                     "mutually exclusive");
}

// ------------------------------------------------- corrupt traces

/** One small captured trace, reused by the rejection tests. */
std::vector<uint8_t>
captureSmallTrace(const CompiledProgram &prog)
{
    std::string path = tmpTracePath("reject");
    Session::builder()
        .program(prog)
        .inputs(kLoopInputs)
        .sessions(2)
        .plan(CapturePlan(path))
        .build()
        .run();
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());
    return bytes;
}

TEST(ReplayReject, ChunkCrcCorruptionIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);
    ASSERT_GT(bytes.size(),
              replay::kHeaderBytes + replay::kChunkHeaderBytes + 4);

    // Flip one payload byte: load must throw the recoverable error
    // class, and validate must tally exactly one CRC failure.
    bytes[replay::kHeaderBytes + replay::kChunkHeaderBytes + 2] ^=
        0xff;
    try {
        replay::TraceFile::fromBytes(bytes);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << e.what();
    }
    replay::ValidateResult v =
        replay::TraceFile::validateBytes(bytes);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.crcFailures, 1u);
    EXPECT_EQ(v.versionMismatches, 0u);
}

TEST(ReplayReject, TruncationIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);
    const size_t footerOff = static_cast<size_t>(
        replay::getU64(bytes.data() + bytes.size() - 8));

    // Cut into the last DATA chunk (the trailer locates the index
    // footer; everything before it is data): a hard truncation.
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + footerOff - 5);
    try {
        replay::TraceFile::fromBytes(cut);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_FALSE(replay::TraceFile::validateBytes(cut).ok);

    // Cutting mid-header must also stay recoverable.
    std::vector<uint8_t> stub(bytes.begin(), bytes.begin() + 10);
    EXPECT_THROW(replay::TraceFile::fromBytes(stub), FatalError);

    // Cutting inside the index is NOT a failure: the footer and
    // trailer are advisory (the sequential scan recomputes them).
    std::vector<uint8_t> noTrailerTail(bytes.begin(),
                                       bytes.end() - 5);
    replay::TraceFile t1 =
        replay::TraceFile::fromBytes(noTrailerTail);
    EXPECT_TRUE(t1.hasIndexFooter()); // footer chunk itself intact

    // (the cut must leave the footer header's session sentinel
    // readable — a shorter stub is indistinguishable from a cut data
    // chunk and stays a hard truncation)
    std::vector<uint8_t> midFooter(
        bytes.begin(),
        bytes.begin() + footerOff + replay::kChunkHeaderBytes + 5);
    replay::TraceFile t2 = replay::TraceFile::fromBytes(midFooter);
    EXPECT_FALSE(t2.hasIndexFooter());
    EXPECT_EQ(t2.chunks().size(),
              replay::TraceFile::fromBytes(bytes).chunks().size());
}

TEST(ReplayReject, VersionSkewIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);

    replay::putU32(bytes.data() + 8, replay::kTraceVersion + 1);
    resealHeader(bytes);
    try {
        replay::TraceFile::fromBytes(bytes);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
    replay::ValidateResult v =
        replay::TraceFile::validateBytes(bytes);
    EXPECT_FALSE(v.ok);
    EXPECT_EQ(v.versionMismatches, 1u);
}

TEST(ReplayReject, BadMagicIsRecoverable)
{
    std::vector<uint8_t> junk(64, 0x5a);
    try {
        replay::TraceFile::fromBytes(junk);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("magic"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReplayReject, ForeignModuleIsRecoverable)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);
    replay::TraceFile file = replay::TraceFile::fromBytes(bytes);

    // Same program: accepted.
    replay::ReplayEngine ok(file, prog);
    EXPECT_EQ(ok.sessions(), 2u);

    // A different program — or the same source after an edit — is a
    // foreign module and must be rejected before any decoding.
    CompiledProgram other = compileAndAnalyze(
        "void main() { print_str(\"other\"); }", "replay_other");
    try {
        replay::ReplayEngine bad(file, other);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("different program"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ReplayReject, CorruptPayloadCannotReachDetectorPanics)
{
    // A CRC-valid chunk whose records are garbage must fail as a
    // FatalError from the replay engine's own validation, never as a
    // detector panic. Corrupt the payload, then re-seal the chunk CRC
    // so only the defensive decoding stands between the bytes and the
    // detector.
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);

    size_t payloadOff =
        replay::kHeaderBytes + replay::kChunkHeaderBytes;
    uint32_t payloadLen = replay::getU32(
        bytes.data() + replay::kHeaderBytes);
    ASSERT_GT(payloadLen, 8u);
    for (size_t i = 1; i < 8; i++)
        bytes[payloadOff + i] ^= 0xa5;
    replay::putU32(
        bytes.data() + replay::kHeaderBytes + 12,
        replay::crc32(bytes.data() + payloadOff, payloadLen));

    replay::TraceFile file = replay::TraceFile::fromBytes(bytes);
    replay::ReplayEngine eng(file, prog);
    replay::ReplayShardResult out;
    EXPECT_THROW(eng.replayShard(0, out), FatalError);
}

// ------------------------------------------------- golden fixture

TEST(ReplayGolden, FixtureBytesArePinnedToFormatVersion)
{
    // The encoder's output for this pinned program and script is part
    // of the on-disk format. If this test fails you changed the trace
    // encoding: bump replay::kTraceVersion in src/replay/format.h and
    // regenerate the fixture with
    //   IPDS_REGEN_GOLDEN=1 ./build/tests/ipds_replay_tests
    //   (with --gtest_filter='ReplayGolden.*')
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "golden_loop");
    std::string path = tmpTracePath("golden");
    Session::builder()
        .program(prog)
        .inputs(kLoopInputs)
        .sessions(2)
        .shards(2)
        .plan(CapturePlan(path))
        .build()
        .run();
    std::vector<uint8_t> fresh = readBytes(path);
    std::remove(path.c_str());

    const std::string goldenPath =
        std::string(IPDS_TEST_DATA_DIR) + "/golden_v2.trc";
    if (std::getenv("IPDS_REGEN_GOLDEN")) {
        writeBytes(goldenPath, fresh);
        GTEST_SKIP() << "regenerated " << goldenPath;
    }

    std::vector<uint8_t> golden = readBytes(goldenPath);
    ASSERT_FALSE(golden.empty())
        << "missing fixture " << goldenPath
        << " — regenerate with IPDS_REGEN_GOLDEN=1";
    EXPECT_EQ(fresh, golden)
        << "trace encoding changed without bumping kTraceVersion "
           "(see the versioning policy in src/replay/format.h)";

    // And the pinned bytes still replay: the fixture guards decode
    // compatibility, not just encode stability.
    replay::TraceFile file =
        replay::TraceFile::fromBytes(std::move(golden));
    EXPECT_EQ(file.meta().version, replay::kTraceVersion);
    EXPECT_TRUE(file.hasIndexFooter());
    EXPECT_EQ(file.meta().sessions, 2u);
    EXPECT_EQ(file.meta().shards, 2u);
    replay::ReplayEngine eng(file, prog);
    replay::ReplayShardResult s0, s1;
    eng.replayShard(0, s0);
    eng.replayShard(1, s1);
    EXPECT_EQ(s0.runs + s1.runs, 2u);
    EXPECT_GT(s0.det.branchesSeen, 0u);
    EXPECT_TRUE(s0.alarms.empty());
    EXPECT_TRUE(s1.alarms.empty());
}

// ------------------------------------- v2: snapshots & chunk index

TEST(ReplaySnapshot, BlobRoundTripsHandBuiltVectors)
{
    replay::SnapshotData sd;
    sd.hasDetector = true;
    DetectorSnapshot::Activation a;
    a.func = 3;
    a.slots = {{0, 1}, {5, 2}, {130, 1}};
    sd.det.activations.push_back(a);
    DetectorSnapshot::Activation b;
    b.func = 0;
    sd.det.activations.push_back(b);
    sd.det.stats.branchesSeen = 12345;
    sd.det.stats.checksEnqueued = 1u << 20;
    sd.det.stats.updatesApplied = 7;
    sd.det.stats.actionsApplied = 1;
    sd.det.stats.framesPushed = 99;
    sd.det.stats.maxStackDepth = 4;
    sd.det.alarmsSoFar = 2;
    sd.hasTiming = true;
    sd.tim.instructions = 1000000;
    sd.tim.cycles = 1234567;
    sd.tim.mispredicts = 42;
    sd.tim.engine.requests = 500;
    sd.engine.inflight = {10, 20, 900};
    sd.engine.engineFree = 77;
    sd.engine.frames = {{64, false}, {128, true}};
    sd.engine.residentBits = 192;
    sd.engine.stats.requests = 500;
    sd.engine.stats.checkLatencySum = 5850;
    sd.engine.stats.checkLatencyCount = 500;

    std::vector<uint8_t> blob;
    replay::encodeSnapshot(sd, blob);
    ASSERT_FALSE(blob.empty());
    EXPECT_EQ(blob[0], replay::kSnapshotVersion);

    replay::SnapshotData back;
    replay::decodeSnapshot(blob.data(), blob.size(), back);
    EXPECT_TRUE(back.hasDetector);
    EXPECT_TRUE(back.hasTiming);
    ASSERT_EQ(back.det.activations.size(), 2u);
    EXPECT_EQ(back.det.activations[0].func, 3u);
    EXPECT_EQ(back.det.activations[0].slots, a.slots);
    EXPECT_TRUE(back.det.activations[1].slots.empty());
    EXPECT_EQ(back.det.stats.branchesSeen, 12345u);
    EXPECT_EQ(back.det.stats.maxStackDepth, 4u);
    EXPECT_EQ(back.det.alarmsSoFar, 2u);
    EXPECT_EQ(back.tim.cycles, 1234567u);
    EXPECT_EQ(back.engine.inflight, sd.engine.inflight);
    ASSERT_EQ(back.engine.frames.size(), 2u);
    EXPECT_EQ(back.engine.frames[0].bits, 64u);
    EXPECT_TRUE(back.engine.frames[1].spilled);
    EXPECT_EQ(back.engine.residentBits, 192u);
    EXPECT_EQ(back.engine.stats.checkLatencySum, 5850u);

    // Re-encoding the decoded form is byte-identical: the layout is
    // canonical, so the golden v2 fixture pins it transitively.
    std::vector<uint8_t> blob2;
    replay::encodeSnapshot(back, blob2);
    EXPECT_EQ(blob, blob2);
}

TEST(ReplaySnapshot, TruncatedOrSkewedBlobIsRecoverable)
{
    replay::SnapshotData sd;
    sd.hasDetector = true;
    sd.det.stats.branchesSeen = 77;
    sd.det.alarmsSoFar = 1;
    std::vector<uint8_t> blob;
    replay::encodeSnapshot(sd, blob);
    ASSERT_GT(blob.size(), 4u);

    replay::SnapshotData out;
    for (size_t cut : {blob.size() - 1, blob.size() / 2, size_t(1)})
        EXPECT_THROW(replay::decodeSnapshot(blob.data(), cut, out),
                     FatalError)
            << "cut at " << cut;

    std::vector<uint8_t> skew = blob;
    skew[0] = replay::kSnapshotVersion + 9;
    EXPECT_THROW(
        replay::decodeSnapshot(skew.data(), skew.size(), out),
        FatalError);
}

TEST(ReplayIndex, FooterAndScanIndexesAgreeFieldForField)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);

    replay::TraceFile scan = replay::TraceFile::fromBytes(bytes);
    ASSERT_TRUE(scan.hasIndexFooter());
    EXPECT_FALSE(scan.crcDeferred());

    replay::IndexedLoad info;
    replay::TraceFile idx =
        replay::TraceFile::fromBytesIndexed(bytes, &info);
    EXPECT_TRUE(info.usedIndex) << info.reason;
    EXPECT_TRUE(idx.crcDeferred());
    EXPECT_EQ(idx.indexBytes(), scan.indexBytes());
    ASSERT_EQ(idx.chunks().size(), scan.chunks().size());
    for (size_t i = 0; i < idx.chunks().size(); i++) {
        const replay::ChunkRef &f = idx.chunks()[i];
        const replay::ChunkRef &s = scan.chunks()[i];
        EXPECT_EQ(f.payloadOff, s.payloadOff) << i;
        EXPECT_EQ(f.payloadLen, s.payloadLen) << i;
        EXPECT_EQ(f.events, s.events) << i;
        EXPECT_EQ(f.session, s.session) << i;
        EXPECT_EQ(f.flags, s.flags) << i;
        EXPECT_EQ(f.firstSeq, s.firstSeq) << i;
        EXPECT_EQ(f.endSeq, s.endSeq) << i;
        EXPECT_NO_THROW(idx.checkChunkCrc(f)) << i;
    }
}

TEST(ReplayIndex, CorruptedFooterDegradesToSequentialScan)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "replay_loop");
    std::vector<uint8_t> bytes = captureSmallTrace(prog);
    const size_t nChunks =
        replay::TraceFile::fromBytes(bytes).chunks().size();
    const size_t footerOff = static_cast<size_t>(
        replay::getU64(bytes.data() + bytes.size() - 8));

    // Flip one byte inside the footer payload: its CRC no longer
    // matches, so the index is unusable — but the data chunks are
    // intact and the footer stays strictly advisory.
    bytes[footerOff + replay::kChunkHeaderBytes + 3] ^= 0xff;

    replay::ValidateResult vr =
        replay::TraceFile::validateBytes(bytes);
    EXPECT_TRUE(vr.ok) << vr.error;
    EXPECT_GE(vr.indexDefects, 1u);

    replay::IndexedLoad info;
    replay::TraceFile idx =
        replay::TraceFile::fromBytesIndexed(bytes, &info);
    EXPECT_FALSE(info.usedIndex);
    EXPECT_FALSE(info.reason.empty());
    EXPECT_FALSE(idx.crcDeferred());
    EXPECT_EQ(idx.chunks().size(), nChunks);

    // End to end: a parallel ReplayPlan over the damaged file falls
    // back to the sequential path, flags the miss, and still gets the
    // right answer.
    std::string path = tmpTracePath("bad_footer");
    writeBytes(path, bytes);
    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path).parallel(2))
                      .build();
    rep.run();
    namespace n = obs::names;
    const obs::MetricsRegistry &m = rep.metrics();
    EXPECT_EQ(m.value(m.find(n::kReplayIndexMissing)), 1u);
    EXPECT_EQ(m.value(m.find(n::kSessRuns)), 2u);
    EXPECT_GT(rep.detectorStats().branchesSeen, 0u);
    std::remove(path.c_str());
}

// ------------------------------------------------- seek & snapshots
//
// A program whose sessions span several chunks (the loop crosses the
// 48 KiB payload cap) with function-call boundaries inside the loop —
// the points where the capture writer may emit a snapshot record.
const char *kSnapProgram = R"(
int step(int x) {
    if (x > 5) {
        return 1;
    }
    return 0;
}

void main() {
    int i;
    int t;
    int acc;
    acc = 0;
    i = input_int();
    while (i < 9000) {
        t = step(i);
        acc = acc + t;
        i = i + 1;
    }
    if (acc > 9000) {
        print_str("impossible\n");
    }
    print_str("done\n");
}
)";

TEST(ReplaySeek, SeekSessionSkipsEarlierChunks)
{
    CompiledProgram prog =
        compileAndAnalyze(kSnapProgram, "snap_prog");
    std::string path = tmpTracePath("seek_sess");
    Session::builder()
        .program(prog)
        .inputs({"3"})
        .sessions(2)
        .plan(CapturePlan(path))
        .build()
        .run();

    Session full = Session::builder()
                       .program(prog)
                       .plan(ReplayPlan(path))
                       .build();
    full.run();
    namespace n = obs::names;
    const obs::MetricsRegistry &mf = full.metrics();
    const uint64_t fullChunks = mf.value(mf.find(n::kReplayChunks));
    ASSERT_GT(fullChunks, 2u);

    Session part = Session::builder()
                       .program(prog)
                       .plan(ReplayPlan(path).seekSession(1))
                       .build();
    part.run();
    const obs::MetricsRegistry &mp = part.metrics();
    EXPECT_EQ(mp.value(mp.find(n::kReplaySeeks)), 1u);
    EXPECT_EQ(mp.value(mp.find(n::kReplaySnapshotsUsed)), 0u);
    // The chunk meter proves the earlier session was never read.
    EXPECT_LT(mp.value(mp.find(n::kReplayChunks)), fullChunks);
    EXPECT_GT(mp.value(mp.find(n::kReplayChunks)), 0u);
    // The two captured sessions are identical, so the sought tail is
    // exactly half the full replay's detector work.
    EXPECT_EQ(part.detectorStats().branchesSeen * 2,
              full.detectorStats().branchesSeen);
    EXPECT_EQ(mp.value(mp.find(n::kSessRuns)), 1u);
    std::remove(path.c_str());
}

TEST(ReplaySeek, SeekChunkResumesFromNearestSnapshot)
{
    CompiledProgram prog =
        compileAndAnalyze(kSnapProgram, "snap_prog");
    std::string path = tmpTracePath("seek_chunk");
    Session::builder()
        .program(prog)
        .inputs({"3"})
        .sessions(2)
        .plan(CapturePlan(path).snapshotEvery(1))
        .build()
        .run();

    replay::TraceFile tf = replay::TraceFile::load(path);
    const std::vector<replay::ChunkRef> &chunks = tf.chunks();
    size_t sessStart = SIZE_MAX, flagged = SIZE_MAX;
    for (size_t i = 0; i < chunks.size(); i++) {
        if (chunks[i].session != 1)
            continue;
        if (sessStart == SIZE_MAX)
            sessStart = i;
        if (chunks[i].flags & replay::kChunkHasSnapshot)
            flagged = i;
    }
    ASSERT_NE(sessStart, SIZE_MAX);
    ASSERT_NE(flagged, SIZE_MAX)
        << "capture produced no snapshot chunk";
    ASSERT_GT(flagged, sessStart);
    const size_t target = chunks.size() - 1;
    ASSERT_GE(target, flagged);

    Session full = Session::builder()
                       .program(prog)
                       .plan(ReplayPlan(path))
                       .build();
    full.run();

    Session part = Session::builder()
                       .program(prog)
                       .plan(ReplayPlan(path).seekChunk(
                           static_cast<uint64_t>(target)))
                       .build();
    part.run();
    namespace n = obs::names;
    const obs::MetricsRegistry &mp = part.metrics();
    EXPECT_EQ(mp.value(mp.find(n::kReplaySeeks)), 1u);
    EXPECT_EQ(mp.value(mp.find(n::kReplaySnapshotsUsed)), 1u);
    // Resumption starts at the snapshot chunk, not the session start.
    EXPECT_EQ(mp.value(mp.find(n::kReplayChunks)),
              chunks.size() - flagged);
    // The snapshot restores the session-so-far counters, so the
    // resumed session finishes with its exact full-replay stats.
    EXPECT_EQ(part.detectorStats().branchesSeen * 2,
              full.detectorStats().branchesSeen);
    EXPECT_TRUE(part.alarms().empty());
    std::remove(path.c_str());
}

TEST(ReplaySeek, DamagedSnapshotFallsBackToSessionStart)
{
    CompiledProgram prog =
        compileAndAnalyze(kSnapProgram, "snap_prog");
    std::string path = tmpTracePath("seek_damaged");
    Session::builder()
        .program(prog)
        .inputs({"3"})
        .sessions(2)
        .plan(CapturePlan(path).snapshotEvery(1))
        .build()
        .run();
    std::vector<uint8_t> bytes = readBytes(path);

    size_t sessStart = SIZE_MAX, flagged = SIZE_MAX, nChunks = 0;
    {
        replay::TraceFile tf = replay::TraceFile::fromBytes(bytes);
        const std::vector<replay::ChunkRef> &chunks = tf.chunks();
        nChunks = chunks.size();
        for (size_t i = 0; i < chunks.size(); i++) {
            if (chunks[i].session != 1)
                continue;
            if (sessStart == SIZE_MAX)
                sessStart = i;
            if (chunks[i].flags & replay::kChunkHasSnapshot)
                flagged = i;
        }
        ASSERT_NE(flagged, SIZE_MAX);
        ASSERT_GT(flagged, sessStart);

        // Damage the snapshot BLOB (bump its version byte) and
        // re-seal the chunk CRC: the record still frames — replay
        // skips over it — but a seek can no longer resume from it.
        const replay::ChunkRef &c = tf.chunks()[flagged];
        replay::TraceReader r(tf.payload(c), c.payloadLen);
        ASSERT_EQ(r.tag(), replay::Tag::Snapshot);
        r.var(); // blob length
        bytes[c.payloadOff + r.offset()] =
            replay::kSnapshotVersion + 9;
        replay::putU32(
            bytes.data() + c.payloadOff - 4,
            replay::crc32(bytes.data() + c.payloadOff,
                          c.payloadLen));
    }
    writeBytes(path, bytes);

    Session full = Session::builder()
                       .program(prog)
                       .plan(ReplayPlan(path))
                       .build();
    full.run(); // feed() skips the blob: full replay is unaffected

    const size_t target = nChunks - 1;
    Session part = Session::builder()
                       .program(prog)
                       .plan(ReplayPlan(path).seekChunk(
                           static_cast<uint64_t>(target)))
                       .build();
    part.run();
    namespace n = obs::names;
    const obs::MetricsRegistry &mp = part.metrics();
    EXPECT_EQ(mp.value(mp.find(n::kReplaySeeks)), 1u);
    EXPECT_EQ(mp.value(mp.find(n::kReplaySnapshotsUsed)), 0u);
    // Fallback replays the damaged session from its first chunk.
    EXPECT_EQ(mp.value(mp.find(n::kReplayChunks)),
              nChunks - sessStart);
    EXPECT_EQ(part.detectorStats().branchesSeen * 2,
              full.detectorStats().branchesSeen);
    std::remove(path.c_str());
}

TEST(ReplayGolden, V1FixtureStillReplays)
{
    // Traces recorded before the chunk-index footer existed (format
    // v1) must keep replaying through the sequential path.
    const std::string goldenPath =
        std::string(IPDS_TEST_DATA_DIR) + "/golden_v1.trc";
    std::vector<uint8_t> golden = readBytes(goldenPath);
    ASSERT_FALSE(golden.empty()) << "missing fixture " << goldenPath;

    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "golden_loop");
    replay::TraceFile file =
        replay::TraceFile::fromBytes(std::move(golden));
    EXPECT_EQ(file.meta().version, 1u);
    EXPECT_FALSE(file.hasIndexFooter());
    EXPECT_EQ(file.meta().sessions, 2u);
    EXPECT_EQ(file.meta().shards, 2u);
    replay::ReplayEngine eng(file, prog);
    replay::ReplayShardResult s0, s1;
    eng.replayShard(0, s0);
    eng.replayShard(1, s1);
    EXPECT_EQ(s0.runs + s1.runs, 2u);
    EXPECT_GT(s0.det.branchesSeen, 0u);
    EXPECT_TRUE(s0.alarms.empty());
    EXPECT_TRUE(s1.alarms.empty());
}

} // namespace
} // namespace ipds
