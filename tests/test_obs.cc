/**
 * @file
 * Tests for the observability subsystem: MetricsRegistry (handles,
 * merge, golden JSON export), the ring-buffered Tracer (wraparound,
 * category gating), and the ipds::Session facade (thread-count
 * invariance of aggregated metrics, equivalence with hand-wired
 * Vm + Detector runs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <sstream>

#include "core/program.h"
#include "ipds/detector.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

using obs::MetricsRegistry;
using obs::Tracer;
namespace names = obs::names;

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterBasics)
{
    MetricsRegistry reg;
    auto h = reg.counter("ipds.test.count");
    EXPECT_EQ(reg.value(h), 0u);
    reg.add(h, 3);
    reg.add(h);
    EXPECT_EQ(reg.value(h), 4u);
    // Re-registration returns the same handle.
    EXPECT_EQ(reg.counter("ipds.test.count"), h);
    EXPECT_EQ(reg.metricCount(), 1u);
}

TEST(Metrics, GaugeSetMax)
{
    MetricsRegistry reg;
    auto h = reg.gauge("ipds.test.depth");
    reg.setMax(h, 5);
    reg.setMax(h, 3); // lower: ignored
    EXPECT_EQ(reg.value(h), 5u);
    reg.set(h, 2); // explicit set overwrites
    EXPECT_EQ(reg.value(h), 2u);
}

TEST(Metrics, HistogramBucketsByBitWidthWithClamp)
{
    MetricsRegistry reg;
    auto h = reg.histogram("ipds.test.hist");
    reg.observe(h, 0);  // bit_width 0 -> bucket 0
    reg.observe(h, 1);  // bucket 1
    reg.observe(h, 2);  // bucket 2
    reg.observe(h, 3);  // bucket 2
    reg.observe(h, ~0ull); // bit_width 64 -> clamped to last bucket
    EXPECT_EQ(reg.value(h), 5u);
    EXPECT_EQ(reg.histSum(h), 6u + ~0ull);
    EXPECT_EQ(reg.histBucket(h, 0), 1u);
    EXPECT_EQ(reg.histBucket(h, 1), 1u);
    EXPECT_EQ(reg.histBucket(h, 2), 2u);
    EXPECT_EQ(reg.histBucket(h, MetricsRegistry::kHistBuckets - 1),
              1u);
}

TEST(Metrics, MergeAddsCountersMaxesGaugesAndRegistersMissing)
{
    MetricsRegistry a, b;
    {
        auto c = a.counter("c");
        a.add(c, 10);
        auto g = a.gauge("g");
        a.setMax(g, 4);
    }
    {
        auto c = b.counter("c");
        b.add(c, 5);
        auto g = b.gauge("g");
        b.setMax(g, 9);
        auto h = b.histogram("h"); // absent in a
        b.observe(h, 2);
        b.observe(h, 2);
    }
    a.merge(b);
    EXPECT_EQ(a.value(a.find("c")), 15u);
    EXPECT_EQ(a.value(a.find("g")), 9u);
    ASSERT_NE(a.find("h"), obs::kNoMetric);
    EXPECT_EQ(a.value(a.find("h")), 2u);
    EXPECT_EQ(a.histSum(a.find("h")), 4u);
}

TEST(Metrics, MergeIsAssociativeOverShardOrder)
{
    // (r0 + r1) + r2 must equal r0 + (r1 + r2): the shard-order join
    // in Session relies on it.
    auto mk = [](uint64_t v) {
        MetricsRegistry r;
        r.add(r.counter("c"), v);
        r.setMax(r.gauge("g"), v);
        return r;
    };
    MetricsRegistry l = mk(1);
    l.merge(mk(2));
    l.merge(mk(3));
    MetricsRegistry rtail = mk(2);
    rtail.merge(mk(3));
    MetricsRegistry r = mk(1);
    r.merge(rtail);
    EXPECT_EQ(l.toJson(), r.toJson());
}

TEST(Metrics, GoldenJsonShape)
{
    MetricsRegistry reg;
    reg.add(reg.counter("a.count"), 3);
    reg.set(reg.gauge("a.gauge"), 7);
    auto h = reg.histogram("a.hist");
    reg.observe(h, 1);
    reg.observe(h, 2);

    const char *expected = R"({
  "counters": {
    "a.count": 3
  },
  "gauges": {
    "a.gauge": 7
  },
  "histograms": {
    "a.hist": {
      "count": 2,
      "sum": 3,
      "avg": 1.500,
      "buckets": [0, 1, 1]
    }
  }
})";
    EXPECT_EQ(reg.toJson(), expected);
}

TEST(Metrics, EmptyRegistryExportsEmptyObjects)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.toJson(),
              "{\n  \"counters\": {},\n  \"gauges\": {},\n"
              "  \"histograms\": {}\n}");
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations)
{
    MetricsRegistry reg;
    auto h = reg.counter("c");
    reg.add(h, 9);
    reg.reset();
    EXPECT_EQ(reg.metricCount(), 1u);
    EXPECT_EQ(reg.value(h), 0u);
}

// ----------------------------------------------------------------- tracer

TEST(Tracer, CapacityRoundsUpToPowerOfTwo)
{
    Tracer t(obs::kCatAll, 5);
    EXPECT_EQ(t.capacity(), 8u);
}

TEST(Tracer, RingWraparoundKeepsNewestEvents)
{
    Tracer t(obs::kCatAll, 4);
    for (uint64_t i = 0; i < 10; i++)
        t.record(obs::kCatBranch, obs::TraceKind::BranchCommit, 0,
                 /*pc=*/i);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    // Oldest retained is seq 6, newest is seq 9, in order.
    for (size_t i = 0; i < t.size(); i++) {
        EXPECT_EQ(t.at(i).seq, 6u + i);
        EXPECT_EQ(t.at(i).pc, 6u + i);
    }
    auto ev = t.events();
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev.front().seq, 6u);
    EXPECT_EQ(ev.back().seq, 9u);
}

TEST(Tracer, DisabledCategoryRecordsNoEventAtAll)
{
    Tracer t(obs::kCatBranch, 16);
    EXPECT_TRUE(t.wants(obs::kCatBranch));
    EXPECT_FALSE(t.wants(obs::kCatCheck));
    t.record(obs::kCatCheck, obs::TraceKind::CheckEnqueue);
    t.record(obs::kCatAlarm, obs::TraceKind::Alarm);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.size(), 0u);
    t.record(obs::kCatBranch, obs::TraceKind::BranchCommit);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.countCat(obs::kCatBranch), 1u);
    EXPECT_EQ(t.countCat(obs::kCatCheck), 0u);
}

TEST(Tracer, RuntimeMaskIntersectsCompiledMask)
{
    Tracer t(obs::kCatAll);
    EXPECT_EQ(t.mask(), obs::kCatAll & obs::kCompiledCategories);
}

TEST(Tracer, ChromeJsonExportShape)
{
    Tracer t(obs::kCatAll, 8);
    t.record(obs::kCatBranch, obs::TraceKind::BranchCommit, 2,
             /*pc=*/0x40, /*a=*/1, /*b=*/0);
    // The JSON-array flavour of the chrome://tracing format: one
    // instant event per record, tid = shard, ts = seq.
    std::string j = t.toChromeJson();
    EXPECT_EQ(j.front(), '[');
    EXPECT_NE(j.find("\"name\": \"branch_commit\""),
              std::string::npos);
    EXPECT_NE(j.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(j.find("\"ts\": 0"), std::string::npos);
}

// ---------------------------------------------------------------- session

/** Small server-ish program: input-driven loop with a privilege test. */
const char *kLoopProgram = R"(
void main() {
    int role;
    int req;
    role = 0;
    if (input_int() == 42) {
        role = 1;
    }
    req = 0;
    while (req < 4) {
        if (role == 1) {
            print_str("p\n");
        } else {
            print_str("n\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

TEST(Session, AggregatesAreIdenticalForAnyThreadCount)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    auto runWith = [&](unsigned threads) {
        return Session::builder()
            .program(prog)
            .inputs({"7", "1", "2", "3", "4"})
            .timing(table1Config())
            .sessions(12)
            .shards(4)
            .threads(threads)
            .build()
            .run()
            .metricsJson();
    };
    std::string t1 = runWith(1);
    std::string t2 = runWith(2);
    std::string t8 = runWith(8);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);
    // And the export is non-trivial: detector and timing metrics are
    // both present under the shared naming scheme.
    EXPECT_NE(t1.find(obs::names::kDetChecksEnqueued),
              std::string::npos);
    EXPECT_NE(t1.find(obs::names::kCpuCycles), std::string::npos);
}

TEST(Session, MatchesHandWiredDetectorRun)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    const std::vector<std::string> inputs{"7", "1", "2", "3", "4"};

    // Hand-wired, the pre-facade way.
    Vm vm(prog.mod);
    vm.setInputs(inputs);
    Detector det(prog);
    vm.addObserver(&det);
    RunResult r = vm.run();

    Session s = Session::builder()
                    .program(prog)
                    .inputs(inputs)
                    .build();
    s.run();

    EXPECT_TRUE(s.detectorStats() == det.stats());
    EXPECT_EQ(s.alarms().size(), det.alarms().size());
    EXPECT_EQ(s.result().output, r.output);
    EXPECT_EQ(s.result().steps, r.steps);
}

TEST(Session, SoloObserverFastPathMatchesMultiObserver)
{
    // The VM devirtualizes dispatch when exactly one observer is
    // attached; adding a second (no-op) observer forces the generic
    // fan-out. Both paths must produce identical results and metrics.
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    const std::vector<std::string> inputs{"7", "1", "2", "3", "4"};

    // Declines inst events like the Detector, so attaching it leaves
    // the VM in the same (branch-only) delivery mode as the solo run
    // and flush counts stay comparable.
    struct NoopObserver final : ExecObserver
    {
        bool wantsInstEvents() const override { return false; }
    };

    auto runWith = [&](bool extra_noop) {
        struct Out
        {
            RunResult res;
            DetectorStats det;
            size_t alarms;
            VmStats vm;
        } out;
        NoopObserver noop;
        Vm vm(prog.mod);
        vm.setInputs(inputs);
        Detector det(prog);
        vm.addObserver(&det);
        if (extra_noop)
            vm.addObserver(&noop);
        out.res = vm.run();
        out.det = det.stats();
        out.alarms = det.alarms().size();
        out.vm = vm.vmStats();
        return out;
    };

    auto solo = runWith(false);
    auto multi = runWith(true);
    EXPECT_TRUE(solo.det == multi.det);
    EXPECT_EQ(solo.alarms, multi.alarms);
    EXPECT_EQ(solo.res.output, multi.res.output);
    EXPECT_EQ(solo.res.steps, multi.res.steps);
    EXPECT_EQ(solo.res.exit, multi.res.exit);
    EXPECT_EQ(solo.res.branchTrace, multi.res.branchTrace);
    EXPECT_EQ(solo.vm.instructions, multi.vm.instructions);
    EXPECT_EQ(solo.vm.blocks, multi.vm.blocks);
    EXPECT_EQ(solo.vm.eventBatchFlushes, multi.vm.eventBatchFlushes);
}

TEST(Session, VmThroughputCountersExported)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"7", "1", "2", "3", "4"})
                    .build();
    s.run();
    const MetricsRegistry &m = s.metrics();
    namespace n = obs::names;
    EXPECT_EQ(m.value(m.find(n::kVmInstructions)),
              s.result().steps);
    EXPECT_GT(m.value(m.find(n::kVmBlocks)), 0u);
    EXPECT_GT(m.value(m.find(n::kVmEventBatchFlushes)), 0u);
}

TEST(Session, MetricsMatchDetectorStatsUnderSharedNames)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"7", "1", "2", "3", "4"})
                    .sessions(3)
                    .build();
    s.run();
    const MetricsRegistry &m = s.metrics();
    namespace n = obs::names;
    EXPECT_EQ(m.value(m.find(n::kDetBranchesSeen)),
              s.detectorStats().branchesSeen);
    EXPECT_EQ(m.value(m.find(n::kDetChecksEnqueued)),
              s.detectorStats().checksEnqueued);
    EXPECT_EQ(m.value(m.find(n::kDetMaxStackDepth)),
              s.detectorStats().maxStackDepth);
    EXPECT_EQ(m.value(m.find(n::kSessRuns)), 3u);
    EXPECT_EQ(m.value(m.find(n::kDetAlarms)), s.alarms().size());
}

TEST(Session, TamperedRunAlarmsAndTraceRecordsTheCause)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");

    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 2;
    spec.addr = Vm(prog.mod).entryLocalAddr("role");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};

    Session s = Session::builder()
                    .program(prog)
                    .inputs({"7", "1", "2", "3", "4"})
                    .plan(ExecPlan().tamper(spec))
                    .trace(obs::kCatAll)
                    .build();
    s.run();
    ASSERT_TRUE(s.alarmed());

    // The trace carries the full story: session begin, branch
    // commits, and an alarm event whose payload names the cause.
    bool sawBegin = false, sawAlarm = false, sawBranch = false;
    for (const auto &ev : s.traceEvents()) {
        sawBegin |= ev.kind == obs::TraceKind::SessionBegin;
        sawBranch |= ev.kind == obs::TraceKind::BranchCommit;
        if (ev.kind == obs::TraceKind::Alarm) {
            sawAlarm = true;
            EXPECT_EQ(ev.pc, s.alarms().front().pc);
        }
    }
    EXPECT_TRUE(sawBegin);
    EXPECT_TRUE(sawBranch);
    EXPECT_TRUE(sawAlarm);
    EXPECT_NE(s.traceChromeJson().find("alarm"), std::string::npos);
}

TEST(Session, DisabledTraceCategoriesYieldZeroEvents)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    // Only alarm events requested; the benign run raises none, so the
    // trace must stay completely empty — the zero-event guarantee for
    // categories that never fire.
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"7", "1", "2", "3", "4"})
                    .trace(obs::kCatAlarm)
                    .build();
    s.run();
    EXPECT_FALSE(s.alarmed());
    EXPECT_EQ(s.traceEvents().size(), 0u);
    EXPECT_EQ(s.traceDropped(), 0u);
}

TEST(Session, TraceIsDeterministicAcrossThreadCounts)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    auto runWith = [&](unsigned threads) {
        Session s = Session::builder()
                        .program(prog)
                        .inputs({"7", "1", "2", "3", "4"})
                        .sessions(8)
                        .shards(4)
                        .threads(threads)
                        .trace(obs::kCatSession, 64)
                        .build();
        s.run();
        return obs::toText(s.traceEvents());
    };
    EXPECT_EQ(runWith(1), runWith(4));
}

TEST(Session, ExportedNamesFollowTheSchemeAndAreRegistered)
{
    // Every metric a full-featured run exports must (a) follow the
    // shared naming scheme ipds.<component>.<snake_case_field> and
    // (b) be one of the obs/names.h constants — no producer may
    // invent a private name. A capture+replay pair covers every
    // exporter at once: detector, timing, engine, ring, vm, session,
    // fault and replay.
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    std::string trc = testing::TempDir() + "obs_names.trc";
    FaultPlan plan = FaultPlan::fromSeed(7);
    Session::builder()
        .program(prog)
        .inputs({"7", "1", "2", "3", "4"})
        .timing(table1Config())
        .sessions(2)
        .plan(CapturePlan(trc).exec(ExecPlan().faults(plan)))
        .build()
        .run();
    Session rep =
        Session::builder().program(prog).plan(ReplayPlan(trc)).build();
    rep.run();
    std::remove(trc.c_str());

    const std::set<std::string> known = {
        names::kDetBranchesSeen, names::kDetChecksEnqueued,
        names::kDetUpdatesApplied, names::kDetActionsApplied,
        names::kDetFramesPushed, names::kDetMaxStackDepth,
        names::kDetAlarms, names::kRingMaxOccupancy,
        names::kRingDrains, names::kRingOverflowFlushes,
        names::kRingFaultDrops, names::kRingFaultDups,
        names::kCpuInstructions, names::kCpuCycles,
        names::kCpuBranches, names::kCpuMispredicts,
        names::kCpuL1iMisses, names::kCpuL1dMisses,
        names::kCpuL2Misses, names::kCpuTlbMisses,
        names::kCpuIpdsStallCycles, names::kEngRequests,
        names::kEngCheckRequests, names::kEngUpdateRequests,
        names::kEngBusyCycles, names::kEngQueueFullStalls,
        names::kEngStallCycles, names::kEngSpillEvents,
        names::kEngSpillBits, names::kEngFillEvents,
        names::kEngFillBits, names::kEngCheckLatencySum,
        names::kEngCheckLatencyCount, names::kEngFramesDepth,
        names::kEngDepthClamps, names::kEngAccountingClamps,
        names::kVmInstructions, names::kVmBlocks,
        names::kVmEventBatchFlushes, names::kSessRuns,
        names::kSessSteps, names::kSessInputEvents,
        names::kSessTraceDropped, names::kFaultMemTampers,
        names::kFaultBsvFlips, names::kFaultCtxSwitches,
        names::kFaultRingDrops, names::kFaultRingDups,
        names::kReplayChunks, names::kReplayBytes,
        names::kReplayEvents, names::kReplaySessions,
        names::kReplayEventsPerSec, names::kReplayCrcFailures,
        names::kReplayTruncatedChunks,
        names::kReplayVersionMismatches, names::kReplayIndexMissing,
        names::kReplaySeeks, names::kReplaySnapshotsWritten,
        names::kReplaySnapshotsUsed, names::kReplayWorkers,
        names::kCampAttacks,
        names::kCampFired, names::kCampCfChanged,
        names::kCampDetected, names::kCampFalsePositives,
        names::kCampDetectionBranchHist,
    };

    auto followsScheme = [](const std::string &name) {
        size_t d1 = name.find('.');
        size_t d2 = name.rfind('.');
        if (d1 == std::string::npos || d2 == d1)
            return false;
        if (name.substr(0, d1) != "ipds")
            return false;
        for (char c : name.substr(d1 + 1, d2 - d1 - 1))
            if (c < 'a' || c > 'z')
                return false;
        std::string field = name.substr(d2 + 1);
        if (field.empty())
            return false;
        for (char c : field)
            if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_'))
                return false;
        return true;
    };

    size_t checked = 0;
    std::istringstream in(rep.metricsText());
    std::string line;
    while (std::getline(in, line)) {
        std::string name = line.substr(0, line.find(' '));
        EXPECT_TRUE(followsScheme(name)) << name;
        EXPECT_TRUE(known.count(name))
            << name << " is not declared in obs/names.h";
        checked++;
    }
    // Every exporter must actually have contributed.
    EXPECT_GE(checked, 40u);
}

TEST(Session, RerunReplacesResults)
{
    CompiledProgram prog =
        compileAndAnalyze(kLoopProgram, "obs_loop");
    Session s = Session::builder()
                    .program(prog)
                    .inputs({"7", "1", "2", "3", "4"})
                    .build();
    s.run();
    std::string first = s.metricsJson();
    s.run();
    EXPECT_EQ(s.metricsJson(), first);
}

} // namespace
} // namespace ipds
