/**
 * @file
 * Attack-campaign framework tests: classification logic, determinism,
 * aggregate arithmetic and the benign-clean helper.
 */

#include <gtest/gtest.h>

#include "attack/campaign.h"
#include "core/program.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

const char *kTarget = R"(
void main() {
    int flag;
    int i;
    char pad[24];
    flag = 0;
    i = 0;
    while (i < 3) {
        get_input_n(pad, 24);
        if (flag == 1) { print_str("escalated\n"); }
        i = i + 1;
    }
}
)";

TEST(Campaign, GoldenRunPropertiesRecorded)
{
    CompiledProgram prog = compileAndAnalyze(kTarget, "t");
    CampaignConfig cfg;
    cfg.numAttacks = 10;
    CampaignResult res =
        runCampaign(prog, {"a", "b", "c"}, cfg);
    EXPECT_FALSE(res.falsePositive);
    EXPECT_EQ(res.goldenInputEvents, 3u);
    EXPECT_GT(res.goldenSteps, 0u);
    EXPECT_EQ(res.attacks(), 10u);
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(o.fired);
}

TEST(Campaign, DeterministicAcrossRuns)
{
    CompiledProgram prog = compileAndAnalyze(kTarget, "t");
    CampaignConfig cfg;
    cfg.numAttacks = 30;
    CampaignResult a = runCampaign(prog, {"a", "b", "c"}, cfg);
    CampaignResult b = runCampaign(prog, {"a", "b", "c"}, cfg);
    ASSERT_EQ(a.attacks(), b.attacks());
    for (uint32_t i = 0; i < a.attacks(); i++) {
        EXPECT_EQ(a.outcomes[i].cfChanged, b.outcomes[i].cfChanged);
        EXPECT_EQ(a.outcomes[i].detected, b.outcomes[i].detected);
        EXPECT_EQ(a.outcomes[i].tamper.addr,
                  b.outcomes[i].tamper.addr);
    }
    // A different base seed produces a different campaign.
    CampaignConfig other = cfg;
    other.baseSeed = cfg.baseSeed + 1;
    CampaignResult c = runCampaign(prog, {"a", "b", "c"}, other);
    bool anyDiff = false;
    for (uint32_t i = 0; i < a.attacks(); i++)
        anyDiff |= a.outcomes[i].tamper.addr !=
            c.outcomes[i].tamper.addr;
    EXPECT_TRUE(anyDiff);
}

TEST(Campaign, DetectionImpliesControlFlowChange)
{
    // A detected attack with an identical branch trace would mean the
    // detector alarmed on a path the golden run also took — i.e. a
    // false positive. Holds across every workload by construction.
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        CampaignConfig cfg;
        cfg.numAttacks = 30;
        CampaignResult res = runCampaign(prog, wl.benignInputs, cfg);
        for (const auto &o : res.outcomes)
            EXPECT_TRUE(!o.detected || o.cfChanged) << wl.name;
    }
}

TEST(Campaign, AggregateArithmetic)
{
    CampaignResult res;
    AttackOutcome a;
    a.cfChanged = true;
    a.detected = true;
    AttackOutcome b;
    b.cfChanged = true;
    AttackOutcome c;
    res.outcomes = {a, b, c, c};
    EXPECT_EQ(res.attacks(), 4u);
    EXPECT_EQ(res.numCfChanged(), 2u);
    EXPECT_EQ(res.numDetected(), 1u);
    EXPECT_DOUBLE_EQ(res.pctCfChanged(), 50.0);
    EXPECT_DOUBLE_EQ(res.pctDetected(), 25.0);
    EXPECT_DOUBLE_EQ(res.pctDetectedOfCf(), 50.0);
}

TEST(Campaign, EmptyResultIsSafe)
{
    CampaignResult res;
    EXPECT_EQ(res.attacks(), 0u);
    EXPECT_DOUBLE_EQ(res.pctCfChanged(), 0.0);
    EXPECT_DOUBLE_EQ(res.pctDetectedOfCf(), 0.0);
}

TEST(Campaign, BenignCleanHelper)
{
    CompiledProgram prog = compileAndAnalyze(kTarget, "t");
    EXPECT_TRUE(benignRunIsClean(prog, {"a", "b", "c"}));
    EXPECT_TRUE(benignRunIsClean(prog, {}));
}

TEST(Campaign, FlagTamperIsDetectedDirectly)
{
    // Sanity of the whole chain: flag=0 is pinned NOT-taken at entry;
    // flipping it to exactly 1 must both change control flow and trip
    // the detector for at least one attack in a modest campaign.
    CompiledProgram prog = compileAndAnalyze(kTarget, "t");
    CampaignConfig cfg;
    cfg.numAttacks = 60;
    CampaignResult res = runCampaign(prog, {"a", "b", "c"}, cfg);
    EXPECT_GT(res.numCfChanged(), 0u);
    EXPECT_GT(res.numDetected(), 0u);
}

TEST(Campaign, ThreadCountDoesNotChangeOutcomes)
{
    // Attack i's seed and result slot depend only on i, so running the
    // campaign over a thread pool must reproduce the single-threaded
    // outcomes exactly, attack by attack.
    CompiledProgram prog = compileAndAnalyze(kTarget, "t");
    CampaignConfig cfg;
    cfg.numAttacks = 40;
    cfg.numThreads = 1;
    CampaignResult serial = runCampaign(prog, {"a", "b", "c"}, cfg);
    cfg.numThreads = 4;
    CampaignResult parallel = runCampaign(prog, {"a", "b", "c"}, cfg);

    EXPECT_FALSE(serial.falsePositive);
    EXPECT_FALSE(parallel.falsePositive);
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); i++) {
        const AttackOutcome &s = serial.outcomes[i];
        const AttackOutcome &p = parallel.outcomes[i];
        EXPECT_EQ(s.fired, p.fired) << i;
        EXPECT_EQ(s.cfChanged, p.cfChanged) << i;
        EXPECT_EQ(s.detected, p.detected) << i;
        EXPECT_EQ(s.exit, p.exit) << i;
        EXPECT_EQ(s.detectionBranchIndex, p.detectionBranchIndex) << i;
    }
}

} // namespace
} // namespace ipds
