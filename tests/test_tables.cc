/**
 * @file
 * Perfect-hash and table-layout tests: collision-freedom properties,
 * slot mapping, bit accounting and the packed binary round trip.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/hashfn.h"
#include "core/program.h"
#include "core/tables.h"
#include "support/diag.h"
#include "support/rng.h"

namespace ipds {
namespace {

// ---------------------------------------------------------------- hashfn

TEST(HashFn, EmptyAndSingle)
{
    HashParams p0 = findPerfectHash({});
    EXPECT_EQ(p0.space(), 1u);
    HashParams p1 = findPerfectHash({0x1000});
    EXPECT_EQ(p1.space(), 1u);
}

TEST(HashFn, DuplicatePcsRecoverableError)
{
    // Duplicate PCs are a caller bug in the *input program*, not in
    // the library: the error must be recoverable (FatalError), so a
    // compile pipeline can fail one function and keep the process.
    EXPECT_THROW(findPerfectHash({0x1000, 0x1000}), FatalError);
}

/** Property: the found hash is collision-free and deterministic. */
class HashFnPropTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>>
{};

TEST_P(HashFnPropTest, CollisionFree)
{
    auto [n, seed] = GetParam();
    Rng rng(seed);
    std::set<uint64_t> pcSet;
    uint64_t pc = 0x1000;
    while (pcSet.size() < static_cast<size_t>(n)) {
        pc += 4 * (1 + rng.below(10));
        pcSet.insert(pc);
    }
    std::vector<uint64_t> pcs(pcSet.begin(), pcSet.end());

    HashParams p = findPerfectHash(pcs);
    std::set<uint32_t> slots;
    for (uint64_t x : pcs)
        slots.insert(p.apply(x));
    EXPECT_EQ(slots.size(), pcs.size()) << "collision found";
    EXPECT_GE(p.space(), pcs.size());

    // Determinism: same input, same parameters.
    HashParams p2 = findPerfectHash(pcs);
    EXPECT_EQ(p.shift1, p2.shift1);
    EXPECT_EQ(p.shift2, p2.shift2);
    EXPECT_EQ(p.log2Space, p2.log2Space);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HashFnPropTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 9, 17, 33, 70),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------- layout

TEST(Tables, SlotMappingMatchesHash)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int x;
    x = input_int();
    if (x < 1) { print_str("a"); }
    if (x < 2) { print_str("b"); }
    if (x < 3) { print_str("c"); }
}
)", "t");
    const CompiledFunction &cf = p.funcs[p.mod.entry];
    const FuncTables &t = cf.tables;
    ASSERT_EQ(t.slotOfBranch.size(), cf.bat.numBranches);
    std::set<uint32_t> slots;
    for (uint32_t i = 0; i < cf.bat.numBranches; i++) {
        EXPECT_EQ(t.slotOfBranch[i],
                  t.hash.apply(cf.bat.branchPcs[i]));
        slots.insert(t.slotOfBranch[i]);
    }
    EXPECT_EQ(slots.size(), cf.bat.numBranches); // no collisions
}

TEST(Tables, BranchRecsResolveSlotBcvAndActionSpans)
{
    // The layout-time BranchRec cache feeding the detector's hot path
    // must agree with the authoritative structures: hash slot, BCV bit
    // and the flattened copies of both action lists.
    CompiledProgram p = compileAndAnalyze(R"(
void helper(int v) {
    if (v > 3) { print_str("h"); }
}
void main() {
    int x;
    x = input_int();
    if (x < 1) { print_str("a"); }
    if (x < 1) { print_str("b"); }
    helper(x);
}
)", "t");
    for (const CompiledFunction &cf : p.funcs) {
        const FuncTables &t = cf.tables;
        if (cf.bat.numBranches == 0) {
            EXPECT_TRUE(t.branchRecs.empty());
            continue;
        }
        ASSERT_FALSE(t.branchRecs.empty());
        for (uint32_t i = 0; i < cf.bat.numBranches; i++) {
            uint64_t pc = cf.bat.branchPcs[i];
            ASSERT_GE(pc, t.lookupBasePc);
            uint64_t idx = (pc - t.lookupBasePc) / 4;
            ASSERT_LT(idx, t.branchRecs.size());
            const BranchRec &rec = t.branchRecs[idx];
            uint32_t slot = t.slotOfBranch[i];
            EXPECT_EQ(rec.slot, slot);
            EXPECT_EQ(rec.checked, t.bcv[slot] ? 1u : 0u);
            ASSERT_EQ(rec.takenLen, t.onTaken[slot].size());
            ASSERT_EQ(rec.notTakenLen, t.onNotTaken[slot].size());
            for (uint32_t k = 0; k < rec.takenLen; k++) {
                EXPECT_EQ(t.actionPool[rec.takenOff + k].slot,
                          t.onTaken[slot][k].slot);
                EXPECT_EQ(t.actionPool[rec.takenOff + k].act,
                          t.onTaken[slot][k].act);
            }
            for (uint32_t k = 0; k < rec.notTakenLen; k++) {
                EXPECT_EQ(t.actionPool[rec.notTakenOff + k].slot,
                          t.onNotTaken[slot][k].slot);
                EXPECT_EQ(t.actionPool[rec.notTakenOff + k].act,
                          t.onNotTaken[slot][k].act);
            }
        }
        // Exactly the branch pcs are mapped; holes stay unmapped.
        uint32_t mapped = 0;
        for (const BranchRec &rec : t.branchRecs)
            mapped += rec.slot != kNoBranchSlot ? 1 : 0;
        EXPECT_EQ(mapped, cf.bat.numBranches);
    }
}

TEST(Tables, BitAccountingFormula)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int x;
    x = input_int();
    if (x == 0) { print_str("z"); }
}
)", "t");
    const FuncTables &t = p.funcs[p.mod.entry].tables;
    EXPECT_EQ(t.bsvBits, 2ull * t.hash.space());
    EXPECT_EQ(t.bcvBits, t.hash.space());
    EXPECT_GT(t.batBits, 0u);
}

TEST(Tables, PackUnpackRoundTripAllWorkalikeShapes)
{
    // Round-trip the actual tables of a branch-rich program.
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int a;
    int i;
    a = input_int();
    i = 0;
    while (i < 4) {
        if (a < 3) { print_str("x"); }
        if (a == 7) { print_str("y"); } else { print_str("n"); }
        if (a > 100) { a = input_int(); }
        i = i + 1;
    }
}
)", "t");
    const FuncTables &t = p.funcs[p.mod.entry].tables;
    std::vector<uint8_t> image = t.pack();
    FuncTables u = FuncTables::unpack(image, t.func);

    EXPECT_EQ(u.hash.log2Space, t.hash.log2Space);
    EXPECT_EQ(u.hash.shift1, t.hash.shift1);
    EXPECT_EQ(u.hash.shift2, t.hash.shift2);
    ASSERT_EQ(u.bcv.size(), t.bcv.size());
    EXPECT_EQ(u.bcv, t.bcv);

    auto sameList = [](const std::vector<SlotAction> &a,
                       const std::vector<SlotAction> &b) {
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); i++)
            if (a[i].slot != b[i].slot || a[i].act != b[i].act)
                return false;
        return true;
    };
    for (uint32_t s = 0; s < t.hash.space(); s++) {
        EXPECT_TRUE(sameList(u.onTaken[s], t.onTaken[s])) << s;
        EXPECT_TRUE(sameList(u.onNotTaken[s], t.onNotTaken[s])) << s;
    }
    EXPECT_TRUE(sameList(u.entryActions, t.entryActions));
    EXPECT_EQ(u.batBits, t.batBits);
}

TEST(Tables, ZeroBranchFunctionPacks)
{
    CompiledProgram p = compileAndAnalyze(
        "void noop() { } void main() { noop(); }", "t");
    const FuncTables &t =
        p.funcs[p.mod.findFunction("noop")].tables;
    EXPECT_EQ(t.numBranches, 0u);
    auto image = t.pack();
    FuncTables u = FuncTables::unpack(image, t.func);
    EXPECT_EQ(u.hash.space(), t.hash.space());
}

} // namespace
} // namespace ipds
