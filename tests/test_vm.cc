/**
 * @file
 * VM semantics tests: MiniC programs executed end to end, checking
 * outputs, exit kinds, memory behaviour (including real overflows),
 * tamper mechanics and trace capture.
 */

#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "vm/memory.h"
#include "vm/vm.h"

namespace ipds {
namespace {

/** Compile+run with inputs, return the result. */
RunResult
run(const std::string &src, std::vector<std::string> inputs = {})
{
    Module m = compileMiniC(src, "t");
    Vm vm(m);
    vm.setInputs(std::move(inputs));
    return vm.run();
}

// ---------------------------------------------------------------- memory

TEST(Memory, UnmappedReadsZero)
{
    Memory mem;
    EXPECT_EQ(mem.readByte(0x1234), 0);
    EXPECT_EQ(mem.readI64(0xffff'ffff'0000ULL), 0);
}

TEST(Memory, ByteAndWordRoundTrip)
{
    Memory mem;
    mem.writeI64(0x1000, -123456789);
    EXPECT_EQ(mem.readI64(0x1000), -123456789);
    mem.writeByte(0x1000, 0xff);
    EXPECT_NE(mem.readI64(0x1000), -123456789);
    // Cross-page access works.
    mem.writeI64(0xfff, 0x1122334455667788LL);
    EXPECT_EQ(mem.readI64(0xfff), 0x1122334455667788LL);
}

TEST(Memory, CStrings)
{
    Memory mem;
    mem.writeBytes(0x2000, "hello", 6);
    EXPECT_EQ(mem.readCStr(0x2000), "hello");
    EXPECT_EQ(mem.readCStr(0x2000, 3), "hel");
}

// ------------------------------------------------------------ arithmetic

TEST(VmExec, Arithmetic)
{
    RunResult r = run(R"(
void main() {
    print_int(7 + 3 * 2);  print_str(" ");
    print_int(10 / 3);     print_str(" ");
    print_int(10 % 3);     print_str(" ");
    print_int(-5 + 2);     print_str(" ");
    print_int(1 << 4);     print_str(" ");
    print_int(256 >> 3);   print_str(" ");
    print_int(12 & 10);    print_str(" ");
    print_int(12 | 3);     print_str(" ");
    print_int(12 ^ 10);
}
)");
    EXPECT_EQ(r.output, "13 3 1 -3 16 32 8 15 6");
    EXPECT_EQ(r.exit, ExitKind::Returned);
}

TEST(VmExec, ComparisonAndLogic)
{
    RunResult r = run(R"(
void main() {
    print_int(3 < 4);  print_int(4 <= 4); print_int(5 > 6);
    print_int(!0);     print_int(!7);
    print_int(1 && 0); print_int(1 || 0);
}
)");
    // 3<4=1, 4<=4=1, 5>6=0, !0=1, !7=0, 1&&0=0, 1||0=1
    EXPECT_EQ(r.output, "1101001");
}

TEST(VmExec, DivisionByZeroTraps)
{
    RunResult r = run("void main() { int x; x = 0; print_int(5 / x); }");
    EXPECT_EQ(r.exit, ExitKind::Trapped);
    EXPECT_NE(r.trapMessage.find("division"), std::string::npos);
    RunResult r2 =
        run("void main() { int x; x = 0; print_int(5 % x); }");
    EXPECT_EQ(r2.exit, ExitKind::Trapped);
}

// ---------------------------------------------------------- control flow

TEST(VmExec, LoopsAndBreakContinue)
{
    RunResult r = run(R"(
void main() {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i == 3) { continue; }
        if (i == 7) { break; }
        sum = sum + i;
    }
    print_int(sum); // 0+1+2+4+5+6 = 18
}
)");
    EXPECT_EQ(r.output, "18");
}

TEST(VmExec, RecursionAndReturnValues)
{
    RunResult r = run(R"(
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
void main() { print_int(fib(12)); }
)");
    EXPECT_EQ(r.output, "144");
}

TEST(VmExec, DeepRecursionTrapsOnStackOverflow)
{
    RunResult r = run(R"(
int down(int n) {
    int pad[64];
    pad[0] = n;
    return down(n + pad[0] - pad[0] + 1);
}
void main() { print_int(down(0)); }
)");
    EXPECT_EQ(r.exit, ExitKind::Trapped);
    EXPECT_NE(r.trapMessage.find("stack overflow"),
              std::string::npos);
}

TEST(VmExec, FuelLimit)
{
    Module m = compileMiniC(
        "void main() { int x; x = 1; while (x > 0) { x = x + 1; } }",
        "t");
    Vm vm(m);
    vm.setFuel(10000);
    RunResult r = vm.run();
    EXPECT_EQ(r.exit, ExitKind::OutOfFuel);
    EXPECT_GE(r.steps, 10000u);
}

// --------------------------------------------------------- pointers etc.

TEST(VmExec, PointersAndArrays)
{
    RunResult r = run(R"(
void main() {
    int a[4];
    int *p;
    int i;
    for (i = 0; i < 4; i = i + 1) { a[i] = i * i; }
    p = a;
    print_int(*p);        print_str(" ");
    print_int(p[3]);      print_str(" ");
    p = p + 1;
    print_int(*p);        print_str(" ");
    *p = 99;
    print_int(a[1]);
}
)");
    EXPECT_EQ(r.output, "0 9 1 99");
}

TEST(VmExec, AddressOfScalar)
{
    RunResult r = run(R"(
void set7(int *p) { *p = 7; }
void main() {
    int x;
    x = 1;
    set7(&x);
    print_int(x);
}
)");
    EXPECT_EQ(r.output, "7");
}

TEST(VmExec, CharArraysAndStringBuiltins)
{
    RunResult r = run(R"(
void main() {
    char a[16];
    char b[16];
    strcpy(a, "hello");
    strcpy(b, a);
    strcat(b, " world");
    print_str(b);                print_str("|");
    print_int(strlen(b));        print_str("|");
    print_int(strcmp(a, "hello")); print_str("|");
    print_int(strncmp(b, "hellX", 4)); print_str("|");
    print_int(atoi("42abc"));
}
)");
    EXPECT_EQ(r.output, "hello world|11|0|0|42");
}

TEST(VmExec, MemBuiltins)
{
    RunResult r = run(R"(
void main() {
    char a[8];
    char b[8];
    memset(a, 'x', 7);
    a[7] = 0;
    memcpy(b, a, 8);
    print_str(b);               print_str("|");
    print_int(memcmp(a, b, 8)); print_str("|");
    b[2] = 'y';
    print_int(memcmp(a, b, 8)); // 'x' < 'y' => negative
}
)");
    EXPECT_EQ(r.output, "xxxxxxx|0|-1");
}

TEST(VmExec, RealBufferOverflowClobbersNeighbour)
{
    // str is declared before flag, so writing past str[8] hits flag.
    RunResult r = run(R"(
void main() {
    char str[8];
    int flag;
    flag = 0;
    get_input(str);
    if (flag != 0) {
        print_str("flag corrupted");
    } else {
        print_str("flag intact");
    }
}
)",
                      {"AAAAAAAAAAAA"}); // 12 bytes > 8
    EXPECT_EQ(r.output, "flag corrupted");
}

TEST(VmExec, GetInputNBounds)
{
    RunResult r = run(R"(
void main() {
    char str[8];
    int flag;
    flag = 0;
    get_input_n(str, 8);
    if (flag != 0) { print_str("corrupt"); } else { print_str("ok"); }
    print_str("|");
    print_str(str);
}
)",
                      {"AAAAAAAAAAAA"});
    EXPECT_EQ(r.output, "ok|AAAAAAA");
}

TEST(VmExec, ExitBuiltinStopsProgram)
{
    RunResult r = run(
        "void main() { print_str(\"a\"); exit(3); print_str(\"b\"); }");
    EXPECT_EQ(r.exit, ExitKind::Exited);
    EXPECT_EQ(r.exitCode, 3);
    EXPECT_EQ(r.output, "a");
}

TEST(VmExec, GlobalsInitializedAndShared)
{
    RunResult r = run(R"(
int counter = 5;
char tag[6] = "boot";
void bump() { counter = counter + 1; }
void main() {
    bump();
    bump();
    print_int(counter);
    print_str(tag);
}
)");
    EXPECT_EQ(r.output, "7boot");
}

// ------------------------------------------------------------ tampering

TEST(VmTamper, FixedAddressTamper)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    x = 1;
    input_int();
    if (x == 1) { print_str("same"); } else { print_str("CHANGED"); }
}
)", "t");
    Vm vm(m);
    vm.setInputs({"0"});
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 1;
    spec.addr = vm.entryLocalAddr("x");
    spec.bytes = {9, 0, 0, 0, 0, 0, 0, 0};
    vm.setTamper(spec);
    RunResult r = vm.run();
    EXPECT_TRUE(r.tamper.fired);
    EXPECT_EQ(r.output, "CHANGED");
    EXPECT_EQ(r.tamper.oldBytes[0], 1);
    EXPECT_EQ(r.tamper.newBytes[0], 9);
}

TEST(VmTamper, RandomStackTamperIsDeterministicPerSeed)
{
    Module m = compileMiniC(R"(
void main() {
    int a; int b; char buf[8];
    a = 1; b = 2;
    input_int();
    print_int(a + b);
}
)", "t");
    auto runSeed = [&](uint64_t seed) {
        Vm vm(m);
        vm.setInputs({"0"});
        TamperSpec spec;
        spec.afterInputEvent = 1;
        spec.seed = seed;
        vm.setTamper(spec);
        return vm.run();
    };
    RunResult a1 = runSeed(11), a2 = runSeed(11), b1 = runSeed(12);
    EXPECT_TRUE(a1.tamper.fired);
    EXPECT_EQ(a1.tamper.addr, a2.tamper.addr);
    EXPECT_EQ(a1.tamper.newBytes, a2.tamper.newBytes);
    EXPECT_EQ(a1.output, a2.output);
    // Different seed eventually picks different target/value; just
    // check the record is well-formed.
    EXPECT_TRUE(b1.tamper.fired);
    EXPECT_FALSE(b1.tamper.objectName.empty());
}

TEST(VmTamper, StepTrigger)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    x = 5;
    while (x == 5) { x = 5; }
    print_str("escaped");
}
)", "t");
    Vm vm(m);
    vm.setFuel(100000);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.atStep = 50;
    spec.addr = vm.entryLocalAddr("x");
    spec.bytes = {0};
    vm.setTamper(spec);
    RunResult r = vm.run();
    EXPECT_TRUE(r.tamper.fired);
    // x=5 is re-stored each iteration, so one-byte corruption is
    // immediately overwritten; the program never escapes benignly --
    // unless the tamper lands between store and test. Either outcome
    // is valid; what matters is the tamper fired at the right step.
    EXPECT_GE(r.steps, 50u);
}

TEST(VmTamper, StepTriggerAtExactFuelBoundary)
{
    // Regression: a tamper armed at atStep == fuel used to be skipped
    // because the out-of-fuel check bailed before the step-count
    // trigger was consulted. The tamper must fire (it is "at" step N,
    // which is reached) even though no further instruction runs.
    Module m = compileMiniC(R"(
void main() {
    int x;
    x = 5;
    while (x == 5) { x = 5; }
}
)", "t");
    for (VmEngine eng : {VmEngine::Switch, VmEngine::Threaded}) {
        Vm vm(m);
        vm.setEngine(eng);
        vm.setFuel(500);
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.atStep = 500; // == fuel
        spec.addr = vm.entryLocalAddr("x");
        spec.bytes = {7};
        vm.setTamper(spec);
        RunResult r = vm.run();
        EXPECT_EQ(r.exit, ExitKind::OutOfFuel)
            << static_cast<int>(eng);
        EXPECT_EQ(r.steps, 500u) << static_cast<int>(eng);
        EXPECT_TRUE(r.tamper.fired) << static_cast<int>(eng);
    }
}

// --------------------------------------------------------------- tracing

TEST(VmTrace, BranchTraceMatchesControlFlow)
{
    Module m = compileMiniC(R"(
void main() {
    int i;
    for (i = 0; i < 3; i = i + 1) { }
}
)", "t");
    Vm vm(m);
    RunResult r = vm.run();
    // for-head branch: taken, taken, taken, not-taken.
    ASSERT_EQ(r.branchTrace.size(), 4u);
    EXPECT_TRUE(r.branchTrace[0].taken);
    EXPECT_TRUE(r.branchTrace[2].taken);
    EXPECT_FALSE(r.branchTrace[3].taken);
    // All four events come from the same branch PC.
    EXPECT_EQ(r.branchTrace[0].pc, r.branchTrace[3].pc);
}

TEST(VmTrace, ObserverSeesFunctionNesting)
{
    struct Probe : ExecObserver
    {
        int depth = 0;
        int maxDepth = 0;
        void onFunctionEnter(FuncId) override
        {
            depth++;
            maxDepth = std::max(maxDepth, depth);
        }
        void onFunctionExit(FuncId) override { depth--; }
    };
    Module m = compileMiniC(R"(
int g(int n) { return n + 1; }
int f(int n) { return g(n) + 1; }
void main() { print_int(f(0)); }
)", "t");
    Vm vm(m);
    Probe probe;
    vm.addObserver(&probe);
    RunResult r = vm.run();
    EXPECT_EQ(r.output, "2");
    EXPECT_EQ(probe.depth, 0);
    EXPECT_EQ(probe.maxDepth, 3); // main -> f -> g
}

} // namespace
} // namespace ipds
