#ifndef IPDS_TESTS_PROGRAM_GEN_H
#define IPDS_TESTS_PROGRAM_GEN_H

/**
 * @file
 * Random MiniC program generator shared by the fuzz suites
 * (test_fuzz.cc) and the engine differential suite
 * (test_vm_threaded.cc). Deterministic per seed: every generated
 * program always terminates, stays within buffer bounds, and consumes
 * at most the 40 input lines inputs() provides.
 */

#include <string>
#include <vector>

#include "support/diag.h"
#include "support/rng.h"

namespace ipds {
namespace testutil {

/** Random program generator. Deterministic per seed. */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed)
        : rng(seed)
    {}

    std::string
    generate()
    {
        src.clear();
        intVars.clear();
        bufVars.clear();
        loopCounter = 0;

        // Globals.
        int nGlobals = static_cast<int>(rng.below(3));
        for (int i = 0; i < nGlobals; i++) {
            std::string n = strprintf("g%d", i);
            if (rng.chance(0.5))
                src += strprintf("int %s = %lld;\n", n.c_str(),
                                 static_cast<long long>(
                                     rng.range(-9, 9)));
            else
                src += strprintf("int %s;\n", n.c_str());
            intVars.push_back(n);
        }

        // Optional helper function.
        hasHelper = rng.chance(0.6);
        if (hasHelper) {
            src += "int helper(int a, int b) {\n";
            src += "    if (a < b) { return a + 1; }\n";
            if (!intVars.empty() && rng.chance(0.5))
                src += strprintf("    %s = %s + 1;\n",
                                 intVars[0].c_str(),
                                 intVars[0].c_str());
            src += "    return b - a;\n}\n";
        }

        // Optional pointer-taking helper (exercises interprocedural
        // exact-argument resolution and pure-call correlation).
        hasChecker = rng.chance(0.6);
        if (hasChecker) {
            src += "int checker(char *s) {\n";
            src += "    if (strncmp(s, \"se\", 2) == 0) { "
                   "return 1; }\n";
            if (rng.chance(0.4))
                src += "    if (strlen(s) > 4) { return 2; }\n";
            src += "    return 0;\n}\n";
        }

        src += "void main() {\n";
        int nInts = 2 + static_cast<int>(rng.below(3));
        for (int i = 0; i < nInts; i++) {
            std::string n = strprintf("x%d", i);
            src += strprintf("    int %s;\n", n.c_str());
            intVars.push_back(n);
        }
        int nBufs = 1 + static_cast<int>(rng.below(2));
        for (int i = 0; i < nBufs; i++) {
            std::string n = strprintf("buf%d", i);
            src += strprintf("    char %s[16];\n", n.c_str());
            bufVars.push_back(n);
        }
        // Initialize everything to defined values.
        for (int i = 0; i < nInts; i++)
            src += strprintf("    x%d = %lld;\n", i,
                             static_cast<long long>(rng.range(-5, 9)));
        for (const auto &b : bufVars)
            src += strprintf("    strcpy(%s, \"seed\");\n", b.c_str());

        statements(2 + static_cast<int>(rng.below(5)), 1);
        src += "}\n";
        return src;
    }

    /** Input lines consumed by the generated input calls (generous). */
    std::vector<std::string>
    inputs()
    {
        std::vector<std::string> in;
        for (int i = 0; i < 40; i++) {
            if (rng.chance(0.5))
                in.push_back(strprintf(
                    "%lld", static_cast<long long>(rng.range(-99, 99))));
            else
                in.push_back(std::string(rng.below(14), 'a' + i % 26));
        }
        return in;
    }

  private:
    void
    indent(int depth)
    {
        src.append(static_cast<size_t>(depth * 4), ' ');
    }

    std::string
    intExpr(int depth)
    {
        if (depth > 2 || rng.chance(0.3))
            return rng.chance(0.5) && !intVars.empty()
                ? intVars[rng.below(intVars.size())]
                : strprintf("%lld",
                            static_cast<long long>(rng.range(-9, 9)));
        static const char *ops[] = {"+", "-", "*", "&", "|", "^"};
        return "(" + intExpr(depth + 1) + " " +
            ops[rng.below(6)] + " " + intExpr(depth + 1) + ")";
    }

    std::string
    cond()
    {
        switch (rng.below(4)) {
          case 0:
            return strprintf("%s %s %lld",
                             intVars[rng.below(intVars.size())].c_str(),
                             pred(), static_cast<long long>(
                                 rng.range(-9, 9)));
          case 1:
            return strprintf(
                "strncmp(%s, \"se\", 2) == 0",
                bufVars[rng.below(bufVars.size())].c_str());
          case 2:
            return "(" + cond() + ") && (" + cond() + ")";
          default:
            return intExpr(1) + " " + pred() + " " + intExpr(1);
        }
    }

    const char *
    pred()
    {
        static const char *p[] = {"<", "<=", ">", ">=", "==", "!="};
        return p[rng.below(6)];
    }

    void
    statements(int count, int depth)
    {
        for (int i = 0; i < count; i++)
            statement(depth);
    }

    void
    statement(int depth)
    {
        if (depth > 3) {
            indent(depth);
            src += "print_int(1);\n";
            return;
        }
        switch (rng.below(10)) {
          case 0: { // assignment
            indent(depth);
            src += strprintf("%s = %s;\n",
                             intVars[rng.below(intVars.size())].c_str(),
                             intExpr(0).c_str());
            break;
          }
          case 1: { // if / if-else
            indent(depth);
            src += strprintf("if (%s) {\n", cond().c_str());
            statements(1 + static_cast<int>(rng.below(2)), depth + 1);
            if (rng.chance(0.5)) {
                indent(depth);
                src += "} else {\n";
                statements(1, depth + 1);
            }
            indent(depth);
            src += "}\n";
            break;
          }
          case 2: { // bounded loop with a dedicated fresh counter
            std::string c = strprintf("lc%d", loopCounter++);
            indent(depth);
            src += strprintf("int %s;\n", c.c_str());
            indent(depth);
            src += strprintf("%s = 0;\n", c.c_str());
            indent(depth);
            src += strprintf("while (%s < %llu) {\n", c.c_str(),
                             static_cast<unsigned long long>(
                                 1 + rng.below(4)));
            inLoop++;
            statements(1 + static_cast<int>(rng.below(2)), depth + 1);
            inLoop--;
            indent(depth + 1);
            src += strprintf("%s = %s + 1;\n", c.c_str(), c.c_str());
            indent(depth);
            src += "}\n";
            break;
          }
          case 3: { // input into int
            indent(depth);
            src += strprintf("%s = input_int();\n",
                             intVars[rng.below(intVars.size())]
                                 .c_str());
            break;
          }
          case 4: { // bounded input into buffer
            indent(depth);
            src += strprintf("get_input_n(%s, 16);\n",
                             bufVars[rng.below(bufVars.size())]
                                 .c_str());
            break;
          }
          case 5: { // string ops within bounds
            indent(depth);
            const std::string &b = bufVars[rng.below(bufVars.size())];
            if (rng.chance(0.5))
                src += strprintf("strcpy(%s, \"v%llu\");\n", b.c_str(),
                                 static_cast<unsigned long long>(
                                     rng.below(100)));
            else
                src += strprintf("print_int(strlen(%s));\n",
                                 b.c_str());
            break;
          }
          case 6: { // helper call
            indent(depth);
            if (hasChecker && rng.chance(0.5))
                src += strprintf("%s = checker(%s);\n",
                                 intVars[rng.below(intVars.size())]
                                     .c_str(),
                                 bufVars[rng.below(bufVars.size())]
                                     .c_str());
            else if (hasHelper)
                src += strprintf("%s = helper(%s, %s);\n",
                                 intVars[rng.below(intVars.size())]
                                     .c_str(),
                                 intExpr(1).c_str(),
                                 intExpr(1).c_str());
            else
                src += strprintf("print_int(%s);\n",
                                 intExpr(0).c_str());
            break;
          }
          case 7: { // bounded for loop
            std::string c = strprintf("lc%d", loopCounter++);
            indent(depth);
            src += strprintf("int %s;\n", c.c_str());
            indent(depth);
            src += strprintf(
                "for (%s = 0; %s < %llu; %s = %s + 1) {\n", c.c_str(),
                c.c_str(),
                static_cast<unsigned long long>(1 + rng.below(4)),
                c.c_str(), c.c_str());
            inLoop++;
            inForLoop++;
            statements(1 + static_cast<int>(rng.below(2)), depth + 1);
            inForLoop--;
            inLoop--;
            indent(depth);
            src += "}\n";
            break;
          }
          case 8: { // break / continue, guarded, only inside loops
            indent(depth);
            if (inForLoop > 0) {
                src += strprintf("if (%s) { %s; }\n", cond().c_str(),
                                 rng.chance(0.5) ? "break"
                                                 : "continue");
            } else if (inLoop > 0) {
                src += strprintf("if (%s) { break; }\n",
                                 cond().c_str());
            } else {
                src += strprintf("print_int(%s);\n",
                                 intExpr(0).c_str());
            }
            break;
          }
          default: { // output
            indent(depth);
            src += strprintf("print_str(%s);\n",
                             bufVars[rng.below(bufVars.size())]
                                 .c_str());
            break;
          }
        }
    }

    Rng rng;
    std::string src;
    std::vector<std::string> intVars;
    std::vector<std::string> bufVars;
    bool hasHelper = false;
    bool hasChecker = false;
    int loopCounter = 0;
    int inLoop = 0;    ///< nesting depth where `break` is legal
    int inForLoop = 0; ///< depth where `continue` is also safe (the
                       ///< for-step still advances the counter)
};

} // namespace testutil
} // namespace ipds

#endif // IPDS_TESTS_PROGRAM_GEN_H
