/**
 * @file
 * Parallel replay suite (ctest label `replay-par`).
 *
 * The standing contract: parallel replay over the v2 chunk index is a
 * pure optimization — alarms, DetectorStats, TimingStats, FaultStats
 * and the metrics export are BIT-IDENTICAL to the sequential replay at
 * every worker count, on every workload, for detector-only and timing
 * traces alike. The suite also pins the builder's up-front geometry
 * guards: parallel()/seekSession()/seekChunk() are mutually exclusive,
 * a timing trace cannot be split wider than its capture shards, and
 * seekChunk() is rejected for timing traces at build() time.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/program.h"
#include "obs/names.h"
#include "obs/session.h"
#include "replay/format.h"
#include "replay/reader.h"
#include "support/diag.h"
#include "timing/config.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

std::string
tmpTracePath(const std::string &name)
{
    return testing::TempDir() + "ipds_par_" + name + ".trc";
}

bool
sameAlarms(const std::vector<Alarm> &a, const std::vector<Alarm> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++) {
        if (a[i].func != b[i].func || a[i].pc != b[i].pc ||
            a[i].actualTaken != b[i].actualTaken ||
            a[i].expected != b[i].expected ||
            a[i].branchIndex != b[i].branchIndex)
            return false;
    }
    return true;
}

/** metricsText() minus the two lines a worker count may legitimately
 *  change: the wall-clock rate gauge and the worker-count gauge.
 *  Every other line — including the rest of ipds.replay.* — must be a
 *  pure function of the trace. */
std::string
stripVariantLines(const std::string &text)
{
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.find("events_per_sec") != std::string::npos)
            continue;
        if (line.rfind("ipds.replay.workers", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

struct ReplayOutcome
{
    std::string metrics;
    DetectorStats det;
    TimingStats tim;
    std::vector<Alarm> alarms;
};

ReplayOutcome
replaySeq(const CompiledProgram &prog, const std::string &path)
{
    Session s = Session::builder()
                    .program(prog)
                    .plan(ReplayPlan(path))
                    .build();
    s.run();
    return {stripVariantLines(s.metricsText()), s.detectorStats(),
            s.timingStats(), s.alarms()};
}

ReplayOutcome
replayPar(const CompiledProgram &prog, const std::string &path,
          unsigned workers)
{
    Session s = Session::builder()
                    .program(prog)
                    .plan(ReplayPlan(path).parallel(workers))
                    .build();
    s.run();
    namespace n = obs::names;
    const obs::MetricsRegistry &m = s.metrics();
    EXPECT_GE(m.value(m.find(n::kReplayWorkers)), 1u);
    EXPECT_EQ(m.value(m.find(n::kReplayIndexMissing)), 0u);
    return {stripVariantLines(s.metricsText()), s.detectorStats(),
            s.timingStats(), s.alarms()};
}

void
expectSame(const ReplayOutcome &seq, const ReplayOutcome &par,
           const std::string &tag)
{
    EXPECT_EQ(seq.metrics, par.metrics) << tag;
    EXPECT_TRUE(seq.det == par.det) << tag;
    EXPECT_TRUE(seq.tim == par.tim) << tag;
    EXPECT_TRUE(sameAlarms(seq.alarms, par.alarms)) << tag;
}

const unsigned kWorkerCounts[] = {1, 2, 4, 8};

// ------------------------------------------------- bit-identity

TEST(ReplayPar, DetectorOnlyMatchesSequentialOnAllWorkloads)
{
    for (const Workload &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name);
        std::string path = tmpTracePath("det_" + wl.name);
        Session::builder()
            .program(prog)
            .inputs(wl.benignInputs)
            .sessions(4)
            .shards(2)
            .plan(CapturePlan(path))
            .build()
            .run();

        ReplayOutcome seq = replaySeq(prog, path);
        for (unsigned w : kWorkerCounts)
            expectSame(seq, replayPar(prog, path, w),
                       wl.name + " @" + std::to_string(w));
        std::remove(path.c_str());
    }
}

TEST(ReplayPar, TimingMatchesSequentialOnAllWorkloads)
{
    // A timing trace parallelizes per capture shard (the CpuModel
    // carries state across a shard's sessions), so the sweep stays
    // within the capture geometry; parallel(0) auto-sizes and clamps.
    for (const Workload &wl : allWorkloads()) {
        CompiledProgram prog =
            compileAndAnalyze(wl.source, wl.name);
        std::string path = tmpTracePath("tim_" + wl.name);
        Session::builder()
            .program(prog)
            .inputs(wl.benignInputs)
            .timing(table1Config())
            .sessions(4)
            .shards(2)
            .plan(CapturePlan(path))
            .build()
            .run();

        ReplayOutcome seq = replaySeq(prog, path);
        expectSame(seq, replayPar(prog, path, 1), wl.name + " @1");
        expectSame(seq, replayPar(prog, path, 2), wl.name + " @2");
        std::remove(path.c_str());
    }
}

TEST(ReplayPar, TamperedTraceAlarmsIdenticallyInParallel)
{
    // Alarms must merge back in session order, not completion order.
    const char *prog_src = R"(
void main() {
    int role;
    int req;
    role = 0;
    if (input_int() == 42) {
        role = 1;
    }
    req = 0;
    while (req < 4) {
        if (role == 1) {
            print_str("p\n");
        } else {
            print_str("n\n");
        }
        input_int();
        req = req + 1;
    }
}
)";
    CompiledProgram prog = compileAndAnalyze(prog_src, "par_tamper");
    std::string path = tmpTracePath("tamper");

    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 2;
    spec.addr = Vm(prog.mod).entryLocalAddr("role");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};

    Session live =
        Session::builder()
            .program(prog)
            .inputs({"7", "1", "2", "3", "4"})
            .sessions(4)
            .shards(2)
            .plan(CapturePlan(path).exec(ExecPlan().tamper(spec)))
            .build();
    live.run();
    ASSERT_TRUE(live.alarmed());

    ReplayOutcome seq = replaySeq(prog, path);
    ASSERT_FALSE(seq.alarms.empty());
    for (unsigned w : kWorkerCounts)
        expectSame(seq, replayPar(prog, path, w),
                   "tamper @" + std::to_string(w));
    std::remove(path.c_str());
}

// ------------------------------------------------- builder guards

TEST(ReplayPar, ParallelAndSeekModesAreMutuallyExclusive)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("excl");
    Session::builder()
        .program(prog)
        .inputs(wl.benignInputs)
        .sessions(2)
        .plan(CapturePlan(path))
        .build()
        .run();

    auto expectFatal = [&](ReplayPlan plan, const char *what) {
        try {
            Session::builder().program(prog).plan(plan).build();
            FAIL() << "expected FatalError: " << what;
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find(what),
                      std::string::npos)
                << e.what();
        }
    };
    expectFatal(ReplayPlan(path).parallel(2).seekSession(1),
                "mutually exclusive");
    expectFatal(ReplayPlan(path).parallel(2).seekChunk(0),
                "mutually exclusive");
    expectFatal(ReplayPlan(path).seekSession(1).seekChunk(0),
                "mutually exclusive");
    std::remove(path.c_str());
}

TEST(ReplayPar, TimingTraceRejectsWorkersBeyondShardGeometry)
{
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("geom");
    Session::builder()
        .program(prog)
        .inputs(wl.benignInputs)
        .timing(table1Config())
        .sessions(4)
        .shards(2)
        .plan(CapturePlan(path))
        .build()
        .run();

    // The guard is up-front (build() reads the trace header), names
    // the geometry, and fires before any replay work happens.
    try {
        Session::builder()
            .program(prog)
            .plan(ReplayPlan(path).parallel(4))
            .build();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("shard geometry"),
                  std::string::npos)
            << e.what();
    }

    // seekChunk() cannot resume a CPU scoreboard: rejected up front
    // for timing traces too.
    try {
        Session::builder()
            .program(prog)
            .plan(ReplayPlan(path).seekChunk(1))
            .build();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("timing traces"),
                  std::string::npos)
            << e.what();
    }

    // Within the geometry the same plans build and run fine.
    Session ok = Session::builder()
                     .program(prog)
                     .plan(ReplayPlan(path).parallel(2))
                     .build();
    ok.run();
    EXPECT_GT(ok.detectorStats().branchesSeen, 0u);
    std::remove(path.c_str());
}

TEST(ReplayPar, V1TraceFallsBackToSequentialWithIndexMissing)
{
    // A v1 trace has no footer: a parallel plan must still replay
    // (sequentially) and flag the degradation in the metrics.
    const Workload &wl = workloadByName("telnetd");
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    std::string path = tmpTracePath("v1fallback");
    Session::builder()
        .program(prog)
        .inputs(wl.benignInputs)
        .sessions(2)
        .plan(CapturePlan(path))
        .build()
        .run();

    // Strip the trace back to v1: drop the index footer + trailer and
    // reseal the header with version 1.
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        in.close();
        size_t footerOff = static_cast<size_t>(
            replay::getU64(bytes.data() + bytes.size() - 8));
        bytes.resize(footerOff);
        replay::putU32(bytes.data() + 8, 1); // version word
        replay::putU32(bytes.data() + 36,
                       replay::crc32(bytes.data(), 36));
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }

    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path).parallel(4))
                      .build();
    rep.run();
    namespace n = obs::names;
    const obs::MetricsRegistry &m = rep.metrics();
    EXPECT_EQ(m.value(m.find(n::kReplayIndexMissing)), 1u);
    EXPECT_EQ(m.value(m.find(n::kReplayWorkers)), 1u);
    EXPECT_EQ(m.value(m.find(n::kSessRuns)), 2u);
    EXPECT_GT(rep.detectorStats().branchesSeen, 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace ipds
