/**
 * @file
 * Detection-service suite (`ctest -L service`).
 *
 * The tentpole guarantee under test: a trace streamed to ipds_serve
 * over the framed transport is detected AT INGEST bit-identically to
 * offline replay of the same file — same alarms, same DetectorStats,
 * same metric lines (modulo the wall-clock events_per_sec gauge and
 * the transport-only ipds.tenant.* meters).
 *
 * Around it, the failure taxonomy of the transport (the reader
 * satellite's retry-vs-reject contract lifted to the wire): partial
 * frame at connection drop is truncation, frame/chunk CRC mismatch is
 * corruption, an oversized frame is rejected before buffering, and a
 * slow client is paused — counted, never deadlocked, never able to
 * starve other tenants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/program.h"
#include "inject/fault.h"
#include "obs/names.h"
#include "obs/session.h"
#include "replay/format.h"
#include "replay/reader.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "support/diag.h"
#include "timing/config.h"
#include "vm/vm.h"

using namespace ipds;

namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "ipds_serve_" + name;
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

/** The replay suite's correlated-privilege-flag program: tampering
 *  `role` after input #2 walks an infeasible path every iteration. */
const char *kLoopProgram = R"(
void main() {
    int role;
    int req;
    role = 0;
    if (input_int() == 42) {
        role = 1;
    }
    req = 0;
    while (req < 4) {
        if (role == 1) {
            print_str("p\n");
        } else {
            print_str("n\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

const std::vector<std::string> kLoopInputs{"7", "1", "2", "3", "4"};

/** Capture a trace through the public facade; returns its path. */
std::string
capture(const CompiledProgram &prog, const std::string &name,
        uint32_t sessions, bool timing, bool tamper = false)
{
    std::string path = tmpPath(name + ".trc");
    Session::Builder b = Session::builder();
    b.program(prog).inputs(kLoopInputs).sessions(sessions);
    if (timing)
        b.timing(table1Config());
    ExecPlan exec;
    if (tamper) {
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 2;
        spec.addr = Vm(prog.mod).entryLocalAddr("role");
        spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
        exec.tamper(spec);
    }
    b.plan(CapturePlan(path).exec(exec));
    b.build().run();
    return path;
}

/** Connect with retries — the server thread may still be binding. */
void
connectRetry(serve::Client &c, const std::string &sock)
{
    for (int i = 0;; i++) {
        try {
            c.connect(sock);
            return;
        } catch (const FatalError &) {
            if (i > 200)
                throw;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }
}

/** Metric lines of a text blob, minus the wall-clock gauge. */
std::string
metricLines(const std::string &text)
{
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.rfind("ipds.", 0) != 0)
            continue;
        if (line.find(obs::names::kReplayEventsPerSec) == 0)
            continue;
        if (line.find("ipds.tenant.") == 0)
            continue;
        out += line + "\n";
    }
    return out;
}

} // namespace

// ------------------------------------------ truncation vs corruption

TEST(ReaderContract, HeaderTruncationIsRetryableNotCorrupt)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "hdr", 1, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    replay::TraceMeta meta;
    size_t consumed = 0;
    std::string err;

    // Too short: NeedMore — the streaming alias for TruncatedChunk —
    // means "wait for bytes", never "reject".
    EXPECT_EQ(replay::parseHeader(bytes.data(), 10, meta, consumed,
                                  &err),
              replay::ParseStatus::NeedMore);
    EXPECT_EQ(replay::ParseStatus::NeedMore,
              replay::ParseStatus::TruncatedChunk);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;

    // Complete: Ok, consumed = the header size.
    EXPECT_EQ(replay::parseHeader(bytes.data(), bytes.size(), meta,
                                  consumed, &err),
              replay::ParseStatus::Ok);
    EXPECT_EQ(consumed, replay::headerBytes(meta));

    // Corrupt (a moduleHash byte — covered by the header CRC, past
    // the magic/version prefix): CRC mismatch is a reject, not a
    // retry.
    std::vector<uint8_t> bad = bytes;
    bad[13] ^= 0x40;
    EXPECT_EQ(replay::parseHeader(bad.data(), bad.size(), meta,
                                  consumed, &err),
              replay::ParseStatus::ChunkCrcMismatch);
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;
}

TEST(ReaderContract, ChunkTruncationCorruptionAndMalformedLengths)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "chk", 1, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    replay::TraceMeta meta;
    size_t consumed = 0;
    std::string err;
    ASSERT_EQ(replay::parseHeader(bytes.data(), bytes.size(), meta,
                                  consumed, &err),
              replay::ParseStatus::Ok);
    const uint8_t *chunk = bytes.data() + consumed;
    size_t avail = bytes.size() - consumed;
    ASSERT_GT(avail, replay::kChunkHeaderBytes);

    // The capture now ends with the v2 index footer + trailer; this
    // test frames the first data chunk only.
    avail = replay::kChunkHeaderBytes + replay::getU32(chunk);
    ASSERT_LE(avail, bytes.size() - consumed);

    replay::ChunkRef ref;
    size_t used = 0;

    // Short header and short payload: both NeedMore.
    EXPECT_EQ(replay::parseChunk(chunk, 7, ref, used, &err),
              replay::ParseStatus::NeedMore);
    EXPECT_EQ(replay::parseChunk(chunk, avail - 3, ref, used, &err),
              replay::ParseStatus::NeedMore);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;

    // Complete: Ok, payload offset relative to the chunk start.
    ASSERT_EQ(replay::parseChunk(chunk, avail, ref, used, &err),
              replay::ParseStatus::Ok);
    EXPECT_EQ(used, avail);
    EXPECT_EQ(ref.payloadOff, replay::kChunkHeaderBytes);

    // Payload corruption: CRC mismatch, defect offset points at the
    // payload, not at zero.
    std::vector<uint8_t> bad(chunk, chunk + avail);
    bad[replay::kChunkHeaderBytes + 2] ^= 0x01;
    EXPECT_EQ(replay::parseChunk(bad.data(), bad.size(), ref, used,
                                 &err),
              replay::ParseStatus::ChunkCrcMismatch);
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;

    // An impossible declared length must be Malformed, not NeedMore:
    // a corrupt length would otherwise stall a streaming ingest
    // forever waiting for bytes that never come.
    std::vector<uint8_t> huge(chunk, chunk + avail);
    replay::putU32(huge.data(), 0xFFFFFFFFu);
    EXPECT_EQ(replay::parseChunk(huge.data(), huge.size(), ref, used,
                                 &err),
              replay::ParseStatus::Malformed);
}

TEST(ReaderContract, ValidateDistinguishesTruncationFromCorruption)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "val", 2, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    // The trailer's last 8 bytes locate the index footer — everything
    // before it is data chunks.
    const size_t footerOff = static_cast<size_t>(
        replay::getU64(bytes.data() + bytes.size() - 8));

    // Cut mid-chunk: truncation tallies, CRC stays clean.
    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + footerOff - 5);
    replay::ValidateResult vr = replay::TraceFile::validateBytes(cut);
    EXPECT_FALSE(vr.ok);
    EXPECT_EQ(vr.truncatedChunks, 1u);
    EXPECT_EQ(vr.crcFailures, 0u);

    // Flip a payload byte: corruption tallies, truncation stays clean.
    std::vector<uint8_t> bad = bytes;
    bad[footerOff - 5] ^= 0x10;
    vr = replay::TraceFile::validateBytes(bad);
    EXPECT_EQ(vr.crcFailures, 1u);
    EXPECT_EQ(vr.truncatedChunks, 0u);

    // Cut inside the index itself: advisory — the scan recomputes the
    // index, so the file stays valid with the defect tallied.
    std::vector<uint8_t> idxCut(bytes.begin(), bytes.end() - 5);
    vr = replay::TraceFile::validateBytes(idxCut);
    EXPECT_TRUE(vr.ok) << vr.error;
    EXPECT_GE(vr.indexDefects, 1u);
}

// --------------------------------------------------- frame envelope

TEST(Wire, RoundTripAndSplitDelivery)
{
    std::vector<uint8_t> payload;
    for (int i = 0; i < 300; i++)
        payload.push_back(static_cast<uint8_t>(i * 7));
    std::vector<uint8_t> enc;
    serve::wire::appendFrame(enc, serve::wire::FrameType::TraceData,
                             payload.data(), payload.size());
    serve::wire::appendFrame(enc, serve::wire::FrameType::StreamEnd,
                             nullptr, 0);

    // Byte-at-a-time delivery: one NeedMore per missing byte, then
    // both frames intact.
    serve::wire::FrameDecoder dec;
    serve::wire::Frame f;
    int frames = 0;
    for (uint8_t b : enc) {
        dec.append(&b, 1);
        while (dec.next(f) == serve::wire::DecodeStatus::Frame) {
            if (++frames == 1) {
                ASSERT_EQ(f.payloadLen, payload.size());
                EXPECT_EQ(0, std::memcmp(f.payload, payload.data(),
                                         payload.size()));
            }
        }
    }
    EXPECT_EQ(frames, 2);
    EXPECT_TRUE(dec.atFrameBoundary());
}

TEST(Wire, RejectStatusesAreSticky)
{
    serve::wire::Frame f;
    {
        serve::wire::FrameDecoder dec;
        std::vector<uint8_t> junk(20, 0x5a);
        dec.append(junk.data(), junk.size());
        EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::BadMagic);
        // Sticky: even appending a valid frame cannot revive it.
        std::vector<uint8_t> ok = serve::wire::encodeTextFrame(
            serve::wire::FrameType::Hello, "t");
        dec.append(ok.data(), ok.size());
        EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::BadMagic);
    }
    {
        serve::wire::FrameDecoder dec(64); // tiny negotiated max
        std::vector<uint8_t> big(256, 1);
        std::vector<uint8_t> enc = serve::wire::encodeFrame(
            serve::wire::FrameType::TraceData, big.data(), big.size());
        dec.append(enc.data(), enc.size());
        EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::Oversized);
    }
    {
        serve::wire::FrameDecoder dec;
        std::vector<uint8_t> enc = serve::wire::encodeTextFrame(
            serve::wire::FrameType::Hello, "tenant");
        enc[serve::wire::kFrameHeaderBytes + 1] ^= 0x80;
        dec.append(enc.data(), enc.size());
        EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::CrcMismatch);
    }
    {
        serve::wire::FrameDecoder dec;
        std::vector<uint8_t> enc = serve::wire::encodeTextFrame(
            serve::wire::FrameType::Hello, "t");
        enc[4] = 0x7f; // unknown frame type
        dec.append(enc.data(), enc.size());
        EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::BadType);
    }
}

TEST(Wire, CompactionEraseKeepsAPartialFrameDecodable)
{
    // The decoder compacts its buffer on append() once the consumed
    // prefix passes 4 KiB — via erase() when a partial frame is still
    // buffered. The erased prefix must not shift the partial frame's
    // bytes out from under the next decode.
    auto mkFrame = [](int idx) {
        std::vector<uint8_t> payload(600);
        for (size_t i = 0; i < payload.size(); i++)
            payload[i] = static_cast<uint8_t>(idx * 31 + i);
        return serve::wire::encodeFrame(
            serve::wire::FrameType::TraceData, payload.data(),
            payload.size());
    };

    serve::wire::FrameDecoder dec;
    serve::wire::Frame f;
    // Eight full frames (8 * 616 bytes) and the first half of a
    // ninth, consumed as one batch: consumed ends at 4928 (> 4096)
    // with the partial ninth still pending.
    std::vector<uint8_t> batch;
    for (int i = 0; i < 8; i++) {
        std::vector<uint8_t> fr = mkFrame(i);
        batch.insert(batch.end(), fr.begin(), fr.end());
    }
    std::vector<uint8_t> ninth = mkFrame(8);
    batch.insert(batch.end(), ninth.begin(),
                 ninth.begin() + static_cast<long>(ninth.size() / 2));
    dec.append(batch.data(), batch.size());
    for (int i = 0; i < 8; i++) {
        ASSERT_EQ(dec.next(f), serve::wire::DecodeStatus::Frame);
        ASSERT_EQ(f.payloadLen, 600u);
        EXPECT_EQ(f.payload[0], static_cast<uint8_t>(i * 31)) << i;
    }
    EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::NeedMore);
    EXPECT_FALSE(dec.atFrameBoundary());

    // This append triggers the erase-compaction (consumed 4928 > 4096
    // and > half the buffer). The ninth frame must come out intact.
    dec.append(ninth.data() + ninth.size() / 2,
               ninth.size() - ninth.size() / 2);
    ASSERT_EQ(dec.next(f), serve::wire::DecodeStatus::Frame);
    ASSERT_EQ(f.payloadLen, 600u);
    for (size_t i = 0; i < 600; i++)
        ASSERT_EQ(f.payload[i], static_cast<uint8_t>(8 * 31 + i)) << i;
    EXPECT_EQ(dec.next(f), serve::wire::DecodeStatus::NeedMore);
    EXPECT_TRUE(dec.atFrameBoundary());
}

TEST(Wire, OddSizedChopsAcrossCompactionsKeepEveryPayloadIntact)
{
    // Long-haul: 200 frames of varied sizes delivered in odd-sized
    // chops that never align with frame boundaries, so the decoder
    // crosses both compaction paths (full-consume clear and the
    // erase-with-partial-frame) many times. Every payload byte must
    // survive; payload views are only read before the next append(),
    // per the documented contract.
    std::vector<uint8_t> stream;
    std::vector<std::vector<uint8_t>> expect;
    for (int i = 0; i < 200; i++) {
        std::vector<uint8_t> payload((i * 97) % 1500 + 1);
        for (size_t j = 0; j < payload.size(); j++)
            payload[j] = static_cast<uint8_t>(i + 7 * j);
        expect.push_back(payload);
        serve::wire::appendFrame(stream,
                                 serve::wire::FrameType::TraceData,
                                 payload.data(), payload.size());
    }

    serve::wire::FrameDecoder dec;
    serve::wire::Frame f;
    size_t got = 0, pos = 0;
    int chop = 1;
    while (pos < stream.size()) {
        size_t n = std::min(static_cast<size_t>(chop),
                            stream.size() - pos);
        chop = chop % 613 + 7; // 7, 14, ... never a frame multiple
        dec.append(stream.data() + pos, n);
        pos += n;
        while (dec.next(f) == serve::wire::DecodeStatus::Frame) {
            ASSERT_LT(got, expect.size());
            ASSERT_EQ(f.payloadLen, expect[got].size()) << got;
            ASSERT_EQ(0, std::memcmp(f.payload, expect[got].data(),
                                     f.payloadLen))
                << got;
            got++;
        }
    }
    EXPECT_EQ(got, expect.size());
    EXPECT_TRUE(dec.atFrameBoundary());
}

// ------------------------------------------------ ingest bit-identity

TEST(Service, StreamDetectionMatchesOfflineReplayBitForBit)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path =
        capture(prog, "ident", 3, false, /*tamper=*/true);

    Session off = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    off.run();
    ASSERT_TRUE(off.alarmed());

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("ident.sock");
    cfg.threads = 2;
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("tenant-a");
    // Tiny frames: the trace header itself spans several frames, so
    // ingest exercises the NeedMore path on every boundary.
    c.sendTraceFile(path, 64);
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_EQ(r.sessions, 3u);
    EXPECT_EQ(r.alarms, off.alarms().size());
    EXPECT_EQ(r.alarmDigest, serve::alarmDigest(off.alarms()));
    // Every metric line but the wall-clock gauge matches offline.
    EXPECT_EQ(metricLines(r.text), metricLines(off.metricsText()));

    // The server-side aggregate carries the same alarms in order.
    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "tenant-a");
    EXPECT_EQ(serve::alarmDigest(snap[0].alarms),
              serve::alarmDigest(off.alarms()));
    EXPECT_TRUE(snap[0].det == off.detectorStats());
    std::remove(path.c_str());
}

TEST(Service, TimingTraceStreamsBitIdentically)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "timing", 2, /*timing=*/true);

    Session off = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    off.run();

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("timing.sock");
    serve::Server srv(prog, cfg);
    srv.start();
    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    c.sendTraceFile(path);
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_EQ(metricLines(r.text), metricLines(off.metricsText()));
    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_TRUE(snap[0].tim == off.timingStats());
    std::remove(path.c_str());
}

TEST(Service, FourConcurrentStreamsTwoTenants)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string clean = capture(prog, "conc_clean", 2, false);
    std::string dirty =
        capture(prog, "conc_dirty", 2, false, /*tamper=*/true);

    Session offClean =
        Session::builder().program(prog).plan(ReplayPlan(clean))
            .build();
    offClean.run();
    Session offDirty =
        Session::builder().program(prog).plan(ReplayPlan(dirty))
            .build();
    offDirty.run();
    ASSERT_FALSE(offClean.alarmed());
    ASSERT_TRUE(offDirty.alarmed());

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("conc.sock");
    cfg.threads = 4;
    serve::Server srv(prog, cfg);
    srv.start();

    // 4 simultaneous client threads, 2 per tenant; tenant "alice"
    // streams clean traces, tenant "bob" alarmed ones.
    std::atomic<int> okCount{0}, alarmTotal{0};
    auto stream = [&](const char *tenant, const std::string &file) {
        serve::Client c;
        connectRetry(c, cfg.socketPath);
        c.hello(tenant);
        c.sendTraceFile(file, 128);
        serve::StreamResult r = c.end();
        if (r.ok)
            okCount++;
        alarmTotal += static_cast<int>(r.alarms);
    };
    std::vector<std::thread> ts;
    ts.emplace_back(stream, "alice", clean);
    ts.emplace_back(stream, "alice", clean);
    ts.emplace_back(stream, "bob", dirty);
    ts.emplace_back(stream, "bob", dirty);
    for (auto &t : ts)
        t.join();
    srv.waitForStreams(4);
    srv.stopAndJoin();

    EXPECT_EQ(okCount.load(), 4);
    EXPECT_EQ(srv.streamsCompleted(), 4u);
    EXPECT_EQ(srv.streamsFailed(), 0u);
    EXPECT_EQ(alarmTotal.load(),
              2 * static_cast<int>(offDirty.alarms().size()));

    // Tenants aggregate separately, sorted by name.
    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "alice");
    EXPECT_EQ(snap[0].streams, 2u);
    EXPECT_TRUE(snap[0].alarms.empty());
    EXPECT_EQ(snap[1].name, "bob");
    EXPECT_EQ(snap[1].streams, 2u);
    EXPECT_EQ(snap[1].alarms.size(), 2 * offDirty.alarms().size());

    // The /statsz page names both tenants and the transport meters.
    std::string statsz = srv.statszText();
    EXPECT_NE(statsz.find("# tenant alice"), std::string::npos);
    EXPECT_NE(statsz.find("# tenant bob"), std::string::npos);
    EXPECT_NE(statsz.find(obs::names::kTenantStreams),
              std::string::npos);
    EXPECT_NE(statsz.find(obs::names::kServeFramesIn),
              std::string::npos);
    std::remove(clean.c_str());
    std::remove(dirty.c_str());
}

TEST(Service, DestroyWhileStreamsStillDecoding)
{
    // Regression: destroying the Server while stream actors are
    // still decoding on the pool. ~Impl must join the pool BEFORE
    // the shared state those actors touch (mtx, tenants, registry,
    // latency ring) is destroyed — member order, caught by ASan if
    // it regresses.
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "dtor", 2, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    for (int round = 0; round < 8; round++) {
        serve::ServerConfig cfg;
        cfg.socketPath = tmpPath("dtor.sock");
        cfg.threads = 4;
        std::vector<std::thread> ts;
        {
            serve::Server srv(prog, cfg);
            srv.start();
            for (int i = 0; i < 4; i++)
                ts.emplace_back([&, i] {
                    try {
                        serve::Client c;
                        connectRetry(c, cfg.socketPath);
                        c.hello("t" + std::to_string(i));
                        c.sendTraceBytes(bytes.data(), bytes.size(),
                                         64);
                        c.end(); // server may stop mid-stream
                    } catch (const FatalError &) {
                        // expected for streams cut off by the stop
                    }
                });
            // As soon as ONE stream lands, tear the server down —
            // the other three are (likely) still mid-decode.
            srv.waitForStreams(1);
        }
        for (auto &t : ts)
            t.join();
    }
}

TEST(Service, InterleavedTenantsOnTheSameWireStaySeparate)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string clean = capture(prog, "il_clean", 1, false);
    std::string dirty =
        capture(prog, "il_dirty", 1, false, /*tamper=*/true);
    std::vector<uint8_t> cleanBytes = readBytes(clean);
    std::vector<uint8_t> dirtyBytes = readBytes(dirty);
    std::remove(clean.c_str());
    std::remove(dirty.c_str());

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("il.sock");
    serve::Server srv(prog, cfg);
    srv.start();

    // Two connections alternate tiny sends, so the server's ingest
    // loop sees the tenants' bytes interleaved at frame granularity.
    serve::Client a, b;
    connectRetry(a, cfg.socketPath);
    connectRetry(b, cfg.socketPath);
    a.hello("alice");
    b.hello("bob");
    size_t offA = 0, offB = 0;
    const size_t step = 48;
    while (offA < cleanBytes.size() || offB < dirtyBytes.size()) {
        if (offA < cleanBytes.size()) {
            size_t n = std::min(step, cleanBytes.size() - offA);
            a.sendTraceBytes(cleanBytes.data() + offA, n, n);
            offA += n;
        }
        if (offB < dirtyBytes.size()) {
            size_t n = std::min(step, dirtyBytes.size() - offB);
            b.sendTraceBytes(dirtyBytes.data() + offB, n, n);
            offB += n;
        }
    }
    serve::StreamResult ra = a.end();
    serve::StreamResult rb = b.end();
    srv.stopAndJoin();

    ASSERT_TRUE(ra.ok) << ra.text;
    ASSERT_TRUE(rb.ok) << rb.text;
    EXPECT_EQ(ra.alarms, 0u);
    EXPECT_GT(rb.alarms, 0u);
}

// ------------------------------------------------- failure taxonomy

TEST(Service, PartialFrameAtDropFailsTheStreamAsTruncation)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "drop", 1, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("drop.sock");
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    // A full TraceData frame, then HALF of another: drop mid-frame.
    std::vector<uint8_t> wireBytes;
    serve::wire::appendFrame(wireBytes,
                             serve::wire::FrameType::TraceData,
                             bytes.data(), bytes.size() / 2);
    std::vector<uint8_t> second = serve::wire::encodeFrame(
        serve::wire::FrameType::TraceData,
        bytes.data() + bytes.size() / 2,
        bytes.size() - bytes.size() / 2);
    wireBytes.insert(wireBytes.end(), second.begin(),
                     second.begin() +
                         static_cast<long>(second.size() / 2));
    c.sendRaw(wireBytes);
    c.close();

    srv.waitForStreams(1);
    srv.stopAndJoin();
    EXPECT_EQ(srv.streamsCompleted(), 0u);
    EXPECT_EQ(srv.streamsFailed(), 1u);
    EXPECT_NE(srv.statszText().find("ipds.serve.streams_failed"),
              std::string::npos);
}

TEST(Service, OversizedFrameIsRejectedBeforeBuffering)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("big.sock");
    cfg.maxFrameBytes = 1024;
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    std::vector<uint8_t> big(4096, 0xab);
    c.sendRaw(serve::wire::encodeFrame(
        serve::wire::FrameType::TraceData, big.data(), big.size()));
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    EXPECT_FALSE(r.ok);
    EXPECT_EQ(srv.streamsFailed(), 1u);
    std::istringstream in(srv.statszText());
    std::string line;
    uint64_t oversized = 0;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string name;
        uint64_t v = 0;
        ls >> name >> v;
        if (name == obs::names::kServeOversizedFrames)
            oversized = v;
    }
    EXPECT_EQ(oversized, 1u);
}

TEST(Service, FrameCrcMismatchRejectsTheStream)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "fcrc", 1, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("fcrc.sock");
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    std::vector<uint8_t> frame = serve::wire::encodeFrame(
        serve::wire::FrameType::TraceData, bytes.data(), bytes.size());
    frame[serve::wire::kFrameHeaderBytes + 20] ^= 0x04;
    c.sendRaw(frame);
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.text.find("CRC"), std::string::npos) << r.text;
    EXPECT_EQ(srv.streamsFailed(), 1u);
}

TEST(Service, ChunkCrcMismatchInsideValidFramesRejectsTheStream)
{
    // The frame CRC is clean — the corruption is in the carried trace
    // chunk, caught by the SAME check offline replay applies.
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "ccrc", 1, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());
    // Payload byte of the last data chunk (the trailer's last 8 bytes
    // locate the index footer — corrupting past it would only degrade
    // the advisory index, not reject the stream).
    bytes[static_cast<size_t>(
              replay::getU64(bytes.data() + bytes.size() - 8)) -
          5] ^= 0x10;

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("ccrc.sock");
    serve::Server srv(prog, cfg);
    srv.start();
    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    c.sendTraceBytes(bytes.data(), bytes.size());
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.text.find("CRC"), std::string::npos) << r.text;
}

TEST(Service, TruncatedTraceAtCleanFrameBoundaryIsTruncation)
{
    // All frames arrive intact and the client closes cleanly — but
    // the trace inside ends mid-chunk. TruncatedChunk, not CRC.
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "tr", 1, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());
    // Cut into the last data chunk, not the advisory index tail.
    bytes.resize(static_cast<size_t>(
                     replay::getU64(bytes.data() + bytes.size() - 8)) -
                 5);

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("tr.sock");
    serve::Server srv(prog, cfg);
    srv.start();
    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    c.sendTraceBytes(bytes.data(), bytes.size());
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.text.find("truncated"), std::string::npos) << r.text;
    EXPECT_EQ(r.text.find("CRC"), std::string::npos) << r.text;
}

TEST(Service, ForeignModuleTraceIsRejected)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    const char *other =
        "void main() { if (input_int() == 1) { print_str(\"y\\n\"); } }";
    CompiledProgram otherProg = compileAndAnalyze(other, "other");
    std::string path = tmpPath("foreign.trc");
    Session::builder()
        .program(otherProg)
        .inputs({"1"})
        .plan(CapturePlan(path))
        .build()
        .run();

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("foreign.sock");
    serve::Server srv(prog, cfg);
    srv.start();
    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    c.sendTraceFile(path);
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.text.find("different program"), std::string::npos)
        << r.text;
    std::remove(path.c_str());
}

TEST(Service, SlowClientIsPausedCountedAndNeverDeadlocked)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "slow", 40, false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("slow.sock");
    cfg.pendingChunkCap = 1; // admission control at its tightest
    cfg.threads = 1;         // and a single worker, worst case
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client c;
    connectRetry(c, cfg.socketPath);
    c.hello("t");
    c.sendTraceBytes(bytes.data(), bytes.size(), 64);
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    // The stream completes — backpressure pauses the socket, it never
    // wedges the server — and the stall accounting shows it happened.
    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_EQ(r.sessions, 40u);
    std::string statsz = srv.statszText();
    std::istringstream in(statsz);
    std::string line;
    uint64_t stalls = 0, resumes = 0;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string name;
        uint64_t v = 0;
        ls >> name >> v;
        if (name == obs::names::kServeBackpressureStalls)
            stalls = v;
        if (name == obs::names::kServeResumes)
            resumes = v;
    }
    EXPECT_GT(stalls, 0u) << statsz;
    EXPECT_EQ(stalls, resumes) << statsz;
}

// ------------------------------------------------- Session facade

TEST(Service, ServePlanAggregatesTenantsLikeOfflineReplay)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string dirty =
        capture(prog, "plan_dirty", 2, false, /*tamper=*/true);
    Session off = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(dirty))
                      .build();
    off.run();

    std::string sock = tmpPath("plan.sock");
    Session srvSession = Session::builder()
                             .program(prog)
                             .threads(2)
                             .plan(ServePlan(sock)
                                       .stopAfterStreams(2))
                             .build();
    std::thread t([&] { srvSession.run(); });

    // A client-side throw must still join the server thread — an
    // exception unwinding past a joinable std::thread aborts.
    try {
        for (const char *tenant : {"a", "b"}) {
            serve::Client c;
            connectRetry(c, sock);
            c.hello(tenant);
            c.sendTraceFile(dirty);
            serve::StreamResult r = c.end();
            EXPECT_TRUE(r.ok) << r.text;
        }
    } catch (...) {
        srvSession.stopServing();
        t.join();
        throw;
    }
    t.join();

    // Two tenants, one alarmed stream each: the session aggregate is
    // the offline result twice over.
    EXPECT_EQ(srvSession.alarms().size(), 2 * off.alarms().size());
    EXPECT_EQ(srvSession.detectorStats().branchesSeen,
              2 * off.detectorStats().branchesSeen);
    EXPECT_NE(srvSession.serveStatsz().find("# tenant a"),
              std::string::npos);
    EXPECT_NE(srvSession.serveStatsz().find("# tenant b"),
              std::string::npos);
    std::remove(dirty.c_str());
}

TEST(Service, StopServingUnblocksAnOpenEndedServePlan)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    std::string path = capture(prog, "stop", 1, false);
    std::string sock = tmpPath("stop.sock");
    Session srvSession = Session::builder()
                             .program(prog)
                             .plan(ServePlan(sock)) // open-ended
                             .build();
    std::thread t([&] { srvSession.run(); });

    try {
        serve::Client c;
        connectRetry(c, sock);
        c.hello("t");
        c.sendTraceFile(path);
        serve::StreamResult r = c.end();
        EXPECT_TRUE(r.ok) << r.text;
        c.close();
    } catch (...) {
        srvSession.stopServing();
        t.join();
        throw;
    }

    srvSession.stopServing();
    t.join();
    EXPECT_EQ(srvSession.detectorStats().branchesSeen > 0, true);
    std::remove(path.c_str());
}

TEST(Service, ServePlanRejectsVmOnlyKnobs)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "svc_loop");
    TamperSpec spec;
    try {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
        Session::builder()
            .program(prog)
            .plan(ServePlan("x.sock"))
            .tamper(spec)
            .build();
#pragma GCC diagnostic pop
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("ServePlan"),
                  std::string::npos)
            << e.what();
    }
}
