/**
 * @file
 * IR-layer unit tests: builder invariants, verifier diagnostics,
 * printer output, address assignment, predicate algebra and the
 * builtin effect tables.
 */

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/builtins.h"
#include "ir/ir.h"
#include "support/diag.h"

namespace ipds {
namespace {

// ----------------------------------------------------------------- preds

TEST(Ir, NegatePredIsAnInvolution)
{
    for (Pred p : {Pred::EQ, Pred::NE, Pred::LT, Pred::LE, Pred::GT,
                   Pred::GE}) {
        EXPECT_EQ(negatePred(negatePred(p)), p);
        EXPECT_NE(negatePred(p), p);
    }
    EXPECT_EQ(negatePred(Pred::LT), Pred::GE);
    EXPECT_EQ(negatePred(Pred::EQ), Pred::NE);
}

TEST(Ir, NegatePredSemantics)
{
    auto holds = [](Pred p, int64_t a, int64_t b) {
        switch (p) {
          case Pred::EQ: return a == b;
          case Pred::NE: return a != b;
          case Pred::LT: return a < b;
          case Pred::LE: return a <= b;
          case Pred::GT: return a > b;
          case Pred::GE: return a >= b;
        }
        return false;
    };
    for (Pred p : {Pred::EQ, Pred::NE, Pred::LT, Pred::LE, Pred::GT,
                   Pred::GE}) {
        for (int a = -2; a <= 2; a++)
            for (int b = -2; b <= 2; b++)
                EXPECT_NE(holds(p, a, b), holds(negatePred(p), a, b));
    }
}

// -------------------------------------------------------------- builtins

TEST(Ir, BuiltinTableIsConsistent)
{
    for (int i = 1; i < static_cast<int>(Builtin::NumBuiltins); i++) {
        Builtin b = static_cast<Builtin>(i);
        const char *name = builtinName(b);
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
        EXPECT_EQ(builtinByName(name), b) << name;
        const BuiltinEffects &fx = builtinEffects(b);
        // Pure builtins never write and always return a value.
        if (fx.pure) {
            EXPECT_EQ(fx.writesParams, 0) << name;
            EXPECT_TRUE(fx.returnsValue) << name;
        }
        // Param masks never reference params beyond numParams.
        uint8_t beyond =
            static_cast<uint8_t>(~((1u << fx.numParams) - 1));
        EXPECT_EQ(fx.readsParams & beyond, 0) << name;
        EXPECT_EQ(fx.writesParams & beyond, 0) << name;
    }
    EXPECT_EQ(builtinByName("no_such_builtin"), Builtin::None);
}

// --------------------------------------------------------------- builder

TEST(Ir, BuilderRejectsEmitAfterTerminator)
{
    Module mod;
    FuncBuilder fb(mod, "f", 0, false);
    fb.ret();
    EXPECT_THROW(fb.constInt(1), PanicError);
}

TEST(Ir, BuilderVregsAreSingleAssignment)
{
    Module mod;
    FuncBuilder fb(mod, "f", 0, false);
    Vreg a = fb.constInt(1);
    Vreg b = fb.constInt(2);
    Vreg c = fb.bin(BinOp::Add, a, b);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    mod.assignAddresses();
    mod.verify();
}

TEST(Ir, FinishTerminatesOpenVoidBlocks)
{
    Module mod;
    FuncBuilder fb(mod, "f", 0, false);
    fb.constInt(7); // block left unterminated
    fb.finish();
    EXPECT_EQ(mod.functions[0].blocks[0].terminator().op, Op::Ret);
}

TEST(Ir, FinishPanicsOnOpenValueBlocks)
{
    Module mod;
    FuncBuilder fb(mod, "f", 0, true);
    fb.constInt(7);
    EXPECT_THROW(fb.finish(), PanicError);
}

// -------------------------------------------------------------- verifier

TEST(Ir, VerifierCatchesBadTargets)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    Vreg c = fb.constInt(1);
    fb.br(c, 0, 0);
    fb.finish();
    mod.entry = fb.funcId();
    // Corrupt the branch target after the fact.
    mod.functions[0].blocks[0].terminator().target = 99;
    EXPECT_THROW(mod.verify(), PanicError);
}

TEST(Ir, VerifierCatchesUseOfUndefinedVreg)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    // Splice in a bogus use.
    Inst in;
    in.op = Op::Ret;
    in.srcA = 42;
    mod.functions[0].blocks[0].insts.back() = in;
    mod.functions[0].nextVreg = 50;
    EXPECT_THROW(mod.verify(), PanicError);
}

TEST(Ir, VerifierCatchesStoreToConst)
{
    Module mod;
    MemObject ro;
    ro.name = "$lit";
    ro.kind = ObjectKind::Const;
    ro.size = 4;
    ObjectId lit = mod.addObject(std::move(ro));
    FuncBuilder fb(mod, "main", 0, false);
    Vreg v = fb.constInt(1);
    fb.store(lit, v);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    EXPECT_THROW(mod.verify(), PanicError);
}

TEST(Ir, VerifierRequiresEntry)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    fb.ret();
    fb.finish();
    // entry never set
    EXPECT_THROW(mod.verify(), PanicError);
}

// ------------------------------------------------------------- addresses

TEST(Ir, AddressAssignmentIsMonotoneAndPadded)
{
    Module mod;
    {
        FuncBuilder fb(mod, "a", 0, false);
        fb.constInt(1);
        fb.ret();
        fb.finish();
        mod.entry = fb.funcId();
    }
    {
        FuncBuilder fb(mod, "b", 0, false);
        fb.ret();
        fb.finish();
    }
    mod.assignAddresses();
    const Function &a = mod.functions[0];
    const Function &b = mod.functions[1];
    EXPECT_EQ(a.entryPc, 0x1000u);
    EXPECT_EQ(a.blocks[0].insts[0].pc, 0x1000u);
    EXPECT_EQ(a.blocks[0].insts[1].pc, 0x1004u);
    // Functions are padded apart so PCs never collide.
    EXPECT_GT(b.entryPc, a.blocks[0].insts.back().pc);
    EXPECT_EQ(b.entryPc % 0x100, 0u);
}

TEST(Ir, CondBranchCountsRecorded)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    BlockId t = fb.newBlock();
    BlockId f = fb.newBlock();
    Vreg c = fb.constInt(1);
    fb.br(c, t, f);
    fb.setBlock(t);
    fb.ret();
    fb.setBlock(f);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    mod.assignAddresses();
    EXPECT_EQ(mod.functions[0].numCondBranches, 1u);
}

// --------------------------------------------------------------- printer

TEST(Ir, PrinterRendersEveryOpcode)
{
    Module mod;
    MemObject g;
    g.name = "glob";
    g.kind = ObjectKind::Global;
    g.size = 8;
    ObjectId glob = mod.addObject(std::move(g));

    FuncBuilder fb(mod, "main", 1, true);
    ObjectId arr = fb.addArray("buf", 16);
    Vreg arg = fb.getArg(0);
    Vreg addr = fb.addrOf(arr, 2);
    Vreg ld = fb.load(glob);
    Vreg ldi = fb.loadInd(addr, MemSize::I8);
    Vreg sum = fb.bin(BinOp::Add, ld, ldi);
    Vreg cc = fb.cmp(Pred::GE, sum, arg);
    fb.store(glob, sum);
    fb.storeInd(addr, cc, MemSize::I8);
    fb.callBuiltin(Builtin::PrintInt, {sum});
    BlockId t = fb.newBlock("t");
    BlockId f = fb.newBlock("f");
    fb.br(cc, t, f);
    fb.setBlock(t);
    fb.jmp(f);
    fb.setBlock(f);
    fb.ret(sum);
    fb.finish();
    mod.entry = fb.funcId();
    mod.assignAddresses();
    mod.verify();

    std::string text = mod.print();
    for (const char *needle :
         {"getarg", "addrof", "load", "loadind", "add", "cmp ge",
          "store", "storeind", "call print_int", "br", "jmp", "ret",
          "glob", "main.buf"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

} // namespace
} // namespace ipds
