/**
 * @file
 * Branch-correlation classification tests (core/correlation): the
 * Range and PureCall classifications, the same-block purity rule that
 * guarantees zero false positives, and feature switches.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ir/builder.h"

namespace ipds {
namespace {

/** Compile and return the entry function's correlation result. */
struct Corr
{
    CompiledProgram prog;
    explicit Corr(const std::string &src, CorrOptions opts = {})
        : prog(compileAndAnalyze(src, "t", opts))
    {}
    const FuncCorrelation &main() const
    {
        return prog.funcs[prog.mod.entry].corr;
    }
    const BranchInfo &branch(size_t i) const
    {
        return main().branches[i];
    }
    std::string locName(const BranchInfo &b) const
    {
        return prog.locs->loc(b.corrLoc).name;
    }
};

TEST(Correlation, PlainRangeBranch)
{
    Corr c(R"(
void main() {
    int x;
    x = input_int();
    if (x < 10) { print_str("a"); }
}
)");
    ASSERT_EQ(c.main().branches.size(), 1u);
    const BranchInfo &b = c.branch(0);
    EXPECT_EQ(b.kind, CondKind::Range);
    EXPECT_TRUE(b.checkable);
    EXPECT_EQ(c.locName(b), "main.x");
    EXPECT_TRUE(b.takenSet.contains(9));
    EXPECT_FALSE(b.takenSet.contains(10));
    EXPECT_TRUE(b.notTakenSet.contains(10));
}

TEST(Correlation, AffineChainBranch)
{
    Corr c(R"(
void main() {
    int y;
    y = input_int();
    if (y - 1 < 10) { print_str("a"); }
}
)");
    const BranchInfo &b = c.branch(0);
    EXPECT_EQ(b.kind, CondKind::Range);
    // Trigger range mapped back into y-space: y-1 < 10 <=> y < 11.
    EXPECT_TRUE(b.takenSet.contains(10));
    EXPECT_FALSE(b.takenSet.contains(11));
}

TEST(Correlation, AffineDisabledByOption)
{
    CorrOptions opts;
    opts.affineChains = false;
    Corr c(R"(
void main() {
    int y;
    y = input_int();
    if (y - 1 < 10) { print_str("a"); }
    if (y < 10) { print_str("b"); }
}
)", opts);
    EXPECT_EQ(c.branch(0).kind, CondKind::Unknown);
    EXPECT_EQ(c.branch(1).kind, CondKind::Range); // plain still works
}

TEST(Correlation, VarVsVarIsUnknown)
{
    Corr c(R"(
void main() {
    int a;
    int b;
    a = input_int();
    b = input_int();
    if (a < b) { print_str("x"); }
}
)");
    EXPECT_EQ(c.branch(0).kind, CondKind::Unknown);
    EXPECT_FALSE(c.branch(0).checkable);
}

TEST(Correlation, MemConstMakesVarVsConfigClassifiable)
{
    Corr c(R"(
void main() {
    int threshold;
    int x;
    threshold = 42;
    x = input_int();
    if (x < threshold) { print_str("lo"); }
}
)");
    const BranchInfo &b = c.branch(0);
    EXPECT_EQ(b.kind, CondKind::Range);
    EXPECT_EQ(c.locName(b), "main.x");
    EXPECT_TRUE(b.takenSet.contains(41));
    EXPECT_FALSE(b.takenSet.contains(42));

    CorrOptions off;
    off.memConstProp = false;
    Corr c2(R"(
void main() {
    int threshold;
    int x;
    threshold = 42;
    x = input_int();
    if (x < threshold) { print_str("lo"); }
}
)", off);
    EXPECT_EQ(c2.branch(0).kind, CondKind::Unknown);
}

TEST(Correlation, PureCallClassification)
{
    Corr c(R"(
void main() {
    char user[16];
    get_input_n(user, 16);
    if (strncmp(user, "admin", 5) == 0) { print_str("a"); }
    if (strncmp(user, "admin", 5) == 0) { print_str("b"); }
    if (strncmp(user, "guest", 5) == 0) { print_str("c"); }
}
)");
    const BranchInfo &b0 = c.branch(0);
    const BranchInfo &b1 = c.branch(1);
    const BranchInfo &b2 = c.branch(2);
    EXPECT_EQ(b0.kind, CondKind::PureCall);
    EXPECT_TRUE(b0.checkable);
    // Identical calls share one virtual location; the different
    // literal gets another.
    EXPECT_EQ(b0.corrLoc, b1.corrLoc);
    EXPECT_NE(b0.corrLoc, b2.corrLoc);
    ASSERT_EQ(c.main().sigs.size(), 2u);
    // Read ranges: 5 bytes of user and of the literal each.
    const PureSig &sig = c.main().sigs[0];
    ASSERT_EQ(sig.reads.size(), 2u);
    EXPECT_EQ(sig.reads[0].len, 5);
}

TEST(Correlation, MonomorphicParamResolvesInterprocedurally)
{
    const char *src = R"(
void check(char *s) {
    if (strcmp(s, "x") == 0) { print_str("eq"); }
}
void main() {
    char a[8];
    get_input_n(a, 8);
    check(a);
    check(a);
}
)";
    // Every call site passes &a: the callee's strcmp branch resolves.
    Corr with(src);
    const auto &corrOn =
        with.prog.funcs[with.prog.mod.findFunction("check")].corr;
    ASSERT_EQ(corrOn.branches.size(), 1u);
    EXPECT_EQ(corrOn.branches[0].kind, CondKind::PureCall);
    ASSERT_EQ(corrOn.sigs.size(), 1u);
    EXPECT_EQ(
        with.prog.mod.objects[corrOn.sigs[0].ptrArgs[0].first].name,
        "main.a");

    // With the feature off, the parameter is opaque again.
    CorrOptions off;
    off.interprocArgs = false;
    Corr without(src, off);
    const auto &corrOff =
        without.prog.funcs[without.prog.mod.findFunction("check")]
            .corr;
    EXPECT_EQ(corrOff.branches[0].kind, CondKind::Unknown);
}

TEST(Correlation, PolymorphicParamStaysUnresolved)
{
    // Two call sites with different buffers: no exact binding.
    Corr c(R"(
void check(char *s) {
    if (strcmp(s, "x") == 0) { print_str("eq"); }
}
void main() {
    char a[8];
    char b[8];
    get_input_n(a, 8);
    get_input_n(b, 8);
    check(a);
    check(b);
}
)");
    const auto &checkCorr =
        c.prog.funcs[c.prog.mod.findFunction("check")].corr;
    ASSERT_EQ(checkCorr.branches.size(), 1u);
    EXPECT_EQ(checkCorr.branches[0].kind, CondKind::Unknown);
}

TEST(Correlation, BindingChainsThroughWrappers)
{
    // main -> outer -> inner, the same buffer all the way down.
    Corr c(R"(
void inner(char *s) {
    if (strncmp(s, "ok", 2) == 0) { print_str("y"); }
}
void outer(char *s) { inner(s); }
void main() {
    char buf[8];
    get_input_n(buf, 8);
    outer(buf);
}
)");
    const auto &innerCorr =
        c.prog.funcs[c.prog.mod.findFunction("inner")].corr;
    ASSERT_EQ(innerCorr.branches.size(), 1u);
    EXPECT_EQ(innerCorr.branches[0].kind, CondKind::PureCall);
}

TEST(Correlation, ClobberBetweenLoadAndBranchBlocksCheckability)
{
    // Hand-built IR: a store to x sits between x's load and the
    // branch on it, so the branch outcome reflects a STALE value and
    // the same-block purity rule must refuse to check it (otherwise a
    // legitimate execution could raise a false positive).
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    ObjectId x = fb.addLocal("x");
    BlockId thenB = fb.newBlock("then");
    BlockId done = fb.newBlock("done");
    Vreg v = fb.load(x);
    fb.store(x, fb.constInt(99)); // clobber AFTER the load
    Vreg cond = fb.cmp(Pred::LT, v, fb.constInt(10));
    fb.br(cond, thenB, done);
    fb.setBlock(thenB);
    fb.jmp(done);
    fb.setBlock(done);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    mod.assignAddresses();
    mod.verify();

    CompiledProgram p = analyzeModule(std::move(mod));
    const BranchInfo &b = p.funcs[p.mod.entry].corr.branches[0];
    EXPECT_EQ(b.kind, CondKind::Range); // classified...
    EXPECT_FALSE(b.checkable);          // ...but never checked
}

TEST(Correlation, InputCallKillsPurity)
{
    // get_input writes the buffer between the pure call and... here:
    // call, clobber, branch within one block is impossible in MiniC
    // source because calls are statements; instead verify that a
    // clobbered sig's branch remains checkable only when the clobber
    // precedes the call.
    Corr c(R"(
void main() {
    char user[8];
    get_input_n(user, 8);
    if (strcmp(user, "root") == 0) { print_str("r"); }
}
)");
    EXPECT_EQ(c.branch(0).kind, CondKind::PureCall);
    EXPECT_TRUE(c.branch(0).checkable);
}

TEST(Correlation, NumCheckableCountsOnlyCheckable)
{
    Corr c(R"(
void main() {
    int a;
    int b;
    a = input_int();
    b = input_int();
    if (a < 5) { print_str("1"); }
    if (a < b) { print_str("2"); }
}
)");
    EXPECT_EQ(c.main().numCheckable(), 1u);
    EXPECT_EQ(c.main().branches.size(), 2u);
}

TEST(Correlation, LocBranchesIndexGroupsByLocation)
{
    Corr c(R"(
void main() {
    int x;
    x = input_int();
    if (x < 5) { print_str("1"); }
    if (x < 9) { print_str("2"); }
    if (x == 0) { print_str("3"); }
}
)");
    LocId lx = c.branch(0).corrLoc;
    EXPECT_EQ(c.main().locBranches[lx].size(), 3u);
}

TEST(Correlation, EqualityProducesPointAndPuncturedSets)
{
    Corr c(R"(
void main() {
    int s;
    s = input_int();
    if (s == 2) { print_str("two"); }
}
)");
    const BranchInfo &b = c.branch(0);
    EXPECT_TRUE(b.takenSet.isPoint());
    EXPECT_TRUE(b.notTakenSet.isPunctured());
    EXPECT_FALSE(b.notTakenSet.contains(2));
}

TEST(Correlation, MirroredConstantOnLeft)
{
    Corr c(R"(
void main() {
    int x;
    x = input_int();
    if (10 > x) { print_str("lo"); } // same as x < 10
}
)");
    const BranchInfo &b = c.branch(0);
    ASSERT_EQ(b.kind, CondKind::Range);
    EXPECT_TRUE(b.takenSet.contains(9));
    EXPECT_FALSE(b.takenSet.contains(10));
}

} // namespace
} // namespace ipds
