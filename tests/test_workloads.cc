/**
 * @file
 * Workload-suite integration tests: every benchmark must compile,
 * execute its benign session to completion WITHOUT any IPDS alarm
 * (the zero-false-positive property), expose correlated branches to
 * check, and yield detections under attack campaigns.
 */

#include <gtest/gtest.h>

#include "attack/campaign.h"
#include "core/program.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &wl() const { return workloadByName(GetParam()); }
};

TEST_P(WorkloadTest, CompilesAndVerifies)
{
    CompiledProgram prog =
        compileAndAnalyze(wl().source, wl().name);
    EXPECT_GT(prog.stats.numBranches, 0u);
    EXPECT_GT(prog.stats.numFunctions, 0u);
}

TEST_P(WorkloadTest, HasCheckableBranches)
{
    CompiledProgram prog =
        compileAndAnalyze(wl().source, wl().name);
    EXPECT_GT(prog.stats.numCheckable, 0u)
        << wl().name << " exposes no correlations at all";
}

TEST_P(WorkloadTest, BenignSessionRunsClean)
{
    CompiledProgram prog =
        compileAndAnalyze(wl().source, wl().name);
    Vm vm(prog.mod);
    vm.setInputs(wl().benignInputs);
    Detector det(prog);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_NE(r.exit, ExitKind::Trapped) << r.trapMessage;
    EXPECT_NE(r.exit, ExitKind::OutOfFuel);
    EXPECT_FALSE(det.alarmed())
        << wl().name << ": FALSE POSITIVE on benign input, first at pc=0x"
        << std::hex << det.alarms().front().pc;
    EXPECT_FALSE(r.output.empty());
}

TEST_P(WorkloadTest, ZeroFalsePositivesAcrossInputPermutations)
{
    // Benign input variations must also be alarm-free: rotate the
    // session script to exercise different paths.
    CompiledProgram prog =
        compileAndAnalyze(wl().source, wl().name);
    auto base = wl().benignInputs;
    for (size_t rot = 0; rot < base.size(); rot += 2) {
        std::vector<std::string> inputs(base.begin() + rot, base.end());
        inputs.insert(inputs.end(), base.begin(), base.begin() + rot);
        EXPECT_TRUE(benignRunIsClean(prog, inputs))
            << wl().name << " rotation " << rot;
    }
}

TEST_P(WorkloadTest, SmallCampaignBehaves)
{
    CompiledProgram prog =
        compileAndAnalyze(wl().source, wl().name);
    CampaignConfig cfg;
    cfg.numAttacks = 25;
    CampaignResult res = runCampaign(prog, wl().benignInputs, cfg);
    EXPECT_FALSE(res.falsePositive);
    EXPECT_EQ(res.attacks(), 25u);
    // Every attack must actually fire its tamper.
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(o.fired);
    // Detection implies prior control-flow change is NOT required in
    // general (a detected branch IS the divergence), but a detection
    // with a branch trace identical to golden would be a false
    // positive by construction:
    for (const auto &o : res.outcomes)
        EXPECT_TRUE(!o.detected || o.cfChanged)
            << wl().name << ": detected an attack whose control flow "
            << "never changed (impossible without a false positive)";
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadTest,
    ::testing::Values("telnetd", "wu-ftpd", "xinetd", "crond",
                      "sysklogd", "atftpd", "httpd", "sendmail",
                      "sshd", "portmap"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(WorkloadSuite, AggregateDetectionIsInThePaperBallpark)
{
    // Across the whole suite with 40 attacks each, some attacks must
    // change control flow and a meaningful share of those must be
    // detected. (Exact Figure 7 numbers come from bench/fig7.)
    uint32_t attacks = 0, cf = 0, det = 0;
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        CampaignConfig cfg;
        cfg.numAttacks = 40;
        CampaignResult res = runCampaign(prog, wl.benignInputs, cfg);
        EXPECT_FALSE(res.falsePositive) << wl.name;
        attacks += res.attacks();
        cf += res.numCfChanged();
        det += res.numDetected();
    }
    EXPECT_GT(cf, attacks / 10) << "almost no tampering changed CF";
    EXPECT_GT(det, 0u) << "nothing was detected at all";
    // Detection among CF-changing attacks should be substantial
    // (paper: 59.3%). Accept a broad band; the bench reports exact.
    EXPECT_GT(100.0 * det / cf, 25.0);
}

} // namespace
} // namespace ipds
