/**
 * @file
 * Zero-false-positive fuzzing: generate random (but always
 * terminating) MiniC programs, execute them on random inputs with the
 * detector attached, and assert that NO benign execution ever raises
 * an alarm. This is the paper's central correctness claim ("IPDS
 * achieves a zero false positive rate since it always acts
 * conservatively") exercised mechanically over hundreds of program
 * shapes the authors never wrote down.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "support/rng.h"
#include "vm/vm.h"

#include "program_gen.h"

namespace ipds {
namespace {

using testutil::ProgramGen;

class ZeroFpFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ZeroFpFuzz, BenignRunsNeverAlarm)
{
    ProgramGen gen(GetParam());
    std::string src = gen.generate();

    CompiledProgram prog;
    ASSERT_NO_THROW(prog = compileAndAnalyze(src, "fuzz"))
        << "generator produced invalid MiniC:\n" << src;

    // Three different benign input sets per program.
    for (int round = 0; round < 3; round++) {
        Vm vm(prog.mod);
        vm.setInputs(gen.inputs());
        vm.setFuel(500000);
        Detector det(prog);
        vm.addObserver(&det);
        RunResult r = vm.run();
        EXPECT_NE(r.exit, ExitKind::Trapped)
            << r.trapMessage << "\n" << src;
        EXPECT_NE(r.exit, ExitKind::OutOfFuel) << src;
        ASSERT_FALSE(det.alarmed())
            << "FALSE POSITIVE on benign input!\nprogram:\n" << src;
    }
}

TEST_P(ZeroFpFuzz, ExecutionIsDeterministic)
{
    ProgramGen gen(GetParam());
    std::string src = gen.generate();
    auto in = gen.inputs();
    CompiledProgram prog = compileAndAnalyze(src, "fuzz");

    auto runOnce = [&]() {
        Vm vm(prog.mod);
        vm.setInputs(in);
        vm.setFuel(500000);
        return vm.run();
    };
    RunResult a = runOnce();
    RunResult b = runOnce();
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_TRUE(a.branchTrace == b.branchTrace);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZeroFpFuzz,
                         ::testing::Range<uint64_t>(1, 81));

/**
 * Attack fuzzing: random programs under random tampering. The key
 * invariant is that an alarm implies the branch trace diverged from
 * the golden run — an alarm on an identical trace would mean the
 * detector flagged a path the benign execution also takes, i.e. a
 * false positive smuggled in through the attack path.
 */
class AttackFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AttackFuzz, DetectionImpliesDivergence)
{
    ProgramGen gen(GetParam() + 5000);
    std::string src = gen.generate();
    auto in = gen.inputs();
    CompiledProgram prog = compileAndAnalyze(src, "afuzz");

    // Golden run.
    std::vector<BranchEvent> golden;
    {
        Vm vm(prog.mod);
        vm.setInputs(in);
        vm.setFuel(500000);
        Detector det(prog);
        vm.addObserver(&det);
        RunResult r = vm.run();
        ASSERT_FALSE(det.alarmed()) << src;
        golden = std::move(r.branchTrace);
    }

    for (uint32_t atk = 0; atk < 10; atk++) {
        Vm vm(prog.mod);
        vm.setInputs(in);
        vm.setFuel(500000);
        Detector det(prog);
        vm.addObserver(&det);
        TamperSpec spec;
        spec.randomStackTarget = true;
        spec.seed = GetParam() * 131 + atk;
        spec.afterInputEvent = 1 + atk % 5;
        vm.setTamper(spec);
        RunResult r = vm.run();
        if (det.alarmed()) {
            EXPECT_FALSE(r.branchTrace == golden)
                << "alarm without control-flow divergence!\n" << src;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackFuzz,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace ipds
