/**
 * @file
 * Targeted-attack regressions: for every workload, one deterministic,
 * semantically meaningful attack on a named decision variable that
 * IPDS must detect — privilege escalation, state-machine corruption,
 * kill-switch flips. These pin the suite's security value: a refactor
 * that silently loses one of these detections fails here, not in a
 * statistics shift.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

struct Attack
{
    const char *workload;
    const char *variable;   ///< entry-function local to corrupt
    uint32_t afterInput;    ///< trigger: after Nth input event
    int64_t newValue;       ///< value written (8 bytes LE)
};

class TargetedAttackTest : public ::testing::TestWithParam<Attack>
{};

TEST_P(TargetedAttackTest, IsDetected)
{
    const Attack &atk = GetParam();
    const Workload &wl = workloadByName(atk.workload);
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    Vm vm(prog.mod);
    vm.setInputs(wl.benignInputs);
    vm.setFuel(2'000'000);
    Detector det(prog);
    vm.addObserver(&det);

    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = atk.afterInput;
    spec.addr = vm.entryLocalAddr(atk.variable);
    uint64_t v = static_cast<uint64_t>(atk.newValue);
    spec.bytes.resize(8);
    for (int i = 0; i < 8; i++)
        spec.bytes[i] = static_cast<uint8_t>(v >> (8 * i));
    vm.setTamper(spec);

    RunResult r = vm.run();
    ASSERT_TRUE(r.tamper.fired);
    EXPECT_TRUE(det.alarmed())
        << atk.workload << ": corrupting " << atk.variable << " to "
        << atk.newValue << " after input #" << atk.afterInput
        << " was NOT detected";
}

TEST_P(TargetedAttackTest, BenignTwinIsClean)
{
    // The same session without the tamper must stay silent — the
    // detection above is attributable to the corruption alone.
    const Attack &atk = GetParam();
    const Workload &wl = workloadByName(atk.workload);
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
    Vm vm(prog.mod);
    vm.setInputs(wl.benignInputs);
    Detector det(prog);
    vm.addObserver(&det);
    vm.run();
    EXPECT_FALSE(det.alarmed());
}

INSTANTIATE_TEST_SUITE_P(
    All, TargetedAttackTest,
    ::testing::Values(
        // telnetd: escalate a guest session to root mid-stream.
        Attack{"telnetd", "level", 3, 2},
        // wu-ftpd: flip the anonymous flag to full account.
        Attack{"wu-ftpd", "anon", 3, 0},
        // xinetd: flip the global kill switch on.
        Attack{"xinetd", "drop_all", 3, 1},
        // crond: force an invalid schedule to look validated.
        Attack{"crond", "valid", 4, 77},
        // sysklogd: silence the logger.
        Attack{"sysklogd", "enabled", 3, 0},
        // atftpd: enable uploads on a read-only server.
        Attack{"atftpd", "allow_write", 4, 1},
        // httpd: grant admin session state without credentials.
        Attack{"httpd", "authed", 4, 1},
        // sendmail: skip the protocol to DATA state.
        Attack{"sendmail", "state", 2, 9},
        // sshd: the benign session IS privileged — revoking the bit
        // mid-session is the infeasible transition here.
        Attack{"sshd", "privileged", 5, 0},
        // portmap: freeze-flag corruption.
        Attack{"portmap", "locked", 4, 1}),
    [](const auto &info) {
        std::string n = info.param.workload;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace ipds
