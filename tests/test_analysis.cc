/**
 * @file
 * Analysis-layer unit tests: location table, points-to, effect
 * summaries, memory constant propagation, dominators, const folding
 * and affine chain extraction — checked on small MiniC programs whose
 * IR shapes are known.
 */

#include <gtest/gtest.h>

#include "analysis/constfold.h"
#include "analysis/dominators.h"
#include "analysis/effects.h"
#include "analysis/memconst.h"
#include "analysis/memloc.h"
#include "analysis/pointsto.h"
#include "core/affine.h"
#include "frontend/codegen.h"
#include "ir/builder.h"

namespace ipds {
namespace {

/** Compiled fixture bundling a module with its analyses. */
struct Fixture
{
    Module mod;
    std::unique_ptr<LocTable> locs;
    std::unique_ptr<PointsTo> pt;
    std::unique_ptr<Effects> fx;

    explicit Fixture(const std::string &src)
        : mod(compileMiniC(src, "t"))
    {
        locs = std::make_unique<LocTable>(mod);
        pt = std::make_unique<PointsTo>(mod, *locs);
        fx = std::make_unique<Effects>(mod, *locs, *pt);
    }

    ObjectId
    object(const std::string &name) const
    {
        for (const auto &o : mod.objects)
            if (o.name == name)
                return o.id;
        return kNoObject;
    }

    LocId
    scalarLoc(const std::string &name) const
    {
        ObjectId obj = object(name);
        return locs->find(obj, 0,
                          static_cast<uint8_t>(mod.objects[obj].size));
    }
};

// -------------------------------------------------------------- LocTable

TEST(LocTable, EnumeratesScalarsAndConstIndexedElements)
{
    Fixture f(R"(
int g;
void main() {
    int x;
    int a[4];
    x = 1;
    a[2] = x;
    g = a[2];
}
)");
    EXPECT_NE(f.scalarLoc("g"), kNoLoc);
    EXPECT_NE(f.scalarLoc("main.x"), kNoLoc);
    // a[2] at byte offset 16 is a location of size 8.
    EXPECT_NE(f.locs->find(f.object("main.a"), 16, 8), kNoLoc);
    // a[0] was never directly accessed.
    EXPECT_EQ(f.locs->find(f.object("main.a"), 0, 8), kNoLoc);
}

TEST(LocTable, OverlapQueries)
{
    Fixture f(R"(
void main() {
    char b[8];
    b[0] = 'a';
    b[1] = 'b';
    print_str(b);
}
)");
    ObjectId b = f.object("main.b");
    LocId l0 = f.locs->find(b, 0, 1);
    LocId l1 = f.locs->find(b, 1, 1);
    ASSERT_NE(l0, kNoLoc);
    ASSERT_NE(l1, kNoLoc);
    EXPECT_FALSE(f.locs->overlap(l0, l1));
    auto hits = f.locs->overlapping(b, 0, 2);
    EXPECT_EQ(hits.size(), 2u);
}

// -------------------------------------------------------------- PointsTo

TEST(PointsTo, DirectAddressFlows)
{
    Fixture f(R"(
void main() {
    int x;
    int *p;
    p = &x;
    *p = 5;
    print_int(x);
}
)");
    // The StoreInd through p must clobber exactly x.
    const Function &fn = f.mod.functions[f.mod.entry];
    bool checked = false;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op != Op::StoreInd)
                continue;
            ObjSet tgt = f.pt->resolve(fn.id, in.srcA);
            EXPECT_FALSE(tgt.top);
            ASSERT_EQ(tgt.objs.size(), 1u);
            EXPECT_EQ(*tgt.objs.begin(), f.object("main.x"));
            checked = true;
        }
    }
    EXPECT_TRUE(checked);
}

TEST(PointsTo, FlowsThroughCallArguments)
{
    Fixture f(R"(
void poke(int *p) { *p = 1; }
void main() {
    int a;
    int b;
    poke(&a);
    poke(&b);
    print_int(a + b);
}
)");
    FuncId poke = f.mod.findFunction("poke");
    const ObjSet &arg = f.pt->argSet(poke, 0);
    EXPECT_FALSE(arg.top);
    EXPECT_EQ(arg.objs.size(), 2u); // both a and b reach the parameter
}

TEST(PointsTo, ResolveExactThroughOffsets)
{
    Fixture f(R"(
void main() {
    char buf[32];
    strcpy(buf + 4, "x");
    print_str(buf);
}
)");
    const Function &fn = f.mod.functions[f.mod.entry];
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op == Op::Call && in.builtin == Builtin::Strcpy) {
                ObjectId obj;
                int64_t off;
                ASSERT_TRUE(
                    f.pt->resolveExact(fn.id, in.args[0], obj, off));
                EXPECT_EQ(obj, f.object("main.buf"));
                EXPECT_EQ(off, 4);
            }
        }
    }
}

// --------------------------------------------------------------- Effects

TEST(Effects, DirectStoreClobbersExactRange)
{
    Fixture f(R"(
void main() {
    int x;
    int y;
    x = 1;
    y = 2;
    print_int(x + y);
}
)");
    const Function &fn = f.mod.functions[f.mod.entry];
    LocId lx = f.scalarLoc("main.x");
    LocId ly = f.scalarLoc("main.y");
    int stores = 0;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op != Op::Store)
                continue;
            ClobberSet cs = f.fx->clobbers(fn.id, in);
            // Exactly one of x/y is hit per store.
            EXPECT_NE(cs.hitsLoc(*f.locs, lx), cs.hitsLoc(*f.locs, ly));
            stores++;
        }
    }
    EXPECT_EQ(stores, 2);
}

TEST(Effects, BuiltinWritesResolveToTargets)
{
    Fixture f(R"(
void main() {
    char a[8];
    char b[8];
    strcpy(a, "x");
    strcpy(b, a);
    print_str(b);
}
)");
    const Function &fn = f.mod.functions[f.mod.entry];
    int calls = 0;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op != Op::Call || in.builtin != Builtin::Strcpy)
                continue;
            ClobberSet cs = f.fx->clobbers(fn.id, in);
            EXPECT_FALSE(cs.all);
            ASSERT_EQ(cs.objects.size(), 1u);
            calls++;
        }
    }
    EXPECT_EQ(calls, 2);
}

TEST(Effects, CalleeSummaryPropagatesToCaller)
{
    Fixture f(R"(
int g;
void setg() { g = 1; }
void outer() { setg(); }
void main() { outer(); print_int(g); }
)");
    FuncId outer = f.mod.findFunction("outer");
    const ObjSet &w = f.fx->funcWrites(outer);
    EXPECT_FALSE(w.top);
    EXPECT_TRUE(w.objs.count(f.object("g")));
}

TEST(Effects, OwnLocalsExcludedFromSummary)
{
    Fixture f(R"(
void worker() { int t; t = 3; print_int(t); }
void main() { worker(); }
)");
    FuncId worker = f.mod.findFunction("worker");
    const ObjSet &w = f.fx->funcWrites(worker);
    EXPECT_FALSE(w.top);
    EXPECT_TRUE(w.objs.empty());
}

TEST(Effects, WritesThroughParamPointerCountInCaller)
{
    Fixture f(R"(
void poke(int *p) { *p = 9; }
void main() {
    int victim;
    victim = 1;
    poke(&victim);
    print_int(victim);
}
)");
    const Function &fn = f.mod.functions[f.mod.entry];
    LocId lv = f.scalarLoc("main.victim");
    bool callChecked = false;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op == Op::Call && in.builtin == Builtin::None) {
                ClobberSet cs = f.fx->clobbers(fn.id, in);
                EXPECT_TRUE(cs.hitsLoc(*f.locs, lv));
                callChecked = true;
            }
        }
    }
    EXPECT_TRUE(callChecked);
}

// -------------------------------------------------------------- MemConst

TEST(MemConst, SingleConstantLocalQualifies)
{
    Fixture f(R"(
void main() {
    int limit;
    int x;
    limit = 10;
    x = input_int();
    if (x < limit) { print_str("lo"); }
}
)");
    MemConsts mc(f.mod, *f.locs, *f.fx);
    int64_t v = 0;
    EXPECT_TRUE(mc.constLoc(f.scalarLoc("main.limit"), v));
    EXPECT_EQ(v, 10);
    EXPECT_FALSE(mc.constLoc(f.scalarLoc("main.x"), v));
}

TEST(MemConst, TwoDifferentStoresDisqualify)
{
    Fixture f(R"(
void main() {
    int m;
    m = 1;
    if (input_int() > 0) { m = 2; }
    print_int(m);
}
)");
    MemConsts mc(f.mod, *f.locs, *f.fx);
    int64_t v;
    EXPECT_FALSE(mc.constLoc(f.scalarLoc("main.m"), v));
}

TEST(MemConst, AddressTakenDisqualifies)
{
    Fixture f(R"(
void main() {
    int m;
    int *p;
    m = 4;
    p = &m;
    *p = input_int();
    print_int(m);
}
)");
    MemConsts mc(f.mod, *f.locs, *f.fx);
    int64_t v;
    EXPECT_FALSE(mc.constLoc(f.scalarLoc("main.m"), v));
}

TEST(MemConst, GlobalInitMustAgree)
{
    Fixture f(R"(
int a = 7;
int b = 7;
void main() {
    b = 9;
    print_int(a + b);
}
)");
    MemConsts mc(f.mod, *f.locs, *f.fx);
    int64_t v;
    EXPECT_TRUE(mc.constLoc(f.scalarLoc("a"), v));
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(mc.constLoc(f.scalarLoc("b"), v)); // stores 9 != init 7
}

TEST(MemConst, LoadBeforeStoreDisqualifiesLocal)
{
    Fixture f(R"(
void main() {
    int m;
    if (input_int() > 0) {
        print_int(m);
    }
    m = 5;
    print_int(m);
}
)");
    MemConsts mc(f.mod, *f.locs, *f.fx);
    int64_t v;
    EXPECT_FALSE(mc.constLoc(f.scalarLoc("main.m"), v));
}

// ------------------------------------------------------------ Dominators

TEST(Dominators, DiamondShape)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    BlockId entry = fb.curBlock();
    BlockId left = fb.newBlock("left");
    BlockId right = fb.newBlock("right");
    BlockId join = fb.newBlock("join");
    Vreg c = fb.constInt(1);
    fb.br(c, left, right);
    fb.setBlock(left);
    fb.jmp(join);
    fb.setBlock(right);
    fb.jmp(join);
    fb.setBlock(join);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    mod.assignAddresses();
    mod.verify();

    Dominators dom(mod.functions[0]);
    EXPECT_TRUE(dom.dominates(entry, join));
    EXPECT_TRUE(dom.dominates(entry, left));
    EXPECT_FALSE(dom.dominates(left, join));
    EXPECT_FALSE(dom.dominates(right, join));
    EXPECT_EQ(dom.idom(join), entry);
    EXPECT_TRUE(dom.dominates(join, join));
}

TEST(Dominators, UnreachableBlocks)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    fb.ret();
    BlockId dead = fb.newBlock("dead");
    fb.setBlock(dead);
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();
    mod.assignAddresses();

    Dominators dom(mod.functions[0]);
    EXPECT_TRUE(dom.reachable(0));
    EXPECT_FALSE(dom.reachable(dead));
    EXPECT_FALSE(dom.dominates(0, dead));
}

// ------------------------------------------------------------- constfold

TEST(ConstFold, FoldsArithmeticChains)
{
    Module mod;
    FuncBuilder fb(mod, "main", 0, false);
    Vreg a = fb.constInt(6);
    Vreg b = fb.constInt(7);
    Vreg m = fb.bin(BinOp::Mul, a, b);
    Vreg s = fb.bin(BinOp::Sub, m, fb.constInt(2));
    Vreg d = fb.bin(BinOp::Div, s, fb.constInt(4));
    fb.ret();
    fb.finish();
    mod.entry = fb.funcId();

    DefMap dm(mod.functions[0]);
    int64_t out;
    ASSERT_TRUE(constValue(mod.functions[0], dm, d, out));
    EXPECT_EQ(out, 10); // (42-2)/4
    // Division by zero chains do not fold.
    (void)a;
    (void)b;
}

TEST(ConstFold, NonConstLeavesFalse)
{
    Fixture f("void main() { int x; x = input_int(); "
              "if (x + 1 > 2) { } }");
    const Function &fn = f.mod.functions[f.mod.entry];
    DefMap dm(fn);
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op == Op::Cmp) {
                int64_t v;
                EXPECT_FALSE(constValue(fn, dm, in.srcA, v));
                EXPECT_TRUE(constValue(fn, dm, in.srcB, v));
            }
        }
    }
}

// ---------------------------------------------------------------- affine

TEST(Affine, TracesLoadPlusConstChains)
{
    Fixture f(R"(
void main() {
    int y;
    y = input_int();
    if (y - 1 < 10) { print_str("a"); }
    if (3 - y > 0) { print_str("b"); }
    if (y * 2 > 4) { print_str("c"); }
}
)");
    const Function &fn = f.mod.functions[f.mod.entry];
    DefMap dm(fn);
    LocId ly = f.scalarLoc("main.y");

    std::vector<AffineExpr> chains;
    for (const auto &bb : fn.blocks) {
        for (const auto &in : bb.insts) {
            if (in.op == Op::Cmp) {
                chains.push_back(
                    traceAffine(fn, dm, *f.locs, in.srcA));
            }
        }
    }
    ASSERT_EQ(chains.size(), 3u);
    // y - 1: sign +1, offset -1.
    EXPECT_TRUE(chains[0].valid);
    EXPECT_EQ(chains[0].loc, ly);
    EXPECT_EQ(chains[0].sign, 1);
    EXPECT_EQ(chains[0].offset, -1);
    // 3 - y: sign -1, offset +3.
    EXPECT_TRUE(chains[1].valid);
    EXPECT_EQ(chains[1].sign, -1);
    EXPECT_EQ(chains[1].offset, 3);
    // y * 2: not affine with unit scale.
    EXPECT_FALSE(chains[2].valid);
}

} // namespace
} // namespace ipds
