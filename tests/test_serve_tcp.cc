/**
 * @file
 * TCP transport, reconnect/resume and the multi-program registry
 * (`ctest -L service-tcp`).
 *
 * The tentpole guarantee under test: a stream killed mid-transfer
 * and resumed over TCP produces a final Result BIT-IDENTICAL to the
 * uninterrupted stream and to offline replay of the same trace —
 * the server dedups re-sent bytes by absolute offset, so every trace
 * byte enters the detector exactly once no matter how many times the
 * connection dropped.
 *
 * Around it: Hello v2 routing across a registry of several compiled
 * programs (unknown hashes rejected with a typed Error, other
 * tenants' aggregates untouched), unix + TCP listeners sharing one
 * server, resume-grace expiry, and the bounded shutdown drain's
 * dropped-reply accounting.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/program.h"
#include "inject/fault.h"
#include "obs/names.h"
#include "obs/session.h"
#include "replay/format.h"
#include "replay/reader.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "support/diag.h"
#include "vm/vm.h"

using namespace ipds;

namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "ipds_tcp_" + name;
}

std::vector<uint8_t>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
}

/** Same correlated-privilege-flag program the service suite uses. */
const char *kLoopProgram = R"(
void main() {
    int role;
    int req;
    role = 0;
    if (input_int() == 42) {
        role = 1;
    }
    req = 0;
    while (req < 4) {
        if (role == 1) {
            print_str("p\n");
        } else {
            print_str("n\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

/** A second, distinct program — a different registry entry. */
const char *kGateProgram = R"(
void main() {
    int lvl;
    lvl = input_int();
    if (lvl > 2) {
        print_str("hi\n");
    } else {
        print_str("lo\n");
    }
    if (lvl > 2) {
        print_str("hi2\n");
    } else {
        print_str("lo2\n");
    }
}
)";

const std::vector<std::string> kLoopInputs{"7", "1", "2", "3", "4"};

std::string
capture(const CompiledProgram &prog,
        const std::vector<std::string> &inputs,
        const std::string &name, uint32_t sessions, bool tamper)
{
    std::string path = tmpPath(name + ".trc");
    Session::Builder b = Session::builder();
    b.program(prog).inputs(inputs).sessions(sessions);
    ExecPlan exec;
    if (tamper) {
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 2;
        spec.addr = Vm(prog.mod).entryLocalAddr("role");
        spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
        exec.tamper(spec);
    }
    b.plan(CapturePlan(path).exec(exec));
    b.build().run();
    return path;
}

/** Metric lines of a text blob, minus the wall-clock gauge. */
std::string
metricLines(const std::string &text)
{
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.rfind("ipds.", 0) != 0)
            continue;
        if (line.find(obs::names::kReplayEventsPerSec) == 0)
            continue;
        if (line.find("ipds.tenant.") == 0)
            continue;
        out += line + "\n";
    }
    return out;
}

uint64_t
counterOf(const std::string &statsz, const std::string &name)
{
    std::istringstream in(statsz);
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string k;
        uint64_t v = 0;
        ls >> k >> v;
        if (k == name)
            return v;
    }
    return 0;
}

} // namespace

// ------------------------------------------------------ TCP transport

TEST(TcpService, StreamOverTcpMatchesOfflineReplayBitForBit)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    std::string path =
        capture(prog, kLoopInputs, "ident", 3, /*tamper=*/true);

    Session off = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    off.run();
    ASSERT_TRUE(off.alarmed());

    serve::ServerConfig cfg;
    cfg.tcpHost = "127.0.0.1"; // TCP only: no unix listener at all
    cfg.tcpPort = 0;           // ephemeral
    cfg.threads = 2;
    serve::Server srv(prog, cfg);
    srv.start();
    ASSERT_GT(srv.boundTcpPort(), 0);

    serve::Client c;
    c.connectTcp("127.0.0.1", srv.boundTcpPort());
    c.helloV2("tenant-a", replay::readTraceHeader(path).moduleHash);
    c.sendTraceFile(path, 64);
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    ASSERT_TRUE(r.ok) << r.text;
    EXPECT_EQ(r.sessions, 3u);
    EXPECT_EQ(r.alarms, off.alarms().size());
    EXPECT_EQ(r.alarmDigest, serve::alarmDigest(off.alarms()));
    EXPECT_EQ(metricLines(r.text), metricLines(off.metricsText()));
    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_TRUE(snap[0].det == off.detectorStats());
    std::remove(path.c_str());
}

TEST(TcpService, KilledAndResumedStreamIsBitIdenticalToUninterrupted)
{
    // THE acceptance test: abort the connection several times
    // mid-transfer; the resumed stream's Result must match both the
    // uninterrupted stream and offline replay bit for bit.
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    std::string path =
        capture(prog, kLoopInputs, "resume", 6, /*tamper=*/true);
    std::vector<uint8_t> bytes = readBytes(path);
    uint64_t hash = replay::readTraceHeader(path).moduleHash;

    Session off = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    off.run();
    ASSERT_TRUE(off.alarmed());

    serve::ServerConfig cfg;
    cfg.tcpHost = "127.0.0.1";
    cfg.threads = 2;
    cfg.ackEveryChunks = 1; // ack every sealed chunk: tight watermark
    serve::Server srv(prog, cfg);
    srv.start();

    // Uninterrupted reference stream, same server.
    serve::Client smooth;
    smooth.connectTcp("127.0.0.1", srv.boundTcpPort());
    smooth.helloV2("smooth", hash);
    smooth.sendTraceBytes(bytes.data(), bytes.size(), 256);
    serve::StreamResult rs = smooth.end();
    ASSERT_TRUE(rs.ok) << rs.text;

    // Interrupted stream: kill the connection at several offsets,
    // with small frames so drops land mid-trace-structure.
    serve::Client bumpy;
    bumpy.connectTcp("127.0.0.1", srv.boundTcpPort());
    bumpy.helloV2("bumpy", hash);
    const size_t third = bytes.size() / 3;
    bumpy.sendTraceBytes(bytes.data(), third, 256);
    bumpy.abortConnection(); // drop #1: between sends
    bumpy.sendTraceBytes(bytes.data() + third, third, 256);
    bumpy.abortConnection(); // drop #2
    bumpy.sendTraceBytes(bytes.data() + 2 * third,
                         bytes.size() - 2 * third, 256);
    bumpy.abortConnection(); // drop #3: all data sent, before end()
    serve::StreamResult rb = bumpy.end();
    srv.stopAndJoin();

    ASSERT_TRUE(rb.ok) << rb.text;
    EXPECT_GE(bumpy.reconnects(), 3u);
    EXPECT_GT(bumpy.lastAckedBytes(), 0u);

    // Bit-identity three ways: resumed == uninterrupted == offline.
    EXPECT_EQ(rb.sessions, rs.sessions);
    EXPECT_EQ(rb.alarms, rs.alarms);
    EXPECT_EQ(rb.alarmDigest, rs.alarmDigest);
    EXPECT_EQ(metricLines(rb.text), metricLines(rs.text));
    EXPECT_EQ(rb.alarmDigest, serve::alarmDigest(off.alarms()));
    EXPECT_EQ(metricLines(rb.text), metricLines(off.metricsText()));

    // Both tenants aggregated identically server-side.
    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 2u); // name-sorted: bumpy, smooth
    EXPECT_EQ(snap[0].name, "bumpy");
    EXPECT_TRUE(snap[0].det == snap[1].det);
    EXPECT_EQ(serve::alarmDigest(snap[0].alarms),
              serve::alarmDigest(snap[1].alarms));

    std::string statsz = srv.statszText();
    EXPECT_GE(counterOf(statsz, obs::names::kServeReconnects), 3u)
        << statsz;
    std::remove(path.c_str());
}

TEST(TcpService, ReconnectStormAtOddOffsetsStaysBitIdentical)
{
    // A drop between every slice, with slice edges at odd byte
    // offsets that never line up with trace chunk or frame
    // boundaries — every resume re-feeds from mid-structure.
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    std::string path =
        capture(prog, kLoopInputs, "storm", 20, /*tamper=*/true);
    std::vector<uint8_t> bytes = readBytes(path);
    uint64_t hash = replay::readTraceHeader(path).moduleHash;
    std::remove(path.c_str());

    serve::ServerConfig cfg;
    cfg.tcpHost = "127.0.0.1";
    cfg.threads = 2;
    cfg.ackEveryChunks = 2;
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client smooth;
    smooth.connectTcp("127.0.0.1", srv.boundTcpPort());
    smooth.helloV2("smooth", hash);
    smooth.sendTraceBytes(bytes.data(), bytes.size(), 512);
    serve::StreamResult rs = smooth.end();
    ASSERT_TRUE(rs.ok) << rs.text;

    serve::Client bumpy;
    bumpy.connectTcp("127.0.0.1", srv.boundTcpPort());
    bumpy.helloV2("bumpy", hash);
    size_t off = 0;
    size_t slice = bytes.size() / 11 + 3; // deliberately odd-sized
    while (off < bytes.size()) {
        size_t n = std::min(slice, bytes.size() - off);
        bumpy.sendTraceBytes(bytes.data() + off, n, 512);
        off += n;
        bumpy.abortConnection();
    }
    serve::StreamResult rb = bumpy.end();
    srv.stopAndJoin();

    ASSERT_TRUE(rb.ok) << rb.text;
    EXPECT_GE(bumpy.reconnects(), 10u);
    EXPECT_EQ(rb.alarmDigest, rs.alarmDigest);
    EXPECT_EQ(rb.sessions, rs.sessions);
    EXPECT_EQ(metricLines(rb.text), metricLines(rs.text));
}

// ------------------------------------------------ module registry

TEST(TcpService, TwoModulesTwoTenantsOneServerRouteByHash)
{
    CompiledProgram loop = compileAndAnalyze(kLoopProgram, "tcp_loop");
    CompiledProgram gate = compileAndAnalyze(kGateProgram, "tcp_gate");
    std::string loopTrc =
        capture(loop, kLoopInputs, "mr_loop", 2, /*tamper=*/true);
    std::string gateTrc =
        capture(gate, {"5"}, "mr_gate", 2, /*tamper=*/false);

    Session offLoop = Session::builder()
                          .program(loop)
                          .plan(ReplayPlan(loopTrc))
                          .build();
    offLoop.run();
    Session offGate = Session::builder()
                          .program(gate)
                          .plan(ReplayPlan(gateTrc))
                          .build();
    offGate.run();

    // One server, both listeners live, registry of two programs.
    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("mr.sock");
    cfg.tcpHost = "127.0.0.1";
    cfg.threads = 2;
    serve::Server srv(cfg);
    srv.registerModule(loop);
    srv.registerModule(gate);
    srv.start();

    // Tenant "alice" streams the loop trace over TCP; tenant "bob"
    // the gate trace over the unix socket — routed by module hash.
    serve::Client a;
    a.connectTcp("127.0.0.1", srv.boundTcpPort());
    a.helloV2("alice", replay::readTraceHeader(loopTrc).moduleHash);
    a.sendTraceFile(loopTrc, 128);
    serve::StreamResult ra = a.end();

    serve::Client b;
    b.connect(cfg.socketPath);
    b.helloV2("bob", replay::readTraceHeader(gateTrc).moduleHash);
    b.sendTraceFile(gateTrc, 128);
    serve::StreamResult rbob = b.end();

    // v1 Hello still works and routes to the FIRST registered module.
    serve::Client legacy;
    legacy.connectTcp("127.0.0.1", srv.boundTcpPort());
    legacy.hello("carol");
    legacy.sendTraceFile(loopTrc);
    serve::StreamResult rc = legacy.end();
    srv.stopAndJoin();

    ASSERT_TRUE(ra.ok) << ra.text;
    ASSERT_TRUE(rbob.ok) << rbob.text;
    ASSERT_TRUE(rc.ok) << rc.text;
    EXPECT_EQ(ra.alarmDigest, serve::alarmDigest(offLoop.alarms()));
    EXPECT_EQ(metricLines(ra.text), metricLines(offLoop.metricsText()));
    EXPECT_EQ(rbob.alarms, 0u);
    EXPECT_EQ(rbob.alarmDigest, serve::alarmDigest(offGate.alarms()));
    EXPECT_EQ(metricLines(rbob.text),
              metricLines(offGate.metricsText()));
    EXPECT_EQ(rc.alarmDigest, ra.alarmDigest);

    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "alice");
    EXPECT_EQ(snap[1].name, "bob");
    EXPECT_EQ(snap[2].name, "carol");
    std::remove(loopTrc.c_str());
    std::remove(gateTrc.c_str());
}

TEST(TcpService, UnknownModuleHashIsATypedErrorAndIsolated)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    std::string path =
        capture(prog, kLoopInputs, "um", 2, /*tamper=*/true);
    uint64_t hash = replay::readTraceHeader(path).moduleHash;

    serve::ServerConfig cfg;
    cfg.tcpHost = "127.0.0.1";
    serve::Server srv(prog, cfg);
    srv.start();

    // A good tenant's stream first.
    serve::Client good;
    good.connectTcp("127.0.0.1", srv.boundTcpPort());
    good.helloV2("good", hash);
    good.sendTraceFile(path, 128);
    serve::StreamResult rg = good.end();
    ASSERT_TRUE(rg.ok) << rg.text;

    // A stream naming a hash the registry does not hold: typed
    // Error, and the client's resume machinery must NOT retry past
    // the reject.
    serve::Client bad;
    bad.connectTcp("127.0.0.1", srv.boundTcpPort());
    bad.reconnectPolicy(3, 1);
    bad.helloV2("bad", hash ^ 0xdeadbeefULL);
    bad.sendTraceFile(path, 128);
    serve::StreamResult rb = bad.end();
    srv.stopAndJoin();

    EXPECT_FALSE(rb.ok);
    EXPECT_EQ(rb.errorCode, "unknown_module") << rb.text;
    EXPECT_NE(rb.text.find("not registered"), std::string::npos)
        << rb.text;
    EXPECT_EQ(bad.reconnects(), 0u);

    // The reject left the good tenant's aggregates untouched — and
    // never opened a stream, so the failure counters stay clean too.
    EXPECT_EQ(srv.streamsCompleted(), 1u);
    EXPECT_EQ(srv.streamsFailed(), 0u);
    auto snap = srv.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "good");
    EXPECT_EQ(serve::alarmDigest(snap[0].alarms), rg.alarmDigest);
    std::string statsz = srv.statszText();
    EXPECT_EQ(counterOf(statsz, obs::names::kServeUnknownModule), 1u)
        << statsz;
    std::remove(path.c_str());
}

// ------------------------------------------------ resume edge cases

TEST(TcpService, ResumeGraceExpiryFailsTheStreamAsTruncation)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    std::string path =
        capture(prog, kLoopInputs, "grace", 2, /*tamper=*/false);
    std::vector<uint8_t> bytes = readBytes(path);
    std::remove(path.c_str());

    serve::ServerConfig cfg;
    cfg.tcpHost = "127.0.0.1";
    cfg.resumeGraceMs = 50; // expire almost immediately
    serve::Server srv(prog, cfg);
    srv.start();

    serve::Client c;
    c.connectTcp("127.0.0.1", srv.boundTcpPort());
    c.helloV2("t", replay::moduleContentHash(prog.mod));
    c.sendTraceBytes(bytes.data(), bytes.size() / 2, 128);
    c.abortConnection();
    // Never comes back: the park deadline passes, the stream fails
    // as truncated (exactly what a v1 drop reports).
    srv.waitForStreams(1);
    srv.stopAndJoin();
    EXPECT_EQ(srv.streamsCompleted(), 0u);
    EXPECT_EQ(srv.streamsFailed(), 1u);
}

TEST(TcpService, UnknownResumeTokenIsATypedError)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    serve::ServerConfig cfg;
    cfg.tcpHost = "127.0.0.1";
    serve::Server srv(prog, cfg);
    srv.start();

    // Hand-built resume Hello2 for a token the server never saw.
    serve::wire::HelloV2 h;
    h.resume = true;
    h.tenant = "ghost";
    h.moduleHash = 1; // irrelevant: the token lookup fails first
    h.resumeToken = 0x1234;
    std::vector<uint8_t> p = serve::wire::encodeHello2(h);
    serve::Client c;
    c.connectTcp("127.0.0.1", srv.boundTcpPort());
    c.sendRaw(serve::wire::encodeFrame(
        serve::wire::FrameType::Hello2, p.data(), p.size()));
    serve::StreamResult r = c.end();
    srv.stopAndJoin();

    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, "unknown_resume") << r.text;
}

// ------------------------------------------------ shutdown drain

TEST(TcpService, BoundedShutdownDrainCountsDroppedReplyBytes)
{
    CompiledProgram prog = compileAndAnalyze(kLoopProgram, "tcp_loop");
    serve::ServerConfig cfg;
    cfg.socketPath = tmpPath("drain.sock");
    cfg.shutdownDrainRounds = 1; // one 10ms flush round, then drop
    serve::Server srv(prog, cfg);
    srv.start();

    // Flood the server with StatsReq and never read a byte of the
    // replies: the conn outbuf backs up far past what the kernel
    // socket buffer can absorb.
    serve::Client c;
    c.connect(cfg.socketPath);
    std::vector<uint8_t> reqs;
    for (int i = 0; i < 5000; i++)
        serve::wire::appendFrame(reqs, serve::wire::FrameType::StatsReq,
                                 nullptr, 0);
    c.sendRaw(reqs);
    // Let the ingest thread consume the requests and queue replies.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    srv.stopAndJoin();

    std::string statsz = srv.statszText();
    EXPECT_GT(counterOf(statsz, obs::names::kServeDroppedReplyBytes),
              0u)
        << statsz;
}
