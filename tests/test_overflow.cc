/**
 * @file
 * Overflow-campaign framework tests: vulnerability planting is exact,
 * the planted build really overflows, classification isolates
 * corruption from input change, and campaigns are deterministic.
 */

#include <gtest/gtest.h>

#include "attack/overflow.h"
#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

const char *kVictim = R"(
void main() {
    char buf[8];
    int flag;
    int i;
    flag = 0;
    i = 0;
    while (i < 2) {
        get_input_n(buf, 8);
        if (flag != 0) { print_str("escalated\n"); }
        i = i + 1;
    }
}
)";

TEST(Overflow, CountsAndPlantsReads)
{
    EXPECT_EQ(countInputReads(kVictim), 1u);
    std::string planted = plantVulnerability(kVictim, 0);
    EXPECT_EQ(countInputReads(planted), 0u);
    EXPECT_NE(planted.find("get_input(buf)"), std::string::npos);
    EXPECT_THROW(plantVulnerability(kVictim, 1), FatalError);
    // Planted source still compiles.
    EXPECT_NO_THROW(compileAndAnalyze(planted, "planted"));
}

TEST(Overflow, PlantedBuildReallyOverflows)
{
    CompiledProgram prog =
        compileAndAnalyze(plantVulnerability(kVictim, 0), "v");
    Vm vm(prog.mod);
    // 8 filler bytes to fill buf, then a 1 that lands in flag.
    std::string payload(8, 'x');
    payload += '\1';
    vm.setInputs({payload, "short"});
    Detector det(prog);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_NE(r.output.find("escalated"), std::string::npos);
    EXPECT_TRUE(det.alarmed()) << "overflow flipped flag undetected";
}

TEST(Overflow, BoundedBuildAbsorbsTheSamePayload)
{
    CompiledProgram prog = compileAndAnalyze(kVictim, "b");
    Vm vm(prog.mod);
    std::string payload(8, 'x');
    payload += '\1';
    vm.setInputs({payload, "short"});
    Detector det(prog);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_EQ(r.output.find("escalated"), std::string::npos);
    EXPECT_FALSE(det.alarmed());
}

TEST(Overflow, CampaignDeterministicAndClean)
{
    CampaignConfig cfg;
    cfg.numAttacks = 30;
    CampaignResult a =
        runOverflowCampaign(kVictim, "v", {"one", "two"}, cfg);
    CampaignResult b =
        runOverflowCampaign(kVictim, "v", {"one", "two"}, cfg);
    EXPECT_FALSE(a.falsePositive);
    ASSERT_EQ(a.attacks(), b.attacks());
    for (uint32_t i = 0; i < a.attacks(); i++) {
        EXPECT_EQ(a.outcomes[i].cfChanged, b.outcomes[i].cfChanged);
        EXPECT_EQ(a.outcomes[i].detected, b.outcomes[i].detected);
    }
    // This victim has a directly exposed flag: a decent share of
    // overflows must change control flow and be detected.
    EXPECT_GT(a.numCfChanged(), 0u);
    EXPECT_GT(a.numDetected(), 0u);
    // Detection still implies corruption-caused divergence.
    for (const auto &o : a.outcomes)
        EXPECT_TRUE(!o.detected || o.cfChanged);
}

TEST(Overflow, WholeSuiteCampaignsAreFalsePositiveFree)
{
    for (const auto &wl : allWorkloads()) {
        CampaignConfig cfg;
        cfg.numAttacks = 15;
        CampaignResult res = runOverflowCampaign(
            wl.source, wl.name, wl.benignInputs, cfg);
        EXPECT_FALSE(res.falsePositive) << wl.name;
        for (const auto &o : res.outcomes)
            EXPECT_TRUE(!o.detected || o.cfChanged) << wl.name;
    }
}

TEST(Overflow, InputEventPcsAreRecorded)
{
    CompiledProgram prog = compileAndAnalyze(kVictim, "b");
    Vm vm(prog.mod);
    vm.setInputs({"a", "b"});
    RunResult r = vm.run();
    ASSERT_EQ(r.inputEventPcs.size(), 2u);
    EXPECT_EQ(r.inputEventPcs[0], r.inputEventPcs[1]); // same call site
}

} // namespace
} // namespace ipds
