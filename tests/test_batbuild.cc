/**
 * @file
 * BAT construction tests, including the paper's worked examples:
 * Figure 3.a (range subsumption along paths), Figure 3.c (affine
 * transfer through a store), and Figure 4 (the BSV update sequence),
 * executed through the real detector to validate runtime semantics.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "vm/vm.h"

namespace ipds {
namespace {

/** Find the net action of (branch src, dir) on branch dst. */
BrAction
actionOf(const FuncBat &bat, uint32_t src, bool taken, uint32_t dst)
{
    const ActionList &l = taken ? bat.onTaken[src]
                                : bat.onNotTaken[src];
    for (const auto &[idx, act] : l)
        if (idx == dst)
            return act;
    return BrAction::NC;
}

TEST(BatBuild, SelfCorrelationOnUnchangedVariable)
{
    // Scenario 2 of §4: the same branch re-executed without any
    // redefinition must repeat its direction.
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int x;
    int i;
    x = input_int();
    i = 0;
    while (i < 3) {
        if (x < 10) { print_str("a"); } else { print_str("b"); }
        i = i + 1;
    }
}
)", "t");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    const auto &corr = p.funcs[p.mod.entry].corr;
    // Find the x<10 branch.
    uint32_t bx = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind == CondKind::Range &&
            p.locs->loc(b.corrLoc).name == "main.x")
            bx = b.idx;
    }
    ASSERT_NE(bx, UINT32_MAX);
    EXPECT_EQ(actionOf(bat, bx, true, bx), BrAction::SetT);
    EXPECT_EQ(actionOf(bat, bx, false, bx), BrAction::SetNT);
}

TEST(BatBuild, Figure3aSubsumptionAcrossBranches)
{
    // y<5 taken forces y<10 taken (range y<5 subsumes y<10); the
    // else-path redefinition of y makes it unknown instead.
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int y;
    y = input_int();
    if (y < 5) {
        print_str("small");
    } else {
        y = input_int();
    }
    if (y < 10) { print_str("lt10"); }
}
)", "t");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    const auto &corr = p.funcs[p.mod.entry].corr;
    uint32_t b5 = UINT32_MAX, b10 = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind != CondKind::Range)
            continue;
        if (b.takenSet.contains(4) && !b.takenSet.contains(5))
            b5 = b.idx;
        if (b.takenSet.contains(9) && !b.takenSet.contains(10))
            b10 = b.idx;
    }
    ASSERT_NE(b5, UINT32_MAX);
    ASSERT_NE(b10, UINT32_MAX);
    // Taken edge of y<5: y in (-inf,4] which subsumes (-inf,9].
    EXPECT_EQ(actionOf(bat, b5, true, b10), BrAction::SetT);
    // Not-taken edge runs through `y = input_int()`: unknown.
    EXPECT_EQ(actionOf(bat, b5, false, b10), BrAction::SetUN);
}

TEST(BatBuild, Figure3cAffineStoreTransfer)
{
    // Figure 3.c: y < 5 taken, then r1 = y - 1 stored; the branch on
    // the stored variable (r1 < 10) is forced taken.
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int y;
    int r1;
    y = input_int();
    if (y < 5) {
        r1 = y - 1;
        if (r1 < 10) { print_str("forced"); }
    }
}
)", "t");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    const auto &corr = p.funcs[p.mod.entry].corr;
    uint32_t by = UINT32_MAX, br1 = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind != CondKind::Range)
            continue;
        std::string n = p.locs->loc(b.corrLoc).name;
        if (n == "main.y")
            by = b.idx;
        if (n == "main.r1")
            br1 = b.idx;
    }
    ASSERT_NE(by, UINT32_MAX);
    ASSERT_NE(br1, UINT32_MAX);
    // Taken edge of y<5 contains the store r1 = y-1 with the live
    // fact y in (-inf,4], so r1 in (-inf,3] subsumes (-inf,9].
    EXPECT_EQ(actionOf(bat, by, true, br1), BrAction::SetT);
}

TEST(BatBuild, ConstStoreEmitsEntryAction)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    flag = 0;
    input_int();
    if (flag == 1) { print_str("impossible benignly"); }
}
)", "t");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    // flag = 0 happens in the entry region; the == 1 branch must be
    // pinned NOT-taken before any branch executes.
    ASSERT_EQ(bat.numBranches, 1u);
    BrAction a = BrAction::NC;
    for (const auto &[idx, act] : bat.entryActions)
        if (idx == 0)
            a = act;
    EXPECT_EQ(a, BrAction::SetNT);
}

TEST(BatBuild, ConstStoreFactsCanBeDisabled)
{
    CorrOptions opts;
    opts.constStoreFacts = false;
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    flag = 0;
    input_int();
    if (flag == 1) { print_str("x"); }
}
)", "t", opts);
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    for (const auto &[idx, act] : bat.entryActions)
        EXPECT_NE(act, BrAction::SetNT);
}

TEST(BatBuild, CallClobberEmitsSetUnknown)
{
    CompiledProgram p = compileAndAnalyze(R"(
int g;
void scramble() { g = input_int(); }
void main() {
    g = input_int();
    if (g < 5) {
        scramble();
    }
    if (g < 9) { print_str("x"); }
}
)", "t");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    const auto &corr = p.funcs[p.mod.entry].corr;
    uint32_t b5 = UINT32_MAX, b9 = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind != CondKind::Range)
            continue;
        if (!b.takenSet.contains(5))
            b5 = b.idx;
        else if (!b.takenSet.contains(9))
            b9 = b.idx;
    }
    ASSERT_NE(b5, UINT32_MAX);
    ASSERT_NE(b9, UINT32_MAX);
    // Taken edge executes scramble() which may write g: SET_UN wins
    // over the subsumption SET_T.
    EXPECT_EQ(actionOf(bat, b5, true, b9), BrAction::SetUN);
    // Not-taken edge leaves g alone: (-inf... g in [5,inf) does not
    // decide g<9, and nothing was redefined, so no action.
    EXPECT_EQ(actionOf(bat, b5, false, b9), BrAction::NC);
}

/**
 * Figure 4, executed: three correlated branches, with the BSV
 * transitions observed through detector behaviour. The paper's walk:
 * BR1 taken sets BR1 and BR5 to taken; BR2's taken direction leads
 * into the block that redefines x, so BR2 becomes unknown; BB4
 * (BR2 not-taken) redefines y making BR5 unknown.
 */
TEST(BatBuild, Figure4UpdateSequence)
{
    // if (y < 5)        -- BR1
    //   while (x > 10)  -- BR2 (taken body redefines x)
    //     { x = input }
    //   if (y < 10)     -- BR5
    const char *src = R"(
void main() {
    int x;
    int y;
    y = input_int();
    x = input_int();
    if (y < 5) {
        while (x > 10) {
            x = input_int();
        }
        if (y < 10) { print_str("corr"); }
    }
}
)";
    CompiledProgram p = compileAndAnalyze(src, "fig4");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    const auto &corr = p.funcs[p.mod.entry].corr;

    uint32_t br1 = UINT32_MAX, br2 = UINT32_MAX, br5 = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind != CondKind::Range)
            continue;
        std::string n = p.locs->loc(b.corrLoc).name;
        if (n == "main.y" && !b.takenSet.contains(5))
            br1 = b.idx;
        if (n == "main.x")
            br2 = b.idx;
        if (n == "main.y" && b.takenSet.contains(5))
            br5 = b.idx;
    }
    ASSERT_NE(br1, UINT32_MAX);
    ASSERT_NE(br2, UINT32_MAX);
    ASSERT_NE(br5, UINT32_MAX);

    // BR1 taken: y in (-inf,4] subsumes both its own trigger and
    // BR5's (-inf,9].
    EXPECT_EQ(actionOf(bat, br1, true, br1), BrAction::SetT);
    EXPECT_EQ(actionOf(bat, br1, true, br5), BrAction::SetT);
    // BR2 taken runs into the x-redefinition: x unknown.
    EXPECT_EQ(actionOf(bat, br2, true, br2), BrAction::SetUN);
    // BR2 not-taken leaves x alone: repeats not-taken.
    EXPECT_EQ(actionOf(bat, br2, false, br2), BrAction::SetNT);

    // And dynamically: benign runs never alarm, while corrupting y
    // between BR1 and BR5 trips the subsumption.
    {
        Vm vm(p.mod);
        vm.setInputs({"3", "20", "1", "2", "11"});
        Detector det(p);
        vm.addObserver(&det);
        vm.run();
        EXPECT_FALSE(det.alarmed());
    }
    {
        Vm vm(p.mod);
        vm.setInputs({"3", "20", "1", "2", "11"});
        Detector det(p);
        vm.addObserver(&det);
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 3; // mid-loop, after BR1 executed
        spec.addr = vm.entryLocalAddr("y");
        spec.bytes = {100, 0, 0, 0, 0, 0, 0, 0};
        vm.setTamper(spec);
        vm.run();
        EXPECT_TRUE(det.alarmed());
    }
}

TEST(BatBuild, AliasedStoreKillsEverything)
{
    // §5.1's multiply-aliased rule: a store through a pointer that may
    // reference several objects must act as a definition of all of
    // them — here the taken edge writes *p which may be x or y, so
    // both correlated branches go unknown on that edge.
    CompiledProgram prog = compileAndAnalyze(R"(
void main() {
    int x;
    int y;
    int *p;
    x = input_int();
    y = input_int();
    if (input_int() > 0) { p = &x; } else { p = &y; }
    if (x < 5) {
        *p = input_int();
    }
    if (x < 9) { print_str("a"); }
    if (y < 9) { print_str("b"); }
}
)", "t");
    const FuncBat &bat = prog.funcs[prog.mod.entry].bat;
    const auto &corr = prog.funcs[prog.mod.entry].corr;
    uint32_t b5 = UINT32_MAX, bx9 = UINT32_MAX, by9 = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind != CondKind::Range)
            continue;
        std::string n = prog.locs->loc(b.corrLoc).name;
        if (n == "main.x" && !b.takenSet.contains(5))
            b5 = b.idx;
        if (n == "main.x" && b.takenSet.contains(5))
            bx9 = b.idx;
        if (n == "main.y")
            by9 = b.idx;
    }
    ASSERT_NE(b5, UINT32_MAX);
    ASSERT_NE(bx9, UINT32_MAX);
    ASSERT_NE(by9, UINT32_MAX);
    // Taken edge (runs the aliased store): both x and y branches UN.
    EXPECT_EQ(actionOf(bat, b5, true, bx9), BrAction::SetUN);
    EXPECT_EQ(actionOf(bat, b5, true, by9), BrAction::SetUN);
    // Not-taken edge: x in [5,inf) decides neither; y untouched.
    EXPECT_EQ(actionOf(bat, b5, false, by9), BrAction::NC);

    // And the program stays alarm-free on inputs taking either side.
    for (auto inputs : std::vector<std::vector<std::string>>{
             {"1", "2", "1", "3"}, {"1", "2", "-1", "3"},
             {"7", "2", "1"}, {"7", "2", "-1"}}) {
        Vm vm(prog.mod);
        vm.setInputs(inputs);
        Detector det(prog);
        vm.addObserver(&det);
        vm.run();
        EXPECT_FALSE(det.alarmed());
    }
}

TEST(BatBuild, EntryRegionStopsAtFirstBranch)
{
    // The fact from `flag = 1` must not leak past the first branch
    // into path-dependent territory: after the branch, the store in
    // one arm re-establishes, the other arm leaves the entry value.
    CompiledProgram prog = compileAndAnalyze(R"(
void main() {
    int flag;
    flag = 1;
    if (input_int() > 0) {
        flag = 0;
    }
    if (flag == 1) { print_str("kept"); }
}
)", "t");
    // Both directions are legitimate; no benign alarm either way.
    for (const char *in : {"5", "-5"}) {
        Vm vm(prog.mod);
        vm.setInputs({in});
        Detector det(prog);
        vm.addObserver(&det);
        RunResult r = vm.run();
        EXPECT_FALSE(det.alarmed()) << in;
        (void)r;
    }
    // Entry pins SET_T; the taken edge of the input branch (running
    // flag=0) must re-pin SET_NT.
    const FuncBat &bat = prog.funcs[prog.mod.entry].bat;
    const auto &corr = prog.funcs[prog.mod.entry].corr;
    uint32_t bflag = UINT32_MAX, binput = UINT32_MAX;
    for (const auto &b : corr.branches) {
        if (b.kind == CondKind::Range &&
            prog.locs->loc(b.corrLoc).name == "main.flag")
            bflag = b.idx;
        else
            binput = b.idx;
    }
    ASSERT_NE(bflag, UINT32_MAX);
    ASSERT_NE(binput, UINT32_MAX);
    EXPECT_EQ(actionOf(bat, binput, true, bflag), BrAction::SetNT);
    BrAction entryAct = BrAction::NC;
    for (const auto &[idx, act] : bat.entryActions)
        if (idx == bflag)
            entryAct = act;
    EXPECT_EQ(entryAct, BrAction::SetT);
}

TEST(BatBuild, TotalActionsAccounting)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int x;
    x = input_int();
    if (x < 3) { print_str("a"); }
    if (x < 7) { print_str("b"); }
}
)", "t");
    const FuncBat &bat = p.funcs[p.mod.entry].bat;
    size_t counted = bat.entryActions.size();
    for (uint32_t i = 0; i < bat.numBranches; i++)
        counted += bat.onTaken[i].size() + bat.onNotTaken[i].size();
    EXPECT_EQ(counted, bat.totalActions());
    EXPECT_GT(counted, 0u);
}

} // namespace
} // namespace ipds
