/**
 * @file
 * Runtime-detector unit tests: BSV state machine semantics, table
 * stack push/pop across calls, UNKNOWN-matches-anything, alarm
 * payloads, statistics and the request-sink protocol the timing model
 * consumes.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "vm/vm.h"

namespace ipds {
namespace {

TEST(Detector, FreshTablesPerInvocation)
{
    // The callee's branch direction differs between two calls — legal,
    // because each invocation pushes fresh (UNKNOWN) tables.
    CompiledProgram p = compileAndAnalyze(R"(
void probe(int v) {
    if (v < 5) { print_str("lo"); } else { print_str("hi"); }
}
void main() {
    probe(1);
    probe(9);
}
)", "t");
    Vm vm(p.mod);
    Detector det(p);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_EQ(r.output, "lohi");
    EXPECT_FALSE(det.alarmed());
    EXPECT_EQ(det.stats().framesPushed, 3u); // main + 2x probe
    EXPECT_EQ(det.stats().maxStackDepth, 2u);
}

TEST(Detector, RecursionStacksTables)
{
    CompiledProgram p = compileAndAnalyze(R"(
int down(int n) {
    if (n == 0) { return 0; }
    return down(n - 1);
}
void main() { print_int(down(5)); }
)", "t");
    Vm vm(p.mod);
    Detector det(p);
    vm.addObserver(&det);
    vm.run();
    EXPECT_FALSE(det.alarmed());
    EXPECT_EQ(det.stats().maxStackDepth, 7u); // main + 6 downs
}

TEST(Detector, UnknownMatchesAnyDirection)
{
    // Input-driven branch: direction varies across iterations but the
    // BSV stays UNKNOWN (killed by the input write each round).
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int i;
    int v;
    i = 0;
    while (i < 4) {
        v = input_int();
        if (v > 0) { print_str("+"); } else { print_str("-"); }
        i = i + 1;
    }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"1", "-1", "1", "-1"});
    Detector det(p);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_EQ(r.output, "+-+-");
    EXPECT_FALSE(det.alarmed());
    EXPECT_GT(det.stats().checksPerformed, 0u);
}

TEST(Detector, AlarmPayloadIdentifiesBranch)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    flag = 0;
    input_int();
    if (flag == 1) { print_str("escalated"); }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"x"});
    Detector det(p);
    vm.addObserver(&det);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 1;
    spec.addr = vm.entryLocalAddr("flag");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
    vm.setTamper(spec);
    vm.run();

    ASSERT_TRUE(det.alarmed());
    const Alarm &a = det.alarms().front();
    EXPECT_EQ(a.func, p.mod.entry);
    EXPECT_EQ(a.expected, BsvState::NotTaken);
    EXPECT_TRUE(a.actualTaken);
    EXPECT_GT(a.branchIndex, 0u);
    // The alarming pc really is a branch of main.
    bool found = false;
    for (uint64_t pc : p.funcs[p.mod.entry].bat.branchPcs)
        found |= pc == a.pc;
    EXPECT_TRUE(found);
}

TEST(Detector, ResetClearsState)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int x;
    x = input_int();
    if (x < 5) { print_str("a"); }
}
)", "t");
    Detector det(p);
    {
        Vm vm(p.mod);
        vm.setInputs({"1"});
        vm.addObserver(&det);
        vm.run();
    }
    EXPECT_GT(det.stats().branchesSeen, 0u);
    det.reset();
    EXPECT_EQ(det.stats().branchesSeen, 0u);
    EXPECT_FALSE(det.alarmed());
    {
        Vm vm(p.mod);
        vm.setInputs({"9"});
        vm.addObserver(&det);
        vm.run();
    }
    EXPECT_FALSE(det.alarmed());
}

TEST(Detector, RequestSinkProtocol)
{
    CompiledProgram p = compileAndAnalyze(R"(
void leaf() { print_str("x"); }
void main() {
    int x;
    x = input_int();
    if (x < 5) { leaf(); }
}
)", "t");
    std::vector<IpdsRequest> log;
    Detector det(p);
    det.setRequestSink([&](const IpdsRequest &rq) {
        log.push_back(rq);
    });
    Vm vm(p.mod);
    vm.setInputs({"1"});
    vm.addObserver(&det);
    vm.run();

    ASSERT_FALSE(log.empty());
    // First event: main's frame push carrying its table bits.
    EXPECT_EQ(log[0].kind, IpdsRequest::Kind::PushFrame);
    EXPECT_GT(log[0].tableBits, 0u);
    // Push/pop balance.
    int depth = 0, maxDepth = 0;
    size_t checks = 0, updates = 0;
    for (const auto &rq : log) {
        switch (rq.kind) {
          case IpdsRequest::Kind::PushFrame:
            depth++;
            maxDepth = std::max(maxDepth, depth);
            break;
          case IpdsRequest::Kind::PopFrame:
            depth--;
            break;
          case IpdsRequest::Kind::Check:
            checks++;
            break;
          case IpdsRequest::Kind::Update:
            updates++;
            break;
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(maxDepth, 2);
    EXPECT_EQ(checks, det.stats().checksPerformed);
    EXPECT_EQ(updates, det.stats().updatesApplied);
    // Every checked branch also updates, never the reverse missing.
    EXPECT_GE(updates, checks);
}

TEST(Detector, ChecksOnlyBcvMarkedBranches)
{
    // a<b is unknown-kind: never checked, but still updates.
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int a;
    int b;
    a = input_int();
    b = input_int();
    if (a < b) { print_str("x"); }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"1", "2"});
    Detector det(p);
    vm.addObserver(&det);
    vm.run();
    EXPECT_EQ(det.stats().checksPerformed, 0u);
    EXPECT_EQ(det.stats().updatesApplied, 1u);
    EXPECT_EQ(det.stats().branchesSeen, 1u);
}

TEST(Detector, MultipleAlarmsAccumulate)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    int i;
    flag = 0;
    i = 0;
    while (i < 3) {
        input_int();
        if (flag == 1) { print_str("!"); }
        i = i + 1;
    }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"a", "b", "c"});
    Detector det(p);
    vm.addObserver(&det);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 1;
    spec.addr = vm.entryLocalAddr("flag");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
    vm.setTamper(spec);
    vm.run();
    // The first tampered evaluation alarms. The detector then applies
    // the branch's own update (flag==1 taken pins SET_T), so later
    // iterations are self-consistent with the corrupted value and do
    // not re-alarm — a real deployment halts the process at the first
    // alarm anyway.
    EXPECT_EQ(det.alarms().size(), 1u);
    EXPECT_EQ(det.alarms().front().expected, BsvState::NotTaken);
}

} // namespace
} // namespace ipds
