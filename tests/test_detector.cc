/**
 * @file
 * Runtime-detector unit tests: BSV state machine semantics, table
 * stack push/pop across calls, UNKNOWN-matches-anything, alarm
 * payloads, statistics, the request-sink protocol the timing model
 * consumes, frame-pool reuse, and golden equivalence of the fast-path
 * Detector against the preserved pre-overhaul ReferenceDetector.
 */

#include <gtest/gtest.h>

#include "core/program.h"
#include "ipds/detector.h"
#include "ipds/reference.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

/** Field-by-field stats comparison (failure names the workload). */
void
expectSameStats(const DetectorStats &ref, const DetectorStats &fast,
                const std::string &what)
{
    EXPECT_EQ(ref.branchesSeen, fast.branchesSeen) << what;
    EXPECT_EQ(ref.checksEnqueued, fast.checksEnqueued) << what;
    EXPECT_EQ(ref.updatesApplied, fast.updatesApplied) << what;
    EXPECT_EQ(ref.actionsApplied, fast.actionsApplied) << what;
    EXPECT_EQ(ref.framesPushed, fast.framesPushed) << what;
    EXPECT_EQ(ref.maxStackDepth, fast.maxStackDepth) << what;
}

void
expectSameAlarms(const std::vector<Alarm> &ref,
                 const std::vector<Alarm> &fast,
                 const std::string &what)
{
    ASSERT_EQ(ref.size(), fast.size()) << what;
    for (size_t i = 0; i < ref.size(); i++) {
        EXPECT_EQ(ref[i].func, fast[i].func) << what;
        EXPECT_EQ(ref[i].pc, fast[i].pc) << what;
        EXPECT_EQ(ref[i].actualTaken, fast[i].actualTaken) << what;
        EXPECT_EQ(ref[i].expected, fast[i].expected) << what;
        EXPECT_EQ(ref[i].branchIndex, fast[i].branchIndex) << what;
    }
}

TEST(Detector, FreshTablesPerInvocation)
{
    // The callee's branch direction differs between two calls — legal,
    // because each invocation pushes fresh (UNKNOWN) tables.
    CompiledProgram p = compileAndAnalyze(R"(
void probe(int v) {
    if (v < 5) { print_str("lo"); } else { print_str("hi"); }
}
void main() {
    probe(1);
    probe(9);
}
)", "t");
    Vm vm(p.mod);
    Detector det(p);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_EQ(r.output, "lohi");
    EXPECT_FALSE(det.alarmed());
    EXPECT_EQ(det.stats().framesPushed, 3u); // main + 2x probe
    EXPECT_EQ(det.stats().maxStackDepth, 2u);
}

TEST(Detector, RecursionStacksTables)
{
    CompiledProgram p = compileAndAnalyze(R"(
int down(int n) {
    if (n == 0) { return 0; }
    return down(n - 1);
}
void main() { print_int(down(5)); }
)", "t");
    Vm vm(p.mod);
    Detector det(p);
    vm.addObserver(&det);
    vm.run();
    EXPECT_FALSE(det.alarmed());
    EXPECT_EQ(det.stats().maxStackDepth, 7u); // main + 6 downs
}

TEST(Detector, UnknownMatchesAnyDirection)
{
    // Input-driven branch: direction varies across iterations but the
    // BSV stays UNKNOWN (killed by the input write each round).
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int i;
    int v;
    i = 0;
    while (i < 4) {
        v = input_int();
        if (v > 0) { print_str("+"); } else { print_str("-"); }
        i = i + 1;
    }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"1", "-1", "1", "-1"});
    Detector det(p);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_EQ(r.output, "+-+-");
    EXPECT_FALSE(det.alarmed());
    EXPECT_GT(det.stats().checksEnqueued, 0u);
}

TEST(Detector, AlarmPayloadIdentifiesBranch)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    flag = 0;
    input_int();
    if (flag == 1) { print_str("escalated"); }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"x"});
    Detector det(p);
    vm.addObserver(&det);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 1;
    spec.addr = vm.entryLocalAddr("flag");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
    vm.setTamper(spec);
    vm.run();

    ASSERT_TRUE(det.alarmed());
    const Alarm &a = det.alarms().front();
    EXPECT_EQ(a.func, p.mod.entry);
    EXPECT_EQ(a.expected, BsvState::NotTaken);
    EXPECT_TRUE(a.actualTaken);
    EXPECT_GT(a.branchIndex, 0u);
    // The alarming pc really is a branch of main.
    bool found = false;
    for (uint64_t pc : p.funcs[p.mod.entry].bat.branchPcs)
        found |= pc == a.pc;
    EXPECT_TRUE(found);
}

TEST(Detector, ResetClearsState)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int x;
    x = input_int();
    if (x < 5) { print_str("a"); }
}
)", "t");
    Detector det(p);
    {
        Vm vm(p.mod);
        vm.setInputs({"1"});
        vm.addObserver(&det);
        vm.run();
    }
    EXPECT_GT(det.stats().branchesSeen, 0u);
    det.reset();
    EXPECT_EQ(det.stats().branchesSeen, 0u);
    EXPECT_FALSE(det.alarmed());
    {
        Vm vm(p.mod);
        vm.setInputs({"9"});
        vm.addObserver(&det);
        vm.run();
    }
    EXPECT_FALSE(det.alarmed());
}

TEST(Detector, RequestSinkProtocol)
{
    CompiledProgram p = compileAndAnalyze(R"(
void leaf() { print_str("x"); }
void main() {
    int x;
    x = input_int();
    if (x < 5) { leaf(); }
}
)", "t");
    std::vector<IpdsRequest> log;
    Detector det(p);
    det.setRequestSink([&](const IpdsRequest &rq) {
        log.push_back(rq);
    });
    Vm vm(p.mod);
    vm.setInputs({"1"});
    vm.addObserver(&det);
    vm.run();

    ASSERT_FALSE(log.empty());
    // First event: main's frame push carrying its table bits.
    EXPECT_EQ(log[0].kind, IpdsRequest::Kind::PushFrame);
    EXPECT_GT(log[0].tableBits, 0u);
    // Push/pop balance.
    int depth = 0, maxDepth = 0;
    size_t checks = 0, updates = 0;
    for (const auto &rq : log) {
        switch (rq.kind) {
          case IpdsRequest::Kind::PushFrame:
            depth++;
            maxDepth = std::max(maxDepth, depth);
            break;
          case IpdsRequest::Kind::PopFrame:
            depth--;
            break;
          case IpdsRequest::Kind::Check:
            checks++;
            break;
          case IpdsRequest::Kind::Update:
            updates++;
            break;
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(maxDepth, 2);
    EXPECT_EQ(checks, det.stats().checksEnqueued);
    EXPECT_EQ(updates, det.stats().updatesApplied);
    // Every checked branch also updates, never the reverse missing.
    EXPECT_GE(updates, checks);
}

TEST(Detector, ChecksOnlyBcvMarkedBranches)
{
    // a<b is unknown-kind: never checked, but still updates.
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int a;
    int b;
    a = input_int();
    b = input_int();
    if (a < b) { print_str("x"); }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"1", "2"});
    Detector det(p);
    vm.addObserver(&det);
    vm.run();
    EXPECT_EQ(det.stats().checksEnqueued, 0u);
    EXPECT_EQ(det.stats().updatesApplied, 1u);
    EXPECT_EQ(det.stats().branchesSeen, 1u);
}

TEST(Detector, MultipleAlarmsAccumulate)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    int i;
    flag = 0;
    i = 0;
    while (i < 3) {
        input_int();
        if (flag == 1) { print_str("!"); }
        i = i + 1;
    }
}
)", "t");
    Vm vm(p.mod);
    vm.setInputs({"a", "b", "c"});
    Detector det(p);
    vm.addObserver(&det);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 1;
    spec.addr = vm.entryLocalAddr("flag");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
    vm.setTamper(spec);
    vm.run();
    // The first tampered evaluation alarms. The detector then applies
    // the branch's own update (flag==1 taken pins SET_T), so later
    // iterations are self-consistent with the corrupted value and do
    // not re-alarm — a real deployment halts the process at the first
    // alarm anyway.
    EXPECT_EQ(det.alarms().size(), 1u);
    EXPECT_EQ(det.alarms().front().expected, BsvState::NotTaken);
}

// ---------------------------------------------------- frame pool

TEST(DetectorFramePool, DeepRecursionReusesFrames)
{
    CompiledProgram p = compileAndAnalyze(R"(
int down(int n) {
    if (n == 0) { return 0; }
    return down(n - 1);
}
void main() { print_int(down(8)); print_int(down(8)); }
)", "t");
    Detector det(p);
    Vm vm(p.mod);
    vm.addObserver(&det);
    vm.run();
    EXPECT_FALSE(det.alarmed());
    // 1 main frame + 2x9 down frames pushed, but the second recursion
    // reuses the first one's pool: allocation is bounded by the peak
    // depth, not the push count.
    EXPECT_EQ(det.stats().framesPushed, 19u);
    EXPECT_EQ(det.allocatedFrames(), 10u);

    // A second session on the same detector allocates nothing at all.
    det.reset();
    Vm vm2(p.mod);
    vm2.addObserver(&det);
    vm2.run();
    EXPECT_EQ(det.allocatedFrames(), 10u);
}

TEST(DetectorFramePool, StaleGenerationSlotsReadUnknown)
{
    // probe's two correlated branches pin each other's BSV slots when
    // v > 5. The middle probe(1) call reuses the probe(9) frame from
    // the pool; its slots still hold the stale SET_T words, which must
    // read as UNKNOWN under the new generation — a leak would alarm on
    // the not-taken evaluation.
    CompiledProgram p = compileAndAnalyze(R"(
void probe(int v) {
    if (v > 5) { print_str("a"); }
    if (v > 5) { print_str("b"); }
}
void main() {
    probe(9);
    probe(1);
    probe(9);
}
)", "t");
    Detector det(p);
    Vm vm(p.mod);
    vm.addObserver(&det);
    RunResult r = vm.run();
    EXPECT_EQ(r.output, "abab");
    EXPECT_FALSE(det.alarmed());
    EXPECT_EQ(det.stats().checksEnqueued, 6u); // both branches, 3 calls
    EXPECT_EQ(det.stats().framesPushed, 4u);    // main + 3x probe
    EXPECT_EQ(det.allocatedFrames(), 2u);       // main + 1 pooled probe
}

// ---------------------------------------------------- golden equivalence

TEST(DetectorGolden, BenignWorkloadsMatchReference)
{
    // The pre-overhaul implementation is preserved verbatim as
    // ReferenceDetector; both observe the same execution and must
    // produce identical alarms and statistics on every workload.
    for (const auto &wl : allWorkloads()) {
        CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);
        ReferenceDetector refDet(prog);
        Detector fastDet(prog);
        Vm vm(prog.mod);
        vm.setInputs(wl.benignInputs);
        vm.setRecordTrace(false);
        vm.addObserver(&refDet);
        vm.addObserver(&fastDet);
        vm.run();
        expectSameStats(refDet.stats(), fastDet.stats(), wl.name);
        expectSameAlarms(refDet.alarms(), fastDet.alarms(), wl.name);
        EXPECT_FALSE(fastDet.alarmed()) << wl.name;
    }
}

TEST(DetectorGolden, TamperedRunMatchesReference)
{
    CompiledProgram p = compileAndAnalyze(R"(
void main() {
    int flag;
    flag = 0;
    input_int();
    if (flag == 1) { print_str("escalated"); }
}
)", "t");
    ReferenceDetector refDet(p);
    Detector fastDet(p);
    Vm vm(p.mod);
    vm.setInputs({"x"});
    vm.addObserver(&refDet);
    vm.addObserver(&fastDet);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 1;
    spec.addr = vm.entryLocalAddr("flag");
    spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
    vm.setTamper(spec);
    vm.run();

    EXPECT_TRUE(refDet.alarmed());
    expectSameStats(refDet.stats(), fastDet.stats(), "tampered");
    expectSameAlarms(refDet.alarms(), fastDet.alarms(), "tampered");
}

} // namespace
} // namespace ipds
