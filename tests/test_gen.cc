/**
 * @file
 * Corpus-generator unit tests (src/gen):
 *
 *  - golden determinism: fixed seeds must hash to pinned FNV-1a
 *    fingerprints, forever — a generator change that shifts any byte
 *    of source, script or recipes must update the constants here
 *    consciously (and regenerate EXPERIMENTS.md numbers);
 *  - structural invariants of emitted recipes;
 *  - the workload registry (registerWorkloads / reset, duplicate
 *    rejection before any mutation);
 *  - compile-failure handling: uncompilable programs surface as
 *    recoverable FatalErrors that NAME THE SEED, never a panic, and
 *    the default sweep range compiles clean;
 *  - the shared --seed CLI helper's strict parsing.
 */

#include <gtest/gtest.h>

#include "attack/campaign.h"
#include "gen/gen.h"
#include "support/cli.h"
#include "support/diag.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

// ---- golden determinism ------------------------------------------------

/** Pinned fingerprints (source + script + recipes per seed). */
struct Golden
{
    uint64_t seed;
    uint64_t fp;
};
constexpr Golden kGolden[] = {
    {1, 0x5ad84de2743ed4efull},
    {2, 0x2630cb595a6c0bfbull},
    {3, 0x210c401acc0ab3d5ull},
    {4, 0x35302d6e6b0b0674ull},
    {7, 0xbadb96352b31049full},
};

TEST(GenGolden, FingerprintsPinned)
{
    for (const Golden &g : kGolden) {
        gen::GeneratedProgram gp = gen::generate(g.seed);
        EXPECT_EQ(gen::fingerprint(gp), g.fp)
            << "seed " << g.seed
            << ": generator output drifted — if intentional, repin "
               "the constant and refresh EXPERIMENTS.md";
    }
}

TEST(GenGolden, SameSeedSameBytes)
{
    for (uint64_t seed : {1ull, 19ull, 0xdeadbeefull}) {
        gen::GeneratedProgram a = gen::generate(seed);
        gen::GeneratedProgram b = gen::generate(seed);
        EXPECT_EQ(a.workload.source, b.workload.source);
        EXPECT_EQ(a.workload.benignInputs, b.workload.benignInputs);
        ASSERT_EQ(a.recipes.size(), b.recipes.size());
        for (size_t i = 0; i < a.recipes.size(); i++)
            EXPECT_EQ(gen::recipeToString(a.recipes[i]),
                      gen::recipeToString(b.recipes[i]));
        EXPECT_EQ(a.totalInputEvents, b.totalInputEvents);
    }
}

TEST(GenGolden, DistinctSeedsDistinctPrograms)
{
    // Not a theorem, but a collision within a tiny range would mean
    // the seed isn't actually feeding the stream.
    EXPECT_NE(gen::fingerprint(gen::generate(1)),
              gen::fingerprint(gen::generate(2)));
}

// ---- recipe structure --------------------------------------------------

TEST(GenRecipes, WellFormed)
{
    for (uint64_t seed = 1; seed <= 20; seed++) {
        gen::GeneratedProgram gp = gen::generate(seed);
        ASSERT_FALSE(gp.decisionVars.empty());
        ASSERT_GT(gp.totalInputEvents, 0u);
        size_t perKind[gen::kNumRecipeKinds] = {};
        for (const gen::AttackRecipe &r : gp.recipes) {
            perKind[static_cast<size_t>(r.kind)]++;
            ASSERT_FALSE(r.writes.empty());
            uint32_t prevEvent = 0;
            for (const gen::RecipeWrite &w : r.writes) {
                EXPECT_GE(w.afterInputEvent, 1u);
                EXPECT_LE(w.afterInputEvent, gp.totalInputEvents);
                EXPECT_GE(w.afterInputEvent, prevEvent)
                    << "writes must be ordered by trigger event";
                prevEvent = w.afterInputEvent;
            }
            switch (r.kind) {
              case gen::RecipeKind::SingleWord:
                EXPECT_EQ(r.writes.size(), 1u);
                break;
              case gen::RecipeKind::MultiWrite:
                EXPECT_GE(r.writes.size(), 2u);
                for (const gen::RecipeWrite &w : r.writes)
                    EXPECT_EQ(w.afterInputEvent,
                              r.writes[0].afterInputEvent)
                        << "multi-write lands at ONE event";
                break;
              case gen::RecipeKind::DecisionChain:
                EXPECT_GE(r.writes.size(), 2u);
                for (size_t i = 1; i < r.writes.size(); i++)
                    EXPECT_GT(r.writes[i].afterInputEvent,
                              r.writes[i - 1].afterInputEvent)
                        << "chain events strictly increase";
                for (const gen::RecipeWrite &w : r.writes) {
                    bool isDecision = false;
                    for (const std::string &v : gp.decisionVars)
                        isDecision |= v == w.var;
                    EXPECT_TRUE(isDecision)
                        << w.var << " is not a decision variable";
                }
                break;
            }
        }
        // Default config: 9 recipes, 3 per kind.
        EXPECT_EQ(gp.recipes.size(), 9u);
        for (size_t k = 0; k < gen::kNumRecipeKinds; k++)
            EXPECT_EQ(perKind[k], 3u);
    }
}

TEST(GenRecipes, WritesResolveToEntryLocals)
{
    gen::GeneratedProgram gp = gen::generate(11);
    CompiledProgram prog = gen::compileGenerated(gp);
    Vm vm(prog.mod);
    for (const gen::AttackRecipe &r : gp.recipes) {
        std::vector<TamperSpec> specs = gen::recipeSpecs(vm, r);
        ASSERT_EQ(specs.size(), r.writes.size());
        for (size_t i = 0; i < specs.size(); i++) {
            EXPECT_FALSE(specs[i].randomStackTarget);
            EXPECT_EQ(specs[i].addr,
                      vm.entryLocalAddr(r.writes[i].var));
            EXPECT_EQ(specs[i].bytes.size(), 8u);
            EXPECT_EQ(specs[i].afterInputEvent,
                      r.writes[i].afterInputEvent);
        }
    }
}

TEST(GenRecipes, RecipeToStringRoundsKindAndWrites)
{
    gen::AttackRecipe r;
    r.kind = gen::RecipeKind::MultiWrite;
    r.writes.push_back({"auth", 1, 3});
    r.writes.push_back({"state", -9, 3});
    EXPECT_EQ(gen::recipeToString(r), "multi_write:auth=1@3,state=-9@3");
    EXPECT_STREQ(gen::recipeKindName(gen::RecipeKind::SingleWord),
                 "single_word");
    EXPECT_STREQ(gen::recipeKindName(gen::RecipeKind::DecisionChain),
                 "decision_chain");
}

// ---- workload registry -------------------------------------------------

class RegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override { baseline = allWorkloads().size(); }
    void TearDown() override { resetWorkloadRegistry(); }
    size_t baseline = 0;
};

TEST_F(RegistryTest, RegisterExtendsAndResetRestores)
{
    std::vector<Workload> extra = gen::corpusWorkloads(501, 503);
    registerWorkloads(extra);
    EXPECT_EQ(allWorkloads().size(), baseline + 3);
    EXPECT_EQ(workloadByName("gen-502").name, "gen-502");
    // The bundled ten stay first, in the paper's order.
    EXPECT_EQ(allWorkloads().front().name, "telnetd");

    resetWorkloadRegistry();
    EXPECT_EQ(allWorkloads().size(), baseline);
    EXPECT_THROW(workloadByName("gen-502"), FatalError);
}

TEST_F(RegistryTest, DuplicateNameRegistersNothing)
{
    std::vector<Workload> extra = gen::corpusWorkloads(601, 602);
    extra[1].name = "httpd"; // collides with a bundled workload
    EXPECT_THROW(registerWorkloads(extra), FatalError);
    // All-or-nothing: the non-colliding first entry must NOT be in.
    EXPECT_EQ(allWorkloads().size(), baseline);
    EXPECT_THROW(workloadByName("gen-601"), FatalError);
}

TEST_F(RegistryTest, IntraBatchDuplicateRejected)
{
    std::vector<Workload> extra = gen::corpusWorkloads(701, 702);
    extra[1].name = extra[0].name;
    EXPECT_THROW(registerWorkloads(extra), FatalError);
    EXPECT_EQ(allWorkloads().size(), baseline);
}

// ---- compile-failure coverage ------------------------------------------

TEST(GenCompile, SweptRangeCompilesClean)
{
    // The corpus acceptance range must stay compilable; a generator
    // edit that emits bad MiniC for any of these seeds fails here
    // with the seed in the message.
    for (uint64_t seed = 1; seed <= 60; seed++) {
        gen::GeneratedProgram gp = gen::generate(seed);
        CompiledProgram prog;
        EXPECT_NO_THROW(prog = gen::compileGenerated(gp))
            << "seed " << seed;
        EXPECT_GT(prog.stats.numCheckable, 0u)
            << "seed " << seed << " exposes no correlations";
    }
}

TEST(GenCompile, BadSourceIsRecoverableAndNamesSeed)
{
    gen::GeneratedProgram gp = gen::generate(1);
    gp.seed = 424242;
    gp.workload.source = "void main() { this is not minic";
    try {
        gen::compileGenerated(gp);
        FAIL() << "uncompilable source must throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("424242"),
                  std::string::npos)
            << "diagnostic must name the seed: " << e.what();
    }
}

TEST(GenCompile, EmptySeedRangeIsFatal)
{
    EXPECT_THROW(gen::corpusWorkloads(5, 3), FatalError);
}

// ---- the shared --seed CLI helper --------------------------------------

bool
parseSeed(const char *text, uint64_t *out)
{
    cli::ArgParser args("t", "test");
    args.seedOpt("seed", out, "seed under test");
    std::string flag = "--seed=" + std::string(text);
    char prog[] = "t";
    char *argv[] = {prog, flag.data()};
    return args.parse(2, argv);
}

TEST(SeedOpt, AcceptsFullU64Range)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseSeed("7", &v));
    EXPECT_EQ(v, 7u);
    EXPECT_TRUE(parseSeed("0", &v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseSeed("18446744073709551615", &v));
    EXPECT_EQ(v, UINT64_MAX);
    EXPECT_TRUE(parseSeed("0x1905", &v));
    EXPECT_EQ(v, 0x1905u);
}

TEST(SeedOpt, RejectsNonSeeds)
{
    // Each of these silently parses (wraps, truncates or skips)
    // under plain strtoull — the seed kind must reject them all.
    uint64_t v = 99;
    EXPECT_FALSE(parseSeed("-1", &v));
    EXPECT_FALSE(parseSeed("+5", &v));
    EXPECT_FALSE(parseSeed(" 5", &v));
    EXPECT_FALSE(parseSeed("5x", &v));
    EXPECT_FALSE(parseSeed("", &v));
    EXPECT_FALSE(parseSeed("18446744073709551616", &v)); // 2^64
    EXPECT_EQ(v, 99u) << "failed parses must not write the dst";
}

// ---- input-event tamper trigger plumbing -------------------------------

TEST(EventTamper, SpecWithoutTriggerIsFatal)
{
    gen::GeneratedProgram gp = gen::generate(2);
    CompiledProgram prog = gen::compileGenerated(gp);
    Vm vm(prog.mod);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.addr = vm.entryLocalAddr("state");
    spec.bytes = {9, 0, 0, 0, 0, 0, 0, 0};
    EXPECT_THROW(vm.addTamper(spec), FatalError);
}

TEST(EventTamper, FiresOnceAtNthInputEvent)
{
    gen::GeneratedProgram gp = gen::generate(2);
    CompiledProgram prog = gen::compileGenerated(gp);
    Vm vm(prog.mod);
    vm.setInputs(gp.workload.benignInputs);
    TamperSpec spec;
    spec.randomStackTarget = false;
    spec.afterInputEvent = 3;
    spec.addr = vm.entryLocalAddr("state");
    spec.bytes = {9, 0, 0, 0, 0, 0, 0, 0};
    vm.addTamper(spec);
    RunResult r = vm.run();
    ASSERT_EQ(r.faultTampers.size(), 1u);
    EXPECT_TRUE(r.faultTampers[0].fired);
    EXPECT_EQ(r.faultTampers[0].addr, spec.addr);
    EXPECT_EQ(r.faultTampers[0].newBytes, spec.bytes);
}

} // namespace
} // namespace ipds
