/**
 * @file
 * Optimization-pass tests: each pass's local effect, whole-pipeline
 * semantics preservation (same output, same visible behaviour on the
 * workload suite), and the detector's zero-FP property on optimized
 * code.
 */

#include <gtest/gtest.h>

#include "frontend/codegen.h"
#include "ipds/detector.h"
#include "opt/passes.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace {

size_t
countInsts(const Module &m)
{
    size_t n = 0;
    for (const auto &fn : m.functions)
        for (const auto &bb : fn.blocks)
            n += bb.insts.size();
    return n;
}

size_t
countBlocks(const Module &m)
{
    size_t n = 0;
    for (const auto &fn : m.functions)
        n += fn.blocks.size();
    return n;
}

TEST(Opt, FoldsConstantBranches)
{
    Module m = compileMiniC(R"(
void main() {
    if (1 < 2) { print_str("always"); } else { print_str("never"); }
}
)", "t");
    OptStats st = optimizeModule(m);
    EXPECT_GE(st.branchesFolded, 1u);
    EXPECT_GE(st.blocksRemoved, 1u);
    // No conditional branches survive.
    for (const auto &fn : m.functions)
        for (const auto &bb : fn.blocks)
            EXPECT_NE(bb.terminator().op, Op::Br);
    // Behaviour preserved.
    Vm vm(m);
    EXPECT_EQ(vm.run().output, "always");
}

TEST(Opt, ThreadsJumpChains)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    x = input_int();
    if (x < 1) { } else { }
    if (x < 2) { } else { }
    print_int(x);
}
)", "t");
    size_t blocksBefore = countBlocks(m);
    optimizeModule(m);
    EXPECT_LT(countBlocks(m), blocksBefore);
    Vm vm(m);
    vm.setInputs({"5"});
    EXPECT_EQ(vm.run().output, "5");
}

TEST(Opt, EliminatesDeadPureCode)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    int unused;
    x = 3;
    unused = x * 100 + 7;
    print_int(x);
}
)", "t");
    size_t before = countInsts(m);
    OptStats st = optimizeModule(m);
    // The multiply/add feeding the dead store are NOT removable (the
    // store itself has a side effect on memory), but the dead load
    // shape appears elsewhere; at minimum the pipeline is a no-worse
    // transform.
    EXPECT_LE(countInsts(m), before);
    (void)st;
    Vm vm(m);
    EXPECT_EQ(vm.run().output, "3");
}

TEST(Opt, KeepsTrappingDivision)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    int dead;
    x = 0;
    dead = 5 / x;
    print_str("after");
}
)", "t");
    optimizeModule(m);
    Vm vm(m);
    RunResult r = vm.run();
    // The division still traps even though its result is unused.
    EXPECT_EQ(r.exit, ExitKind::Trapped);
}

TEST(Opt, WholeSuiteBehaviourPreserved)
{
    for (const auto &wl : allWorkloads()) {
        Module plain = compileMiniC(wl.source, wl.name);
        Module opt = compileMiniC(wl.source, wl.name);
        OptStats st = optimizeModule(opt);
        (void)st;

        Vm v1(plain);
        v1.setInputs(wl.benignInputs);
        RunResult r1 = v1.run();
        Vm v2(opt);
        v2.setInputs(wl.benignInputs);
        RunResult r2 = v2.run();

        EXPECT_EQ(r1.output, r2.output) << wl.name;
        EXPECT_EQ(r1.exit, r2.exit) << wl.name;
        EXPECT_LE(r2.steps, r1.steps) << wl.name;
    }
}

TEST(Opt, OptimizedCodeStillZeroFalsePositive)
{
    for (const auto &wl : allWorkloads()) {
        Module m = compileMiniC(wl.source, wl.name);
        optimizeModule(m);
        CompiledProgram prog = analyzeModule(std::move(m));
        Vm vm(prog.mod);
        vm.setInputs(wl.benignInputs);
        Detector det(prog);
        vm.addObserver(&det);
        vm.run();
        EXPECT_FALSE(det.alarmed()) << wl.name;
    }
}

TEST(Opt, ForwardsStoresToLoadsWithinABlock)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    x = 7;
    print_int(x + x);
}
)", "t");
    // Without forwarding: store, two loads. With it: the loads read
    // the stored register directly and die.
    uint32_t fwd = 0;
    for (auto &fn : m.functions) {
        fn.computePreds();
        fwd += forwardStores(fn);
        eliminateDeadCode(fn);
    }
    m.assignAddresses();
    m.verify();
    EXPECT_GE(fwd, 2u);
    int loads = 0;
    for (const auto &fn : m.functions)
        for (const auto &bb : fn.blocks)
            for (const auto &in : bb.insts)
                loads += in.op == Op::Load ? 1 : 0;
    EXPECT_EQ(loads, 0);
    Vm vm(m);
    EXPECT_EQ(vm.run().output, "14");
}

TEST(Opt, ForwardingStopsAtCallsAndIndirectStores)
{
    Module m = compileMiniC(R"(
void main() {
    int x;
    int *p;
    x = 7;
    p = &x;
    *p = 9;
    print_int(x); // must reload: the indirect store killed tracking
}
)", "t");
    for (auto &fn : m.functions) {
        fn.computePreds();
        forwardStores(fn);
        eliminateDeadCode(fn);
    }
    m.assignAddresses();
    m.verify();
    Vm vm(m);
    EXPECT_EQ(vm.run().output, "9");
}

TEST(Opt, IdempotentOnFixpoint)
{
    Module m = compileMiniC(workloadByName("sendmail").source, "s");
    optimizeModule(m);
    size_t insts = countInsts(m);
    size_t blocks = countBlocks(m);
    OptStats st2 = optimizeModule(m);
    EXPECT_EQ(countInsts(m), insts);
    EXPECT_EQ(countBlocks(m), blocks);
    EXPECT_EQ(st2.branchesFolded, 0u);
    EXPECT_EQ(st2.blocksRemoved, 0u);
    EXPECT_EQ(st2.instsEliminated, 0u);
}

} // namespace
} // namespace ipds
