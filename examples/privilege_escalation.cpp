/**
 * @file
 * The paper's Figure 1 attack, end to end, with a REAL buffer
 * overflow: the program copies attacker input into `str` with an
 * unbounded strcpy-style builtin; a long payload overruns into the
 * adjacent `user` buffer and flips the second admin check. No code is
 * injected and control never leaves the program — yet IPDS flags the
 * path as infeasible, because the compiler proved the two strncmp
 * checks must agree while `user` is untouched.
 *
 * Build & run:  ./build/examples/privilege_escalation
 */

#include <cstdio>

#include "core/program.h"
#include "ipds/detector.h"
#include "vm/vm.h"

using namespace ipds;

static const char *kFigure1 = R"(
void main() {
    char str[16];
    char user[16];

    get_input_n(user, 16);

    if (strncmp(user, "admin", 5) == 0) {
        print_str("[pre ] operating as admin\n");
    } else {
        print_str("[pre ] operating as user\n");
    }

    // The vulnerability: unbounded copy of attacker-controlled input.
    get_input(str);

    if (strncmp(user, "admin", 5) == 0) {
        print_str("[post] superuser privilege granted\n");
    } else {
        print_str("[post] operating as user\n");
    }
}
)";

namespace {

void
session(const CompiledProgram &prog, const char *label,
        std::vector<std::string> inputs)
{
    Vm vm(prog.mod);
    vm.setInputs(std::move(inputs));
    Detector det(prog);
    vm.addObserver(&det);
    RunResult r = vm.run();
    std::printf("--- %s ---\n%s", label, r.output.c_str());
    if (det.alarmed()) {
        const Alarm &a = det.alarms().front();
        std::printf(">>> IPDS ALARM at pc=0x%llx: branch expected %s "
                    "but went %s — infeasible path, memory was "
                    "tampered\n\n",
                    static_cast<unsigned long long>(a.pc),
                    a.expected == BsvState::Taken ? "taken"
                                                  : "not-taken",
                    a.actualTaken ? "taken" : "not-taken");
    } else {
        std::printf(">>> no alarm\n\n");
    }
}

} // namespace

int
main()
{
    CompiledProgram prog = compileAndAnalyze(kFigure1, "figure1");

    std::printf("Figure 1 (MICRO'06): privilege escalation without "
                "code injection\n\n");
    std::printf("static analysis: %u branches, %u checked by the "
                "BCV\n\n",
                prog.stats.numBranches, prog.stats.numCheckable);

    session(prog, "benign guest session", {"guest", "hello world"});
    session(prog, "benign admin session", {"admin", "hello world"});

    // 16 filler bytes fill str[16]; the following bytes land in user.
    std::string payload(16, 'A');
    payload += "admin";
    session(prog, "ATTACK: overflow 'str' into 'user'",
            {"guest", payload});

    std::printf("the attack flipped the second check without "
                "injecting any code;\nthe correlated strncmp branches "
                "disagreed and IPDS caught it.\n");
    return 0;
}
