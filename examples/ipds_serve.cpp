/**
 * @file
 * ipds_serve — the multi-tenant detection service daemon.
 *
 * Compiles the protected program once, binds a unix stream socket,
 * and detects recorded trace streams from any number of concurrent
 * ipds_client connections AT INGEST (DESIGN.md §11). Detection is
 * bit-identical to offline replay of the same traces; per-tenant
 * aggregates are served on the socket as a /statsz-style text page
 * (`ipds_client --statsz`) and printed on shutdown.
 *
 * Runs until SIGINT/SIGTERM, or until --streams N streams finished.
 *
 * Exit code: 0 on clean shutdown, 1 on usage/compile/bind error.
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/program.h"
#include "serve/server.h"
#include "support/cli.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

// The signal handler can only touch async-signal-safe state;
// requestStop() is a self-pipe write, which qualifies.
serve::Server *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args("ipds_serve",
                        "Multi-tenant IPDS detection service");
    std::string target;
    std::string socketPath = "/tmp/ipds.sock";
    unsigned threads = 0;
    uint64_t streams = 0;
    size_t maxFrame = 0;
    size_t pendingCap = 0;
    bool quiet = false;
    args.positional("prog", &target,
                    "MiniC source file or bundled workload name");
    args.strOpt("socket", &socketPath,
                "unix socket path to serve on");
    args.u64Opt("streams", &streams,
                "exit after this many streams (0 = until signal)");
    args.sizeOpt("max-frame-bytes", &maxFrame,
                 "reject larger frames (0 = wire default)");
    args.sizeOpt("pending-cap", &pendingCap,
                 "per-stream chunks in flight before backpressure");
    args.boolOpt("quiet", &quiet, "do not print /statsz on exit");
    args.threadsOpt(&threads);
    if (!args.parse(argc, argv))
        return args.exitCode();

    std::string source;
    std::string name = target;
    bool found = false;
    for (const auto &wl : allWorkloads()) {
        if (wl.name == target) {
            source = wl.source;
            found = true;
        }
    }
    if (!found) {
        std::ifstream in(target);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", target.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    }

    try {
        CompiledProgram prog = compileAndAnalyze(source, name);

        serve::ServerConfig cfg;
        cfg.socketPath = socketPath;
        cfg.threads = threads;
        if (maxFrame)
            cfg.maxFrameBytes = maxFrame;
        if (pendingCap)
            cfg.pendingChunkCap = pendingCap;

        serve::Server srv(prog, cfg);
        gServer = &srv;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        srv.start();
        std::fprintf(stderr,
                     "[ipds_serve] %s: serving '%s' on %s\n",
                     name.c_str(), name.c_str(), socketPath.c_str());
        srv.waitForStreams(streams ? streams : UINT64_MAX);
        srv.stopAndJoin();
        gServer = nullptr;

        if (!quiet)
            std::fputs(srv.statszText().c_str(), stdout);
        std::fprintf(stderr,
                     "[ipds_serve] done: %llu streams completed, "
                     "%llu failed\n",
                     static_cast<unsigned long long>(
                         srv.streamsCompleted()),
                     static_cast<unsigned long long>(
                         srv.streamsFailed()));
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
