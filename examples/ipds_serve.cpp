/**
 * @file
 * ipds_serve — the multi-tenant detection service daemon.
 *
 * Compiles the protected program once, binds a unix stream socket
 * and/or a TCP listener, and detects recorded trace streams from any
 * number of concurrent ipds_client connections AT INGEST (DESIGN.md
 * §11). Detection is bit-identical to offline replay of the same
 * traces; per-tenant aggregates are served on the socket as a
 * /statsz-style text page (`ipds_client --statsz`) and printed on
 * shutdown.
 *
 * One server can protect several programs at once: --module adds
 * extra programs to the registry, and versioned-hello clients are
 * routed to the module whose content hash they name. Legacy (v1)
 * hello streams go to the first program (the positional one).
 *
 * Runs until SIGINT/SIGTERM, or until --streams N streams finished.
 *
 * Exit code: 0 on clean shutdown, 1 on usage/compile/bind error.
 */

#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>

#include "core/program.h"
#include "replay/format.h"
#include "serve/server.h"
#include "support/cli.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

// The signal handler can only touch async-signal-safe state;
// requestStop() is a self-pipe write, which qualifies.
serve::Server *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->requestStop();
}

// Bundled workload name, or a MiniC source file path.
std::string
loadSource(const std::string &target, bool &ok)
{
    for (const auto &wl : allWorkloads()) {
        if (wl.name == target) {
            ok = true;
            return wl.source;
        }
    }
    std::ifstream in(target);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", target.c_str());
        ok = false;
        return "";
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ok = true;
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args("ipds_serve",
                        "Multi-tenant IPDS detection service");
    std::string target;
    std::string socketPath = "/tmp/ipds.sock";
    std::string tcpSpec;
    std::string modules;
    unsigned threads = 0;
    uint64_t streams = 0;
    size_t maxFrame = 0;
    size_t pendingCap = 0;
    bool quiet = false;
    args.positional("prog", &target,
                    "MiniC source file or bundled workload name");
    args.strOpt("socket", &socketPath,
                "unix socket path to serve on ('' = no unix "
                "listener)");
    args.strOpt("tcp", &tcpSpec,
                "also listen on HOST:PORT (IPv4; port 0 = "
                "ephemeral)");
    args.strOpt("module", &modules,
                "extra programs to register, comma-separated "
                "workload names or source files");
    args.u64Opt("streams", &streams,
                "exit after this many streams (0 = until signal)");
    args.sizeOpt("max-frame-bytes", &maxFrame,
                 "reject larger frames (0 = wire default)");
    args.sizeOpt("pending-cap", &pendingCap,
                 "per-stream chunks in flight before backpressure");
    args.boolOpt("quiet", &quiet, "do not print /statsz on exit");
    args.threadsOpt(&threads);
    if (!args.parse(argc, argv))
        return args.exitCode();

    bool ok = false;
    std::string source = loadSource(target, ok);
    if (!ok)
        return 1;

    try {
        // deque: registerModule() keeps pointers, so addresses must
        // stay stable while extra programs are appended.
        std::deque<CompiledProgram> progs;
        progs.push_back(compileAndAnalyze(source, target));
        std::stringstream mods(modules);
        std::string one;
        while (std::getline(mods, one, ',')) {
            if (one.empty())
                continue;
            std::string extra = loadSource(one, ok);
            if (!ok)
                return 1;
            progs.push_back(compileAndAnalyze(extra, one));
        }

        serve::ServerConfig cfg;
        cfg.socketPath = socketPath;
        if (!tcpSpec.empty()) {
            size_t colon = tcpSpec.rfind(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "--tcp wants HOST:PORT, got %s\n",
                             tcpSpec.c_str());
                return 1;
            }
            cfg.tcpHost = tcpSpec.substr(0, colon);
            cfg.tcpPort = static_cast<uint16_t>(
                std::stoul(tcpSpec.substr(colon + 1)));
        }
        cfg.threads = threads;
        if (maxFrame)
            cfg.maxFrameBytes = maxFrame;
        if (pendingCap)
            cfg.pendingChunkCap = pendingCap;

        serve::Server srv(cfg);
        for (const CompiledProgram &p : progs)
            srv.registerModule(p);
        gServer = &srv;
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);

        srv.start();
        for (const CompiledProgram &p : progs)
            std::fprintf(stderr,
                         "[ipds_serve] module %016llx: %s\n",
                         static_cast<unsigned long long>(
                             replay::moduleContentHash(p.mod)),
                         p.mod.name.c_str());
        if (!socketPath.empty())
            std::fprintf(stderr, "[ipds_serve] listening on %s\n",
                         socketPath.c_str());
        if (!cfg.tcpHost.empty())
            std::fprintf(stderr,
                         "[ipds_serve] listening on %s:%u (tcp)\n",
                         cfg.tcpHost.c_str(), srv.boundTcpPort());
        srv.waitForStreams(streams ? streams : UINT64_MAX);
        srv.stopAndJoin();
        gServer = nullptr;

        if (!quiet)
            std::fputs(srv.statszText().c_str(), stdout);
        std::fprintf(stderr,
                     "[ipds_serve] done: %llu streams completed, "
                     "%llu failed\n",
                     static_cast<unsigned long long>(
                         srv.streamsCompleted()),
                     static_cast<unsigned long long>(
                         srv.streamsFailed()));
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
