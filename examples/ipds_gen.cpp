/**
 * @file
 * ipds_gen: the corpus generator's command-line face.
 *
 * One seed → one synthetic protocol server (MiniC source + benign
 * session script + typed attack recipes), deterministically:
 *
 *   ipds_gen --seed 7                  # summary of one program
 *   ipds_gen --seed 7 --emit DIR       # write source/script/recipes
 *   ipds_gen --seed 7 --diff           # differential oracles, 1 seed
 *   ipds_gen --seed-range 1:100 --diff # ... the whole corpus
 *   ipds_gen --seed-range 1:100 --campaign --json corpus.json
 *
 * `--diff` runs every program through the differential harness
 * (gen/corpus.h): switch vs threaded VM, fast vs reference detector,
 * live capture vs trace replay — exit 1 names the first seed whose
 * implementations disagree. `--campaign` runs the fig7-style
 * attack-recipe campaign over the range and prints the per-kind
 * detection table.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/corpus.h"
#include "gen/gen.h"
#include "support/cli.h"
#include "support/diag.h"

using namespace ipds;

namespace {

/** Parse "A:B" (inclusive). Returns false on malformed input. */
bool
parseRange(const std::string &s, uint64_t *lo, uint64_t *hi)
{
    size_t colon = s.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= s.size())
        return false;
    char *endp = nullptr;
    const std::string a = s.substr(0, colon);
    const std::string b = s.substr(colon + 1);
    if (a[0] == '-' || b[0] == '-')
        return false;
    *lo = std::strtoull(a.c_str(), &endp, 0);
    if (*endp)
        return false;
    *hi = std::strtoull(b.c_str(), &endp, 0);
    return !*endp && *lo <= *hi;
}

bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return !(std::fclose(f) || !ok);
}

/** Write <dir>/gen-<seed>.{minic,inputs,recipes}. */
bool
emitProgram(const gen::GeneratedProgram &gp, const std::string &dir)
{
    const std::string base =
        dir + "/" + gp.workload.name;
    std::string script;
    for (const std::string &line : gp.workload.benignInputs)
        script += line + "\n";
    std::string recipes;
    for (const gen::AttackRecipe &r : gp.recipes)
        recipes += gen::recipeToString(r) + "\n";
    return writeFile(base + ".minic", gp.workload.source) &&
        writeFile(base + ".inputs", script) &&
        writeFile(base + ".recipes", recipes);
}

std::string
campaignJson(const gen::CorpusCampaignResult &res, uint64_t lo,
             uint64_t hi)
{
    std::string j = "{\n";
    j += strprintf("  \"first_seed\": %llu,\n",
                   static_cast<unsigned long long>(lo));
    j += strprintf("  \"last_seed\": %llu,\n",
                   static_cast<unsigned long long>(hi));
    j += strprintf("  \"programs\": %u,\n", res.numPrograms());
    j += strprintf("  \"compiled\": %u,\n", res.numCompiled());
    j += strprintf("  \"false_positives\": %u,\n",
                   res.numFalsePositives());
    j += strprintf("  \"attacks\": %u,\n", res.attacks());
    j += strprintf("  \"cf_changed\": %u,\n", res.numCfChanged());
    j += strprintf("  \"detected\": %u,\n", res.numDetected());
    j += strprintf("  \"pct_detected_of_cf\": %.1f,\n",
                   res.pctDetectedOfCf());
    j += "  \"kinds\": {\n";
    for (size_t k = 0; k < gen::kNumRecipeKinds; k++) {
        auto kind = static_cast<gen::RecipeKind>(k);
        j += strprintf(
            "    \"%s\": {\"attacks\": %u, \"cf_changed\": %u, "
            "\"detected\": %u, \"pct_detected_of_cf\": %.1f}%s\n",
            gen::recipeKindName(kind), res.attacksOf(kind),
            res.cfChangedOf(kind), res.detectedOf(kind),
            res.pctDetectedOfCfOf(kind),
            k + 1 < gen::kNumRecipeKinds ? "," : "");
    }
    j += "  },\n";
    j += strprintf("  \"branches_seen\": %llu,\n",
                   static_cast<unsigned long long>(
                       res.totalBranchesSeen()));
    j += strprintf("  \"vm_steps\": %llu\n",
                   static_cast<unsigned long long>(res.totalSteps()));
    j += "}\n";
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args(
        "ipds_gen",
        "seeded MiniC corpus generator & differential fuzzing "
        "harness");
    uint64_t seed = 1;
    std::string range, emitDir, json;
    bool doDiff = false, doCampaign = false;
    unsigned threads = 1;
    args.seedOpt("seed", &seed, "generate this single seed");
    args.strOpt("seed-range", &range,
                "inclusive seed range A:B (overrides --seed)");
    args.strOpt("emit", &emitDir,
                "write gen-<seed>.{minic,inputs,recipes} under DIR");
    args.boolOpt("diff", &doDiff,
                 "run the differential oracles on every seed");
    args.boolOpt("campaign", &doCampaign,
                 "run the attack-recipe campaign over the range");
    args.threadsOpt(&threads);
    args.jsonOpt(&json);
    if (!args.parse(argc, argv))
        return args.exitCode();

    uint64_t lo = seed, hi = seed;
    if (!range.empty() && !parseRange(range, &lo, &hi)) {
        std::fprintf(stderr,
                     "ipds_gen: --seed-range: bad range '%s' "
                     "(want A:B with A <= B)\n",
                     range.c_str());
        return 1;
    }

    try {
        // Per-seed actions: summary, --emit, --diff.
        uint32_t diffFailures = 0;
        for (uint64_t s = lo; s <= hi; s++) {
            gen::GeneratedProgram gp = gen::generate(s);
            if (!doCampaign)
                std::printf(
                    "%s: %zu source bytes, %u input events, "
                    "%zu recipes, fingerprint %016llx\n",
                    gp.workload.name.c_str(),
                    gp.workload.source.size(), gp.totalInputEvents,
                    gp.recipes.size(),
                    static_cast<unsigned long long>(
                        gen::fingerprint(gp)));
            if (!emitDir.empty() && !emitProgram(gp, emitDir)) {
                std::fprintf(stderr,
                             "ipds_gen: cannot write under %s\n",
                             emitDir.c_str());
                return 1;
            }
            if (doDiff) {
                char tmpl[] = "/tmp/ipds_gen.XXXXXX";
                char *tmp = mkdtemp(tmpl);
                gen::DiffResult dr =
                    gen::diffOne(s, tmp ? tmp : "", {});
                if (tmp) {
                    const std::string cleanup =
                        std::string("rm -rf ") + tmp;
                    if (std::system(cleanup.c_str()) != 0)
                        warn("ipds_gen: could not remove %s", tmp);
                }
                if (!dr.ok) {
                    std::fprintf(stderr, "ipds_gen: DIFF FAIL %s\n",
                                 dr.firstMismatch.c_str());
                    diffFailures++;
                } else {
                    std::printf("  diff ok (%u runs compared)\n",
                                dr.runsCompared);
                }
            }
        }
        if (diffFailures) {
            std::fprintf(stderr,
                         "ipds_gen: %u/%llu seeds diverged\n",
                         diffFailures,
                         static_cast<unsigned long long>(
                             hi - lo + 1));
            return 1;
        }

        if (doCampaign) {
            gen::CorpusCampaignConfig cfg;
            cfg.firstSeed = lo;
            cfg.lastSeed = hi;
            cfg.numThreads = threads;
            gen::CorpusCampaignResult res =
                gen::runCorpusCampaign(cfg);
            std::printf(
                "corpus campaign: %u programs (%u compiled), "
                "%u attacks\n",
                res.numPrograms(), res.numCompiled(), res.attacks());
            std::printf("  false positives: %u (must be 0)\n",
                        res.numFalsePositives());
            std::printf("  %-15s %8s %10s %9s %14s\n", "kind",
                        "attacks", "cf-changed", "detected",
                        "det-of-cf %");
            for (size_t k = 0; k < gen::kNumRecipeKinds; k++) {
                auto kind = static_cast<gen::RecipeKind>(k);
                std::printf("  %-15s %8u %10u %9u %13.1f%%\n",
                            gen::recipeKindName(kind),
                            res.attacksOf(kind),
                            res.cfChangedOf(kind),
                            res.detectedOf(kind),
                            res.pctDetectedOfCfOf(kind));
            }
            std::printf("  %-15s %8u %10u %9u %13.1f%%\n", "all",
                        res.attacks(), res.numCfChanged(),
                        res.numDetected(), res.pctDetectedOfCf());
            if (!json.empty() &&
                !writeFile(json, campaignJson(res, lo, hi))) {
                std::fprintf(stderr,
                             "ipds_gen: cannot write %s\n",
                             json.c_str());
                return 1;
            }
            if (res.numFalsePositives() ||
                res.numCompiled() != res.numPrograms())
                return 1;
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "ipds_gen: %s\n", e.what());
        return 1;
    }
    return 0;
}
