/**
 * @file
 * CLI driver: compile a MiniC program, attach IPDS, and run it — the
 * workflow a downstream user of this library automates. The run is
 * assembled through the ipds::Session facade and its typed plans:
 * `--attack`/`--fault-seed` configure an ExecPlan, `--record` wraps
 * it in a CapturePlan (`--sessions` repeats the session stream into
 * a multi-session trace), `--replay` swaps in a ReplayPlan
 * (`--par-threads`, `--seek-session` and `--seek-chunk` select its
 * parallel and seek modes). --stats prints the session's metrics
 * export (the same JSON the benches publish); --json writes it to a
 * file.
 *
 * Exit code: 0 clean run, 2 IPDS alarm, 1 usage/compile error.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/image.h"
#include "core/program.h"
#include "inject/fault.h"
#include "obs/names.h"
#include "obs/session.h"
#include "support/cli.h"
#include "support/diag.h"
#include "timing/config.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

using namespace ipds;

namespace {

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    cli::ArgParser args(
        "run_protected",
        "Compile a MiniC program, attach IPDS, and run it");
    std::string target;
    std::string inputsCsv;
    std::string attackSpec;
    uint32_t attackAt = 1;
    std::string imagePath;
    bool wantStats = false;
    uint64_t faultSeed = 0;
    std::string recordPath;
    std::string replayPath;
    uint32_t sessions = 1;
    uint32_t parThreads = UINT32_MAX;   // sentinel: flag not given
    uint32_t seekSession = UINT32_MAX;  // sentinel: flag not given
    uint64_t seekChunk = UINT64_MAX;    // sentinel: flag not given
    unsigned threads = 1;
    std::string jsonPath;
    args.positional("prog", &target,
                    "MiniC source file or bundled workload name");
    args.strOpt("inputs", &inputsCsv,
                "session input lines, comma separated");
    args.strOpt("attack", &attackSpec,
                "corrupt entry-function local, as VAR=VALUE");
    args.uintOpt("at", &attackAt,
                 "tamper after the Nth input event (default 1)");
    args.strOpt("image", &imagePath,
                "also write the program image here");
    args.boolOpt("stats", &wantStats,
                 "print session metrics as JSON to stderr");
    args.seedOpt("fault-seed", &faultSeed,
                "run under the fault plan derived from this seed");
    args.strOpt("record", &recordPath,
                "capture the run's event stream into an IPDS trace");
    args.uintOpt("sessions", &sessions,
                 "repeat the session stream N times (default 1)");
    args.strOpt("replay", &replayPath,
                "re-detect a recorded trace instead of executing");
    args.uintOpt("par-threads", &parThreads,
                 "replay in parallel through the trace's chunk index "
                 "on N workers (0 = one per core)");
    args.uintOpt("seek-session", &seekSession,
                 "start --replay at this session, skipping every "
                 "earlier chunk");
    args.u64Opt("seek-chunk", &seekChunk,
                "start --replay at this chunk, resuming from the "
                "nearest detector snapshot");
    args.threadsOpt(&threads);
    args.jsonOpt(&jsonPath);
    if (!args.parse(argc, argv))
        return args.exitCode();

    std::vector<std::string> inputs;
    if (!inputsCsv.empty())
        inputs = splitCommas(inputsCsv);

    std::string attackVar;
    int64_t attackValue = 0;
    if (!attackSpec.empty()) {
        size_t eq = attackSpec.find('=');
        if (eq == std::string::npos) {
            std::fprintf(stderr,
                         "run_protected: --attack wants VAR=VALUE\n");
            return 1;
        }
        attackVar = attackSpec.substr(0, eq);
        attackValue =
            std::strtoll(attackSpec.c_str() + eq + 1, nullptr, 10);
    }

    if (!recordPath.empty() && !replayPath.empty()) {
        std::fprintf(stderr,
                     "--record and --replay are mutually exclusive\n");
        return 1;
    }
    if (!replayPath.empty() &&
        (faultSeed != 0 || !attackVar.empty())) {
        // Faults and attacks are live-run concepts: recorded into a
        // trace by --record, reproduced from it by --replay.
        std::fprintf(stderr,
                     "--replay excludes --fault-seed and --attack "
                     "(record them with --record instead)\n");
        return 1;
    }
    if (replayPath.empty() &&
        (parThreads != UINT32_MAX || seekSession != UINT32_MAX ||
         seekChunk != UINT64_MAX)) {
        std::fprintf(stderr,
                     "--par-threads/--seek-session/--seek-chunk "
                     "require --replay\n");
        return 1;
    }

    // Resolve the target: bundled workload or file on disk.
    std::string source;
    std::string name = target;
    bool found = false;
    for (const auto &wl : allWorkloads()) {
        if (wl.name == target) {
            source = wl.source;
            if (inputs.empty())
                inputs = wl.benignInputs;
            found = true;
        }
    }
    if (!found) {
        std::ifstream in(target);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", target.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    }

    try {
        CompiledProgram prog = compileAndAnalyze(source, name);
        std::fprintf(stderr,
                     "[ipds] %u branches, %u checked, tables %llu "
                     "bits, compiled in %.2f ms\n",
                     prog.stats.numBranches, prog.stats.numCheckable,
                     static_cast<unsigned long long>(
                         prog.stats.totalBsvBits +
                         prog.stats.totalBcvBits +
                         prog.stats.totalBatBits),
                     prog.stats.compileSeconds * 1000.0);

        if (!imagePath.empty()) {
            auto blob = buildImage(prog);
            std::ofstream out(imagePath, std::ios::binary);
            out.write(reinterpret_cast<const char *>(blob.data()),
                      static_cast<std::streamsize>(blob.size()));
            std::fprintf(stderr, "[ipds] wrote %zu-byte image to %s\n",
                         blob.size(), imagePath.c_str());
        }

        Session::Builder builder = Session::builder();
        builder.program(prog).inputs(inputs).threads(threads);
        if (sessions > 1)
            builder.sessions(sessions);

        ExecPlan exec;
        if (!attackVar.empty()) {
            TamperSpec spec;
            spec.randomStackTarget = false;
            spec.afterInputEvent = attackAt;
            spec.addr = Vm(prog.mod).entryLocalAddr(attackVar);
            uint64_t v = static_cast<uint64_t>(attackValue);
            spec.bytes.resize(8);
            for (int b = 0; b < 8; b++)
                spec.bytes[b] = static_cast<uint8_t>(v >> (8 * b));
            exec.tamper(spec);
            std::fprintf(stderr,
                         "[ipds] armed attack: %s=%lld after input "
                         "#%u\n", attackVar.c_str(),
                         static_cast<long long>(attackValue),
                         attackAt);
        }

        if (faultSeed != 0) {
            FaultPlan plan = FaultPlan::fromSeed(faultSeed);
            builder.timing(table1Config());
            exec.faults(plan);
            std::fprintf(stderr,
                         "[ipds] fault plan (seed %llu): mem every "
                         "~%u insts, bsv flip every %u branches, "
                         "ring drop/dup %u/%u permille, ctx switch "
                         "every %u branches%s\n",
                         static_cast<unsigned long long>(faultSeed),
                         plan.memEveryInsts, plan.bsvEveryBranches,
                         plan.ringDropPermille, plan.ringDupPermille,
                         plan.ctxEveryBranches,
                         plan.spillPressure ? ", spill pressure"
                                            : "");
        }

        if (!recordPath.empty()) {
            builder.plan(CapturePlan(recordPath).exec(exec));
            std::fprintf(stderr, "[ipds] recording trace to %s\n",
                         recordPath.c_str());
        } else if (!replayPath.empty()) {
            ReplayPlan plan(replayPath);
            if (parThreads != UINT32_MAX)
                plan.parallel(parThreads);
            if (seekSession != UINT32_MAX)
                plan.seekSession(seekSession);
            if (seekChunk != UINT64_MAX)
                plan.seekChunk(seekChunk);
            builder.plan(plan);
        } else {
            builder.plan(exec);
        }

        Session session = builder.build();
        session.run();
        std::fputs(session.result().output.c_str(), stdout);

        if (!replayPath.empty()) {
            const obs::MetricsRegistry &m = session.metrics();
            namespace n = obs::names;
            std::fprintf(
                stderr,
                "[ipds] replayed %llu sessions (%llu events, %llu "
                "bytes) from %s — no VM in the loop\n",
                static_cast<unsigned long long>(
                    m.value(m.find(n::kReplaySessions))),
                static_cast<unsigned long long>(
                    m.value(m.find(n::kReplayEvents))),
                static_cast<unsigned long long>(
                    m.value(m.find(n::kReplayBytes))),
                replayPath.c_str());
        }

        if (faultSeed != 0) {
            const FaultStats &fs = session.faultStats();
            std::fprintf(stderr,
                         "[ipds] faults injected: %llu mem tampers, "
                         "%llu bsv flips, %llu ctx switches, %llu "
                         "ring drops, %llu ring dups\n",
                         static_cast<unsigned long long>(
                             fs.memTampers),
                         static_cast<unsigned long long>(fs.bsvFlips),
                         static_cast<unsigned long long>(
                             fs.ctxSwitches),
                         static_cast<unsigned long long>(
                             fs.ringDrops),
                         static_cast<unsigned long long>(
                             fs.ringDups));
        }

        if (wantStats)
            std::fprintf(stderr, "%s\n",
                         session.metricsJson().c_str());
        if (!jsonPath.empty()) {
            std::ofstream out(jsonPath);
            out << session.metricsJson() << "\n";
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             jsonPath.c_str());
                return 1;
            }
        }

        if (session.alarmed()) {
            const Alarm &a = session.alarms().front();
            std::fprintf(stderr,
                         "[ipds] *** INFEASIBLE PATH at pc=0x%llx in "
                         "%s: expected %s, went %s ***\n",
                         static_cast<unsigned long long>(a.pc),
                         prog.mod.functions[a.func].name.c_str(),
                         a.expected == BsvState::Taken ? "taken"
                                                       : "not-taken",
                         a.actualTaken ? "taken" : "not-taken");
            return 2;
        }
        std::fprintf(stderr, "[ipds] clean run (exit %lld)\n",
                     static_cast<long long>(
                         session.result().exitCode));
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
