/**
 * @file
 * Server monitoring demo: runs one of the bundled server workloads
 * (default: httpd) under the full stack — functional VM, IPDS
 * detector, and the Table 1 superscalar timing model — assembled via
 * the ipds::Session facade, then launches a small attack campaign and
 * prints an operations-style report.
 *
 * Usage:  ./build/examples/server_monitor [workload-name] [attacks]
 */

#include <cstdio>
#include <cstdlib>

#include "attack/campaign.h"
#include "core/program.h"
#include "obs/session.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string name = argc > 1 ? argv[1] : "httpd";
    uint32_t attacks =
        argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 50;

    const Workload &wl = workloadByName(name);
    CompiledProgram prog = compileAndAnalyze(wl.source, wl.name);

    std::printf("=== %s (vulnerability class: %s) ===\n\n",
                wl.name.c_str(), wl.vulnerability.c_str());
    std::printf("[static] functions %u | branches %u | checked %u | "
                "tables %llu bits total\n",
                prog.stats.numFunctions, prog.stats.numBranches,
                prog.stats.numCheckable,
                static_cast<unsigned long long>(
                    prog.stats.totalBsvBits +
                    prog.stats.totalBcvBits +
                    prog.stats.totalBatBits));

    // --- one benign session under the timing model -------------------
    {
        Session s = Session::builder()
                        .program(prog)
                        .inputs(wl.benignInputs)
                        .timing(table1Config())
                        .build();
        s.run();
        const TimingStats &st = s.timingStats();
        std::printf("[timing] %llu insts in %llu cycles (IPC %.2f) | "
                    "%llu checks, avg verdict %.1f cyc | "
                    "%llu IPDS stall cycles\n",
                    static_cast<unsigned long long>(st.instructions),
                    static_cast<unsigned long long>(st.cycles),
                    st.ipc(),
                    static_cast<unsigned long long>(
                        st.engine.checkRequests),
                    st.engine.avgCheckLatency(),
                    static_cast<unsigned long long>(
                        st.ipdsStallCycles));
        std::printf("[benign] exit=%d, alarms=%zu (must be 0)\n\n",
                    static_cast<int>(s.result().exit),
                    s.alarms().size());
    }

    // --- attack campaign ------------------------------------------------
    CampaignConfig cc;
    cc.numAttacks = attacks;
    CampaignResult res = runCampaign(prog, wl.benignInputs, cc);
    std::printf("[campaign] %u attacks | %.1f%% changed control flow "
                "| %.1f%% detected | %.1f%% of CF-changing detected | "
                "false positives: %s\n\n",
                res.attacks(), res.pctCfChanged(), res.pctDetected(),
                res.pctDetectedOfCf(),
                res.falsePositive ? "YES (bug!)" : "none");

    // A few sample incidents.
    std::printf("sample incidents:\n");
    int shown = 0;
    for (const auto &o : res.outcomes) {
        if (!o.detected || shown >= 5)
            continue;
        std::printf("  tampered %-18s (%zu bytes) -> detected at "
                    "dynamic branch #%llu\n",
                    o.tamper.objectName.c_str(),
                    o.tamper.newBytes.size(),
                    static_cast<unsigned long long>(
                        o.detectionBranchIndex));
        shown++;
    }
    if (shown == 0)
        std::printf("  (none detected in this small campaign)\n");
    return 0;
}
