/**
 * @file
 * Quickstart: the whole IPDS pipeline in one page.
 *
 *   1. compile a MiniC program (the compiler derives branch
 *      correlations and emits BSV/BCV/BAT tables),
 *   2. run it benignly under the runtime detector (no alarm, ever),
 *   3. corrupt one memory cell mid-run and watch the infeasible path
 *      trip the detector.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/program.h"
#include "ipds/detector.h"
#include "vm/vm.h"

using namespace ipds;

// A miniature privilege check: `role` is decided once, then consulted
// on every request. Tampering `role` between requests creates a path
// the compiler knows is infeasible.
static const char *kProgram = R"(
void main() {
    int role;
    int req;

    role = 0;
    if (input_int() == 42) {
        role = 1;
    }

    req = 0;
    while (req < 3) {
        if (role == 1) {
            print_str("privileged request\n");
        } else {
            print_str("normal request\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

int
main()
{
    // -- 1. compile + analyze -----------------------------------------
    CompiledProgram prog = compileAndAnalyze(kProgram, "quickstart");
    std::printf("compiled: %u branches, %u checkable, tables "
                "BSV/BCV/BAT = %llu/%llu/%llu bits\n\n",
                prog.stats.numBranches, prog.stats.numCheckable,
                static_cast<unsigned long long>(
                    prog.stats.totalBsvBits),
                static_cast<unsigned long long>(
                    prog.stats.totalBcvBits),
                static_cast<unsigned long long>(
                    prog.stats.totalBatBits));

    // -- 2. benign run --------------------------------------------------
    {
        Vm vm(prog.mod);
        vm.setInputs({"7", "x", "x", "x"});
        Detector det(prog);
        vm.addObserver(&det);
        RunResult r = vm.run();
        std::printf("benign run:\n%s", r.output.c_str());
        std::printf("=> %s (checks: %llu)\n\n",
                    det.alarmed() ? "ALARM (bug!)" : "no alarm",
                    static_cast<unsigned long long>(
                        det.stats().checksPerformed));
    }

    // -- 3. attacked run -------------------------------------------------
    {
        Vm vm(prog.mod);
        vm.setInputs({"7", "x", "x", "x"});
        Detector det(prog);
        vm.addObserver(&det);

        // Flip `role` to 1 after the second input is consumed — the
        // kind of corruption a non-control-data attack performs.
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 2;
        spec.addr = vm.entryLocalAddr("role");
        spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};
        vm.setTamper(spec);

        RunResult r = vm.run();
        std::printf("attacked run (corrupted role=1 @ input #2):\n%s",
                    r.output.c_str());
        if (det.alarmed()) {
            const Alarm &a = det.alarms().front();
            std::printf("=> ALARM: infeasible path at pc=0x%llx "
                        "(expected %s, went %s)\n",
                        static_cast<unsigned long long>(a.pc),
                        a.expected == BsvState::Taken ? "taken"
                                                      : "not-taken",
                        a.actualTaken ? "taken" : "not-taken");
        } else {
            std::printf("=> no alarm (this tamper did not change "
                        "control flow; try another seed)\n");
        }
    }
    return 0;
}
