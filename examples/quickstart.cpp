/**
 * @file
 * Quickstart: the whole IPDS pipeline in one page.
 *
 *   1. compile a MiniC program (the compiler derives branch
 *      correlations and emits BSV/BCV/BAT tables),
 *   2. run it benignly under the runtime detector via the
 *      ipds::Session facade (no alarm, ever),
 *   3. corrupt one memory cell mid-run and watch the infeasible path
 *      trip the detector.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/program.h"
#include "obs/session.h"
#include "vm/vm.h"

using namespace ipds;

// A miniature privilege check: `role` is decided once, then consulted
// on every request. Tampering `role` between requests creates a path
// the compiler knows is infeasible.
static const char *kProgram = R"(
void main() {
    int role;
    int req;

    role = 0;
    if (input_int() == 42) {
        role = 1;
    }

    req = 0;
    while (req < 3) {
        if (role == 1) {
            print_str("privileged request\n");
        } else {
            print_str("normal request\n");
        }
        input_int();
        req = req + 1;
    }
}
)";

int
main()
{
    // -- 1. compile + analyze -----------------------------------------
    CompiledProgram prog = compileAndAnalyze(kProgram, "quickstart");
    std::printf("compiled: %u branches, %u checkable, tables "
                "BSV/BCV/BAT = %llu/%llu/%llu bits\n\n",
                prog.stats.numBranches, prog.stats.numCheckable,
                static_cast<unsigned long long>(
                    prog.stats.totalBsvBits),
                static_cast<unsigned long long>(
                    prog.stats.totalBcvBits),
                static_cast<unsigned long long>(
                    prog.stats.totalBatBits));

    // -- 2. benign run --------------------------------------------------
    {
        Session s = Session::builder()
                        .program(prog)
                        .inputs({"7", "x", "x", "x"})
                        .build();
        s.run();
        std::printf("benign run:\n%s", s.result().output.c_str());
        std::printf("=> %s (checks: %llu)\n\n",
                    s.alarmed() ? "ALARM (bug!)" : "no alarm",
                    static_cast<unsigned long long>(
                        s.detectorStats().checksEnqueued));
    }

    // -- 3. attacked run -------------------------------------------------
    {
        // Flip `role` to 1 after the second input is consumed — the
        // kind of corruption a non-control-data attack performs. A
        // scratch Vm resolves the variable's stack address.
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = 2;
        spec.addr = Vm(prog.mod).entryLocalAddr("role");
        spec.bytes = {1, 0, 0, 0, 0, 0, 0, 0};

        Session s = Session::builder()
                        .program(prog)
                        .inputs({"7", "x", "x", "x"})
                        .plan(ExecPlan().tamper(spec))
                        .build();
        s.run();
        std::printf("attacked run (corrupted role=1 @ input #2):\n%s",
                    s.result().output.c_str());
        if (s.alarmed()) {
            const Alarm &a = s.alarms().front();
            std::printf("=> ALARM: infeasible path at pc=0x%llx "
                        "(expected %s, went %s)\n",
                        static_cast<unsigned long long>(a.pc),
                        a.expected == BsvState::Taken ? "taken"
                                                      : "not-taken",
                        a.actualTaken ? "taken" : "not-taken");
        } else {
            std::printf("=> no alarm (this tamper did not change "
                        "control flow; try another seed)\n");
        }
    }
    return 0;
}
