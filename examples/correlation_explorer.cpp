/**
 * @file
 * Correlation explorer: compiler-side tooling that prints, for a MiniC
 * source file or a bundled workload, the full static analysis — every
 * branch's classification (range / pure-call / unknown), its trigger
 * intervals, the BAT action lists the runtime will execute, packed
 * table sizes and the chosen perfect-hash parameters.
 *
 * Usage:
 *   ./build/examples/correlation_explorer <workload-name>
 *   ./build/examples/correlation_explorer <path/to/file.minic>
 *   ./build/examples/correlation_explorer --ir <...>   (also dump IR)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/program.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main(int argc, char **argv)
{
    bool dumpIr = false;
    std::string target = "telnetd";
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--ir") == 0)
            dumpIr = true;
        else
            target = argv[i];
    }

    std::string source;
    std::string name;
    bool isWorkload = false;
    for (const auto &wl : allWorkloads()) {
        if (wl.name == target) {
            source = wl.source;
            name = wl.name;
            isWorkload = true;
            break;
        }
    }
    if (!isWorkload) {
        std::ifstream in(target);
        if (!in) {
            std::fprintf(stderr,
                         "no such workload or file: %s\n"
                         "workloads:", target.c_str());
            for (const auto &wl : allWorkloads())
                std::fprintf(stderr, " %s", wl.name.c_str());
            std::fprintf(stderr, "\n");
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        source = ss.str();
        name = target;
    }

    try {
        CompiledProgram prog = compileAndAnalyze(source, name);
        if (dumpIr)
            std::printf("%s\n", prog.mod.print().c_str());
        std::printf("%s", prog.report().c_str());

        // Packed-image summary (what gets attached to the binary).
        std::printf("\npacked table images:\n");
        for (const auto &cf : prog.funcs) {
            auto image = cf.tables.pack();
            std::printf("  %-16s %5zu bytes (BSV %llu + BCV %llu + "
                        "BAT %llu bits)\n",
                        prog.mod.functions[cf.corr.func].name.c_str(),
                        image.size(),
                        static_cast<unsigned long long>(
                            cf.tables.bsvBits),
                        static_cast<unsigned long long>(
                            cf.tables.bcvBits),
                        static_cast<unsigned long long>(
                            cf.tables.batBits));
        }
        std::printf("\ncompile time: %.2f ms\n",
                    prog.stats.compileSeconds * 1000.0);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "compile error: %s\n", e.what());
        return 1;
    }
    return 0;
}
