/**
 * @file
 * ipds_client — stream a recorded IPDS trace to a running ipds_serve
 * and print the server's detection report.
 *
 * The trace file (recorded with `run_protected --record` or a
 * CapturePlan) is framed and sent as one stream; the server detects
 * at ingest and answers with the stream report: sessions, alarms and
 * the alarm digest, plus the replay-shaped metric lines — diffable
 * against `run_protected --replay` of the same file. With --statsz
 * the server's current /statsz page is fetched instead of (or after)
 * streaming.
 *
 * Exit code: 0 clean stream, 2 the server raised alarms, 1 on
 * usage/transport error or a server-side reject.
 */

#include <cstdio>

#include "serve/client.h"
#include "support/cli.h"
#include "support/diag.h"

using namespace ipds;

int
main(int argc, char **argv)
{
    cli::ArgParser args("ipds_client",
                        "Stream a recorded trace to ipds_serve");
    std::string trace;
    std::string socketPath = "/tmp/ipds.sock";
    std::string tenant = "default";
    size_t frameBytes = 0;
    bool statszOnly = false;
    bool wantStatsz = false;
    args.positional("trace", &trace,
                    "IPDS trace file to stream ('-' with --statsz-only"
                    " to skip streaming)");
    args.strOpt("socket", &socketPath, "ipds_serve socket path");
    args.strOpt("tenant", &tenant,
                "tenant name this stream accounts under");
    args.sizeOpt("frame-bytes", &frameBytes,
                 "transport frame payload size (0 = 64KiB)");
    args.boolOpt("statsz", &wantStatsz,
                 "also fetch the server /statsz page after the "
                 "stream");
    args.boolOpt("statsz-only", &statszOnly,
                 "only fetch /statsz, do not stream");
    if (!args.parse(argc, argv))
        return args.exitCode();

    try {
        serve::Client cl;
        cl.connect(socketPath);
        if (statszOnly) {
            std::fputs(cl.statsz().c_str(), stdout);
            return 0;
        }
        cl.hello(tenant);
        cl.sendTraceFile(trace, frameBytes);
        serve::StreamResult r = cl.end();
        std::fputs(r.text.c_str(), stdout);
        if (!r.ok) {
            std::fprintf(stderr, "[ipds_client] stream rejected\n");
            return 1;
        }
        if (wantStatsz)
            std::fputs(cl.statsz().c_str(), stdout);
        if (r.alarms) {
            std::fprintf(stderr,
                         "[ipds_client] *** %llu INFEASIBLE-PATH "
                         "alarm(s) raised at ingest ***\n",
                         static_cast<unsigned long long>(r.alarms));
            return 2;
        }
        std::fprintf(stderr,
                     "[ipds_client] clean stream (%llu sessions)\n",
                     static_cast<unsigned long long>(r.sessions));
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
