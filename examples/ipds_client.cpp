/**
 * @file
 * ipds_client — stream a recorded IPDS trace to a running ipds_serve
 * and print the server's detection report.
 *
 * The trace file (recorded with `run_protected --record` or a
 * CapturePlan) is framed and sent as one stream; the server detects
 * at ingest and answers with the stream report: sessions, alarms and
 * the alarm digest, plus the replay-shaped metric lines — diffable
 * against `run_protected --replay` of the same file. With --statsz
 * the server's current /statsz page is fetched instead of (or after)
 * streaming.
 *
 * By default the stream opens with the versioned hello: the module
 * hash is read from the trace file header (or computed from a
 * --module source), routing the stream to the matching program on a
 * multi-program server, and reconnect/resume is armed — a dropped
 * connection redials and resumes from the server's last ack instead
 * of failing. --legacy-hello forces the v1 handshake (first
 * registered module, fail on drop).
 *
 * Exit code: 0 clean stream, 2 the server raised alarms, 1 on
 * usage/transport error or a server-side reject.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/program.h"
#include "replay/format.h"
#include "replay/reader.h"
#include "serve/client.h"
#include "support/cli.h"
#include "support/diag.h"
#include "workloads/workloads.h"

using namespace ipds;

int
main(int argc, char **argv)
{
    cli::ArgParser args("ipds_client",
                        "Stream a recorded trace to ipds_serve");
    std::string trace;
    std::string socketPath = "/tmp/ipds.sock";
    std::string tcpSpec;
    std::string tenant = "default";
    std::string moduleSrc;
    size_t frameBytes = 0;
    bool statszOnly = false;
    bool wantStatsz = false;
    bool legacyHello = false;
    args.positional("trace", &trace,
                    "IPDS trace file to stream ('-' with --statsz-only"
                    " to skip streaming)");
    args.strOpt("socket", &socketPath, "ipds_serve socket path");
    args.strOpt("tcp", &tcpSpec,
                "connect to HOST:PORT instead of the unix socket");
    args.strOpt("tenant", &tenant,
                "tenant name this stream accounts under");
    args.strOpt("module", &moduleSrc,
                "route by this workload/source's content hash "
                "instead of the trace header's");
    args.sizeOpt("frame-bytes", &frameBytes,
                 "transport frame payload size (0 = 64KiB)");
    args.boolOpt("legacy-hello", &legacyHello,
                 "use the v1 hello (no routing, no resume)");
    args.boolOpt("statsz", &wantStatsz,
                 "also fetch the server /statsz page after the "
                 "stream");
    args.boolOpt("statsz-only", &statszOnly,
                 "only fetch /statsz, do not stream");
    if (!args.parse(argc, argv))
        return args.exitCode();

    try {
        serve::Client cl;
        if (!tcpSpec.empty()) {
            size_t colon = tcpSpec.rfind(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr,
                             "--tcp wants HOST:PORT, got %s\n",
                             tcpSpec.c_str());
                return 1;
            }
            cl.connectTcp(tcpSpec.substr(0, colon),
                          static_cast<uint16_t>(std::stoul(
                              tcpSpec.substr(colon + 1))));
        } else {
            cl.connect(socketPath);
        }
        if (statszOnly) {
            std::fputs(cl.statsz().c_str(), stdout);
            return 0;
        }

        if (legacyHello) {
            cl.hello(tenant);
        } else {
            uint64_t hash = 0;
            if (!moduleSrc.empty()) {
                std::string source;
                bool found = false;
                for (const auto &wl : allWorkloads()) {
                    if (wl.name == moduleSrc) {
                        source = wl.source;
                        found = true;
                    }
                }
                if (!found) {
                    std::ifstream in(moduleSrc);
                    if (!in) {
                        std::fprintf(stderr, "cannot open %s\n",
                                     moduleSrc.c_str());
                        return 1;
                    }
                    std::ostringstream ss;
                    ss << in.rdbuf();
                    source = ss.str();
                }
                CompiledProgram prog =
                    compileAndAnalyze(source, moduleSrc);
                hash = replay::moduleContentHash(prog.mod);
            } else {
                // The trace header records which program produced
                // it; the server routes the stream to that module.
                hash = replay::readTraceHeader(trace).moduleHash;
            }
            cl.helloV2(tenant, hash);
        }
        cl.sendTraceFile(trace, frameBytes);
        serve::StreamResult r = cl.end();
        std::fputs(r.text.c_str(), stdout);
        if (cl.reconnects())
            std::fprintf(stderr,
                         "[ipds_client] resumed over %llu "
                         "reconnect(s)\n",
                         static_cast<unsigned long long>(
                             cl.reconnects()));
        if (!r.ok) {
            std::fprintf(stderr, "[ipds_client] stream rejected%s%s\n",
                         r.errorCode.empty() ? "" : ": ",
                         r.errorCode.c_str());
            return 1;
        }
        if (wantStatsz)
            std::fputs(cl.statsz().c_str(), stdout);
        if (r.alarms) {
            std::fprintf(stderr,
                         "[ipds_client] *** %llu INFEASIBLE-PATH "
                         "alarm(s) raised at ingest ***\n",
                         static_cast<unsigned long long>(r.alarms));
            return 2;
        }
        std::fprintf(stderr,
                     "[ipds_client] clean stream (%llu sessions)\n",
                     static_cast<unsigned long long>(r.sessions));
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
