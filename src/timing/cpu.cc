#include "timing/cpu.h"

namespace ipds {

CpuModel::CpuModel(const TimingConfig &c)
    : cfg(c), l1i(cfg.l1i), l1d(cfg.l1d), l2(cfg.l2),
      // bpred/engine keep references: bind them to our own copy, not
      // to the caller's (possibly temporary) argument.
      bpred(cfg), engine(cfg), tlb(cfg.tlbEntries, ~0ULL),
      reqRing(cfg.requestRingCapacity)
{
    // Ring overflow backpressure: a producer that outruns the
    // commit-point drains hands the oldest chunk straight to the
    // engine at the current cycle instead of aborting; any stall it
    // causes is charged like a queue-full stall.
    reqRing.setOverflowSink([this](const IpdsRequest &rq) {
        ipdsStalls += engine.enqueue(rq, curCycle());
    });
}

std::function<void(const IpdsRequest &)>
CpuModel::requestSink()
{
    return [this](const IpdsRequest &rq) { reqRing.push(rq); };
}

void
CpuModel::setTracer(obs::Tracer *t)
{
    trc = t;
    engine.setTracer(t);
}

uint64_t
CpuModel::srcReady(Vreg v) const
{
    if (v == kNoVreg)
        return 0;
    auto it = readyAt.find((uint64_t(frameDepth) << 32) | v);
    return it == readyAt.end() ? 0 : it->second;
}

void
CpuModel::setReady(Vreg v, uint64_t tick)
{
    if (v != kNoVreg)
        readyAt[(uint64_t(frameDepth) << 32) | v] = tick;
}

uint64_t
CpuModel::tlbAccess(uint64_t addr)
{
    uint64_t page = addr / cfg.pageBytes;
    uint64_t slot = page % cfg.tlbEntries;
    if (tlb[slot] == page)
        return 0;
    tlb[slot] = page;
    tlbMissCount++;
    return cfg.tlbMissCycles;
}

uint64_t
CpuModel::loadLatency(uint64_t addr)
{
    uint64_t lat = cfg.l1d.latency + tlbAccess(addr);
    if (l1d.access(addr))
        return lat;
    lat += cfg.l2.latency;
    if (l2.access(addr))
        return lat;
    uint32_t chunks =
        cfg.l1d.blockBytes / 8 > 0 ? cfg.l1d.blockBytes / 8 - 1 : 0;
    return lat + cfg.memFirstChunk + cfg.memInterChunk * chunks;
}

void
CpuModel::onFunctionEnter(FuncId)
{
    frameDepth++;
}

void
CpuModel::onFunctionExit(FuncId)
{
    if (frameDepth > 0)
        frameDepth--;
}

void
CpuModel::onBranch(FuncId, uint64_t pc, bool taken)
{
    // Remember the branch; penalties are charged at its onInst commit
    // so that detector requests enqueue at the right cycle.
    branchPending = true;
    pendingPc = pc;
    pendingTaken = taken;
}

namespace {

/** Synthetic library-code burst size for a builtin call. */
uint32_t
builtinBurst(const TimingConfig &cfg, Builtin b)
{
    switch (b) {
      case Builtin::GetInput:
      case Builtin::GetInputN:
      case Builtin::InputInt:
        return cfg.inputCallInsts;
      case Builtin::PrintStr:
      case Builtin::PrintInt:
        return cfg.outputCallInsts;
      case Builtin::Exit:
      case Builtin::Abort:
        return 0;
      default:
        return cfg.stringCallInsts;
    }
}

} // namespace

void
CpuModel::onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
                 bool /* is_load: direction is implied by the op */)
{
    instCore(in, mem_addr, mem_size, kDrainAllSeq);
}

void
CpuModel::onBatch(const EventBatch &b)
{
    for (uint32_t i = 0; i < b.n; i++) {
        const VmInstEvent &e = b.ev[i];
        if (e.isBranch) {
            branchPending = true;
            pendingPc = e.inst->pc;
            pendingTaken = e.taken;
        }
        instCore(*e.inst, e.memAddr, e.memSize, i);
    }
}

void
CpuModel::instCore(const Inst &in, uint64_t mem_addr,
                   uint32_t mem_size, uint32_t drain_seq)
{
    const uint32_t W = cfg.commitWidth;
    nInst++;

    // ---- dispatch ---------------------------------------------------
    uint64_t dp = dispatchTick + W / cfg.issueWidth;
    dp = std::max(dp, redirectTick);
    // RUU occupancy: dispatch at most ruuSize ahead of commit.
    if (ruuRing.size() >= cfg.ruuSize) {
        dp = std::max(dp, ruuRing.front());
        ruuRing.pop_front();
    }
    // LSQ occupancy: at most lsqSize memory operations in flight.
    if (mem_size != 0 && lsqRing.size() >= cfg.lsqSize) {
        dp = std::max(dp, lsqRing.front());
        lsqRing.pop_front();
    }
    // Fetch queue: the front end buffers at most fetchQueue
    // instructions ahead of dispatch (a long stall drains it; the
    // model charges the refill as a dispatch floor).
    if (fetchRing.size() >= cfg.fetchQueue) {
        dp = std::max(dp, fetchRing.front() + W);
        fetchRing.pop_front();
    }
    fetchRing.push_back(dp);
    // Instruction fetch: new block -> L1I probe; miss stalls dispatch.
    uint64_t block = in.pc / cfg.l1i.blockBytes;
    if (block != lastFetchBlock) {
        lastFetchBlock = block;
        uint64_t pen = tlbAccess(in.pc);
        if (!l1i.access(in.pc)) {
            pen += cfg.l2.latency;
            if (!l2.access(in.pc))
                pen += cfg.memFirstChunk;
        }
        dp += pen * W;
    }
    dispatchTick = dp;

    // ---- issue & execute --------------------------------------------
    uint64_t issue = std::max({dp, srcReady(in.srcA),
                               srcReady(in.srcB)});
    for (Vreg a : in.args)
        issue = std::max(issue, srcReady(a));

    uint64_t latCycles = 1;
    switch (in.op) {
      case Op::Load:
      case Op::LoadInd:
        latCycles = loadLatency(mem_addr);
        break;
      case Op::Store:
      case Op::StoreInd:
        // Stores retire through the store buffer: update tag state
        // but do not stall the dependence chain.
        if (mem_size != 0) {
            tlbAccess(mem_addr);
            if (!l1d.access(mem_addr))
                l2.access(mem_addr);
        }
        latCycles = 1;
        break;
      case Op::Bin:
        if (in.bin == BinOp::Div || in.bin == BinOp::Rem)
            latCycles = 20;
        else if (in.bin == BinOp::Mul)
            latCycles = 3;
        break;
      case Op::Call:
        // Builtins stand for untraced library code.
        if (in.builtin != Builtin::None)
            latCycles = cfg.builtinInstCost;
        break;
      default:
        break;
    }
    uint64_t complete = issue + latCycles * W;
    setReady(in.dst, complete);

    // ---- commit (in order, width-limited) ----------------------------
    uint64_t commit = std::max(lastCommitTick + 1, complete);

    // Branch resolution: mispredicts redirect the front end.
    if (in.op == Op::Br && branchPending) {
        branchPending = false;
        nBranch++;
        if (!bpred.update(pendingPc, pendingTaken))
            redirectTick = std::max(redirectTick,
                                    complete +
                                        cfg.mispredictPenalty * W);
    }

    // IPDS requests triggered by this instruction enqueue at commit;
    // the detector wrote them into the ring inline, we drain in batch.
    if (cfg.ipdsEnabled && !reqRing.empty()) {
        uint64_t now = commit / W;
        bool stalled = false;
        reqRing.drainThrough(drain_seq, [&](const IpdsRequest &rq) {
            uint64_t stall = engine.enqueue(rq, now);
            if (stall) {
                commit += stall * W;
                now = commit / W;
                ipdsStalls += stall;
                stalled = true;
            }
            if (trc)
                trc->record(obs::kCatQueue,
                            obs::TraceKind::RequestDequeue, rq.func,
                            rq.pc, static_cast<uint64_t>(rq.kind),
                            static_cast<uint32_t>(stall));
        });
        // A full request queue backs the whole pipeline up: commit
        // waits, the window fills, dispatch stops.
        if (stalled)
            dispatchTick = std::max(dispatchTick, commit);
    } else if (!cfg.ipdsEnabled) {
        reqRing.clear();
    }

    // Library/kernel code behind a builtin call: pace dispatch and
    // commit through the synthetic burst. Its branches are unprotected
    // (§5.3) and generate no IPDS requests.
    if (in.op == Op::Call && in.builtin != Builtin::None) {
        uint64_t burst = builtinBurst(cfg, in.builtin);
        commit += burst;
        dispatchTick = std::max(dispatchTick, commit);
        nInst += burst;
    }

    lastCommitTick = commit;
    ruuRing.push_back(commit);
    if (ruuRing.size() > cfg.ruuSize)
        ruuRing.pop_front();
    if (mem_size != 0) {
        lsqRing.push_back(commit);
        if (lsqRing.size() > cfg.lsqSize)
            lsqRing.pop_front();
    }
}

uint64_t
CpuModel::contextSwitch(bool lazy)
{
    uint64_t cycles = engine.contextSwitch(lazy);
    // The whole pipeline waits for the synchronous swap: the switch
    // happens between instructions, so commit and dispatch both move.
    lastCommitTick += cycles * cfg.commitWidth;
    dispatchTick = std::max(dispatchTick, lastCommitTick);
    // The incoming process starts with cold structures of its own;
    // returning to this one refetches its footprint naturally through
    // the (shared, possibly-evicted) cache models.
    lastFetchBlock = ~0ULL;
    return cycles;
}

TimingStats
CpuModel::stats() const
{
    TimingStats s;
    s.instructions = nInst;
    s.cycles = curCycle();
    s.branches = nBranch;
    s.mispredicts = bpred.mispredicts();
    s.l1iMisses = l1i.misses();
    s.l1dMisses = l1d.misses();
    s.l2Misses = l2.misses();
    s.tlbMisses = tlbMissCount;
    s.ipdsStallCycles = ipdsStalls;
    s.ringMaxOccupancy = reqRing.maxOccupancy();
    s.ringDrains = reqRing.drainCount();
    s.ringOverflowFlushes = reqRing.overflowFlushCount();
    s.ringFaultDrops = reqRing.faultDropCount();
    s.ringFaultDups = reqRing.faultDupCount();
    s.engine = engine.stats();
    return s;
}

} // namespace ipds
