#ifndef IPDS_TIMING_CONFIG_H
#define IPDS_TIMING_CONFIG_H

/**
 * @file
 * Timing-model configuration, defaulting to Table 1 of the paper
 * ("Default Parameters of the Processor Simulated").
 */

#include <cstdint>

namespace ipds {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    uint32_t sizeBytes = 0;
    uint32_t ways = 1;
    uint32_t blockBytes = 32;
    uint32_t latency = 1;
};

/** Full processor + IPDS hardware configuration. */
struct TimingConfig
{
    // Core (Table 1).
    uint32_t fetchQueue = 32;
    uint32_t decodeWidth = 8;
    uint32_t issueWidth = 8;
    uint32_t commitWidth = 8;
    uint32_t ruuSize = 128;
    uint32_t lsqSize = 64;

    // Memory hierarchy (Table 1).
    CacheConfig l1i{64 * 1024, 2, 32, 2};
    CacheConfig l1d{64 * 1024, 2, 32, 2};
    CacheConfig l2{512 * 1024, 4, 32, 10};
    uint32_t memFirstChunk = 80; ///< cycles to first chunk
    uint32_t memInterChunk = 5;  ///< cycles between chunks
    uint32_t tlbMissCycles = 30;
    uint32_t tlbEntries = 64;
    uint32_t pageBytes = 4096;

    // Branch predictor: 2-level adaptive (Table 1 "2 Level").
    uint32_t bhtEntries = 1024;  ///< per-branch history table
    uint32_t historyBits = 8;    ///< history register length
    uint32_t btbEntries = 2048;
    uint32_t mispredictPenalty = 10;

    // IPDS hardware (§5.4 / Table 1).
    bool ipdsEnabled = true;
    uint32_t bsvStackBits = 2 * 1024;
    uint32_t bcvStackBits = 1 * 1024;
    uint32_t batStackBits = 32 * 1024;
    uint32_t tableLatency = 1;     ///< one access per table read/write
    /** BAT entries fetched per table access: action entries are ~12
     *  bits, so one 64-bit row of the on-chip buffer holds several. */
    uint32_t batEntriesPerAccess = 4;
    uint32_t requestQueueSize = 8;
    /** Cycles to spill/fill 512 bits of table state. */
    uint32_t spillCyclesPer512 = 10;
    /** Detector->engine request ring capacity (rounded up to a power
     *  of two). Overflow chunk-flushes, it never aborts. */
    uint32_t requestRingCapacity = 1024;
    /**
     * Cap on tracked table-stack frames. Recursion deeper than this
     * degrades gracefully: the two deepest frames merge into one
     * spilled frame (their bits stay accounted for fill costs) instead
     * of growing the model without bound. Counted in
     * EngineStats::depthClamps.
     */
    uint32_t maxFrameDepth = 4096;

    /**
     * Committed-instruction equivalents charged per builtin call
     * class. Library and kernel code executes for real on the paper's
     * testbed but is not traced by our VM; these burst sizes restore
     * its share of the pipeline (and, per §5.3, library code is NOT
     * protected, so none of these instructions touch the IPDS).
     */
    uint32_t inputCallInsts = 2000; ///< read syscall + buffering
    uint32_t outputCallInsts = 200; ///< formatting + write path
    uint32_t stringCallInsts = 60;  ///< str*/mem* loops
    /** Issue latency of the builtin call instruction itself. */
    uint32_t builtinInstCost = 10;
};

/** The configuration of Table 1 (also the default constructor). */
inline TimingConfig
table1Config()
{
    return TimingConfig{};
}

} // namespace ipds

#endif // IPDS_TIMING_CONFIG_H
