#ifndef IPDS_TIMING_BRANCHPRED_H
#define IPDS_TIMING_BRANCHPRED_H

/**
 * @file
 * Two-level adaptive branch predictor (Table 1: "Branch predictor:
 * 2 Level"): a per-branch history table feeding a pattern table of
 * 2-bit saturating counters, plus a direct-mapped BTB whose misses on
 * taken branches also cost a redirect.
 */

#include <cstdint>
#include <vector>

#include "timing/config.h"

namespace ipds {

/** The 2-level predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const TimingConfig &cfg);

    /** Predict the direction of the branch at @p pc. */
    bool predict(uint64_t pc) const;

    /**
     * Update with the resolved outcome; returns true if the
     * prediction was correct (including BTB effects for taken
     * branches).
     */
    bool update(uint64_t pc, bool taken);

    uint64_t lookups() const { return nLookup; }
    uint64_t mispredicts() const { return nMispredict; }

  private:
    uint32_t bhtIndex(uint64_t pc) const;
    uint32_t phtIndex(uint64_t pc) const;

    const TimingConfig &cfg;
    std::vector<uint16_t> bht; ///< history registers
    std::vector<uint8_t> pht;  ///< 2-bit counters
    std::vector<uint64_t> btb; ///< tag-only BTB
    uint64_t nLookup = 0;
    uint64_t nMispredict = 0;
};

} // namespace ipds

#endif // IPDS_TIMING_BRANCHPRED_H
