#ifndef IPDS_TIMING_CACHE_H
#define IPDS_TIMING_CACHE_H

/**
 * @file
 * Set-associative cache with true-LRU replacement. Timing only: no
 * data is stored, just tags. Hierarchies are composed by the caller
 * probing the next level on a miss.
 */

#include <cstdint>
#include <vector>

#include "timing/config.h"

namespace ipds {

/** One cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the block containing @p addr; allocate on miss.
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Accesses so far. */
    uint64_t accesses() const { return nAccess; }

    /** Misses so far. */
    uint64_t misses() const { return nMiss; }

    /** Forget all contents and statistics. */
    void reset();

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    CacheConfig cfg;
    uint32_t numSets;
    std::vector<Line> lines; ///< numSets x ways
    uint64_t tick = 0;
    uint64_t nAccess = 0;
    uint64_t nMiss = 0;
};

} // namespace ipds

#endif // IPDS_TIMING_CACHE_H
