#include "timing/engine.h"

namespace ipds {

IpdsEngine::IpdsEngine(const TimingConfig &c)
    : cfg(c)
{}

uint64_t
IpdsEngine::spillCycles(uint64_t bits) const
{
    return (bits + 511) / 512 * cfg.spillCyclesPer512;
}

uint64_t
IpdsEngine::cost(const IpdsRequest &rq)
{
    switch (rq.kind) {
      case IpdsRequest::Kind::Check:
        stat.checkRequests++;
        return cfg.tableLatency;
      case IpdsRequest::Kind::Update:
        // One table access for the list head plus one per fetched row
        // of the linked action list (§6: "we may need to access the
        // BAT table several times to handle a BSV update request").
        stat.updateRequests++;
        return cfg.tableLatency +
            (rq.actionCount + cfg.batEntriesPerAccess - 1) /
                cfg.batEntriesPerAccess;
      case IpdsRequest::Kind::PushFrame: {
        uint64_t c = cfg.tableLatency;
        // Depth guard: past maxFrameDepth the two deepest frames fold
        // into one spilled frame. Their bits stay accounted (the fill
        // on the way back out is still charged) but the model stops
        // growing — unbounded recursion degrades precision at the
        // bottom of the stack instead of memory footprint.
        if (frames.size() >= cfg.maxFrameDepth && frames.size() >= 2) {
            for (size_t i = 0; i < 2; i++) {
                if (!frames[i].spilled) {
                    debit(frames[i].bits);
                    stat.spillEvents++;
                    stat.spillBits += frames[i].bits;
                    c += spillCycles(frames[i].bits);
                }
            }
            frames[1] = {frames[0].bits + frames[1].bits, true};
            frames.erase(frames.begin());
            stat.depthClamps++;
        }
        frames.push_back({rq.tableBits, false});
        residentBits += rq.tableBits;
        stat.framesDepth =
            std::max<uint64_t>(stat.framesDepth, frames.size());
        // Spill the deepest resident frames (not the new top) until
        // the on-chip buffers fit again.
        for (size_t i = 0;
             residentBits > capacityBits() && i + 1 < frames.size();
             i++) {
            if (frames[i].spilled)
                continue;
            frames[i].spilled = true;
            debit(frames[i].bits);
            stat.spillEvents++;
            stat.spillBits += frames[i].bits;
            c += spillCycles(frames[i].bits);
            if (trc)
                trc->record(obs::kCatSpill, obs::TraceKind::Spill,
                            rq.func, rq.pc, frames[i].bits);
        }
        return c;
      }
      case IpdsRequest::Kind::PopFrame: {
        uint64_t c = cfg.tableLatency;
        if (!frames.empty()) {
            if (!frames.back().spilled)
                debit(frames.back().bits);
            frames.pop_back();
        }
        // The new top must be resident to continue checking.
        if (!frames.empty() && frames.back().spilled) {
            frames.back().spilled = false;
            residentBits += frames.back().bits;
            stat.fillEvents++;
            stat.fillBits += frames.back().bits;
            c += spillCycles(frames.back().bits);
            if (trc)
                trc->record(obs::kCatSpill, obs::TraceKind::Fill,
                            rq.func, rq.pc, frames.back().bits);
        }
        return c;
      }
    }
    return cfg.tableLatency;
}

void
IpdsEngine::captureState(EngineSnapshot &out) const
{
    out.inflight.assign(inflight.begin(), inflight.end());
    out.engineFree = engineFree;
    out.frames.clear();
    out.frames.reserve(frames.size());
    for (const FrameBits &fr : frames)
        out.frames.push_back({fr.bits, fr.spilled});
    out.residentBits = residentBits;
    out.stats = stat;
}

void
IpdsEngine::restoreState(const EngineSnapshot &snap)
{
    inflight.assign(snap.inflight.begin(), snap.inflight.end());
    engineFree = snap.engineFree;
    frames.clear();
    frames.reserve(snap.frames.size());
    for (const EngineSnapshot::FrameBits &fr : snap.frames)
        frames.push_back({fr.bits, fr.spilled});
    residentBits = snap.residentBits;
    stat = snap.stats;
}

uint64_t
IpdsEngine::contextSwitch(bool lazy)
{
    // Bits that are resident on chip and must cross the boundary
    // twice (save outgoing, restore incoming).
    uint64_t residentTotal = 0;
    for (const auto &fr : frames)
        if (!fr.spilled)
            residentTotal += fr.bits;

    if (!lazy)
        return 2 * spillCycles(residentTotal);

    // Lazy strategy: only the active top frame swaps synchronously;
    // everything deeper is marked spilled and migrates off the
    // critical path (it fills on demand when popped back to).
    uint64_t topBits = frames.empty() ? 0 : frames.back().bits;
    for (size_t i = 0; i + 1 < frames.size(); i++) {
        if (!frames[i].spilled) {
            frames[i].spilled = true;
            debit(frames[i].bits);
            stat.spillEvents++;
            stat.spillBits += frames[i].bits;
            if (trc)
                trc->record(obs::kCatSpill, obs::TraceKind::Spill,
                            kNoFunc, 0, frames[i].bits);
        }
    }
    return 2 * spillCycles(topBits);
}

uint64_t
IpdsEngine::enqueue(const IpdsRequest &rq, uint64_t now)
{
    stat.requests++;

    // Retire completed requests.
    while (!inflight.empty() && inflight.front() <= now)
        inflight.pop_front();

    // Queue-full back-pressure: the CPU waits until the oldest request
    // completes (the only situation where IPDS slows the program).
    uint64_t stall = 0;
    while (inflight.size() >= cfg.requestQueueSize) {
        uint64_t freeAt = inflight.front();
        stall += freeAt - now;
        now = freeAt;
        while (!inflight.empty() && inflight.front() <= now)
            inflight.pop_front();
    }
    if (stall) {
        stat.queueFullStalls++;
        stat.stallCycles += stall;
    }

    uint64_t start = std::max(now, engineFree);
    uint64_t c = cost(rq);
    uint64_t finish = start + c;
    stat.busyCycles += c;
    engineFree = finish;
    inflight.push_back(finish);

    if (rq.kind == IpdsRequest::Kind::Check) {
        stat.checkLatencySum += finish - now;
        stat.checkLatencyCount++;
    }
    return stall;
}

} // namespace ipds
