#include "timing/branchpred.h"

namespace ipds {

BranchPredictor::BranchPredictor(const TimingConfig &c)
    : cfg(c),
      bht(c.bhtEntries, 0),
      pht(1u << c.historyBits, 1), // weakly not-taken
      btb(c.btbEntries, 0)
{}

uint32_t
BranchPredictor::bhtIndex(uint64_t pc) const
{
    return static_cast<uint32_t>((pc >> 2) % cfg.bhtEntries);
}

uint32_t
BranchPredictor::phtIndex(uint64_t pc) const
{
    uint16_t hist = bht[bhtIndex(pc)];
    uint32_t mask = (1u << cfg.historyBits) - 1;
    // Classic PAg/gshare hybrid: fold the PC into the pattern index.
    return (hist ^ static_cast<uint32_t>(pc >> 2)) & mask;
}

bool
BranchPredictor::predict(uint64_t pc) const
{
    return pht[phtIndex(pc)] >= 2;
}

bool
BranchPredictor::update(uint64_t pc, bool taken)
{
    nLookup++;
    bool predTaken = predict(pc);
    bool correct = predTaken == taken;

    // A taken branch whose target is absent from the BTB still costs a
    // fetch redirect even when the direction was guessed right.
    uint64_t slot = (pc >> 2) % cfg.btbEntries;
    if (taken) {
        if (btb[slot] != pc) {
            btb[slot] = pc;
            correct = false;
        }
    }

    uint8_t &ctr = pht[phtIndex(pc)];
    if (taken && ctr < 3)
        ctr++;
    else if (!taken && ctr > 0)
        ctr--;

    uint16_t &hist = bht[bhtIndex(pc)];
    hist = static_cast<uint16_t>(((hist << 1) | (taken ? 1 : 0)) &
                                 ((1u << cfg.historyBits) - 1));

    if (!correct)
        nMispredict++;
    return correct;
}

} // namespace ipds
