#ifndef IPDS_TIMING_CPU_H
#define IPDS_TIMING_CPU_H

/**
 * @file
 * Trace-driven superscalar timing model, the stand-in for the paper's
 * SimpleScalar runs (Table 1 configuration).
 *
 * The model is a scoreboard over the committed instruction stream:
 *
 *  - dispatch is paced at issueWidth per cycle, stalled by I-cache /
 *    ITLB misses, branch-misprediction redirects and RUU occupancy
 *    (dispatch may not run more than ruuSize instructions ahead of
 *    commit);
 *  - an instruction issues when its source vregs are ready and
 *    completes after its operation latency (loads: L1/L2/memory);
 *  - commit is in order at commitWidth per cycle;
 *  - committed branches feed the IPDS engine; a full request queue
 *    stalls commit (the only program-visible IPDS cost, §5.4).
 *
 * Cycles are accounted in integer "ticks" (1 tick = 1/commitWidth
 * cycle) so results are exactly reproducible.
 */

#include <deque>
#include <unordered_map>

#include "ipds/detector.h"
#include "timing/branchpred.h"
#include "timing/cache.h"
#include "timing/config.h"
#include "timing/engine.h"
#include "vm/vm.h"

namespace ipds {

/** Timing results of one run. */
struct TimingStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t l1iMisses = 0;
    uint64_t l1dMisses = 0;
    uint64_t l2Misses = 0;
    uint64_t tlbMisses = 0;
    uint64_t ipdsStallCycles = 0;
    /** Deepest request-ring occupancy seen at a drain (gauge). */
    uint64_t ringMaxOccupancy = 0;
    /** Non-empty ring drains (commit-point batches). */
    uint64_t ringDrains = 0;
    /** Ring chunk-flush backpressure events (overflow, no abort). */
    uint64_t ringOverflowFlushes = 0;
    /** Requests dropped / duplicated by an armed ring fault filter. */
    uint64_t ringFaultDrops = 0;
    uint64_t ringFaultDups = 0;
    EngineStats engine;

    double
    ipc() const
    {
        return cycles ? double(instructions) / cycles : 0.0;
    }

    /**
     * Accumulate another model's counters (session sharding): every
     * field sums, including cycles — shards simulate disjoint session
     * streams, so total work is the sum of per-shard work.
     */
    void
    merge(const TimingStats &o)
    {
        instructions += o.instructions;
        cycles += o.cycles;
        branches += o.branches;
        mispredicts += o.mispredicts;
        l1iMisses += o.l1iMisses;
        l1dMisses += o.l1dMisses;
        l2Misses += o.l2Misses;
        tlbMisses += o.tlbMisses;
        ipdsStallCycles += o.ipdsStallCycles;
        ringMaxOccupancy = std::max(ringMaxOccupancy,
                                    o.ringMaxOccupancy);
        ringDrains += o.ringDrains;
        ringOverflowFlushes += o.ringOverflowFlushes;
        ringFaultDrops += o.ringFaultDrops;
        ringFaultDups += o.ringFaultDups;
        engine.merge(o.engine);
    }

    /** Field-exact equality (differential fault-oracle tests). */
    bool
    operator==(const TimingStats &o) const
    {
        return instructions == o.instructions && cycles == o.cycles &&
            branches == o.branches && mispredicts == o.mispredicts &&
            l1iMisses == o.l1iMisses && l1dMisses == o.l1dMisses &&
            l2Misses == o.l2Misses && tlbMisses == o.tlbMisses &&
            ipdsStallCycles == o.ipdsStallCycles &&
            ringMaxOccupancy == o.ringMaxOccupancy &&
            ringDrains == o.ringDrains &&
            ringOverflowFlushes == o.ringOverflowFlushes &&
            ringFaultDrops == o.ringFaultDrops &&
            ringFaultDups == o.ringFaultDups && engine == o.engine;
    }
};

/**
 * The CPU model. Attach to a Vm as an observer; when IPDS is enabled,
 * also install its detector hook:
 *
 *   CpuModel cpu(cfg);
 *   Detector det(prog);
 *   det.setRequestRing(&cpu.requestRing());
 *   vm.addObserver(&det);   // detector first: requests precede commit
 *   vm.addObserver(&cpu);
 */
class CpuModel final : public ExecObserver
{
  public:
    explicit CpuModel(const TimingConfig &cfg);

    /**
     * Request transport: point the detector at this ring
     * (det.setRequestRing(&cpu.requestRing())) and requests are
     * written inline and drained in batches at each commit — no
     * indirect call per branch.
     */
    RequestRing &requestRing() { return reqRing; }

    /** Compatibility sink forwarding into the ring (indirect call). */
    std::function<void(const IpdsRequest &)> requestSink();

    /**
     * Attach a structured-event tracer: request dequeues (with stall
     * cycles) are recorded under kCatQueue, engine spill/fill traffic
     * under kCatSpill. Null keeps the drain loop trace-free.
     */
    void setTracer(obs::Tracer *t);

    void onInst(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
                bool is_load) override;
    void onBranch(FuncId f, uint64_t pc, bool taken) override;
    void onFunctionEnter(FuncId f) override;
    void onFunctionExit(FuncId f) override;

    /**
     * Batched delivery: replays the per-event commit pipeline with one
     * virtual call per block. Requests the detector enqueued for the
     * whole batch are drained per instruction via their seq stamps
     * (drainThrough), so queue depths, stalls and cycles are
     * bit-identical to per-event delivery.
     */
    void onBatch(const EventBatch &b) override;

    /**
     * Model a context switch away from and back to the protected
     * process (§5.4): the synchronous table save/restore latency
     * stalls the pipeline. @p lazy selects the paper's top-of-stack
     * swap optimization. Returns the charged cycles.
     */
    uint64_t contextSwitch(bool lazy);

    /** Finalized statistics. */
    TimingStats stats() const;

    /** Direct access to the IPDS engine (trace snapshots capture and
     *  restore its state; see timing/engine.h EngineSnapshot). */
    IpdsEngine &ipdsEngine() { return engine; }
    const IpdsEngine &ipdsEngine() const { return engine; }

  private:
    uint64_t curCycle() const { return lastCommitTick / cfg.commitWidth; }

    /**
     * One committed instruction through the scoreboard. @p drain_seq
     * bounds the ring drain at this commit point: kDrainAllSeq for
     * per-event delivery, the in-batch event index for onBatch.
     */
    void instCore(const Inst &in, uint64_t mem_addr, uint32_t mem_size,
                  uint32_t drain_seq);

    /** Ready tick of a source vreg (0 if unknown). */
    uint64_t srcReady(Vreg v) const;
    void setReady(Vreg v, uint64_t tick);

    /** Load-use latency in cycles through the hierarchy. */
    uint64_t loadLatency(uint64_t addr);
    /** TLB probe; returns penalty cycles. */
    uint64_t tlbAccess(uint64_t addr);

    TimingConfig cfg;
    Cache l1i;
    Cache l1d;
    Cache l2;
    BranchPredictor bpred;
    IpdsEngine engine;

    std::vector<uint64_t> tlb; ///< page tags, direct-mapped
    uint64_t tlbMissCount = 0;

    // Scoreboard state (all in ticks = 1/commitWidth cycle).
    uint64_t dispatchTick = 0;
    uint64_t redirectTick = 0;
    uint64_t lastCommitTick = 0;
    std::deque<uint64_t> ruuRing; ///< commit ticks of in-flight window
    std::deque<uint64_t> lsqRing; ///< commit ticks of in-flight mem ops
    std::deque<uint64_t> fetchRing; ///< dispatch ticks (fetch queue)
    std::unordered_map<uint64_t, uint64_t> readyAt; ///< (depth,vreg)
    uint32_t frameDepth = 0;

    uint64_t nInst = 0;
    uint64_t nBranch = 0;
    uint64_t ipdsStalls = 0;
    uint64_t lastFetchBlock = ~0ULL;

    RequestRing reqRing;
    obs::Tracer *trc = nullptr;
    bool branchPending = false;
    uint64_t pendingPc = 0;
    bool pendingTaken = false;
};

} // namespace ipds

#endif // IPDS_TIMING_CPU_H
