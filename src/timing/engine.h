#ifndef IPDS_TIMING_ENGINE_H
#define IPDS_TIMING_ENGINE_H

/**
 * @file
 * Timing model of the IPDS hardware engine (§5.4):
 *
 *  - an ordered request queue fed by committed branches and function
 *    entries/exits; the program only stalls when the queue is full;
 *  - a serial checker processing one table access per cycle, walking
 *    BAT action lists entry by entry (the "link list" of §6);
 *  - on-chip stack buffers for BSV/BCV/BAT with spill/fill of deep
 *    frames to reserved memory, Itanium-RSE style.
 */

#include <algorithm>
#include <deque>
#include <vector>

#include "ipds/detector.h"
#include "obs/trace.h"
#include "timing/config.h"

namespace ipds {

/** Aggregate statistics of the IPDS engine. */
struct EngineStats
{
    uint64_t requests = 0;
    uint64_t checkRequests = 0;
    uint64_t updateRequests = 0;
    uint64_t busyCycles = 0;
    uint64_t queueFullStalls = 0;   ///< events where the CPU stalled
    uint64_t stallCycles = 0;       ///< total CPU cycles lost
    uint64_t spillEvents = 0;
    uint64_t spillBits = 0;
    uint64_t fillEvents = 0;
    uint64_t fillBits = 0;
    /** Sum and count for mean branch-to-verdict latency (§6: 11.7). */
    uint64_t checkLatencySum = 0;
    uint64_t checkLatencyCount = 0;
    /** Deepest table stack seen (gauge, ipds.engine.frames_depth). */
    uint64_t framesDepth = 0;
    /** Times the depth guard merged frames (graceful degradation). */
    uint64_t depthClamps = 0;
    /** Times residentBits accounting saturated instead of wrapping
     *  (only reachable under fault-perturbed request streams). */
    uint64_t accountingClamps = 0;

    double
    avgCheckLatency() const
    {
        return checkLatencyCount
            ? double(checkLatencySum) / checkLatencyCount : 0.0;
    }

    /** Accumulate another engine's counters (session sharding). */
    void
    merge(const EngineStats &o)
    {
        requests += o.requests;
        checkRequests += o.checkRequests;
        updateRequests += o.updateRequests;
        busyCycles += o.busyCycles;
        queueFullStalls += o.queueFullStalls;
        stallCycles += o.stallCycles;
        spillEvents += o.spillEvents;
        spillBits += o.spillBits;
        fillEvents += o.fillEvents;
        fillBits += o.fillBits;
        checkLatencySum += o.checkLatencySum;
        checkLatencyCount += o.checkLatencyCount;
        framesDepth = std::max(framesDepth, o.framesDepth);
        depthClamps += o.depthClamps;
        accountingClamps += o.accountingClamps;
    }

    bool
    operator==(const EngineStats &o) const
    {
        return requests == o.requests &&
            checkRequests == o.checkRequests &&
            updateRequests == o.updateRequests &&
            busyCycles == o.busyCycles &&
            queueFullStalls == o.queueFullStalls &&
            stallCycles == o.stallCycles &&
            spillEvents == o.spillEvents &&
            spillBits == o.spillBits &&
            fillEvents == o.fillEvents && fillBits == o.fillBits &&
            checkLatencySum == o.checkLatencySum &&
            checkLatencyCount == o.checkLatencyCount &&
            framesDepth == o.framesDepth &&
            depthClamps == o.depthClamps &&
            accountingClamps == o.accountingClamps;
    }
};

/**
 * Portable image of the engine's live state (trace snapshots): the
 * queued completion times, the table-stack frames with their
 * spill bits, and the running counters. TimingConfig is not part of
 * the image — a snapshot only resumes against the same config the
 * trace header carries.
 */
struct EngineSnapshot
{
    std::vector<uint64_t> inflight; ///< oldest first
    uint64_t engineFree = 0;
    struct FrameBits
    {
        uint64_t bits = 0;
        bool spilled = false;
    };
    std::vector<FrameBits> frames;
    uint64_t residentBits = 0;
    EngineStats stats;
};

/**
 * The engine. The CPU model calls enqueue() at the commit cycle of the
 * triggering instruction; the return value is the number of cycles the
 * CPU must stall (nonzero only when the request queue is full).
 */
class IpdsEngine
{
  public:
    explicit IpdsEngine(const TimingConfig &cfg);

    /** Submit a request at @p now; returns CPU stall cycles. */
    uint64_t enqueue(const IpdsRequest &rq, uint64_t now);

    /** Trace spill/fill traffic under kCatSpill (null: no tracing). */
    void setTracer(obs::Tracer *t) { trc = t; }

    /**
     * Model a context switch (§5.4): the protected process's tables
     * must be saved and the incoming process's restored.
     *
     * @param lazy if false, save and restore every resident frame
     *        synchronously; if true, apply the paper's optimization —
     *        swap only the top of the stacks (about 1K bits)
     *        synchronously and migrate deeper frames in parallel with
     *        the new process's execution (they are marked spilled and
     *        fill on demand).
     * @return the synchronous latency in cycles.
     */
    uint64_t contextSwitch(bool lazy);

    const EngineStats &stats() const { return stat; }

    /** Bits currently resident on chip (tests assert the invariant
     *  residentBits == sum of non-spilled frame bits, and that it
     *  never wraps under randomized or fault-perturbed streams). */
    uint64_t residentTableBits() const { return residentBits; }
    /** Tracked table-stack depth (bounded by cfg.maxFrameDepth). */
    size_t frameDepth() const { return frames.size(); }

    /** Capture/restore the full engine state (trace snapshots). */
    void captureState(EngineSnapshot &out) const;
    void restoreState(const EngineSnapshot &snap);

  private:
    /** Service cost of one request, including spill/fill effects. */
    uint64_t cost(const IpdsRequest &rq);

    uint64_t spillCycles(uint64_t bits) const;

    /**
     * Subtract @p bits from residentBits, saturating at zero. In an
     * unfaulted run the debit is always covered (the accounting is
     * transition-guarded); a fault-perturbed request stream (dropped
     * or duplicated push/pop) can try to over-debit, which must clamp
     * — counted — rather than wrap to 2^64.
     */
    void
    debit(uint64_t bits)
    {
        if (bits > residentBits) {
            residentBits = 0;
            stat.accountingClamps++;
        } else {
            residentBits -= bits;
        }
    }

    const TimingConfig &cfg;
    EngineStats stat;
    obs::Tracer *trc = nullptr;

    /** Completion times of queued requests, oldest first. */
    std::deque<uint64_t> inflight;
    uint64_t engineFree = 0;

    /** On-chip table stack model. */
    struct FrameBits
    {
        uint64_t bits = 0;
        bool spilled = false;
    };
    std::vector<FrameBits> frames;
    uint64_t residentBits = 0;

    uint64_t capacityBits() const
    {
        return cfg.bsvStackBits + cfg.bcvStackBits + cfg.batStackBits;
    }
};

} // namespace ipds

#endif // IPDS_TIMING_ENGINE_H
