#include "timing/cache.h"

#include "support/diag.h"

namespace ipds {

Cache::Cache(const CacheConfig &c)
    : cfg(c)
{
    if (cfg.blockBytes == 0 || cfg.ways == 0 || cfg.sizeBytes == 0)
        panic("Cache: invalid geometry");
    numSets = cfg.sizeBytes / (cfg.blockBytes * cfg.ways);
    if (numSets == 0 || (numSets & (numSets - 1)) != 0)
        panic("Cache: set count %u must be a nonzero power of two",
              numSets);
    lines.assign(static_cast<size_t>(numSets) * cfg.ways, Line{});
}

bool
Cache::access(uint64_t addr)
{
    nAccess++;
    tick++;
    uint64_t block = addr / cfg.blockBytes;
    uint32_t set = static_cast<uint32_t>(block & (numSets - 1));
    uint64_t tag = block >> __builtin_ctz(numSets);

    Line *base = &lines[static_cast<size_t>(set) * cfg.ways];
    for (uint32_t w = 0; w < cfg.ways; w++) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lastUse = tick;
            return true;
        }
    }
    // Miss: evict the first invalid way, else the LRU way.
    Line *victim = base;
    for (uint32_t w = 0; w < cfg.ways; w++) {
        Line &ln = base[w];
        if (!ln.valid) {
            victim = &ln;
            break;
        }
        if (ln.lastUse < victim->lastUse)
            victim = &ln;
    }
    nMiss++;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = tick;
    return false;
}

void
Cache::reset()
{
    for (auto &ln : lines)
        ln = Line{};
    tick = nAccess = nMiss = 0;
}

} // namespace ipds
