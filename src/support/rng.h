#ifndef IPDS_SUPPORT_RNG_H
#define IPDS_SUPPORT_RNG_H

/**
 * @file
 * Deterministic pseudo-random number generation for attack campaigns and
 * tests. We avoid std::mt19937 in public interfaces so that sequences are
 * stable across standard-library versions (experiment reproducibility).
 */

#include <cstdint>

namespace ipds {

/**
 * xoshiro256** generator, seeded via splitmix64.
 *
 * Deterministic across platforms; every attack campaign records its seed
 * so an individual tampering can be replayed exactly.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x1905) { reseed(seed); }

    /** Reset the stream to the one produced by @p seed. */
    void reseed(uint64_t seed);

    /** Next 64 uniformly random bits. */
    uint64_t next();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double unit();

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return unit() < p; }

  private:
    uint64_t s[4];
};

} // namespace ipds

#endif // IPDS_SUPPORT_RNG_H
