#ifndef IPDS_SUPPORT_BITSTREAM_H
#define IPDS_SUPPORT_BITSTREAM_H

/**
 * @file
 * LSB-first bit-granular serialization, used to pack the BSV/BCV/BAT
 * tables into the binary image attached to a compiled program and to
 * account their sizes in bits (paper Figure 8).
 */

#include <cstdint>
#include <vector>

namespace ipds {

/** Appends bit fields to a byte buffer, LSB first. */
class BitWriter
{
  public:
    /** Append the low @p width bits of @p value (width 0..64). */
    void put(uint64_t value, unsigned width);

    /** Number of bits written so far. */
    uint64_t bitCount() const { return bits; }

    /** The packed bytes (final partial byte zero-padded). */
    const std::vector<uint8_t> &bytes() const { return buf; }

  private:
    std::vector<uint8_t> buf;
    uint64_t bits = 0;
};

/** Reads bit fields back in the order they were written. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &data)
        : buf(data)
    {}

    /** Read @p width bits (0..64). Panics on out-of-range reads. */
    uint64_t get(unsigned width);

    /** Bits consumed so far. */
    uint64_t bitPos() const { return pos; }

  private:
    const std::vector<uint8_t> &buf;
    uint64_t pos = 0;
};

/** Number of bits needed to represent values in [0, n]; >= 1. */
unsigned bitsFor(uint64_t n);

} // namespace ipds

#endif // IPDS_SUPPORT_BITSTREAM_H
