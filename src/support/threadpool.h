#ifndef IPDS_SUPPORT_THREADPOOL_H
#define IPDS_SUPPORT_THREADPOOL_H

/**
 * @file
 * Minimal persistent thread pool for sharding independent work items
 * (benign benchmark sessions, attack-campaign runs) across cores.
 *
 * Design constraints, in order:
 *  1. Determinism — results must be a pure function of the item index,
 *     never of scheduling. parallelFor hands out indices; callers write
 *     results into per-index slots and merge in index order.
 *  2. Zero dependencies — std::thread only.
 *  3. Simplicity — one job at a time; the calling thread participates
 *     as a worker, so ThreadPool(1) degrades to an inline loop.
 *
 * The detection service (src/serve/) layers an asynchronous executor
 * on the same workers: submit() enqueues a one-shot task that any
 * idle worker picks up. Tasks and parallelFor jobs share the pool;
 * submitted tasks never block on pool-internal state, so the two
 * modes compose. Determinism in the service comes from the callers
 * (per-stream actors serialize their own chunk order), not from the
 * executor.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ipds {

class ThreadPool
{
  public:
    /**
     * @p workers total worker count including the calling thread;
     * 0 selects std::thread::hardware_concurrency(). A pool of 1 spawns
     * no threads and runs everything inline.
     */
    explicit ThreadPool(unsigned workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread. */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(threads.size()) + 1;
    }

    /**
     * Run fn(0) ... fn(n-1), spread over the pool; blocks until every
     * index completed. Indices are claimed dynamically, so fn must not
     * depend on which thread runs it or in which order indices run.
     * The first exception thrown by fn is rethrown here (remaining
     * indices are abandoned). Not reentrant: one parallelFor at a time.
     */
    void parallelFor(uint32_t n, const std::function<void(uint32_t)> &fn);

    /**
     * Enqueue a one-shot task for any idle worker (the service
     * ingest path). Runs inline when the pool has no worker threads
     * (workers == 1), so a single-threaded service degrades to
     * synchronous ingest instead of deadlocking. The task must not
     * throw — a throwing task is an internal error (PanicError
     * semantics); service actors catch their own FatalErrors.
     * The destructor drains every queued task before joining.
     */
    void submit(std::function<void()> task);

    /** Tasks submitted but not yet finished (racy snapshot; tests). */
    size_t pendingTasks() const;

    /** hardware_concurrency(), clamped to at least 1. */
    static unsigned defaultWorkers();

  private:
    void workerLoop();
    void runIndices();

    std::vector<std::thread> threads;
    mutable std::mutex mtx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    uint64_t jobGen = 0;
    bool stopping = false;
    std::deque<std::function<void()>> tasks;

    // Current job (valid while activeWorkers > 0 or inside parallelFor).
    const std::function<void(uint32_t)> *jobFn = nullptr;
    uint32_t jobN = 0;
    std::atomic<uint32_t> nextIdx{0};
    unsigned activeWorkers = 0;
    std::exception_ptr firstError;
};

} // namespace ipds

#endif // IPDS_SUPPORT_THREADPOOL_H
