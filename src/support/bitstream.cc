#include "support/bitstream.h"

#include "support/diag.h"

namespace ipds {

void
BitWriter::put(uint64_t value, unsigned width)
{
    if (width > 64)
        panic("BitWriter::put: width %u > 64", width);
    for (unsigned i = 0; i < width; i++) {
        unsigned bitInByte = bits % 8;
        if (bitInByte == 0)
            buf.push_back(0);
        if ((value >> i) & 1)
            buf.back() |= static_cast<uint8_t>(1u << bitInByte);
        bits++;
    }
}

uint64_t
BitReader::get(unsigned width)
{
    if (width > 64)
        panic("BitReader::get: width %u > 64", width);
    if (pos + width > buf.size() * 8)
        panic("BitReader::get: read past end (%llu + %u > %zu bits)",
              static_cast<unsigned long long>(pos), width,
              buf.size() * 8);
    uint64_t out = 0;
    for (unsigned i = 0; i < width; i++) {
        uint64_t byte = pos / 8;
        unsigned bitInByte = pos % 8;
        if ((buf[byte] >> bitInByte) & 1)
            out |= 1ULL << i;
        pos++;
    }
    return out;
}

unsigned
bitsFor(uint64_t n)
{
    unsigned w = 1;
    while ((n >> w) != 0)
        w++;
    return w;
}

} // namespace ipds
