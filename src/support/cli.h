#ifndef IPDS_SUPPORT_CLI_H
#define IPDS_SUPPORT_CLI_H

/**
 * @file
 * The one command-line argument parser, shared by every harness.
 *
 * Before this layer, run_protected, fig7_detection and
 * fig9_performance each hand-rolled their own strcmp chains with
 * subtly different conventions (usage exit codes, `--flag value` only
 * vs `--flag=value`, inconsistent error text). ArgParser gives them —
 * and the ipds_serve / ipds_client service tools — one declarative
 * surface:
 *
 *   cli::ArgParser args("fig9_performance",
 *                       "Figure 9: normalized performance");
 *   uint32_t sessions = 300;
 *   unsigned threads = 0;
 *   std::string json;
 *   args.uintOpt("sessions", &sessions, "benign sessions per benchmark");
 *   args.threadsOpt(&threads);
 *   args.jsonOpt(&json);
 *   if (!args.parse(argc, argv))
 *       return args.exitCode();
 *
 * Conventions enforced for every tool:
 *  - `--flag value` and `--flag=value` both work;
 *  - `--help` prints the generated usage text and exits 0;
 *  - an unknown flag or missing operand prints usage to stderr and
 *    parse() returns false with exitCode() == 1;
 *  - the shared spellings are `--threads` and `--json` (threadsOpt /
 *    jsonOpt), so no harness drifts back to `--jobs` or `--out`.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace ipds {
namespace cli {

class ArgParser
{
  public:
    ArgParser(std::string prog, std::string summary);

    /** Required positional operand (consumed in declaration order). */
    void positional(const char *name, std::string *dst,
                    const char *help);

    /** `--name <value>` options; the pointee holds the default. */
    void strOpt(const char *name, std::string *dst, const char *help);
    void uintOpt(const char *name, uint32_t *dst, const char *help);
    void u64Opt(const char *name, uint64_t *dst, const char *help);
    void sizeOpt(const char *name, size_t *dst, const char *help);

    /** Presence flag: `--name` sets *dst = true. */
    void boolOpt(const char *name, bool *dst, const char *help);

    /**
     * Range-checked u64 seed option (`--name SEED`). Stricter than
     * u64Opt: rejects negative values (which strtoull would silently
     * wrap), overflow past 2^64-1 and trailing garbage, and the parse
     * error names the flag — the shared spelling for `--seed`,
     * `--fault-seed` and friends.
     */
    void seedOpt(const char *name, uint64_t *dst, const char *help);

    /** The shared `--threads N` spelling (0 = one per core). */
    void threadsOpt(unsigned *dst);
    /** The shared `--json PATH` spelling (machine-readable report). */
    void jsonOpt(std::string *dst);

    /**
     * Parse @p argv. Returns true on success; on `--help` or an
     * error it prints (usage to stdout for help, to stderr plus a
     * one-line diagnostic for errors) and returns false with
     * exitCode() set to 0 or 1 respectively.
     */
    bool parse(int argc, char **argv);

    int exitCode() const { return code; }

    /** The generated usage text. */
    std::string usageText() const;

  private:
    enum class Kind : uint8_t { Str, Uint, U64, Size, Bool, Seed };

    struct Opt
    {
        std::string name;
        Kind kind = Kind::Str;
        void *dst = nullptr;
        std::string help;
    };

    struct Pos
    {
        std::string name;
        std::string *dst = nullptr;
        std::string help;
    };

    const Opt *find(const std::string &name) const;
    bool fail(const std::string &msg);

    std::string prog;
    std::string summary;
    std::vector<Opt> opts;
    std::vector<Pos> positionals;
    int code = 0;
};

} // namespace cli
} // namespace ipds

#endif // IPDS_SUPPORT_CLI_H
