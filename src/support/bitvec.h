#ifndef IPDS_SUPPORT_BITVEC_H
#define IPDS_SUPPORT_BITVEC_H

/**
 * @file
 * Dense, dynamically sized bit vector used by the dataflow framework and
 * the packed BSV/BCV table encodings.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipds {

/**
 * A dense bit vector with set-algebra operations.
 *
 * All binary operations require operands of equal size; violating that is
 * a programming error and panics.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with @p n bits, all cleared (or all set if @p ones). */
    explicit BitVec(size_t n, bool ones = false);

    /** Number of bits. */
    size_t size() const { return numBits; }

    /** Resize to @p n bits; new bits are cleared. */
    void resize(size_t n);

    /** Test bit @p i. */
    bool test(size_t i) const;

    /** Set bit @p i to @p v. */
    void set(size_t i, bool v = true);

    /** Clear bit @p i. */
    void reset(size_t i) { set(i, false); }

    /** Set all bits. */
    void setAll();

    /** Clear all bits. */
    void clearAll();

    /** Number of set bits. */
    size_t count() const;

    /** True if no bit is set. */
    bool none() const;

    /** True if any bit is set. */
    bool any() const { return !none(); }

    /** In-place union. Returns true iff this changed. */
    bool orWith(const BitVec &other);

    /** In-place intersection. Returns true iff this changed. */
    bool andWith(const BitVec &other);

    /** In-place difference (this &= ~other). Returns true iff changed. */
    bool subtract(const BitVec &other);

    /** Whole-vector equality. */
    bool operator==(const BitVec &other) const;

    /**
     * Index of the first set bit at or after @p from, or size() if none.
     * Enables `for (i = v.findFirst(); i < v.size(); i = v.findFirst(i+1))`
     * iteration over set bits.
     */
    size_t findFirst(size_t from = 0) const;

  private:
    static constexpr size_t wordBits = 64;

    void checkSameSize(const BitVec &other) const;
    void clearTail();

    size_t numBits = 0;
    std::vector<uint64_t> words;
};

} // namespace ipds

#endif // IPDS_SUPPORT_BITVEC_H
