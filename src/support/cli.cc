#include "support/cli.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ipds {
namespace cli {

ArgParser::ArgParser(std::string prog_, std::string summary_)
    : prog(std::move(prog_)), summary(std::move(summary_))
{}

void
ArgParser::positional(const char *name, std::string *dst,
                      const char *help)
{
    positionals.push_back({name, dst, help});
}

void
ArgParser::strOpt(const char *name, std::string *dst,
                  const char *help)
{
    opts.push_back({name, Kind::Str, dst, help});
}

void
ArgParser::uintOpt(const char *name, uint32_t *dst, const char *help)
{
    opts.push_back({name, Kind::Uint, dst, help});
}

void
ArgParser::u64Opt(const char *name, uint64_t *dst, const char *help)
{
    opts.push_back({name, Kind::U64, dst, help});
}

void
ArgParser::sizeOpt(const char *name, size_t *dst, const char *help)
{
    opts.push_back({name, Kind::Size, dst, help});
}

void
ArgParser::boolOpt(const char *name, bool *dst, const char *help)
{
    opts.push_back({name, Kind::Bool, dst, help});
}

void
ArgParser::seedOpt(const char *name, uint64_t *dst, const char *help)
{
    opts.push_back({name, Kind::Seed, dst, help});
}

void
ArgParser::threadsOpt(unsigned *dst)
{
    // unsigned and uint32_t are the same object representation on
    // every platform this builds on; keep one parser kind.
    static_assert(sizeof(unsigned) == sizeof(uint32_t));
    opts.push_back({"threads", Kind::Uint, dst,
                    "worker threads (0 = one per hardware core)"});
}

void
ArgParser::jsonOpt(std::string *dst)
{
    opts.push_back({"json", Kind::Str, dst,
                    "write a machine-readable JSON report to PATH"});
}

const ArgParser::Opt *
ArgParser::find(const std::string &name) const
{
    for (const Opt &o : opts)
        if (o.name == name)
            return &o;
    return nullptr;
}

std::string
ArgParser::usageText() const
{
    std::string u = "usage: " + prog;
    for (const Pos &p : positionals)
        u += " <" + p.name + ">";
    for (const Opt &o : opts) {
        u += " [--" + o.name;
        if (o.kind != Kind::Bool)
            u += " N";
        u += "]";
    }
    u += "\n  " + summary + "\n";
    for (const Pos &p : positionals)
        u += "  <" + p.name + ">  " + p.help + "\n";
    for (const Opt &o : opts)
        u += "  --" + o.name + (o.kind == Kind::Bool ? "" : " N") +
            "  " + o.help + "\n";
    return u;
}

bool
ArgParser::fail(const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n%s", prog.c_str(), msg.c_str(),
                 usageText().c_str());
    code = 1;
    return false;
}

bool
ArgParser::parse(int argc, char **argv)
{
    size_t nextPos = 0;
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::fputs(usageText().c_str(), stdout);
            code = 0;
            return false;
        }
        if (a.rfind("--", 0) != 0) {
            if (nextPos >= positionals.size())
                return fail("unexpected operand '" + a + "'");
            *positionals[nextPos++].dst = a;
            continue;
        }
        std::string name = a.substr(2);
        std::string value;
        bool haveValue = false;
        size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            haveValue = true;
        }
        const Opt *o = find(name);
        if (!o)
            return fail("unknown option '--" + name + "'");
        if (o->kind == Kind::Bool) {
            if (haveValue)
                return fail("--" + name + " takes no value");
            *static_cast<bool *>(o->dst) = true;
            continue;
        }
        if (!haveValue) {
            if (i + 1 >= argc)
                return fail("--" + name + " needs a value");
            value = argv[++i];
        }
        char *endp = nullptr;
        switch (o->kind) {
          case Kind::Str:
            *static_cast<std::string *>(o->dst) = value;
            break;
          case Kind::Uint: {
            unsigned long long v =
                std::strtoull(value.c_str(), &endp, 0);
            if (*endp || v > 0xffffffffull)
                return fail("--" + name + ": bad number '" + value +
                            "'");
            *static_cast<uint32_t *>(o->dst) =
                static_cast<uint32_t>(v);
            break;
          }
          case Kind::U64: {
            unsigned long long v =
                std::strtoull(value.c_str(), &endp, 0);
            if (*endp)
                return fail("--" + name + ": bad number '" + value +
                            "'");
            *static_cast<uint64_t *>(o->dst) = v;
            break;
          }
          case Kind::Size: {
            unsigned long long v =
                std::strtoull(value.c_str(), &endp, 0);
            if (*endp)
                return fail("--" + name + ": bad number '" + value +
                            "'");
            *static_cast<size_t *>(o->dst) =
                static_cast<size_t>(v);
            break;
          }
          case Kind::Seed: {
            // strtoull silently wraps "-1" to 2^64-1 and tolerates
            // leading whitespace/'+'; a seed flag wants none of that.
            if (value.empty() || value[0] == '-' || value[0] == '+' ||
                std::isspace(static_cast<unsigned char>(value[0])))
                return fail("--" + std::string(o->name) +
                            ": bad seed '" + value +
                            "' (want an unsigned 64-bit integer)");
            errno = 0;
            unsigned long long v =
                std::strtoull(value.c_str(), &endp, 0);
            if (*endp || endp == value.c_str() || errno == ERANGE)
                return fail("--" + std::string(o->name) +
                            ": bad seed '" + value +
                            "' (want an unsigned 64-bit integer)");
            *static_cast<uint64_t *>(o->dst) = v;
            break;
          }
          case Kind::Bool:
            break; // handled above
        }
    }
    if (nextPos < positionals.size())
        return fail("missing <" + positionals[nextPos].name +
                    "> operand");
    return true;
}

} // namespace cli
} // namespace ipds
