#include "support/diag.h"

#include <cstdio>

namespace ipds {

namespace {
bool quietFlag = false;
} // namespace

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw PanicError(msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

} // namespace ipds
