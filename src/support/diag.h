#ifndef IPDS_SUPPORT_DIAG_H
#define IPDS_SUPPORT_DIAG_H

/**
 * @file
 * Diagnostics: formatted strings, fatal/panic termination and warnings.
 *
 * Conventions follow the gem5 split: panic() marks an internal invariant
 * violation (a bug in this library), fatal() marks a user-level error (bad
 * input program, bad configuration) that makes continuing impossible.
 */

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace ipds {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/**
 * Exception thrown by fatal(): the caller supplied something invalid
 * (unparsable source, impossible configuration). Recoverable by the
 * embedding application; tests catch it to assert error paths.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Exception thrown by panic(): an internal invariant was violated. This
 * is a bug in the library itself, never the user's fault.
 */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

/** Report an unrecoverable user-level error. Throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal invariant violation. Throws PanicError. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() output (used by benches). */
void setQuiet(bool quiet);

} // namespace ipds

#endif // IPDS_SUPPORT_DIAG_H
