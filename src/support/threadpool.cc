#include "support/threadpool.h"

namespace ipds {

unsigned
ThreadPool::defaultWorkers()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads.reserve(workers - 1);
    for (unsigned i = 1; i < workers; i++)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx);
        stopping = true;
    }
    cvStart.notify_all();
    for (auto &t : threads)
        t.join();
}

void
ThreadPool::runIndices()
{
    for (;;) {
        uint32_t i = nextIdx.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobN)
            break;
        try {
            (*jobFn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mtx);
            if (!firstError)
                firstError = std::current_exception();
            // Abandon the remaining indices.
            nextIdx.store(jobN, std::memory_order_relaxed);
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seenGen = 0;
    for (;;) {
        bool haveJob = false;
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mtx);
            cvStart.wait(lk, [&] {
                return stopping || jobGen != seenGen ||
                    !tasks.empty();
            });
            if (!tasks.empty()) {
                // One-shot tasks win ties: a parallelFor job has the
                // calling thread helping already, an actor task has
                // nobody else.
                task = std::move(tasks.front());
                tasks.pop_front();
            } else if (stopping) {
                return; // queue drained, shutdown
            } else {
                haveJob = true;
                seenGen = jobGen;
            }
        }
        if (task) {
            task();
            continue;
        }
        if (haveJob) {
            runIndices();
            std::lock_guard<std::mutex> lk(mtx);
            if (--activeWorkers == 0)
                cvDone.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (threads.empty()) {
        // No workers to hand off to: synchronous degradation.
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mtx);
        tasks.push_back(std::move(task));
    }
    cvStart.notify_one();
}

size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lk(mtx);
    return tasks.size();
}

void
ThreadPool::parallelFor(uint32_t n,
                        const std::function<void(uint32_t)> &fn)
{
    if (n == 0)
        return;
    if (threads.empty() || n == 1) {
        for (uint32_t i = 0; i < n; i++)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lk(mtx);
        jobFn = &fn;
        jobN = n;
        nextIdx.store(0, std::memory_order_relaxed);
        firstError = nullptr;
        activeWorkers = static_cast<unsigned>(threads.size());
        jobGen++;
    }
    cvStart.notify_all();
    runIndices(); // the calling thread is a worker too
    {
        std::unique_lock<std::mutex> lk(mtx);
        cvDone.wait(lk, [&] { return activeWorkers == 0; });
        jobFn = nullptr;
        if (firstError)
            std::rethrow_exception(firstError);
    }
}

} // namespace ipds
