#include "support/bitvec.h"

#include <bit>

#include "support/diag.h"

namespace ipds {

BitVec::BitVec(size_t n, bool ones)
    : numBits(n), words((n + wordBits - 1) / wordBits, ones ? ~0ULL : 0ULL)
{
    clearTail();
}

void
BitVec::resize(size_t n)
{
    numBits = n;
    words.resize((n + wordBits - 1) / wordBits, 0ULL);
    clearTail();
}

void
BitVec::clearTail()
{
    size_t used = numBits % wordBits;
    if (used != 0 && !words.empty())
        words.back() &= (1ULL << used) - 1;
}

bool
BitVec::test(size_t i) const
{
    if (i >= numBits)
        panic("BitVec::test index %zu out of range %zu", i, numBits);
    return (words[i / wordBits] >> (i % wordBits)) & 1ULL;
}

void
BitVec::set(size_t i, bool v)
{
    if (i >= numBits)
        panic("BitVec::set index %zu out of range %zu", i, numBits);
    uint64_t mask = 1ULL << (i % wordBits);
    if (v)
        words[i / wordBits] |= mask;
    else
        words[i / wordBits] &= ~mask;
}

void
BitVec::setAll()
{
    for (auto &w : words)
        w = ~0ULL;
    clearTail();
}

void
BitVec::clearAll()
{
    for (auto &w : words)
        w = 0ULL;
}

size_t
BitVec::count() const
{
    size_t n = 0;
    for (auto w : words)
        n += static_cast<size_t>(std::popcount(w));
    return n;
}

bool
BitVec::none() const
{
    for (auto w : words)
        if (w != 0)
            return false;
    return true;
}

void
BitVec::checkSameSize(const BitVec &other) const
{
    if (numBits != other.numBits)
        panic("BitVec size mismatch: %zu vs %zu", numBits, other.numBits);
}

bool
BitVec::orWith(const BitVec &other)
{
    checkSameSize(other);
    bool changed = false;
    for (size_t i = 0; i < words.size(); i++) {
        uint64_t nw = words[i] | other.words[i];
        changed |= nw != words[i];
        words[i] = nw;
    }
    return changed;
}

bool
BitVec::andWith(const BitVec &other)
{
    checkSameSize(other);
    bool changed = false;
    for (size_t i = 0; i < words.size(); i++) {
        uint64_t nw = words[i] & other.words[i];
        changed |= nw != words[i];
        words[i] = nw;
    }
    return changed;
}

bool
BitVec::subtract(const BitVec &other)
{
    checkSameSize(other);
    bool changed = false;
    for (size_t i = 0; i < words.size(); i++) {
        uint64_t nw = words[i] & ~other.words[i];
        changed |= nw != words[i];
        words[i] = nw;
    }
    return changed;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return numBits == other.numBits && words == other.words;
}

size_t
BitVec::findFirst(size_t from) const
{
    if (from >= numBits)
        return numBits;
    size_t wi = from / wordBits;
    uint64_t w = words[wi] & ~((1ULL << (from % wordBits)) - 1);
    while (true) {
        if (w != 0) {
            size_t bit = wi * wordBits +
                static_cast<size_t>(std::countr_zero(w));
            return bit < numBits ? bit : numBits;
        }
        if (++wi >= words.size())
            return numBits;
        w = words[wi];
    }
}

} // namespace ipds
