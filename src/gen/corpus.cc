#include "gen/corpus.h"

#include <algorithm>

#include "ipds/reference.h"
#include "obs/session.h"
#include "support/diag.h"
#include "support/threadpool.h"

namespace ipds {
namespace gen {

namespace {

uint32_t
countIf(const std::vector<CorpusProgramResult> &ps, auto pred)
{
    uint32_t n = 0;
    for (const CorpusProgramResult &p : ps)
        for (const RecipeOutcome &o : p.outcomes)
            n += pred(o) ? 1 : 0;
    return n;
}

/** One instrumented run: both detectors attached to one Vm. */
struct DualRun
{
    RunResult res;
    std::vector<Alarm> fastAlarms;
    DetectorStats fastStats;
    std::vector<Alarm> refAlarms;
    DetectorStats refStats;
};

DualRun
runDual(const CompiledProgram &prog,
        const std::vector<std::string> &inputs, VmEngine engine,
        const AttackRecipe *recipe, uint64_t fuel)
{
    Vm vm(prog.mod);
    vm.setEngine(engine);
    vm.setInputs(inputs);
    vm.setFuel(fuel);
    Detector fast(prog);
    ReferenceDetector ref(prog);
    vm.addObserver(&fast);
    vm.addObserver(&ref);
    if (recipe)
        armRecipe(vm, *recipe);
    DualRun d;
    d.res = vm.run();
    d.fastAlarms = fast.alarms();
    d.fastStats = fast.stats();
    d.refAlarms = ref.alarms();
    d.refStats = ref.stats();
    return d;
}

bool
alarmsEqual(const std::vector<Alarm> &a, const std::vector<Alarm> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); i++)
        if (a[i].func != b[i].func || a[i].pc != b[i].pc ||
            a[i].actualTaken != b[i].actualTaken ||
            a[i].expected != b[i].expected ||
            a[i].branchIndex != b[i].branchIndex)
            return false;
    return true;
}

/** First field on which two runs disagree ("" if none). */
std::string
compareRuns(const DualRun &a, const DualRun &b, const char *what)
{
    auto miss = [&](const char *field) {
        return strprintf("%s: %s differs between engines", what,
                         field);
    };
    if (a.res.exit != b.res.exit)
        return miss("exit kind");
    if (a.res.exitCode != b.res.exitCode)
        return miss("exit code");
    if (a.res.output != b.res.output)
        return miss("program output");
    if (a.res.steps != b.res.steps)
        return miss("instruction count");
    if (a.res.inputEventCount != b.res.inputEventCount)
        return miss("input event count");
    if (!(a.res.inputEventPcs == b.res.inputEventPcs))
        return miss("input event pcs");
    if (!(a.res.branchTrace == b.res.branchTrace))
        return miss("branch trace");
    if (a.res.faultTampers.size() != b.res.faultTampers.size())
        return miss("fired tamper count");
    for (size_t i = 0; i < a.res.faultTampers.size(); i++)
        if (a.res.faultTampers[i].addr != b.res.faultTampers[i].addr ||
            a.res.faultTampers[i].newBytes !=
                b.res.faultTampers[i].newBytes)
            return miss("tamper records");
    if (!alarmsEqual(a.fastAlarms, b.fastAlarms))
        return miss("detector alarms");
    if (!(a.fastStats == b.fastStats))
        return miss("detector stats");
    return "";
}

/** Fast-vs-reference disagreement inside one run ("" if none). */
std::string
compareDetectors(const DualRun &d, const char *what)
{
    if (!alarmsEqual(d.fastAlarms, d.refAlarms))
        return strprintf("%s: fast and reference detector alarms "
                         "differ", what);
    if (!(d.fastStats == d.refStats))
        return strprintf("%s: fast and reference detector stats "
                         "differ", what);
    return "";
}

/**
 * Oracle (c): capture the run to a trace file through the Session
 * facade, replay it, and require identical alarms and stats.
 */
std::string
compareLiveReplay(const CompiledProgram &prog,
                  const std::vector<std::string> &inputs,
                  const AttackRecipe *recipe, uint64_t fuel,
                  const std::string &path, const char *what)
{
    ExecPlan exec;
    if (recipe) {
        Vm addrVm(prog.mod); // entry-frame layout is deterministic
        for (const TamperSpec &spec : recipeSpecs(addrVm, *recipe))
            exec.addTamper(spec);
    }
    Session live = Session::builder()
                       .program(prog)
                       .inputs(inputs)
                       .fuel(fuel)
                       .plan(CapturePlan(path).exec(std::move(exec)))
                       .build();
    live.run();

    Session rep = Session::builder()
                      .program(prog)
                      .plan(ReplayPlan(path))
                      .build();
    rep.run();

    if (!alarmsEqual(live.alarms(), rep.alarms()))
        return strprintf("%s: live and replay alarms differ", what);
    if (!(live.detectorStats() == rep.detectorStats()))
        return strprintf("%s: live and replay detector stats differ",
                         what);
    return "";
}

} // namespace

uint32_t
CorpusCampaignResult::numCompiled() const
{
    uint32_t n = 0;
    for (const CorpusProgramResult &p : programs)
        n += p.compiled ? 1 : 0;
    return n;
}

uint32_t
CorpusCampaignResult::numFalsePositives() const
{
    uint32_t n = 0;
    for (const CorpusProgramResult &p : programs)
        n += p.falsePositive ? 1 : 0;
    return n;
}

uint32_t
CorpusCampaignResult::attacks() const
{
    return countIf(programs, [](const RecipeOutcome &) {
        return true;
    });
}

uint32_t
CorpusCampaignResult::numCfChanged() const
{
    return countIf(programs, [](const RecipeOutcome &o) {
        return o.cfChanged;
    });
}

uint32_t
CorpusCampaignResult::numDetected() const
{
    return countIf(programs, [](const RecipeOutcome &o) {
        return o.detected;
    });
}

uint32_t
CorpusCampaignResult::attacksOf(RecipeKind k) const
{
    return countIf(programs, [k](const RecipeOutcome &o) {
        return o.kind == k;
    });
}

uint32_t
CorpusCampaignResult::cfChangedOf(RecipeKind k) const
{
    return countIf(programs, [k](const RecipeOutcome &o) {
        return o.kind == k && o.cfChanged;
    });
}

uint32_t
CorpusCampaignResult::detectedOf(RecipeKind k) const
{
    return countIf(programs, [k](const RecipeOutcome &o) {
        return o.kind == k && o.detected;
    });
}

double
CorpusCampaignResult::pctCfChanged() const
{
    uint32_t n = attacks();
    return n ? 100.0 * numCfChanged() / n : 0.0;
}

double
CorpusCampaignResult::pctDetected() const
{
    uint32_t n = attacks();
    return n ? 100.0 * numDetected() / n : 0.0;
}

double
CorpusCampaignResult::pctDetectedOfCf() const
{
    uint32_t cf = numCfChanged();
    return cf ? 100.0 * numDetected() / cf : 0.0;
}

double
CorpusCampaignResult::pctDetectedOfCfOf(RecipeKind k) const
{
    uint32_t cf = cfChangedOf(k);
    return cf ? 100.0 * detectedOf(k) / cf : 0.0;
}

uint64_t
CorpusCampaignResult::totalBranchesSeen() const
{
    uint64_t n = 0;
    for (const CorpusProgramResult &p : programs)
        n += p.branchesSeen;
    return n;
}

uint64_t
CorpusCampaignResult::totalSteps() const
{
    uint64_t n = 0;
    for (const CorpusProgramResult &p : programs)
        n += p.totalSteps;
    return n;
}

CorpusCampaignResult
runCorpusCampaign(const CorpusCampaignConfig &cfg)
{
    if (cfg.firstSeed > cfg.lastSeed)
        fatal("corpus: empty seed range %llu:%llu",
              static_cast<unsigned long long>(cfg.firstSeed),
              static_cast<unsigned long long>(cfg.lastSeed));
    const uint64_t count = cfg.lastSeed - cfg.firstSeed + 1;

    CorpusCampaignResult res;
    res.programs.resize(count);

    // Seeds are mutually independent: each slot owns its program,
    // Vms and detectors, so sharding across workers reproduces the
    // sequential results exactly (cf. runCampaign).
    ThreadPool pool(cfg.numThreads);
    pool.parallelFor(static_cast<uint32_t>(count), [&](uint32_t i) {
        CorpusProgramResult &pr = res.programs[i];
        pr.seed = cfg.firstSeed + i;

        GeneratedProgram gp = generate(pr.seed, cfg.gen);
        CompiledProgram prog;
        try {
            prog = compileGenerated(gp, cfg.corr);
        } catch (const FatalError &e) {
            pr.error = e.what();
            return;
        }
        pr.compiled = true;

        // Golden run: benign session under the detector.
        std::vector<BranchEvent> golden;
        {
            Vm vm(prog.mod);
            vm.setInputs(gp.workload.benignInputs);
            vm.setFuel(cfg.fuel);
            Detector det(prog);
            vm.addObserver(&det);
            RunResult r = vm.run();
            if (r.exit == ExitKind::OutOfFuel)
                warn("corpus: seed %llu golden run hit the fuel "
                     "limit",
                     static_cast<unsigned long long>(pr.seed));
            pr.falsePositive = det.alarmed();
            pr.goldenSteps = r.steps;
            pr.goldenInputEvents = r.inputEventCount;
            pr.branchesSeen += det.stats().branchesSeen;
            pr.totalSteps += r.steps;
            golden = std::move(r.branchTrace);
        }

        for (const AttackRecipe &recipe : gp.recipes) {
            Vm vm(prog.mod);
            vm.setInputs(gp.workload.benignInputs);
            vm.setFuel(cfg.fuel);
            Detector det(prog);
            vm.addObserver(&det);
            armRecipe(vm, recipe);
            RunResult r = vm.run();

            RecipeOutcome out;
            out.kind = recipe.kind;
            out.fired =
                r.faultTampers.size() == recipe.writes.size();
            out.cfChanged = !(r.branchTrace == golden);
            out.detected = det.alarmed();
            pr.outcomes.push_back(out);
            pr.branchesSeen += det.stats().branchesSeen;
            pr.totalSteps += r.steps;
        }
    });
    return res;
}

DiffResult
diffOne(uint64_t seed, const std::string &tmpDir, const GenConfig &cfg)
{
    DiffResult dr;
    dr.seed = seed;

    GeneratedProgram gp = generate(seed, cfg);
    CompiledProgram prog;
    try {
        prog = compileGenerated(gp, {});
    } catch (const FatalError &e) {
        dr.firstMismatch = e.what();
        return dr;
    }
    const std::vector<std::string> &in = gp.workload.benignInputs;
    constexpr uint64_t kFuel = 2'000'000;

    // Oracles (a) + (b): benign session plus every recipe, each run
    // on both engines with both detectors attached.
    auto check = [&](const AttackRecipe *recipe,
                     const std::string &what) {
        DualRun sw =
            runDual(prog, in, VmEngine::Switch, recipe, kFuel);
        DualRun th =
            runDual(prog, in, VmEngine::Threaded, recipe, kFuel);
        dr.runsCompared += 2;
        std::string m = compareDetectors(sw, what.c_str());
        if (m.empty())
            m = compareDetectors(th, what.c_str());
        if (m.empty())
            m = compareRuns(sw, th, what.c_str());
        return m;
    };

    std::string m = check(nullptr, "benign");
    for (size_t i = 0; m.empty() && i < gp.recipes.size(); i++)
        m = check(&gp.recipes[i],
                  strprintf("recipe %zu (%s)", i,
                            recipeKindName(gp.recipes[i].kind)));

    // Oracle (c): capture/replay round trips for the benign session
    // and the first recipe of each kind.
    if (m.empty() && !tmpDir.empty()) {
        const AttackRecipe *byKind[kNumRecipeKinds] = {};
        for (const AttackRecipe &r : gp.recipes) {
            auto k = static_cast<size_t>(r.kind);
            if (!byKind[k])
                byKind[k] = &r;
        }
        auto roundTrip = [&](const AttackRecipe *recipe,
                             const std::string &tag) {
            std::string path = tmpDir + "/diff-" +
                std::to_string(seed) + "-" + tag + ".ipds";
            dr.runsCompared += 2;
            return compareLiveReplay(prog, in, recipe, kFuel, path,
                                     tag.c_str());
        };
        m = roundTrip(nullptr, "benign");
        for (size_t k = 0; m.empty() && k < kNumRecipeKinds; k++)
            if (byKind[k])
                m = roundTrip(
                    byKind[k],
                    recipeKindName(static_cast<RecipeKind>(k)));
    }

    if (!m.empty()) {
        dr.firstMismatch =
            strprintf("seed %llu: %s",
                      static_cast<unsigned long long>(seed),
                      m.c_str());
        return dr;
    }
    dr.ok = true;
    return dr;
}

} // namespace gen
} // namespace ipds
