#ifndef IPDS_GEN_CORPUS_H
#define IPDS_GEN_CORPUS_H

/**
 * @file
 * Corpus-scale harnesses over generated programs (gen/gen.h):
 *
 *  - runCorpusCampaign(): the fig7-style experiment at corpus scale.
 *    For every seed in a range, run the benign golden session under
 *    the detector (zero-false-positive check), then every typed
 *    attack recipe, classifying each as fired / control-flow-changing
 *    / detected — the same outcome taxonomy as attack/campaign.h,
 *    aggregated per RecipeKind across the whole corpus.
 *
 *  - diffOne(): the differential fuzzing oracle. One seed, many
 *    independent implementations of "run this program", all required
 *    to agree bit-for-bit:
 *      (a) switch vs threaded-batched VM engines — output, exit,
 *          steps, input events, branch trace;
 *      (b) optimized Detector vs ReferenceDetector attached to the
 *          SAME run — alarms and statistics;
 *      (c) live capture vs trace replay through the Session facade —
 *          alarms and detector statistics.
 *    Any disagreement is reported with the seed, the run and the
 *    first mismatching field, so a corpus sweep names the offending
 *    seed instead of just failing.
 *
 * Both are deterministic: results are a pure function of the config
 * (worker threads only shard independent seeds, as in runCampaign).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.h"
#include "gen/gen.h"

namespace ipds {
namespace gen {

/** Corpus campaign parameters. */
struct CorpusCampaignConfig
{
    uint64_t firstSeed = 1;
    uint64_t lastSeed = 100; ///< inclusive
    GenConfig gen;
    /** Instruction budget per run (tampered runs can loop forever). */
    uint64_t fuel = 2'000'000;
    /** Analysis feature switches. */
    CorrOptions corr;
    /** Worker threads over seeds (0 = one per hardware core). Seeds
     *  are independent; results are identical for any count. */
    unsigned numThreads = 1;
};

/** Classification of one recipe run (cf. AttackOutcome). */
struct RecipeOutcome
{
    RecipeKind kind = RecipeKind::SingleWord;
    bool fired = false;     ///< every scripted write landed
    bool cfChanged = false; ///< branch trace differs from golden
    bool detected = false;  ///< IPDS alarmed
};

/** Per-seed campaign result. */
struct CorpusProgramResult
{
    uint64_t seed = 0;
    bool compiled = false;
    std::string error; ///< compile diagnostic when !compiled
    bool falsePositive = false; ///< golden run alarmed (must not)
    uint64_t goldenSteps = 0;
    uint32_t goldenInputEvents = 0;
    /** Detector branches seen, summed over golden + recipe runs. */
    uint64_t branchesSeen = 0;
    /** VM instructions, summed over golden + recipe runs. */
    uint64_t totalSteps = 0;
    std::vector<RecipeOutcome> outcomes;
};

/** Whole-corpus aggregates (per RecipeKind and overall). */
struct CorpusCampaignResult
{
    std::vector<CorpusProgramResult> programs; ///< seed order

    uint32_t numPrograms() const
    {
        return static_cast<uint32_t>(programs.size());
    }
    uint32_t numCompiled() const;
    uint32_t numFalsePositives() const;

    /** Attack counts, overall and per kind. */
    uint32_t attacks() const;
    uint32_t numCfChanged() const;
    uint32_t numDetected() const;
    uint32_t attacksOf(RecipeKind k) const;
    uint32_t cfChangedOf(RecipeKind k) const;
    uint32_t detectedOf(RecipeKind k) const;

    /** Figure-7-style shares (percent; 0 when the base is empty). */
    double pctCfChanged() const;
    double pctDetected() const;
    double pctDetectedOfCf() const;
    double pctDetectedOfCfOf(RecipeKind k) const;

    uint64_t totalBranchesSeen() const;
    uint64_t totalSteps() const;
};

/**
 * Run the corpus campaign. Uncompilable seeds (which compileGenerated
 * surfaces as FatalError) are recorded per seed, not thrown.
 */
CorpusCampaignResult runCorpusCampaign(const CorpusCampaignConfig &cfg);

/** Outcome of one seed's differential check. */
struct DiffResult
{
    uint64_t seed = 0;
    bool ok = false;
    /** Human-readable description of the first disagreement —
     *  empty when ok. */
    std::string firstMismatch;
    /** VM/detector run pairs that were compared. */
    uint32_t runsCompared = 0;
};

/**
 * Differentially check one seed across every oracle (see file
 * comment): benign session plus every recipe through oracles (a) and
 * (b); benign plus the first recipe of each kind through the
 * capture/replay oracle (c), using trace files under @p tmpDir.
 * An empty @p tmpDir skips oracle (c) (no filesystem access).
 */
DiffResult diffOne(uint64_t seed, const std::string &tmpDir,
                   const GenConfig &cfg = {});

} // namespace gen
} // namespace ipds

#endif // IPDS_GEN_CORPUS_H
