#include "gen/gen.h"

#include <algorithm>

#include "support/diag.h"
#include "support/rng.h"

namespace ipds {
namespace gen {

namespace {

// FNV-1a, matching the trace-format and module-hash idiom.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnv1a(uint64_t h, const void *p, size_t n)
{
    const uint8_t *b = static_cast<const uint8_t *>(p);
    for (size_t i = 0; i < n; i++) {
        h ^= b[i];
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fnv1aStr(uint64_t h, const std::string &s)
{
    h = fnv1a(h, s.data(), s.size());
    // Separator byte so {"ab","c"} and {"a","bc"} differ.
    uint8_t sep = 0;
    return fnv1a(h, &sep, 1);
}

/** Protocol command ids: fixed semantics, per-seed spellings. */
enum Cmd : int
{
    kCmdOpen = 1,
    kCmdStep = 2,
    kCmdPut = 3,
    kCmdGet = 4,
    kCmdCalc = 5,
    kCmdClose = 6,
};

const char *const kOpenNames[] = {"open", "begin", "start", "init"};
const char *const kStepNames[] = {"step", "next", "advance", "tick"};
const char *const kPutNames[] = {"put", "store", "reg", "add"};
const char *const kGetNames[] = {"get", "load", "query", "find"};
const char *const kCalcNames[] = {"calc", "sum", "work", "crunch"};
const char *const kCloseNames[] = {"close", "shut", "finish", "drop"};
const char *const kAdminUsers[] = {"root", "admin", "oper", "super"};
const char *const kAdminPass[] = {"toor", "s3cret", "rsa-ok",
                                  "letmein"};
const char *const kGuestUsers[] = {"guest", "anon", "user", "demo"};

template <size_t N>
const char *
pick(Rng &rng, const char *const (&list)[N])
{
    return list[rng.below(N)];
}

/**
 * The per-seed program shape. Drawn up front from the source RNG so
 * the emitter, the script writer and the recipe planner agree on one
 * geometry without re-deriving it.
 */
struct Shape
{
    std::string adminUser, adminPass, guestUser;
    std::string cmdName[7]; ///< indexed by Cmd (0 unused)
    uint32_t rounds = 5;    ///< session-loop iterations
    int maxState = 3;       ///< protocol states run 0..maxState
    int quota = 4;          ///< per-session store quota (audit bound)
    int storeCap = 8;       ///< global table capacity
    int recurDepth = 3;     ///< depth_sum() argument
    bool hasStore = true;   ///< put/get + global tables
    bool hasRecur = true;   ///< calc + recursion helper
    bool hasQuota = true;   ///< sent counter + quota audit
    int scratch = 2;        ///< cf-irrelevant tmp locals
};

Shape
drawShape(Rng &rng)
{
    Shape s;
    s.adminUser = pick(rng, kAdminUsers);
    s.adminPass = pick(rng, kAdminPass);
    s.guestUser = pick(rng, kGuestUsers);
    s.cmdName[kCmdOpen] = pick(rng, kOpenNames);
    s.cmdName[kCmdStep] = pick(rng, kStepNames);
    s.cmdName[kCmdPut] = pick(rng, kPutNames);
    s.cmdName[kCmdGet] = pick(rng, kGetNames);
    s.cmdName[kCmdCalc] = pick(rng, kCalcNames);
    s.cmdName[kCmdClose] = pick(rng, kCloseNames);
    s.rounds = 4 + static_cast<uint32_t>(rng.below(4));   // 4..7
    s.maxState = 3 + static_cast<int>(rng.below(3));      // 3..5
    s.quota = 3 + static_cast<int>(rng.below(4));         // 3..6
    s.storeCap = rng.chance(0.5) ? 8 : 4;
    s.recurDepth = 3 + static_cast<int>(rng.below(4));    // 3..6
    s.hasStore = rng.chance(0.75);
    s.hasRecur = rng.chance(0.75);
    s.hasQuota = rng.chance(0.75);
    s.scratch = 2 + static_cast<int>(rng.below(3));       // 2..4
    return s;
}

/**
 * Emit the MiniC source for @p s. The emitted idioms mirror the
 * hand-written workloads on purpose: string-compared principals,
 * privilege levels returned by a login helper, constant-bounded
 * state transitions and audit branches that are infeasible unless
 * the underlying local is corrupted — the correlated branches the
 * detector protects.
 */
std::string
emitSource(const Shape &s)
{
    std::string src;
    auto ln = [&](const char *fmt, auto... a) {
        src += strprintf(fmt, a...);
        src += '\n';
    };

    if (s.hasStore) {
        ln("int store_key[%d];", s.storeCap);
        ln("int store_val[%d];", s.storeCap);
    }
    ln("int served;");
    ln("");

    // Login helper: returns the privilege level {0,1,2} — the
    // interprocedural range the audit branches correlate against.
    ln("int check_login(char *u, char *p) {");
    ln("    if (strcmp(u, \"%s\") == 0) {", s.adminUser.c_str());
    ln("        if (strcmp(p, \"%s\") == 0) {", s.adminPass.c_str());
    ln("            return 2;");
    ln("        }");
    ln("        return 0;");
    ln("    }");
    ln("    if (strcmp(u, \"%s\") == 0) {", s.guestUser.c_str());
    ln("        return 1;");
    ln("    }");
    ln("    return 0;");
    ln("}");
    ln("");

    // Command classifier: strcmp chain over the per-seed spellings.
    ln("int classify(char *c) {");
    for (int id = kCmdOpen; id <= kCmdClose; id++) {
        if (id == kCmdPut || id == kCmdGet) {
            if (!s.hasStore)
                continue;
        }
        if (id == kCmdCalc && !s.hasRecur)
            continue;
        ln("    if (strcmp(c, \"%s\") == 0) {",
           s.cmdName[id].c_str());
        ln("        return %d;", id);
        ln("    }");
    }
    ln("    return 0;");
    ln("}");
    ln("");

    if (s.hasRecur) {
        ln("int depth_sum(int n) {");
        ln("    int r;");
        ln("    if (n <= 0) {");
        ln("        return 0;");
        ln("    }");
        ln("    r = depth_sum(n - 1);");
        ln("    return r + n;");
        ln("}");
        ln("");
    }

    ln("void main() {");
    ln("    char user[16];");
    ln("    char pass[16];");
    ln("    char cmd[16];");
    ln("    char arg[16];");
    ln("    int level;");
    ln("    int auth;");
    ln("    int state;");
    if (s.hasQuota)
        ln("    int sent;");
    if (s.hasStore) {
        ln("    int used;");
        ln("    int k;");
        ln("    int i;");
        ln("    int found;");
    }
    if (s.hasRecur)
        ln("    int d;");
    ln("    int id;");
    ln("    int round;");
    for (int t = 0; t < s.scratch; t++)
        ln("    int tmp%d;", t);
    ln("");
    ln("    served = served + 1;");
    ln("    level = 0;");
    ln("    auth = 0;");
    ln("    state = 0;");
    if (s.hasQuota)
        ln("    sent = 0;");
    if (s.hasStore)
        ln("    used = 0;");
    for (int t = 0; t < s.scratch; t++)
        ln("    tmp%d = %d;", t, t + 1);
    ln("");
    ln("    get_input_n(user, 16);");
    ln("    get_input_n(pass, 16);");
    ln("    level = check_login(user, pass);");
    ln("    if (level > 0) {");
    ln("        auth = 1;");
    ln("        print_str(\"welcome\\n\");");
    ln("    } else {");
    ln("        print_str(\"denied\\n\");");
    ln("    }");
    ln("");
    ln("    round = 0;");
    ln("    while (round < %u) {", s.rounds);
    ln("        get_input_n(cmd, 16);");
    ln("        get_input_n(arg, 16);");
    ln("        id = classify(cmd);");
    ln("");
    // Audit block: every branch here is infeasible on any benign
    // path — the detector's bread and butter once a local is
    // tampered out of its correlated range.
    ln("        if (state > %d) {", s.maxState);
    ln("            print_str(\"audit: state out of range\\n\");");
    ln("        }");
    ln("        if (state < 0) {");
    ln("            print_str(\"audit: negative state\\n\");");
    ln("        }");
    ln("        if (level > 2) {");
    ln("            print_str(\"audit: impossible level\\n\");");
    ln("        }");
    ln("        if (auth > 1) {");
    ln("            print_str(\"audit: auth bits corrupt\\n\");");
    ln("        }");
    if (s.hasQuota) {
        ln("        if (sent > %d) {", s.quota);
        ln("            print_str(\"audit: quota overrun\\n\");");
        ln("        }");
    }
    if (s.hasStore) {
        ln("        if (used > %d) {", s.storeCap);
        ln("            print_str(\"audit: table overflow\\n\");");
        ln("        }");
    }
    ln("");
    ln("        if (id == %d) {", kCmdOpen);
    ln("            if (auth == 1) {");
    ln("                if (state == 0) {");
    ln("                    state = 1;");
    ln("                    print_str(\"opened\\n\");");
    ln("                } else {");
    ln("                    print_str(\"already open\\n\");");
    ln("                }");
    ln("            } else {");
    ln("                print_str(\"need login\\n\");");
    ln("            }");
    ln("        }");
    ln("        if (id == %d) {", kCmdStep);
    ln("            if (state >= 1) {");
    ln("                if (state < %d) {", s.maxState);
    ln("                    state = state + 1;");
    ln("                }");
    ln("                print_str(\"step\\n\");");
    ln("                tmp0 = tmp0 + state;");
    ln("            } else {");
    ln("                print_str(\"not open\\n\");");
    ln("            }");
    ln("        }");
    if (s.hasStore) {
        ln("        if (id == %d) {", kCmdPut);
        ln("            if (state >= 1) {");
        ln("                k = atoi(arg);");
        ln("                if (k > 0) {");
        ln("                    if (used < %d) {", s.storeCap);
        ln("                        store_key[used] = k;");
        ln("                        store_val[used] = round;");
        ln("                        used = used + 1;");
        if (s.hasQuota)
            ln("                        sent = sent + 1;");
        ln("                        print_str(\"stored\\n\");");
        ln("                    } else {");
        ln("                        print_str(\"full\\n\");");
        ln("                    }");
        ln("                } else {");
        ln("                    print_str(\"bad key\\n\");");
        ln("                }");
        ln("            } else {");
        ln("                print_str(\"not open\\n\");");
        ln("            }");
        ln("        }");
        ln("        if (id == %d) {", kCmdGet);
        ln("            k = atoi(arg);");
        ln("            found = 0;");
        ln("            i = 0;");
        ln("            while (i < used) {");
        ln("                if (store_key[i] == k) {");
        ln("                    print_int(store_val[i]);");
        ln("                    print_str(\"\\n\");");
        ln("                    found = 1;");
        ln("                    i = used;");
        ln("                } else {");
        ln("                    i = i + 1;");
        ln("                }");
        ln("            }");
        ln("            if (found == 0) {");
        ln("                print_str(\"miss\\n\");");
        ln("            }");
        ln("        }");
    }
    if (s.hasRecur) {
        ln("        if (id == %d) {", kCmdCalc);
        ln("            d = depth_sum(%d);", s.recurDepth);
        ln("            print_int(d);");
        ln("            print_str(\"\\n\");");
        ln("            tmp1 = tmp1 + d;");
        ln("        }");
    }
    // The privileged operation re-checks the principal name against
    // the privilege level — the sshd-style correlated pair.
    ln("        if (id == %d) {", kCmdClose);
    ln("            if (level == 2) {");
    ln("                if (strcmp(user, \"%s\") == 0) {",
       s.adminUser.c_str());
    ln("                    print_str(\"# closed by admin\\n\");");
    ln("                    state = 0;");
    ln("                } else {");
    ln("                    print_str(\"audit: priv/user "
       "mismatch\\n\");");
    ln("                }");
    ln("            } else {");
    ln("                print_str(\"close denied\\n\");");
    ln("            }");
    ln("        }");
    ln("        if (id == 0) {");
    ln("            print_str(\"?\\n\");");
    ln("        }");
    ln("        round = round + 1;");
    ln("    }");
    ln("    print_int(served);");
    ln("    print_str(\" done\\n\");");
    ln("}");
    return src;
}

/** The benign session script: login then @p s.rounds command/arg
 *  pairs that drive the state machine without ever taking an audit
 *  branch. Every round consumes exactly two input events. */
std::vector<std::string>
emitInputs(const Shape &s, Rng &rng)
{
    std::vector<std::string> in;
    const bool asAdmin = rng.chance(0.5);
    if (asAdmin) {
        in.push_back(s.adminUser);
        in.push_back(s.adminPass);
    } else {
        in.push_back(s.guestUser);
        in.push_back("pw");
    }

    int putKeys[8];
    int numPut = 0;
    for (uint32_t r = 0; r < s.rounds; r++) {
        std::string cmd, arg = "0";
        if (r == 0) {
            cmd = s.cmdName[kCmdOpen];
        } else {
            // Weighted command mix over whatever this seed supports.
            std::vector<int> menu = {kCmdStep, kCmdStep};
            if (s.hasStore) {
                menu.push_back(kCmdPut);
                menu.push_back(numPut ? kCmdGet : kCmdPut);
            }
            if (s.hasRecur)
                menu.push_back(kCmdCalc);
            if (asAdmin)
                menu.push_back(kCmdClose);
            if (rng.chance(0.15))
                menu.push_back(0); // unknown command
            int id = menu[rng.below(menu.size())];
            cmd = id == 0 ? "noop" : s.cmdName[id];
            if (id == kCmdPut) {
                int key = 1 + static_cast<int>(rng.below(99));
                arg = strprintf("%d", key);
                if (numPut < 8)
                    putKeys[numPut++] = key;
            } else if (id == kCmdGet) {
                // Mostly hit an existing key, sometimes miss.
                int key = numPut && rng.chance(0.7)
                    ? putKeys[rng.below(
                          static_cast<uint64_t>(numPut))]
                    : 777;
                arg = strprintf("%d", key);
            }
            // A close can re-open later rounds only via open.
            if (id == kCmdClose && r + 1 < s.rounds && numPut == 0)
                cmd = s.cmdName[kCmdStep];
        }
        in.push_back(cmd);
        in.push_back(arg);
    }
    return in;
}

/** In-range-ish tamper value for @p var: decision variables get
 *  values straddling their legal range (some writes are no-ops or
 *  non-CF on purpose, mirroring the paper's ~half-relevant rate). */
int64_t
valueFor(const Shape &s, const std::string &var, Rng &rng)
{
    if (var == "state")
        return rng.range(-3, s.maxState + 4);
    if (var == "level" || var == "auth")
        return rng.range(0, 5);
    if (var == "sent")
        return rng.range(-2, s.quota + 5);
    if (var == "used")
        return rng.range(-2, s.storeCap + 6);
    return rng.range(-9, 999); // scratch
}

std::vector<AttackRecipe>
planRecipes(const Shape &s, uint32_t total, uint32_t totalEvents,
            const std::vector<std::string> &decision, Rng &rng)
{
    std::vector<std::string> scratch;
    for (int t = 0; t < s.scratch; t++)
        scratch.push_back(strprintf("tmp%d", t));

    auto anyVar = [&]() -> const std::string & {
        // Decision-heavy but not exclusively: scratch writes keep a
        // share of recipes control-flow-irrelevant, like the paper's
        // random pokes.
        if (rng.chance(0.65) || scratch.empty())
            return decision[rng.below(decision.size())];
        return scratch[rng.below(scratch.size())];
    };
    auto event = [&]() {
        return 1 + static_cast<uint32_t>(rng.below(totalEvents));
    };

    std::vector<AttackRecipe> out;
    for (uint32_t n = 0; n < total; n++) {
        AttackRecipe r;
        r.kind = static_cast<RecipeKind>(n % kNumRecipeKinds);
        switch (r.kind) {
          case RecipeKind::SingleWord: {
            const std::string &v = anyVar();
            r.writes.push_back({v, valueFor(s, v, rng), event()});
            break;
          }
          case RecipeKind::MultiWrite: {
            // One payload, several neighbouring locals, one event.
            uint32_t e = event();
            uint32_t k = 2 + static_cast<uint32_t>(rng.below(3));
            for (uint32_t j = 0; j < k; j++) {
                const std::string &v = anyVar();
                r.writes.push_back({v, valueFor(s, v, rng), e});
            }
            break;
          }
          case RecipeKind::DecisionChain: {
            // Staged escalation: strictly increasing events, every
            // target a decision variable.
            uint32_t k = std::min<uint32_t>(
                2 + static_cast<uint32_t>(rng.below(2)),
                totalEvents);
            uint32_t e = 1 + static_cast<uint32_t>(rng.below(
                totalEvents - k + 1));
            for (uint32_t j = 0; j < k; j++) {
                // Cap so the remaining writes still fit strictly
                // below totalEvents — keeps the chain increasing.
                e = std::min(e, totalEvents - (k - 1 - j));
                const std::string &v =
                    decision[rng.below(decision.size())];
                r.writes.push_back({v, valueFor(s, v, rng), e});
                e += 1 + static_cast<uint32_t>(rng.below(3));
            }
            break;
          }
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace

const char *
recipeKindName(RecipeKind k)
{
    switch (k) {
      case RecipeKind::SingleWord:
        return "single_word";
      case RecipeKind::MultiWrite:
        return "multi_write";
      case RecipeKind::DecisionChain:
        return "decision_chain";
    }
    return "unknown";
}

std::string
recipeToString(const AttackRecipe &r)
{
    std::string out = recipeKindName(r.kind);
    out += ':';
    for (size_t i = 0; i < r.writes.size(); i++) {
        const RecipeWrite &w = r.writes[i];
        if (i)
            out += ',';
        out += strprintf("%s=%lld@%u", w.var.c_str(),
                         static_cast<long long>(w.value),
                         w.afterInputEvent);
    }
    return out;
}

GeneratedProgram
generate(uint64_t seed, const GenConfig &cfg)
{
    // Three independent streams so a tweak to (say) the recipe
    // planner cannot shift the emitted source of every seed.
    Rng srcRng(seed);
    Rng inRng(seed ^ 0x9e3779b97f4a7c15ull);
    Rng recRng(seed * 0x2545f4914f6cdd1dull + 0x1905);

    Shape s = drawShape(srcRng);

    GeneratedProgram gp;
    gp.seed = seed;
    gp.workload.name = strprintf("gen-%llu",
                                 static_cast<unsigned long long>(
                                     seed));
    gp.workload.vulnerability = "synthetic protocol server";
    gp.workload.source = emitSource(s);
    gp.workload.benignInputs = emitInputs(s, inRng);
    gp.totalInputEvents =
        static_cast<uint32_t>(gp.workload.benignInputs.size());

    gp.decisionVars = {"level", "auth", "state"};
    if (s.hasQuota)
        gp.decisionVars.push_back("sent");
    if (s.hasStore)
        gp.decisionVars.push_back("used");

    gp.recipes = planRecipes(s, cfg.recipesPerProgram,
                             gp.totalInputEvents, gp.decisionVars,
                             recRng);
    return gp;
}

CompiledProgram
compileGenerated(const GeneratedProgram &gp, const CorrOptions &opts)
{
    try {
        return compileAndAnalyze(gp.workload.source,
                                 gp.workload.name, opts);
    } catch (const FatalError &e) {
        fatal("gen: seed %llu emitted uncompilable MiniC — %s",
              static_cast<unsigned long long>(gp.seed), e.what());
    } catch (const PanicError &e) {
        // An internal compiler invariant tripping on generated input
        // must still be recoverable for the sweep reporting it.
        fatal("gen: seed %llu hit an internal compiler fault — %s",
              static_cast<unsigned long long>(gp.seed), e.what());
    }
}

uint64_t
fingerprint(const GeneratedProgram &gp)
{
    uint64_t h = kFnvOffset;
    h = fnv1aStr(h, gp.workload.source);
    for (const std::string &line : gp.workload.benignInputs)
        h = fnv1aStr(h, line);
    for (const AttackRecipe &r : gp.recipes)
        h = fnv1aStr(h, recipeToString(r));
    return h;
}

std::vector<TamperSpec>
recipeSpecs(const Vm &vm, const AttackRecipe &r)
{
    std::vector<TamperSpec> out;
    for (const RecipeWrite &w : r.writes) {
        TamperSpec spec;
        spec.randomStackTarget = false;
        spec.afterInputEvent = w.afterInputEvent;
        spec.addr = vm.entryLocalAddr(w.var);
        spec.bytes.resize(8);
        const uint64_t v = static_cast<uint64_t>(w.value);
        for (int b = 0; b < 8; b++)
            spec.bytes[b] = static_cast<uint8_t>(v >> (8 * b));
        out.push_back(std::move(spec));
    }
    return out;
}

void
armRecipe(Vm &vm, const AttackRecipe &r)
{
    for (const TamperSpec &spec : recipeSpecs(vm, r))
        vm.addTamper(spec);
}

std::vector<Workload>
corpusWorkloads(uint64_t first, uint64_t last, const GenConfig &cfg)
{
    if (first > last)
        fatal("gen: empty seed range %llu:%llu",
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(last));
    std::vector<Workload> out;
    for (uint64_t seed = first; seed <= last; seed++)
        out.push_back(generate(seed, cfg).workload);
    return out;
}

} // namespace gen
} // namespace ipds
