#ifndef IPDS_GEN_GEN_H
#define IPDS_GEN_GEN_H

/**
 * @file
 * Seeded MiniC workload & attack corpus generator.
 *
 * The ten hand-written server workalikes (src/workloads) cap scenario
 * diversity: every coverage and equivalence claim rests on the same
 * ten programs. This subsystem turns one u64 seed into a complete
 * synthetic server — a MiniC program with a protocol-style state
 * machine, authentication/privilege flag locals, bounded recursion,
 * global-table data flow and a multi-request session loop — plus a
 * benign session script and a set of typed attack recipes.
 *
 * Everything is a pure function of the seed: the same seed yields
 * byte-identical source, script and recipes on every platform (the
 * golden-fingerprint test in tests/test_gen.cc pins this). Generated
 * programs are exposed as ipds::Workload values, so every existing
 * harness — fig7 campaigns, fault injection, capture/replay, serve
 * ingest — consumes them through the workload registry with zero
 * changes to its core:
 *
 *   gen::GeneratedProgram gp = gen::generate(7);
 *   registerWorkloads({&gp.workload, 1});      // joins allWorkloads()
 *
 * Attack recipes go beyond the campaign's single random poke
 * (attack/campaign.h) into the data-only-attack models of the CFI
 * and fault-attack literature (PAPERS.md):
 *
 *   - SingleWord:     one 8-byte write at one input event;
 *   - MultiWrite:     2-4 writes landing at the SAME input event
 *                     (one exploit payload hitting several locals);
 *   - DecisionChain:  2-3 writes at increasing input events, each
 *                     targeting a decision variable (auth, privilege
 *                     level, protocol state) — a staged escalation.
 *
 * Recipes name entry-function locals; armRecipe() resolves them
 * through Vm::entryLocalAddr and arms them via Vm::addTamper, whose
 * input-event triggers fire in the engine-shared builtin path — so a
 * recipe run is bit-identical across switch/threaded/batched
 * execution (the differential harness in src/gen/corpus.h proves it
 * per seed).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

namespace ipds {
namespace gen {

/** Attack-recipe taxonomy (see file comment). */
enum class RecipeKind : uint8_t
{
    SingleWord,
    MultiWrite,
    DecisionChain,
};

/** Number of RecipeKind values (aggregation arrays). */
inline constexpr size_t kNumRecipeKinds = 3;

/** Stable lower-case name of @p k ("single_word", ...). */
const char *recipeKindName(RecipeKind k);

/** One scripted write: set entry-function local @p var to @p value
 *  when the @p afterInputEvent-th input event commits. */
struct RecipeWrite
{
    std::string var;
    int64_t value = 0;
    uint32_t afterInputEvent = 1;
};

/** One typed attack against a generated program. */
struct AttackRecipe
{
    RecipeKind kind = RecipeKind::SingleWord;
    /** Ordered by afterInputEvent (ties: recipe order). */
    std::vector<RecipeWrite> writes;
};

/** Canonical one-line text form ("multi_write:auth=1@3,state=9@3").
 *  Feeds the fingerprint, reports and the ipds_gen --emit files. */
std::string recipeToString(const AttackRecipe &r);

/** Generator knobs. The defaults are the pinned corpus shape —
 *  change them and the golden fingerprints change with them. */
struct GenConfig
{
    /** Attack recipes per program, split evenly across the three
     *  kinds (remainder goes to the earlier kinds). */
    uint32_t recipesPerProgram = 9;
};

/** One generated program: workload + recipes + targeting metadata. */
struct GeneratedProgram
{
    uint64_t seed = 0;
    /** name "gen-<seed>"; source, benign script inside. */
    Workload workload;
    std::vector<AttackRecipe> recipes;
    /** Entry-function locals that carry control decisions (protocol
     *  state, auth flags, privilege level, quotas) — what
     *  DecisionChain recipes target. */
    std::vector<std::string> decisionVars;
    /** Input events the benign script produces (recipe triggers are
     *  within [1, totalInputEvents]). */
    uint32_t totalInputEvents = 0;
};

/** Generate the program for @p seed. Pure and deterministic. */
GeneratedProgram generate(uint64_t seed, const GenConfig &cfg = {});

/**
 * Compile-and-analyze gp.workload.source. Any frontend or analysis
 * failure — including internal PanicErrors — surfaces as a
 * recoverable FatalError naming the seed, so corpus sweeps report
 * "seed N is uncompilable" instead of dying.
 */
CompiledProgram compileGenerated(const GeneratedProgram &gp,
                                 const CorrOptions &opts = {});

/**
 * FNV-1a fingerprint over the emitted source, the benign session
 * script and the canonical recipe lines — the value the golden
 * determinism test pins per seed.
 */
uint64_t fingerprint(const GeneratedProgram &gp);

/** The recipe's writes as explicit-address TamperSpecs resolved
 *  against @p vm's entry-frame layout (Vm::entryLocalAddr). */
std::vector<TamperSpec> recipeSpecs(const Vm &vm,
                                    const AttackRecipe &r);

/** Arm every write of @p r on @p vm via Vm::addTamper. */
void armRecipe(Vm &vm, const AttackRecipe &r);

/**
 * Workload values for the inclusive seed range [first, last] — feed
 * them to registerWorkloads() and every registry-driven harness
 * (fig7_detection --gen-seeds, fault sweeps) picks them up.
 * FatalError when first > last.
 */
std::vector<Workload> corpusWorkloads(uint64_t first, uint64_t last,
                                      const GenConfig &cfg = {});

} // namespace gen
} // namespace ipds

#endif // IPDS_GEN_GEN_H
