#include "attack/campaign.h"

#include "obs/names.h"
#include "support/diag.h"
#include "support/rng.h"
#include "support/threadpool.h"

namespace ipds {

uint32_t
CampaignResult::numCfChanged() const
{
    uint32_t n = 0;
    for (const auto &o : outcomes)
        n += o.cfChanged ? 1 : 0;
    return n;
}

uint32_t
CampaignResult::numDetected() const
{
    uint32_t n = 0;
    for (const auto &o : outcomes)
        n += o.detected ? 1 : 0;
    return n;
}

double
CampaignResult::pctCfChanged() const
{
    return attacks() ? 100.0 * numCfChanged() / attacks() : 0.0;
}

double
CampaignResult::pctDetected() const
{
    return attacks() ? 100.0 * numDetected() / attacks() : 0.0;
}

double
CampaignResult::pctDetectedOfCf() const
{
    uint32_t cf = numCfChanged();
    return cf ? 100.0 * numDetected() / cf : 0.0;
}

void
CampaignResult::exportMetrics(obs::MetricsRegistry &reg) const
{
    namespace n = obs::names;
    reg.add(reg.counter(n::kCampAttacks), attacks());
    uint32_t fired = 0;
    for (const auto &o : outcomes)
        fired += o.fired ? 1 : 0;
    reg.add(reg.counter(n::kCampFired), fired);
    reg.add(reg.counter(n::kCampCfChanged), numCfChanged());
    reg.add(reg.counter(n::kCampDetected), numDetected());
    reg.add(reg.counter(n::kCampFalsePositives),
            falsePositive ? 1 : 0);
    obs::MetricHandle h =
        reg.histogram(n::kCampDetectionBranchHist);
    for (const auto &o : outcomes)
        if (o.detected)
            reg.observe(h, o.detectionBranchIndex);
}

bool
benignRunIsClean(const CompiledProgram &prog,
                 const std::vector<std::string> &inputs, uint64_t fuel)
{
    Vm vm(prog.mod);
    vm.setInputs(inputs);
    vm.setFuel(fuel);
    Detector det(prog);
    vm.addObserver(&det);
    vm.run();
    return !det.alarmed();
}

CampaignResult
runCampaign(const CompiledProgram &prog,
            const std::vector<std::string> &inputs,
            const CampaignConfig &cfg)
{
    CampaignResult res;
    res.program = prog.mod.name;

    // Golden run: benign session, detector attached. Its branch trace
    // is the control-flow reference, and it must never alarm.
    std::vector<BranchEvent> golden;
    {
        Vm vm(prog.mod);
        vm.setInputs(inputs);
        vm.setFuel(cfg.fuel);
        Detector det(prog);
        vm.addObserver(&det);
        RunResult r = vm.run();
        if (r.exit == ExitKind::OutOfFuel)
            warn("campaign %s: golden run hit the fuel limit",
                 prog.mod.name.c_str());
        res.falsePositive = det.alarmed();
        res.goldenSteps = r.steps;
        res.goldenInputEvents = r.inputEventCount;
        golden = std::move(r.branchTrace);
    }

    // Attacks are mutually independent: each run owns its Vm and
    // Detector, seeds derive from the attack index, and outcomes land
    // in per-index slots — so sharding them across worker threads
    // yields results identical to the sequential loop.
    uint32_t maxEvent = std::max(1u, res.goldenInputEvents);
    res.outcomes.resize(cfg.numAttacks);
    ThreadPool pool(cfg.numThreads);
    pool.parallelFor(cfg.numAttacks, [&](uint32_t i) {
        uint64_t seed = cfg.baseSeed + 0x9e37 * (i + 1);
        Rng trigRng(seed ^ 0xabcdef);

        Vm vm(prog.mod);
        vm.setInputs(inputs);
        vm.setFuel(cfg.fuel);
        Detector det(prog);
        vm.addObserver(&det);

        TamperSpec spec;
        spec.randomStackTarget = true;
        spec.seed = seed;
        spec.afterInputEvent =
            1 + static_cast<uint32_t>(trigRng.below(maxEvent));
        vm.setTamper(spec);

        RunResult r = vm.run();
        AttackOutcome out;
        out.fired = r.tamper.fired;
        out.exit = r.exit;
        out.tamper = r.tamper;
        out.cfChanged = !(r.branchTrace == golden);
        out.detected = det.alarmed();
        if (out.detected)
            out.detectionBranchIndex =
                det.alarms().front().branchIndex;
        res.outcomes[i] = std::move(out);
    });
    return res;
}

} // namespace ipds
