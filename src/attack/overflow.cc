#include "attack/overflow.h"

#include <cstring>

#include "core/program.h"
#include "ipds/detector.h"
#include "support/diag.h"
#include "support/rng.h"

namespace ipds {

namespace {

const char *kPattern = "get_input_n(";

/** Byte offset of the @p occurrence-th bounded read; npos if none. */
size_t
findRead(const std::string &src, uint32_t occurrence)
{
    size_t pos = 0;
    for (uint32_t i = 0;; i++) {
        pos = src.find(kPattern, pos);
        if (pos == std::string::npos)
            return std::string::npos;
        if (i == occurrence)
            return pos;
        pos += 1;
    }
}

/**
 * Translate a branch trace into build-independent tokens
 * (function id, branch ordinal within the function, direction): the
 * planted variant shifts every PC, so traces from different builds
 * can only be compared structurally.
 */
std::vector<uint64_t>
canonicalize(const CompiledProgram &prog,
             const std::vector<BranchEvent> &trace)
{
    std::map<uint64_t, uint64_t> token; // pc -> func<<21 | idx<<1
    for (const auto &cf : prog.funcs) {
        for (uint32_t i = 0; i < cf.bat.branchPcs.size(); i++) {
            token[cf.bat.branchPcs[i]] =
                (static_cast<uint64_t>(cf.bat.func) << 21) |
                (static_cast<uint64_t>(i) << 1);
        }
    }
    std::vector<uint64_t> out;
    out.reserve(trace.size());
    for (const auto &ev : trace)
        out.push_back(token[ev.pc] | (ev.taken ? 1 : 0));
    return out;
}

} // namespace

uint32_t
countInputReads(const std::string &source)
{
    uint32_t n = 0;
    size_t pos = 0;
    while ((pos = source.find(kPattern, pos)) != std::string::npos) {
        n++;
        pos += 1;
    }
    return n;
}

std::string
plantVulnerability(const std::string &source, uint32_t occurrence)
{
    size_t pos = findRead(source, occurrence);
    if (pos == std::string::npos)
        fatal("plantVulnerability: no bounded read #%u", occurrence);
    // get_input_n(buf, N)  ->  get_input(buf)
    size_t open = pos + std::string(kPattern).size();
    size_t comma = source.find(',', open);
    size_t close = source.find(')', open);
    if (comma == std::string::npos || close == std::string::npos ||
        comma > close)
        fatal("plantVulnerability: malformed read at byte %zu", pos);
    std::string buf = source.substr(open, comma - open);
    std::string out = source.substr(0, pos);
    out += "get_input(" + buf + ")";
    out += source.substr(close + 1);
    return out;
}

CampaignResult
runOverflowCampaign(const std::string &source, const std::string &name,
                    const std::vector<std::string> &inputs,
                    const CampaignConfig &cfg)
{
    uint32_t reads = countInputReads(source);
    if (reads == 0)
        fatal("runOverflowCampaign: %s has no bounded reads",
              name.c_str());

    CampaignResult res;
    res.program = name;

    // The original (bounded) program is the reference: running it on
    // the attack inputs yields the no-corruption behaviour of the
    // same data, so any trace divergence of the vulnerable variant is
    // attributable to the overflow itself, not to the input change.
    CompiledProgram original = compileAndAnalyze(source, name);

    std::vector<CompiledProgram> variants;
    // Input lines that reach each variant's unbounded read in the
    // benign session — the lines a real exploit would target.
    std::vector<std::vector<uint32_t>> vulnLines(reads);
    variants.reserve(reads);
    for (uint32_t v = 0; v < reads; v++) {
        variants.push_back(
            compileAndAnalyze(plantVulnerability(source, v),
                              strprintf("%s#v%u", name.c_str(), v)));
        // Benign session on each variant must be alarm-free; its
        // event log tells us which lines feed the planted read.
        Vm vm(variants.back().mod);
        vm.setInputs(inputs);
        vm.setFuel(cfg.fuel);
        Detector det(variants.back());
        vm.addObserver(&det);
        RunResult r = vm.run();
        res.falsePositive |= det.alarmed();
        res.goldenSteps = std::max(res.goldenSteps, r.steps);
        res.goldenInputEvents = r.inputEventCount;

        uint64_t plantedPc = 0;
        for (const auto &fn : variants.back().mod.functions)
            for (const auto &bb : fn.blocks)
                for (const auto &in : bb.insts)
                    if (in.op == Op::Call &&
                        in.builtin == Builtin::GetInput)
                        plantedPc = in.pc;
        for (uint32_t e = 0; e < r.inputEventPcs.size(); e++)
            if (r.inputEventPcs[e] == plantedPc)
                vulnLines[v].push_back(e);
    }

    static const char *tokens[] = {"admin", "root", "secret",
                                   "anonymous", "sys:", "1", "99999"};
    for (uint32_t i = 0; i < cfg.numAttacks; i++) {
        Rng rng(cfg.baseSeed + 0x51ed * (i + 1));
        uint32_t v = static_cast<uint32_t>(rng.below(variants.size()));
        const CompiledProgram &var = variants[v];
        // A real exploit targets the vulnerable read; fall back to a
        // random line when the benign session never reaches it.
        uint32_t line;
        if (!vulnLines[v].empty()) {
            line = vulnLines[v][rng.below(vulnLines[v].size())];
        } else {
            line = static_cast<uint32_t>(
                rng.below(std::max<size_t>(1, inputs.size())));
        }

        std::string payload(
            8 + static_cast<size_t>(rng.below(133)),
            static_cast<char>('A' + rng.below(26)));
        if (rng.chance(0.5)) {
            const char *tok = tokens[rng.below(7)];
            size_t at = rng.below(payload.size());
            payload.replace(at, std::min(std::strlen(tok),
                                         payload.size() - at),
                            tok);
        }
        std::vector<std::string> attacked = inputs;
        if (line < attacked.size())
            attacked[line] = payload;
        else
            attacked.push_back(payload);

        // Reference: bounded program, same inputs. This is a benign-
        // semantics run and must itself never alarm (extra zero-FP
        // coverage on arbitrary inputs).
        std::vector<uint64_t> reference;
        {
            Vm vm(original.mod);
            vm.setInputs(attacked);
            vm.setFuel(cfg.fuel);
            Detector det(original);
            vm.addObserver(&det);
            RunResult r = vm.run();
            res.falsePositive |= det.alarmed();
            reference = canonicalize(original, r.branchTrace);
        }

        Vm vm(var.mod);
        vm.setInputs(attacked);
        vm.setFuel(cfg.fuel);
        Detector det(var);
        vm.addObserver(&det);
        RunResult r = vm.run();

        AttackOutcome out;
        out.fired = true; // the payload was delivered by construction
        out.exit = r.exit;
        out.cfChanged = canonicalize(var, r.branchTrace) != reference;
        out.detected = det.alarmed();
        if (out.detected)
            out.detectionBranchIndex =
                det.alarms().front().branchIndex;
        res.outcomes.push_back(std::move(out));
    }
    return res;
}

} // namespace ipds
