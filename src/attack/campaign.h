#ifndef IPDS_ATTACK_CAMPAIGN_H
#define IPDS_ATTACK_CAMPAIGN_H

/**
 * @file
 * Simulated-attack campaigns (paper §6).
 *
 * Each campaign runs one benign "golden" session of a program, then
 * attacks it N times independently: every attack re-runs the same
 * session but corrupts one randomly selected live local stack location
 * at a randomly selected input event — the paper's model of a
 * format-string / targeted-overflow write. Outcomes are classified by
 *
 *  - did the tampering change control flow (branch trace differs from
 *    the golden trace)?
 *  - did IPDS raise an alarm?
 *
 * The golden run itself executes under the detector and must never
 * alarm (zero false positives); the campaign records a violation if it
 * ever does.
 */

#include <string>
#include <vector>

#include "core/program.h"
#include "ipds/detector.h"
#include "obs/metrics.h"
#include "vm/vm.h"

namespace ipds {

/** Classification of one attack. */
struct AttackOutcome
{
    bool fired = false;       ///< the tamper actually happened
    bool cfChanged = false;   ///< branch trace differs from golden
    bool detected = false;    ///< IPDS alarmed
    ExitKind exit = ExitKind::Returned;
    TamperRecord tamper;
    /** Dynamic branch count at first alarm (detection promptness). */
    uint64_t detectionBranchIndex = 0;
};

/** Campaign parameters. */
struct CampaignConfig
{
    uint32_t numAttacks = 100;
    uint64_t baseSeed = 0x1905;
    /** Instruction budget per run (tampered runs can loop forever). */
    uint64_t fuel = 2'000'000;
    /** Analysis feature switches (for ablation benches). */
    CorrOptions corr;
    /**
     * Worker threads for the attack loop (0 = one per hardware core).
     * Attacks are independent — per-attack RNG seeds derive from the
     * attack index — so results are identical for any thread count.
     */
    unsigned numThreads = 1;
};

/** Campaign results with the Figure 7 aggregates. */
struct CampaignResult
{
    std::string program;
    std::vector<AttackOutcome> outcomes;
    bool falsePositive = false; ///< golden run alarmed (must be false)
    uint64_t goldenSteps = 0;
    uint32_t goldenInputEvents = 0;

    uint32_t attacks() const
    {
        return static_cast<uint32_t>(outcomes.size());
    }
    uint32_t numCfChanged() const;
    uint32_t numDetected() const;

    /** %% of attacks that changed control flow (Figure 7, bar 1). */
    double pctCfChanged() const;
    /** %% of attacks detected by IPDS (Figure 7, bar 2). */
    double pctDetected() const;
    /** Detected as a share of control-flow-changing attacks (59.3%%
     *  average in the paper). */
    double pctDetectedOfCf() const;

    /**
     * Export the campaign aggregates into @p reg under the shared
     * naming scheme (obs/names.h, ipds.campaign.*). Deterministic:
     * derived from the outcome slots, which are index-ordered
     * regardless of the worker-thread count.
     */
    void exportMetrics(obs::MetricsRegistry &reg) const;
};

/**
 * Run a campaign against @p prog using benign session @p inputs.
 */
CampaignResult runCampaign(const CompiledProgram &prog,
                           const std::vector<std::string> &inputs,
                           const CampaignConfig &cfg);

/**
 * Run only the benign session under the detector; returns true iff no
 * alarm fired (the zero-false-positive property).
 */
bool benignRunIsClean(const CompiledProgram &prog,
                      const std::vector<std::string> &inputs,
                      uint64_t fuel = 2'000'000);

} // namespace ipds

#endif // IPDS_ATTACK_CAMPAIGN_H
