#ifndef IPDS_ATTACK_OVERFLOW_H
#define IPDS_ATTACK_OVERFLOW_H

/**
 * @file
 * Buffer-overflow attack campaigns through the input channel.
 *
 * The paper (§6): "we manually introduce more buffer overflow
 * vulnerabilities into the server programs originally only having a
 * few". This module does the same mechanically: plantVulnerability()
 * replaces one bounded input read (`get_input_n(buf, N)`) in a
 * workload's source with the unbounded `get_input(buf)`, and
 * runOverflowCampaign() attacks each planted variant by sending an
 * overlong payload on that read — a REAL overflow that runs past the
 * buffer into neighbouring stack state, not an out-of-band poke.
 */

#include <string>
#include <vector>

#include "attack/campaign.h"

namespace ipds {

/** Number of bounded input reads that could be made vulnerable. */
uint32_t countInputReads(const std::string &source);

/**
 * Return @p source with its @p occurrence-th (0-based)
 * `get_input_n(buf, N)` replaced by the unbounded `get_input(buf)`.
 * Throws FatalError if the occurrence does not exist.
 */
std::string plantVulnerability(const std::string &source,
                               uint32_t occurrence);

/**
 * Overflow campaign: for each attack, pick a planted variant and an
 * input event, replace that session line with an overlong payload
 * (filler plus, sometimes, a meaningful token such as a credential
 * string), run, and classify exactly like the poke campaign.
 *
 * The golden runs of every variant execute under the detector and
 * must stay alarm-free (the benign script never overflows).
 */
CampaignResult runOverflowCampaign(const std::string &source,
                                   const std::string &name,
                                   const std::vector<std::string> &inputs,
                                   const CampaignConfig &cfg);

} // namespace ipds

#endif // IPDS_ATTACK_OVERFLOW_H
