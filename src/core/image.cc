#include "core/image.h"

#include "support/diag.h"

namespace ipds {

namespace {

constexpr uint32_t kMagic = 0x49504453; // "IPDS"
constexpr uint32_t kVersion = 1;

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; i++)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const std::vector<uint8_t> &in, size_t &pos)
{
    if (pos + 4 > in.size())
        fatal("IPDS image truncated at byte %zu", pos);
    uint32_t v = 0;
    for (int i = 0; i < 4; i++)
        v |= static_cast<uint32_t>(in[pos++]) << (8 * i);
    return v;
}

uint64_t
getU64(const std::vector<uint8_t> &in, size_t &pos)
{
    if (pos + 8 > in.size())
        fatal("IPDS image truncated at byte %zu", pos);
    uint64_t v = 0;
    for (int i = 0; i < 8; i++)
        v |= static_cast<uint64_t>(in[pos++]) << (8 * i);
    return v;
}

} // namespace

std::vector<uint8_t>
buildImage(const CompiledProgram &prog)
{
    // Pack each function's tables first so offsets are known.
    std::vector<std::vector<uint8_t>> packed;
    packed.reserve(prog.funcs.size());
    for (const auto &cf : prog.funcs)
        packed.push_back(cf.tables.pack());

    std::vector<uint8_t> out;
    putU32(out, kMagic);
    putU32(out, kVersion);
    putU32(out, static_cast<uint32_t>(prog.funcs.size()));

    // Function info table: fixed-size records.
    uint64_t headerBytes = 12 +
        static_cast<uint64_t>(prog.funcs.size()) * (8 + 8 + 8 + 3 + 5);
    uint64_t cursor = headerBytes;
    for (size_t i = 0; i < prog.funcs.size(); i++) {
        const Function &fn = prog.mod.functions[i];
        const HashParams &h = prog.funcs[i].tables.hash;
        putU64(out, fn.entryPc);
        putU64(out, cursor);
        putU64(out, packed[i].size());
        out.push_back(h.shift1);
        out.push_back(h.shift2);
        out.push_back(h.log2Space);
        // Reserved padding keeps records 8-byte friendly.
        for (int p = 0; p < 5; p++)
            out.push_back(0);
        cursor += packed[i].size();
    }
    if (out.size() != headerBytes)
        panic("buildImage: header size accounting is off (%zu vs "
              "%llu)", out.size(),
              static_cast<unsigned long long>(headerBytes));

    for (const auto &blob : packed)
        out.insert(out.end(), blob.begin(), blob.end());
    return out;
}

ProgramImage
loadImage(const std::vector<uint8_t> &blob)
{
    size_t pos = 0;
    if (getU32(blob, pos) != kMagic)
        fatal("not an IPDS image (bad magic)");
    if (getU32(blob, pos) != kVersion)
        fatal("unsupported IPDS image version");
    uint32_t count = getU32(blob, pos);
    if (count > (1u << 20))
        fatal("implausible function count %u in IPDS image", count);

    ProgramImage img;
    img.imageBytes = blob.size();
    img.functions.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        FuncInfoEntry e;
        e.func = i;
        e.entryPc = getU64(blob, pos);
        e.tableOffset = getU64(blob, pos);
        e.tableBytes = getU64(blob, pos);
        if (pos + 8 > blob.size())
            fatal("IPDS image truncated in info record %u", i);
        e.hash.shift1 = blob[pos++];
        e.hash.shift2 = blob[pos++];
        e.hash.log2Space = blob[pos++];
        pos += 5; // reserved
        if (e.tableOffset + e.tableBytes > blob.size())
            fatal("IPDS image: table %u out of range", i);
        img.functions.push_back(e);
    }

    img.tables.reserve(count);
    for (const auto &e : img.functions) {
        std::vector<uint8_t> sub(
            blob.begin() + static_cast<ptrdiff_t>(e.tableOffset),
            blob.begin() +
                static_cast<ptrdiff_t>(e.tableOffset + e.tableBytes));
        img.tables.push_back(FuncTables::unpack(sub, e.func));
    }
    return img;
}

} // namespace ipds
