#include "core/hashfn.h"

#include <set>

#include "support/diag.h"

namespace ipds {

namespace {

/** True if @p p maps all @p pcs to distinct slots. */
bool
collisionFree(const HashParams &p, const std::vector<uint64_t> &pcs,
              std::vector<uint8_t> &scratch)
{
    scratch.assign(p.space(), 0);
    for (uint64_t pc : pcs) {
        uint32_t slot = p.apply(pc);
        if (scratch[slot])
            return false;
        scratch[slot] = 1;
    }
    return true;
}

} // namespace

HashParams
findPerfectHash(const std::vector<uint64_t> &pcs, uint8_t max_shift,
                uint8_t max_log2)
{
    {
        std::set<uint64_t> uniq(pcs.begin(), pcs.end());
        if (uniq.size() != pcs.size())
            fatal("findPerfectHash: duplicate branch PCs (%zu given, "
                  "%zu distinct)", pcs.size(), uniq.size());
    }

    uint8_t log2 = 0;
    while ((1u << log2) < pcs.size())
        log2++;

    std::vector<uint8_t> scratch;
    uint32_t tries = 0;
    for (; log2 <= max_log2 && log2 < 31; log2++) {
        for (uint8_t s1 = 1; s1 <= max_shift; s1++) {
            for (uint8_t s2 = s1; s2 <= max_shift; s2++) {
                HashParams p;
                p.shift1 = s1;
                p.shift2 = s2;
                p.log2Space = log2;
                tries++;
                if (collisionFree(p, pcs, scratch)) {
                    p.tries = tries;
                    return p;
                }
            }
        }
    }
    fatal("findPerfectHash: no collision-free hash up to 2^%u slots "
          "for %zu branches (%u parameter sets tried)",
          static_cast<unsigned>(max_log2), pcs.size(), tries);
}

} // namespace ipds
