#include "core/tables.h"

#include <algorithm>

#include "support/bitstream.h"
#include "support/diag.h"

namespace ipds {

FuncTables
layoutTables(const FuncBat &bat, uint8_t max_hash_log2)
{
    FuncTables t;
    t.func = bat.func;
    t.numBranches = bat.numBranches;
    t.hash = findPerfectHash(bat.branchPcs, 24, max_hash_log2);

    uint32_t space = t.hash.space();
    t.slotOfBranch.resize(bat.numBranches);
    t.bcv.assign(space, false);
    t.onTaken.resize(space);
    t.onNotTaken.resize(space);

    for (uint32_t i = 0; i < bat.numBranches; i++)
        t.slotOfBranch[i] = t.hash.apply(bat.branchPcs[i]);

    auto remapList = [&](const ActionList &src) {
        std::vector<SlotAction> out;
        out.reserve(src.size());
        for (const auto &[bidx, act] : src)
            out.push_back({t.slotOfBranch[bidx], act});
        return out;
    };

    for (uint32_t i = 0; i < bat.numBranches; i++) {
        uint32_t slot = t.slotOfBranch[i];
        t.bcv[slot] = bat.bcv[i];
        t.onTaken[slot] = remapList(bat.onTaken[i]);
        t.onNotTaken[slot] = remapList(bat.onNotTaken[i]);
    }
    t.entryActions = remapList(bat.entryActions);

    // --- runtime fast-path lookup ------------------------------------
    // A function's branch pcs span at most its instruction count, so a
    // dense array indexed by (pc - base) / 4 stays small and gives the
    // detector an O(1) record read with no hashing. The record also
    // carries the branch's action lists as spans into one flat pool, so
    // the hot path never chases vector-of-vector pointers.
    if (bat.numBranches > 0) {
        uint64_t lo = bat.branchPcs[0], hi = bat.branchPcs[0];
        for (uint64_t pc : bat.branchPcs) {
            lo = std::min(lo, pc);
            hi = std::max(hi, pc);
        }
        t.lookupBasePc = lo;
        t.branchRecs.assign((hi - lo) / 4 + 1, BranchRec{});
        for (uint32_t i = 0; i < bat.numBranches; i++) {
            uint32_t slot = t.slotOfBranch[i];
            BranchRec rec;
            rec.slot = slot;
            rec.checked = bat.bcv[i] ? 1 : 0;
            rec.takenOff = static_cast<uint32_t>(t.actionPool.size());
            rec.takenLen =
                static_cast<uint32_t>(t.onTaken[slot].size());
            t.actionPool.insert(t.actionPool.end(),
                                t.onTaken[slot].begin(),
                                t.onTaken[slot].end());
            rec.notTakenOff =
                static_cast<uint32_t>(t.actionPool.size());
            rec.notTakenLen =
                static_cast<uint32_t>(t.onNotTaken[slot].size());
            t.actionPool.insert(t.actionPool.end(),
                                t.onNotTaken[slot].begin(),
                                t.onNotTaken[slot].end());
            t.branchRecs[(bat.branchPcs[i] - lo) / 4] = rec;
        }
    }

    // --- bit accounting (Figure 8) -----------------------------------
    uint64_t nActions = bat.totalActions();
    unsigned ptrBits = bitsFor(nActions);
    unsigned entryBits = t.hash.log2Space + 3;
    t.bsvBits = 2ULL * space;
    t.bcvBits = space;
    t.batBits =
        (2ULL * space + 1) * ptrBits + nActions * entryBits;
    return t;
}

std::vector<uint8_t>
FuncTables::pack() const
{
    BitWriter w;
    uint32_t space = hash.space();

    // Count actions first; the pool-pointer width depends on it.
    uint64_t nActions = entryActions.size();
    for (const auto &l : onTaken)
        nActions += l.size();
    for (const auto &l : onNotTaken)
        nActions += l.size();
    unsigned ptrBits = bitsFor(nActions);

    // Preamble (parse metadata; lives in the function info table, not
    // counted in the Figure-8 BAT size).
    w.put(hash.log2Space, 5);
    w.put(hash.shift1, 5);
    w.put(hash.shift2, 5);
    w.put(nActions, 32);

    // BCV.
    for (uint32_t s = 0; s < space; s++)
        w.put(bcv[s] ? 1 : 0, 1);

    // BAT headers: list start pointers (1-based; 0 = empty), in the
    // fixed order taken[0..], nottaken[0..], entry.
    uint64_t cursor = 0;
    auto headerFor = [&](const std::vector<SlotAction> &l) {
        uint64_t ptr = l.empty() ? 0 : cursor + 1;
        cursor += l.size();
        w.put(ptr, ptrBits);
    };
    for (uint32_t s = 0; s < space; s++)
        headerFor(onTaken[s]);
    for (uint32_t s = 0; s < space; s++)
        headerFor(onNotTaken[s]);
    headerFor(entryActions);

    // Action pool, same order.
    auto poolFor = [&](const std::vector<SlotAction> &l) {
        for (size_t i = 0; i < l.size(); i++) {
            w.put(l[i].slot, hash.log2Space == 0 ? 1 : hash.log2Space);
            w.put(static_cast<uint64_t>(l[i].act), 2);
            w.put(i + 1 == l.size() ? 1 : 0, 1);
        }
    };
    for (uint32_t s = 0; s < space; s++)
        poolFor(onTaken[s]);
    for (uint32_t s = 0; s < space; s++)
        poolFor(onNotTaken[s]);
    poolFor(entryActions);

    return w.bytes();
}

FuncTables
FuncTables::unpack(const std::vector<uint8_t> &image, FuncId func)
{
    if (image.size() < 6)
        fatal("packed tables truncated (only %zu bytes)",
              image.size());
    BitReader r(image);
    FuncTables t;
    t.func = func;
    t.hash.log2Space = static_cast<uint8_t>(r.get(5));
    t.hash.shift1 = static_cast<uint8_t>(r.get(5));
    t.hash.shift2 = static_cast<uint8_t>(r.get(5));
    uint64_t nActions = r.get(32);
    unsigned ptrBits = bitsFor(nActions);
    uint32_t space = t.hash.space();
    unsigned slotBits = t.hash.log2Space == 0 ? 1 : t.hash.log2Space;

    // A hostile/corrupted image must be rejected, not trusted: check
    // that every field announced by the header actually fits before
    // reading (or allocating) anything.
    uint64_t avail = static_cast<uint64_t>(image.size()) * 8;
    uint64_t need = 47 + static_cast<uint64_t>(space) +
        (2ULL * space + 1) * ptrBits + nActions * (slotBits + 3);
    if (t.hash.log2Space > 24 || need > avail)
        fatal("packed tables inconsistent: header announces %llu "
              "bits, image holds %llu",
              static_cast<unsigned long long>(need),
              static_cast<unsigned long long>(avail));

    t.bcv.resize(space);
    for (uint32_t s = 0; s < space; s++)
        t.bcv[s] = r.get(1) != 0;

    std::vector<uint64_t> ptrs(2 * space + 1);
    for (auto &p : ptrs)
        p = r.get(ptrBits);

    struct PoolEntry
    {
        SlotAction sa;
        bool last;
    };
    std::vector<PoolEntry> pool(nActions);
    for (auto &e : pool) {
        e.sa.slot = static_cast<uint32_t>(r.get(slotBits));
        if (e.sa.slot >= space)
            fatal("packed tables corrupt: action slot %u outside "
                  "hash space %u", e.sa.slot, space);
        e.sa.act = static_cast<BrAction>(r.get(2));
        e.last = r.get(1) != 0;
    }

    auto listAt = [&](uint64_t ptr) {
        std::vector<SlotAction> out;
        if (ptr == 0)
            return out;
        for (uint64_t i = ptr - 1; i < pool.size(); i++) {
            out.push_back(pool[i].sa);
            if (pool[i].last)
                break;
        }
        return out;
    };

    t.onTaken.resize(space);
    t.onNotTaken.resize(space);
    for (uint32_t s = 0; s < space; s++)
        t.onTaken[s] = listAt(ptrs[s]);
    for (uint32_t s = 0; s < space; s++)
        t.onNotTaken[s] = listAt(ptrs[space + s]);
    t.entryActions = listAt(ptrs[2 * space]);

    t.bsvBits = 2ULL * space;
    t.bcvBits = space;
    t.batBits = (2ULL * space + 1) * ptrBits +
        nActions * (t.hash.log2Space + 3);
    return t;
}

} // namespace ipds
