#ifndef IPDS_CORE_PROGRAM_H
#define IPDS_CORE_PROGRAM_H

/**
 * @file
 * The compile pipeline: MiniC source (or hand-built IR) to a fully
 * analyzed program with per-function BSV/BCV/BAT tables and the
 * function information table of §5.4. This is the compiler half of
 * IPDS; the runtime half lives in src/ipds.
 */

#include <memory>
#include <string>
#include <vector>

#include "analysis/effects.h"
#include "analysis/memloc.h"
#include "analysis/pointsto.h"
#include "core/batbuild.h"
#include "core/correlation.h"
#include "core/tables.h"

namespace ipds {

/** Everything IPDS knows about one compiled function. */
struct CompiledFunction
{
    FuncCorrelation corr;
    FuncBat bat;
    FuncTables tables;
};

/** Aggregate static statistics (feeds Figure 8 and reports). */
struct StaticStats
{
    uint32_t numFunctions = 0;
    uint32_t numBranches = 0;
    uint32_t numCheckable = 0;
    uint64_t totalBsvBits = 0;
    uint64_t totalBcvBits = 0;
    uint64_t totalBatBits = 0;
    double compileSeconds = 0.0;
    uint64_t totalHashTries = 0;

    double avgBsvBits() const
    {
        return numFunctions ? double(totalBsvBits) / numFunctions : 0;
    }
    double avgBcvBits() const
    {
        return numFunctions ? double(totalBcvBits) / numFunctions : 0;
    }
    double avgBatBits() const
    {
        return numFunctions ? double(totalBatBits) / numFunctions : 0;
    }
};

/**
 * A compiled-and-analyzed program: the unit the VM executes and the
 * IPDS runtime checks.
 */
struct CompiledProgram
{
    Module mod;
    CorrOptions opts;
    std::vector<CompiledFunction> funcs; ///< indexed by FuncId
    std::unique_ptr<LocTable> locs;      ///< kept for reports
    StaticStats stats;

    /** Human-readable correlation/BAT report (explorer example). */
    std::string report() const;
};

/** Analyze an already built module (addresses must be assigned). */
CompiledProgram analyzeModule(Module mod, const CorrOptions &opts = {});

/** Full pipeline: parse, lower, analyze. */
CompiledProgram compileAndAnalyze(const std::string &src,
                                  const std::string &name,
                                  const CorrOptions &opts = {});

} // namespace ipds

#endif // IPDS_CORE_PROGRAM_H
