#ifndef IPDS_CORE_INTERVAL_H
#define IPDS_CORE_INTERVAL_H

/**
 * @file
 * Integer value ranges and the subsumption relation at the heart of the
 * paper's branch correlation (§4): branch bs's direction implies a range
 * for a variable; if that range subsumes branch bl's trigger range, bl's
 * outcome is forced.
 *
 * Ranges are closed intervals over signed 64-bit values with explicit
 * infinities. All arithmetic detects overflow and degrades to "invalid"
 * rather than wrapping — an invalid range makes a branch unckeckable,
 * never incorrectly checked (zero-false-positive discipline).
 */

#include <cstdint>
#include <string>

#include "ir/ir.h"

namespace ipds {

/**
 * A value set over signed 64-bit integers: a closed interval [lo, hi]
 * possibly unbounded on either side, a punctured line (everything but
 * one point — the image of a != comparison), the empty set, or an
 * invalid marker (analysis overflow — treat as unusable).
 *
 * Punctured sets matter in practice: the not-taken direction of an
 * equality test (`strncmp(u, "admin", 5) == 0` falling through) must
 * still force later identical tests not-taken, and "v != c" is not an
 * interval.
 */
class Interval
{
  public:
    /** The full interval (-inf, +inf). */
    Interval() = default;

    /** The interval [lo, hi]; empty if lo > hi. */
    static Interval range(int64_t lo, int64_t hi);

    /** The single point [v, v]. */
    static Interval point(int64_t v);

    /** The empty interval. */
    static Interval empty();

    /** The full interval. */
    static Interval full();

    /** An invalid (overflowed) interval. */
    static Interval invalid();

    /** Everything except the single point @p c. */
    static Interval allBut(int64_t c);

    /**
     * The set of values v satisfying `v <pred> c`.
     * E.g. fromPred(LT, 5) = (-inf, 4]; fromPred(NE, 5) = allBut(5).
     */
    static Interval fromPred(Pred pred, int64_t c);

    /**
     * The set of values v such that `sign*v + offset <pred> c`, i.e.
     * the trigger range of a branch whose condition register is an
     * affine transform of a loaded value. @p sign must be +1 or -1.
     */
    static Interval fromAffineCond(int sign, int64_t offset, Pred pred,
                                   int64_t c);

    bool isInvalid() const { return state == State::Invalid; }
    bool isEmpty() const { return state == State::Empty; }
    bool isFull() const
    {
        return state == State::Normal && !hasLo && !hasHi;
    }
    bool isPunctured() const { return state == State::Punctured; }

    /** True if this is a single point. */
    bool isPoint() const
    {
        return state == State::Normal && hasLo && hasHi && lo == hi;
    }

    /** True if @p v lies inside the interval. */
    bool contains(int64_t v) const;

    /**
     * Subsumption: every value in this interval is also in @p other
     * (i.e. this ⊆ other). Invalid intervals subsume nothing and are
     * subsumed by nothing. The empty interval is subsumed by anything.
     */
    bool subsumedBy(const Interval &other) const;

    /**
     * The image of this interval under v -> sign*v + offset. Returns
     * invalid() if a bound would overflow. Used to push a range through
     * an affine chain (paper Figure 3.c: y < 5 implies y-1 < 4).
     */
    Interval affineImage(int sign, int64_t offset) const;

    /**
     * Intersection, conservatively widened where the exact result is
     * not representable (punctured ∩ interval): the returned set is
     * always a superset of the true intersection, which in this
     * codebase can only lose detection precision, never soundness.
     */
    Interval intersect(const Interval &other) const;

    bool operator==(const Interval &o) const;

    /** Render "[lo, hi]" with "-inf"/"+inf" for missing bounds. */
    std::string str() const;

  private:
    enum class State : uint8_t { Normal, Empty, Invalid, Punctured };

    State state = State::Normal;
    bool hasLo = false;
    bool hasHi = false;
    int64_t lo = 0; ///< lower bound; excluded point when Punctured
    int64_t hi = 0;
};

} // namespace ipds

#endif // IPDS_CORE_INTERVAL_H
