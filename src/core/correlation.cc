#include "core/correlation.h"

#include "analysis/constfold.h"
#include "core/affine.h"
#include "support/diag.h"

namespace ipds {

std::string
PureSig::str(const Module &mod) const
{
    std::string s = builtinName(builtin);
    s += "(";
    bool first = true;
    for (const auto &[obj, off] : ptrArgs) {
        if (!first)
            s += ", ";
        first = false;
        s += mod.objects[obj].name;
        if (off != 0)
            s += strprintf("+%lld", static_cast<long long>(off));
    }
    for (int64_t v : scalarArgs) {
        if (!first)
            s += ", ";
        first = false;
        s += strprintf("%lld", static_cast<long long>(v));
    }
    s += ")";
    return s;
}

uint32_t
FuncCorrelation::numCheckable() const
{
    uint32_t n = 0;
    for (const auto &b : branches)
        n += b.checkable ? 1 : 0;
    return n;
}

namespace {

/** Mirror a predicate across its operands: (a pred b) == (b mirror b). */
Pred
mirrorPred(Pred p)
{
    switch (p) {
      case Pred::EQ: return Pred::EQ;
      case Pred::NE: return Pred::NE;
      case Pred::LT: return Pred::GT;
      case Pred::LE: return Pred::GE;
      case Pred::GT: return Pred::LT;
      case Pred::GE: return Pred::LE;
    }
    panic("mirrorPred: bad predicate");
}

/**
 * Derive the byte ranges a pure builtin reads from resolved pointer and
 * scalar arguments. Returns false if the ranges cannot be bounded
 * inside their objects (the conservative answer is then "unknown").
 */
bool
pureReadRanges(const Module &mod, Builtin b,
               const std::vector<std::pair<ObjectId, int64_t>> &ptrs,
               const std::vector<int64_t> &scalars,
               std::vector<ReadRange> &out)
{
    auto addRange = [&](size_t ptr_idx, int64_t len) {
        const auto &[obj, off] = ptrs[ptr_idx];
        const MemObject &o = mod.objects[obj];
        if (off < 0 || off >= static_cast<int64_t>(o.size))
            return false; // statically out of bounds: give up
        ReadRange rr;
        rr.obj = obj;
        rr.off = off;
        rr.len = len;
        out.push_back(rr);
        return true;
    };
    switch (b) {
      case Builtin::Strcmp:
        return ptrs.size() == 2 && addRange(0, -1) && addRange(1, -1);
      case Builtin::Strncmp:
      case Builtin::Memcmp: {
        if (ptrs.size() != 2 || scalars.size() != 1)
            return false;
        int64_t n = scalars[0];
        if (n < 0)
            return false;
        if (n == 0)
            return true; // reads nothing; constant result
        return addRange(0, n) && addRange(1, n);
      }
      case Builtin::Strlen:
      case Builtin::Atoi:
        return ptrs.size() == 1 && addRange(0, -1);
      default:
        return false;
    }
}

/**
 * True if any instruction in block @p bb with index in (from, to)
 * clobbers location @p loc.
 */
bool
clobberedBetweenLoc(const Module &, const Function &,
                    const Effects &fx, const LocTable &locs,
                    const BasicBlock &bb, uint32_t from, uint32_t to,
                    FuncId f, LocId loc)
{
    for (uint32_t i = from + 1; i < to; i++) {
        if (fx.clobbers(f, bb.insts[i]).hitsLoc(locs, loc))
            return true;
    }
    return false;
}

/** Same, but against a set of read ranges. */
bool
clobberedBetweenReads(const Module &mod, const Function &fn,
                      const Effects &fx, const BasicBlock &bb,
                      uint32_t from, uint32_t to, FuncId f,
                      const std::vector<ReadRange> &reads)
{
    (void)fn;
    for (uint32_t i = from + 1; i < to; i++) {
        ClobberSet cs = fx.clobbers(f, bb.insts[i]);
        if (cs.empty())
            continue;
        for (const auto &rr : reads) {
            if (cs.hitsRange(mod, rr.obj, rr.off, rr.len))
                return true;
        }
    }
    return false;
}

/**
 * Evaluate one side of a compare as a constant: a literal chain, or —
 * with memory constant propagation — an affine transform of a load
 * from a location that always holds the same constant.
 */
bool
sideConst(const Function &fn, const DefMap &dm, const LocTable &locs,
          const MemConsts *mc, const CorrOptions &opts, Vreg v,
          int64_t &out)
{
    if (constValue(fn, dm, v, out))
        return true;
    if (!opts.memConstProp || mc == nullptr)
        return false;
    AffineExpr af = traceAffine(fn, dm, locs, v);
    if (!af.valid)
        return false;
    int64_t base;
    if (!mc->constLoc(af.loc, base))
        return false;
    int64_t scaled;
    if (__builtin_mul_overflow(static_cast<int64_t>(af.sign), base,
                               &scaled))
        return false;
    return !__builtin_add_overflow(scaled, af.offset, &out);
}

/** Intern @p sig in @p sigs, returning its index. */
uint32_t
internSig(std::vector<PureSig> &sigs, PureSig sig)
{
    for (uint32_t i = 0; i < sigs.size(); i++)
        if (sigs[i] == sig)
            return i;
    sigs.push_back(std::move(sig));
    return static_cast<uint32_t>(sigs.size() - 1);
}

} // namespace

FuncCorrelation
analyzeFunction(const Module &mod, const Function &fn,
                const LocTable &locs, const PointsTo &pt,
                const Effects &fx, const MemConsts *mc,
                const CorrOptions &opts)
{
    FuncCorrelation out;
    out.func = fn.id;
    DefMap dm(fn);

    for (const auto &bb : fn.blocks) {
        for (uint32_t i = 0; i < bb.insts.size(); i++) {
            const Inst &br = bb.insts[i];
            if (!br.isCondBranch())
                continue;

            BranchInfo bi;
            bi.idx = static_cast<uint32_t>(out.branches.size());
            bi.block = bb.id;
            bi.instIdx = i;
            bi.pc = br.pc;
            out.branchAt[{bb.id, i}] = bi.idx;

            // Expect cond = Cmp(valueSide, const) up to operand order.
            InstRef condRef = dm.def(br.srcA);
            if (!condRef.valid()) {
                out.branches.push_back(bi);
                continue;
            }
            const Inst &cmp =
                fn.blocks[condRef.block].insts[condRef.index];
            if (cmp.op != Op::Cmp) {
                out.branches.push_back(bi);
                continue;
            }
            Vreg valueSide = kNoVreg;
            Pred pred = cmp.pred;
            int64_t c = 0;
            if (sideConst(fn, dm, locs, mc, opts, cmp.srcB, c)) {
                valueSide = cmp.srcA;
            } else if (sideConst(fn, dm, locs, mc, opts, cmp.srcA,
                                 c)) {
                valueSide = cmp.srcB;
                pred = mirrorPred(pred);
            } else {
                out.branches.push_back(bi);
                continue;
            }

            // --- Range classification --------------------------------
            AffineExpr af = traceAffine(fn, dm, locs, valueSide);
            if (af.valid && !opts.affineChains &&
                (af.sign != 1 || af.offset != 0)) {
                af.valid = false;
            }
            if (af.valid) {
                Interval tk =
                    Interval::fromAffineCond(af.sign, af.offset, pred,
                                             c);
                Interval nt = Interval::fromAffineCond(
                    af.sign, af.offset, negatePred(pred), c);
                if (!tk.isInvalid() && !nt.isInvalid()) {
                    bi.kind = CondKind::Range;
                    bi.corrLoc = af.loc;
                    bi.takenSet = tk;
                    bi.notTakenSet = nt;
                    bi.checkable =
                        af.load.block == bb.id &&
                        !clobberedBetweenLoc(mod, fn, fx, locs, bb,
                                             af.load.index, i, fn.id,
                                             af.loc);
                }
                out.branches.push_back(bi);
                continue;
            }

            // --- PureCall classification ------------------------------
            if (opts.pureCalls) {
                InstRef callRef = dm.def(valueSide);
                if (callRef.valid()) {
                    const Inst &call =
                        fn.blocks[callRef.block].insts[callRef.index];
                    if (call.op == Op::Call &&
                        call.builtin != Builtin::None &&
                        builtinEffects(call.builtin).pure) {
                        const auto &bfx = builtinEffects(call.builtin);
                        uint8_t ptrMask =
                            bfx.readsParams | bfx.writesParams;
                        PureSig sig;
                        sig.builtin = call.builtin;
                        bool ok = true;
                        for (uint32_t a = 0; a < call.args.size();
                             a++) {
                            if (ptrMask & (1u << a)) {
                                ObjectId obj;
                                int64_t off;
                                if (!pt.resolveExact(
                                        fn.id, call.args[a], obj, off,
                                        opts.interprocArgs)) {
                                    ok = false;
                                    break;
                                }
                                sig.ptrArgs.emplace_back(obj, off);
                            } else {
                                int64_t v;
                                if (!constValue(fn, dm, call.args[a],
                                                v)) {
                                    ok = false;
                                    break;
                                }
                                sig.scalarArgs.push_back(v);
                            }
                        }
                        if (ok) {
                            ok = pureReadRanges(mod, sig.builtin,
                                                sig.ptrArgs,
                                                sig.scalarArgs,
                                                sig.reads);
                        }
                        if (ok) {
                            Interval tk = Interval::fromPred(pred, c);
                            Interval nt = Interval::fromPred(
                                negatePred(pred), c);
                            std::vector<ReadRange> reads = sig.reads;
                            uint32_t sigId =
                                internSig(out.sigs, std::move(sig));
                            bi.kind = CondKind::PureCall;
                            bi.corrLoc =
                                static_cast<uint32_t>(locs.size()) +
                                sigId;
                            bi.takenSet = tk;
                            bi.notTakenSet = nt;
                            bi.checkable =
                                callRef.block == bb.id &&
                                !clobberedBetweenReads(mod, fn, fx, bb,
                                                       callRef.index, i,
                                                       fn.id, reads);
                        }
                    }
                }
            }
            out.branches.push_back(bi);
        }
    }

    out.numCorrLocs =
        static_cast<uint32_t>(locs.size() + out.sigs.size());
    out.locBranches.assign(out.numCorrLocs, {});
    for (const auto &b : out.branches) {
        if (b.kind != CondKind::Unknown && b.checkable)
            out.locBranches[b.corrLoc].push_back(b.idx);
    }
    return out;
}

} // namespace ipds
