#ifndef IPDS_CORE_AFFINE_H
#define IPDS_CORE_AFFINE_H

/**
 * @file
 * Affine def-chain extraction: recognise vregs of the form
 * `sign * load(loc) + offset` built from a direct load and simple
 * +/- constant arithmetic. This implements the paper's "after a
 * variable is loaded into a register, the register participates in
 * further calculations before it is used in a conditional branch"
 * (Figure 3.c: r1 = y - 1; branch on r1 still correlates with y).
 */

#include "analysis/defmap.h"
#include "analysis/memloc.h"
#include "ir/ir.h"

namespace ipds {

/** Result of tracing a vreg: value == sign * M[loc] + offset. */
struct AffineExpr
{
    bool valid = false;
    LocId loc = kNoLoc;
    InstRef load;       ///< the root Load instruction
    Vreg loadDst = kNoVreg; ///< vreg defined by the root load
    int sign = 1;
    int64_t offset = 0;
};

/**
 * Trace @p v's def chain. Returns an invalid AffineExpr if the chain
 * involves anything but one direct load and +/- constants, or if
 * offset arithmetic overflows.
 */
AffineExpr traceAffine(const Function &fn, const DefMap &dm,
                       const LocTable &locs, Vreg v);

} // namespace ipds

#endif // IPDS_CORE_AFFINE_H
