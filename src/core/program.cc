#include "core/program.h"

#include <chrono>
#include <sstream>

#include "frontend/codegen.h"
#include "support/diag.h"

namespace ipds {

CompiledProgram
analyzeModule(Module mod, const CorrOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();

    CompiledProgram out;
    out.opts = opts;
    out.mod = std::move(mod);
    out.locs = std::make_unique<LocTable>(out.mod);

    PointsTo pt(out.mod, *out.locs);
    Effects fx(out.mod, *out.locs, pt);
    MemConsts mc(out.mod, *out.locs, fx);

    out.funcs.reserve(out.mod.functions.size());
    for (const auto &fn : out.mod.functions) {
        CompiledFunction cf;
        cf.corr = analyzeFunction(out.mod, fn, *out.locs, pt, fx,
                                  opts.memConstProp ? &mc : nullptr,
                                  opts);
        cf.bat = buildBat(out.mod, fn, *out.locs, fx, cf.corr, opts);
        try {
            cf.tables = layoutTables(cf.bat, opts.maxHashLog2);
        } catch (const FatalError &e) {
            // Table layout can fail per function (perfect-hash search
            // exhaustion, duplicate PCs). Rethrow with the function
            // named so a batch compile reports WHICH program is
            // unprotectable — still a recoverable FatalError, never a
            // process abort.
            fatal("%s: cannot lay out IPDS tables for function '%s': "
                  "%s", out.mod.name.c_str(), fn.name.c_str(),
                  e.what());
        }
        out.funcs.push_back(std::move(cf));
    }

    auto &st = out.stats;
    st.numFunctions = static_cast<uint32_t>(out.funcs.size());
    for (const auto &cf : out.funcs) {
        st.numBranches += cf.bat.numBranches;
        st.numCheckable += cf.corr.numCheckable();
        st.totalBsvBits += cf.tables.bsvBits;
        st.totalBcvBits += cf.tables.bcvBits;
        st.totalBatBits += cf.tables.batBits;
        st.totalHashTries += cf.tables.hash.tries;
    }
    st.compileSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return out;
}

CompiledProgram
compileAndAnalyze(const std::string &src, const std::string &name,
                  const CorrOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();
    Module mod = compileMiniC(src, name);
    CompiledProgram out = analyzeModule(std::move(mod), opts);
    out.stats.compileSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return out;
}

std::string
CompiledProgram::report() const
{
    std::ostringstream os;
    os << "=== IPDS static analysis report: " << mod.name << " ===\n";
    os << strprintf("functions: %u  branches: %u  checkable: %u "
                    "(%.1f%%)\n",
                    stats.numFunctions, stats.numBranches,
                    stats.numCheckable,
                    stats.numBranches
                        ? 100.0 * stats.numCheckable / stats.numBranches
                        : 0.0);
    os << strprintf("avg table bits/function: BSV %.1f  BCV %.1f  "
                    "BAT %.1f\n",
                    stats.avgBsvBits(), stats.avgBcvBits(),
                    stats.avgBatBits());

    for (const auto &cf : funcs) {
        const Function &fn = mod.functions[cf.corr.func];
        if (cf.bat.numBranches == 0)
            continue;
        os << "\nfunction " << fn.name << " ("
           << cf.bat.numBranches << " branches, hash space "
           << cf.tables.hash.space() << ", "
           << cf.tables.hash.tries << " tries)\n";
        for (const auto &b : cf.corr.branches) {
            os << strprintf("  br#%u pc=0x%llx bb%u ", b.idx,
                            static_cast<unsigned long long>(b.pc),
                            b.block);
            switch (b.kind) {
              case CondKind::Unknown:
                os << "unknown";
                break;
              case CondKind::Range:
                os << "range on " << locs->loc(b.corrLoc).name
                   << " taken=" << b.takenSet.str()
                   << " nottaken=" << b.notTakenSet.str();
                break;
              case CondKind::PureCall:
                os << "purecall "
                   << cf.corr.sigs[b.corrLoc - locs->size()].str(mod)
                   << " taken=" << b.takenSet.str();
                break;
            }
            os << (b.checkable ? " [checked]" : " [not checked]")
               << "\n";
            auto dumpList = [&](const char *tag,
                                const ActionList &l) {
                if (l.empty())
                    return;
                os << "      " << tag << ":";
                for (const auto &[idx, act] : l)
                    os << strprintf(" br#%u<-%s", idx,
                                    brActionName(act));
                os << "\n";
            };
            dumpList("on-taken", cf.bat.onTaken[b.idx]);
            dumpList("on-nottaken", cf.bat.onNotTaken[b.idx]);
        }
        if (!cf.bat.entryActions.empty()) {
            os << "  entry:";
            for (const auto &[idx, act] : cf.bat.entryActions)
                os << strprintf(" br#%u<-%s", idx, brActionName(act));
            os << "\n";
        }
    }
    return os.str();
}

} // namespace ipds
