#ifndef IPDS_CORE_HASHFN_H
#define IPDS_CORE_HASHFN_H

/**
 * @file
 * Collision-free branch-PC hashing (paper §5.2).
 *
 * Branch PCs are hashed into the BSV/BCV/BAT index space with a
 * parameterisable shift/XOR function. The compiler searches, by trial
 * and error, for parameters that produce NO collisions among the
 * function's branch PCs in the smallest power-of-two space, enlarging
 * the space when the search fails. Because the function is
 * collision-free, the runtime tables need no tags.
 */

#include <cstdint>
#include <vector>

namespace ipds {

/** The chosen hash function: parameters plus space size. */
struct HashParams
{
    uint8_t shift1 = 0;    ///< first XOR-folding shift
    uint8_t shift2 = 0;    ///< second XOR-folding shift
    uint8_t log2Space = 0; ///< hash space size = 1 << log2Space
    /** Number of parameter combinations tried before success. */
    uint32_t tries = 0;

    uint32_t space() const { return 1u << log2Space; }

    /** Hash a branch PC into [0, space). Shift/XOR only. */
    uint32_t
    apply(uint64_t pc) const
    {
        uint64_t h = pc >> 2; // instructions are 4-byte aligned
        h ^= h >> shift1;
        h ^= h >> shift2;
        return static_cast<uint32_t>(h & (space() - 1));
    }
};

/**
 * Find collision-free parameters for @p pcs.
 *
 * Starts from the smallest power-of-two space holding the PCs and, per
 * space size, tries all (shift1, shift2) pairs up to @p max_shift;
 * doubles the space on failure, up to 1 << @p max_log2 slots. At the
 * default cap the search always succeeds (a space large enough to
 * index PCs directly is collision-free by construction).
 *
 * Failure — duplicate PCs, or no collision-free parameters within
 * @p max_log2 — throws FatalError (support/diag.h): the function is
 * unprotectable, but the process (a batch compile of many programs)
 * must go on. Callers that cannot tolerate the throw should dedupe and
 * keep the default cap.
 *
 * @param pcs distinct branch PCs (an empty list yields a 1-slot space).
 */
HashParams findPerfectHash(const std::vector<uint64_t> &pcs,
                           uint8_t max_shift = 24,
                           uint8_t max_log2 = 31);

} // namespace ipds

#endif // IPDS_CORE_HASHFN_H
