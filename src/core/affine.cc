#include "core/affine.h"

#include "analysis/constfold.h"

namespace ipds {

namespace {

/** offset += sign*c, detecting overflow. Returns false on overflow. */
bool
accumulate(int64_t &offset, int sign, int64_t c)
{
    int64_t scaled;
    if (__builtin_mul_overflow(static_cast<int64_t>(sign), c, &scaled))
        return false;
    return !__builtin_add_overflow(offset, scaled, &offset);
}

} // namespace

AffineExpr
traceAffine(const Function &fn, const DefMap &dm, const LocTable &locs,
            Vreg v)
{
    int sign = 1;
    int64_t offset = 0;
    Vreg cur = v;

    for (int depth = 0; depth < 64; depth++) {
        InstRef r = dm.def(cur);
        if (!r.valid())
            return {};
        const Inst &in = fn.blocks[r.block].insts[r.index];
        switch (in.op) {
          case Op::Load: {
            LocId l = locs.forInst(in);
            if (l == kNoLoc)
                return {};
            AffineExpr out;
            out.valid = true;
            out.loc = l;
            out.load = r;
            out.loadDst = in.dst;
            out.sign = sign;
            out.offset = offset;
            return out;
          }
          case Op::Bin: {
            int64_t c;
            if (in.bin == BinOp::Add) {
                // chain + c or c + chain: offset += sign*c.
                if (constValue(fn, dm, in.srcB, c)) {
                    cur = in.srcA;
                } else if (constValue(fn, dm, in.srcA, c)) {
                    cur = in.srcB;
                } else {
                    return {};
                }
                if (!accumulate(offset, sign, c))
                    return {};
                break;
            }
            if (in.bin == BinOp::Sub) {
                if (constValue(fn, dm, in.srcB, c)) {
                    // chain - c: offset -= sign*c.
                    if (!accumulate(offset, -sign, c))
                        return {};
                    cur = in.srcA;
                } else if (constValue(fn, dm, in.srcA, c)) {
                    // c - chain: offset += sign*c, then negate chain.
                    if (!accumulate(offset, sign, c))
                        return {};
                    sign = -sign;
                    cur = in.srcB;
                } else {
                    return {};
                }
                break;
            }
            return {};
          }
          default:
            return {};
        }
    }
    return {};
}

} // namespace ipds
