#include "core/interval.h"

#include <limits>

#include "support/diag.h"

namespace ipds {

namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

/** a + b with overflow detection. */
bool
addOvf(int64_t a, int64_t b, int64_t &out)
{
    return __builtin_add_overflow(a, b, &out);
}

/** a - b with overflow detection. */
bool
subOvf(int64_t a, int64_t b, int64_t &out)
{
    return __builtin_sub_overflow(a, b, &out);
}

} // namespace

Interval
Interval::range(int64_t lo_, int64_t hi_)
{
    if (lo_ > hi_)
        return empty();
    Interval i;
    i.hasLo = true;
    i.hasHi = true;
    i.lo = lo_;
    i.hi = hi_;
    return i;
}

Interval
Interval::point(int64_t v)
{
    return range(v, v);
}

Interval
Interval::empty()
{
    Interval i;
    i.state = State::Empty;
    return i;
}

Interval
Interval::full()
{
    return Interval();
}

Interval
Interval::invalid()
{
    Interval i;
    i.state = State::Invalid;
    return i;
}

Interval
Interval::allBut(int64_t c)
{
    Interval i;
    i.state = State::Punctured;
    i.lo = c;
    return i;
}

Interval
Interval::fromPred(Pred pred, int64_t c)
{
    Interval i;
    switch (pred) {
      case Pred::EQ:
        return point(c);
      case Pred::NE:
        return allBut(c);
      case Pred::LT:
        if (c == kMin)
            return empty();
        i.hasHi = true;
        i.hi = c - 1;
        return i;
      case Pred::LE:
        i.hasHi = true;
        i.hi = c;
        return i;
      case Pred::GT:
        if (c == kMax)
            return empty();
        i.hasLo = true;
        i.lo = c + 1;
        return i;
      case Pred::GE:
        i.hasLo = true;
        i.lo = c;
        return i;
    }
    panic("Interval::fromPred: bad predicate");
}

Interval
Interval::fromAffineCond(int sign, int64_t offset, Pred pred, int64_t c)
{
    if (sign != 1 && sign != -1)
        panic("fromAffineCond: sign must be +/-1, got %d", sign);
    // Solve sign*v + offset <pred> c  =>  sign*v <pred> (c - offset).
    int64_t rhs;
    if (subOvf(c, offset, rhs))
        return invalid();
    if (sign == 1)
        return fromPred(pred, rhs);
    // -v <pred> rhs  =>  v <flipped-pred> -rhs.
    if (rhs == kMin)
        return invalid(); // -rhs overflows
    int64_t nrhs = -rhs;
    switch (pred) {
      case Pred::EQ: return fromPred(Pred::EQ, nrhs);
      case Pred::NE: return fromPred(Pred::NE, nrhs);
      case Pred::LT: return fromPred(Pred::GT, nrhs);
      case Pred::LE: return fromPred(Pred::GE, nrhs);
      case Pred::GT: return fromPred(Pred::LT, nrhs);
      case Pred::GE: return fromPred(Pred::LE, nrhs);
    }
    panic("fromAffineCond: bad predicate");
}

bool
Interval::contains(int64_t v) const
{
    if (state == State::Punctured)
        return v != lo;
    if (state != State::Normal)
        return false;
    if (hasLo && v < lo)
        return false;
    if (hasHi && v > hi)
        return false;
    return true;
}

bool
Interval::subsumedBy(const Interval &other) const
{
    if (state == State::Invalid || other.state == State::Invalid)
        return false;
    if (state == State::Empty)
        return true;
    if (other.state == State::Empty)
        return false;
    if (other.state == State::Punctured) {
        if (state == State::Punctured)
            return lo == other.lo;
        // Normal ⊆ allBut(c) iff the interval misses c.
        return !contains(other.lo);
    }
    if (state == State::Punctured) {
        // allBut(c) is unbounded both ways: only full() contains it.
        return other.isFull();
    }
    if (other.hasLo && (!hasLo || lo < other.lo))
        return false;
    if (other.hasHi && (!hasHi || hi > other.hi))
        return false;
    return true;
}

Interval
Interval::affineImage(int sign, int64_t offset) const
{
    if (sign != 1 && sign != -1)
        panic("affineImage: sign must be +/-1, got %d", sign);
    if (state == State::Punctured) {
        // allBut(c) maps to allBut(sign*c + offset).
        int64_t scaled;
        if (__builtin_mul_overflow(static_cast<int64_t>(sign), lo,
                                   &scaled))
            return invalid();
        int64_t p;
        if (__builtin_add_overflow(scaled, offset, &p))
            return invalid();
        return allBut(p);
    }
    if (state != State::Normal)
        return *this;
    Interval out;
    if (sign == 1) {
        out.hasLo = hasLo;
        out.hasHi = hasHi;
        if (hasLo && addOvf(lo, offset, out.lo))
            return invalid();
        if (hasHi && addOvf(hi, offset, out.hi))
            return invalid();
    } else {
        // v -> -v + offset swaps and negates the bounds.
        out.hasLo = hasHi;
        out.hasHi = hasLo;
        if (hasHi && subOvf(offset, hi, out.lo))
            return invalid();
        if (hasLo && subOvf(offset, lo, out.hi))
            return invalid();
    }
    return out;
}

Interval
Interval::intersect(const Interval &other) const
{
    if (state == State::Invalid || other.state == State::Invalid)
        return invalid();
    if (state == State::Empty || other.state == State::Empty)
        return empty();
    // Punctured intersections are widened to a superset (see header).
    if (state == State::Punctured && other.state == State::Punctured)
        return lo == other.lo ? *this : full();
    if (state == State::Punctured)
        return other;
    if (other.state == State::Punctured)
        return *this;
    Interval out;
    out.hasLo = hasLo || other.hasLo;
    out.hasHi = hasHi || other.hasHi;
    if (hasLo && other.hasLo)
        out.lo = std::max(lo, other.lo);
    else if (hasLo)
        out.lo = lo;
    else
        out.lo = other.lo;
    if (hasHi && other.hasHi)
        out.hi = std::min(hi, other.hi);
    else if (hasHi)
        out.hi = hi;
    else
        out.hi = other.hi;
    if (out.hasLo && out.hasHi && out.lo > out.hi)
        return empty();
    return out;
}

bool
Interval::operator==(const Interval &o) const
{
    if (state != o.state)
        return false;
    if (state == State::Punctured)
        return lo == o.lo;
    if (state != State::Normal)
        return true;
    if (hasLo != o.hasLo || hasHi != o.hasHi)
        return false;
    if (hasLo && lo != o.lo)
        return false;
    if (hasHi && hi != o.hi)
        return false;
    return true;
}

std::string
Interval::str() const
{
    if (state == State::Invalid)
        return "<invalid>";
    if (state == State::Empty)
        return "<empty>";
    if (state == State::Punctured)
        return strprintf("!=%lld", static_cast<long long>(lo));
    std::string l = hasLo ? strprintf("%lld", static_cast<long long>(lo))
                          : "-inf";
    std::string h = hasHi ? strprintf("%lld", static_cast<long long>(hi))
                          : "+inf";
    return "[" + l + ", " + h + "]";
}

} // namespace ipds
