#ifndef IPDS_CORE_TABLES_H
#define IPDS_CORE_TABLES_H

/**
 * @file
 * Slot-space table layout (paper §5.2): the logical FuncBat, rekeyed by
 * collision-free hash slots, with exact bit-size accounting and a
 * packed binary image.
 *
 * Layout of the packed image (all fields LSB-first):
 *
 *   header:  log2Space (5) | shift1 (5) | shift2 (5)
 *   BCV:     1 bit per slot
 *   BAT:     per slot and per direction a list pointer
 *            (bitsFor(numActions) bits; 0 = empty, k = entry k-1),
 *            one more pointer for the entry-action list, then the
 *            action pool: each entry is target slot (log2Space bits),
 *            action (2 bits), last-in-list flag (1 bit).
 *
 * The BSV itself is runtime state (2 bits per slot, initially UNKNOWN);
 * its *size* is accounted here because Figure 8 reports it per function.
 */

#include <vector>

#include "core/batbuild.h"
#include "core/hashfn.h"

namespace ipds {

/** One packed action. */
struct SlotAction
{
    uint32_t slot = 0;
    BrAction act = BrAction::NC;
};

/** BranchRec::slot value for a pc that is not a conditional branch. */
constexpr uint32_t kNoBranchSlot = 0xffffffff;

/**
 * Everything the detector needs about one static branch, resolved once
 * at table-layout time: its collision-free hash slot, its BCV bit, and
 * the offsets of its two BAT action lists inside the function's flat
 * action pool. One 24-byte load replaces a rehash, a bit-vector probe
 * and two vector-of-vector dereferences on the runtime hot path.
 */
struct BranchRec
{
    uint32_t slot = kNoBranchSlot;
    uint32_t checked = 0;  ///< the branch's BCV bit
    uint32_t takenOff = 0; ///< actionPool offset of the taken list
    uint32_t takenLen = 0;
    uint32_t notTakenOff = 0;
    uint32_t notTakenLen = 0;
};

/**
 * Per-function tables in slot space, ready for the runtime detector.
 */
struct FuncTables
{
    FuncId func = kNoFunc;
    HashParams hash;
    uint32_t numBranches = 0;

    /** branch idx -> slot (for tests and reports). */
    std::vector<uint32_t> slotOfBranch;
    /**
     * Runtime fast path: dense pc -> BranchRec lookup, built once at
     * table-layout time so the detector never re-hashes a committed
     * branch. Indexed by (pc - lookupBasePc) / 4, with slot ==
     * kNoBranchSlot in the holes between branch pcs; actionPool holds
     * every slot's taken/not-taken list back to back. Empty for
     * branchless functions and for tables reconstructed from a packed
     * image (which carries no pcs) — the detector falls back to
     * HashParams::apply and the per-slot vectors there.
     */
    uint64_t lookupBasePc = 0;
    std::vector<BranchRec> branchRecs;
    std::vector<SlotAction> actionPool;
    /** BCV, indexed by slot. */
    std::vector<bool> bcv;
    /** BAT action lists, indexed by slot. */
    std::vector<std::vector<SlotAction>> onTaken;
    std::vector<std::vector<SlotAction>> onNotTaken;
    /** Actions applied on function entry. */
    std::vector<SlotAction> entryActions;

    /** Table sizes in bits (Figure 8 accounting). */
    uint64_t bsvBits = 0;
    uint64_t bcvBits = 0;
    uint64_t batBits = 0;

    /** Serialize BCV+BAT into the binary image described above. */
    std::vector<uint8_t> pack() const;

    /**
     * Parse a packed image back (hash params from the header; action
     * lists deduplicated by pointer equality are re-expanded). Used by
     * tests to prove the attached-binary round trip.
     */
    static FuncTables unpack(const std::vector<uint8_t> &image,
                             FuncId func);
};

/**
 * Rekey @p bat into slot space using a fresh perfect hash.
 *
 * @p max_hash_log2 caps the hash-space search (CorrOptions::
 * maxHashLog2); an exhausted search throws FatalError — recoverable,
 * so a batch compile marks this one function's program unprotectable
 * instead of dying.
 */
FuncTables layoutTables(const FuncBat &bat,
                        uint8_t max_hash_log2 = 31);

} // namespace ipds

#endif // IPDS_CORE_TABLES_H
