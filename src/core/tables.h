#ifndef IPDS_CORE_TABLES_H
#define IPDS_CORE_TABLES_H

/**
 * @file
 * Slot-space table layout (paper §5.2): the logical FuncBat, rekeyed by
 * collision-free hash slots, with exact bit-size accounting and a
 * packed binary image.
 *
 * Layout of the packed image (all fields LSB-first):
 *
 *   header:  log2Space (5) | shift1 (5) | shift2 (5)
 *   BCV:     1 bit per slot
 *   BAT:     per slot and per direction a list pointer
 *            (bitsFor(numActions) bits; 0 = empty, k = entry k-1),
 *            one more pointer for the entry-action list, then the
 *            action pool: each entry is target slot (log2Space bits),
 *            action (2 bits), last-in-list flag (1 bit).
 *
 * The BSV itself is runtime state (2 bits per slot, initially UNKNOWN);
 * its *size* is accounted here because Figure 8 reports it per function.
 */

#include <vector>

#include "core/batbuild.h"
#include "core/hashfn.h"

namespace ipds {

/** One packed action. */
struct SlotAction
{
    uint32_t slot = 0;
    BrAction act = BrAction::NC;
};

/**
 * Per-function tables in slot space, ready for the runtime detector.
 */
struct FuncTables
{
    FuncId func = kNoFunc;
    HashParams hash;
    uint32_t numBranches = 0;

    /** branch idx -> slot (for tests and reports). */
    std::vector<uint32_t> slotOfBranch;
    /** BCV, indexed by slot. */
    std::vector<bool> bcv;
    /** BAT action lists, indexed by slot. */
    std::vector<std::vector<SlotAction>> onTaken;
    std::vector<std::vector<SlotAction>> onNotTaken;
    /** Actions applied on function entry. */
    std::vector<SlotAction> entryActions;

    /** Table sizes in bits (Figure 8 accounting). */
    uint64_t bsvBits = 0;
    uint64_t bcvBits = 0;
    uint64_t batBits = 0;

    /** Serialize BCV+BAT into the binary image described above. */
    std::vector<uint8_t> pack() const;

    /**
     * Parse a packed image back (hash params from the header; action
     * lists deduplicated by pointer equality are re-expanded). Used by
     * tests to prove the attached-binary round trip.
     */
    static FuncTables unpack(const std::vector<uint8_t> &image,
                             FuncId func);
};

/** Rekey @p bat into slot space using a fresh perfect hash. */
FuncTables layoutTables(const FuncBat &bat);

} // namespace ipds

#endif // IPDS_CORE_TABLES_H
