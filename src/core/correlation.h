#ifndef IPDS_CORE_CORRELATION_H
#define IPDS_CORE_CORRELATION_H

/**
 * @file
 * Branch correlation analysis (paper §4, first half of §5.1).
 *
 * For every conditional branch in a function, classify its condition:
 *
 *  - Range: the condition register is an affine transform of a direct
 *    load, compared against a constant. The branch's taken/not-taken
 *    outcomes correspond to value ranges of the loaded memory location.
 *  - PureCall: the condition compares the result of a pure builtin
 *    (strncmp/strcmp/memcmp/strlen/atoi) with fully resolved arguments
 *    against a constant. The call result acts as a *virtual location*
 *    whose value only changes when the bytes it reads change. This is
 *    what detects the Figure 1 attack: two `strncmp(user,"admin",5)`
 *    checks must agree unless `user` was clobbered in between.
 *  - Unknown: nothing inferable; never checked (conservative).
 *
 * A classified branch is *checkable* only if its memory read (the root
 * load / the pure call) sits in the same basic block as the branch with
 * no may-clobber of the read bytes in between. This guarantees that
 * whenever the branch executes, its outcome reflects the location's
 * current memory value — the property that makes false positives
 * impossible (see DESIGN.md §5.1).
 *
 * Correlation locations ("corr locs") unify both kinds: ids
 * [0, numLocs) are real memory locations, ids [numLocs, ...) are
 * virtual pure-call results.
 */

#include <map>
#include <vector>

#include "analysis/defmap.h"
#include "analysis/effects.h"
#include "analysis/memconst.h"
#include "analysis/memloc.h"
#include "analysis/pointsto.h"
#include "core/interval.h"
#include "ir/ir.h"

namespace ipds {

/** A byte range read by a pure call: [off, off+len) of obj, or to the
 *  end of the object when len < 0. */
struct ReadRange
{
    ObjectId obj = kNoObject;
    int64_t off = 0;
    int64_t len = -1;

    bool operator==(const ReadRange &o) const
    {
        return obj == o.obj && off == o.off && len == o.len;
    }
};

/** Identity of a pure-call value: callee plus fully resolved args. */
struct PureSig
{
    Builtin builtin = Builtin::None;
    /** (object, offset) for each pointer argument, in position order. */
    std::vector<std::pair<ObjectId, int64_t>> ptrArgs;
    /** Constant values of the scalar arguments, in position order. */
    std::vector<int64_t> scalarArgs;
    /** Bytes whose mutation invalidates the value. */
    std::vector<ReadRange> reads;

    bool operator==(const PureSig &o) const
    {
        return builtin == o.builtin && ptrArgs == o.ptrArgs &&
               scalarArgs == o.scalarArgs;
    }

    std::string str(const Module &mod) const;
};

/** Classification of a conditional branch. */
enum class CondKind : uint8_t { Unknown, Range, PureCall };

/** Everything the table builder needs to know about one branch. */
struct BranchInfo
{
    uint32_t idx = 0;      ///< per-function branch index
    BlockId block = kNoBlock;
    uint32_t instIdx = 0;  ///< position of the Br within its block
    uint64_t pc = 0;

    CondKind kind = CondKind::Unknown;
    /**
     * Correlation location the branch tests (real LocId for Range, or
     * numLocs + sigId for PureCall). Only meaningful if kind != Unknown.
     */
    uint32_t corrLoc = 0;
    /** Values of the location for which the branch is taken. */
    Interval takenSet;
    /** Values for which it is not taken. */
    Interval notTakenSet;
    /**
     * True if the same-block purity rule holds, i.e. the branch may be
     * marked in the BCV and have its direction predicted.
     */
    bool checkable = false;
};

/**
 * Per-function correlation result.
 */
struct FuncCorrelation
{
    FuncId func = kNoFunc;
    std::vector<BranchInfo> branches;  ///< indexed by branch idx
    std::vector<PureSig> sigs;         ///< virtual locations
    /** Branch index of the Br instruction at (block, instIdx). */
    std::map<std::pair<BlockId, uint32_t>, uint32_t> branchAt;

    /** Number of corr locs = numLocs + sigs.size(). */
    uint32_t numCorrLocs = 0;
    /** corrLoc -> checkable branches testing it. */
    std::vector<std::vector<uint32_t>> locBranches;

    /** Count of checkable branches. */
    uint32_t numCheckable() const;
};

/** Feature switches for ablation experiments (DESIGN.md §5.3). */
struct CorrOptions
{
    bool affineChains = true;   ///< allow +/-const chains (Fig 3.c)
    bool pureCalls = true;      ///< strncmp-style virtual locations
    bool constStoreFacts = true;///< `x = 5` establishes x in [5,5]
    bool memConstProp = true;   ///< treat single-constant scalars as
                                ///< literals (SUIF-style const prop)
    bool interprocArgs = true;  ///< resolve pure-call pointers through
                                ///< monomorphic parameters
    /** Cap on the perfect-hash space search (1 << maxHashLog2 slots).
     *  An exhausted search makes compileAndAnalyze throw FatalError —
     *  a recoverable per-program failure, used by tests to exercise
     *  the compile pipeline's error path. */
    uint8_t maxHashLog2 = 31;
};

/**
 * Classify every conditional branch of @p fn. Virtual pure-call
 * locations are numbered from the module-wide location count.
 * @p mc may be null to disable memory constant propagation.
 */
FuncCorrelation analyzeFunction(const Module &mod, const Function &fn,
                                const LocTable &locs,
                                const PointsTo &pt, const Effects &fx,
                                const MemConsts *mc,
                                const CorrOptions &opts);

} // namespace ipds

#endif // IPDS_CORE_CORRELATION_H
