#ifndef IPDS_CORE_IMAGE_H
#define IPDS_CORE_IMAGE_H

/**
 * @file
 * The IPDS program image (§5.4): everything the compiler attaches to
 * the protected binary so the runtime system can check it —
 *
 *  - a function information table, one entry per function, carrying
 *    the function's entry address, its hash-function parameters and
 *    the offsets/sizes of its packed tables;
 *  - the concatenated packed BCV/BAT images (the BSV is runtime state;
 *    only its size is derived from the hash space).
 *
 * The image is a flat byte blob with a small header; load() round-
 * trips it back into the runtime form the detector consumes. On the
 * paper's hardware this blob is mapped into reserved, processor-
 * protected memory at program load.
 */

#include <cstdint>
#include <vector>

#include "core/program.h"

namespace ipds {

/** One entry of the function information table (§5.4). */
struct FuncInfoEntry
{
    FuncId func = kNoFunc;
    uint64_t entryPc = 0;
    HashParams hash;
    uint64_t tableOffset = 0; ///< byte offset of the packed tables
    uint64_t tableBytes = 0;
};

/** A loaded program image. */
struct ProgramImage
{
    std::vector<FuncInfoEntry> functions;
    std::vector<FuncTables> tables; ///< indexed by FuncId

    /** Total size in bytes of the serialized form. */
    uint64_t imageBytes = 0;
};

/** Serialize every function's tables plus the info table. */
std::vector<uint8_t> buildImage(const CompiledProgram &prog);

/**
 * Parse an image produced by buildImage. Throws FatalError on a
 * malformed blob (bad magic, truncated table, out-of-range offsets) —
 * a hostile image must never crash the loader.
 */
ProgramImage loadImage(const std::vector<uint8_t> &blob);

} // namespace ipds

#endif // IPDS_CORE_IMAGE_H
