#include "core/batbuild.h"

#include <map>
#include <set>

#include "analysis/constfold.h"
#include "core/affine.h"
#include "support/diag.h"

namespace ipds {

const char *
brActionName(BrAction a)
{
    switch (a) {
      case BrAction::NC: return "NC";
      case BrAction::SetT: return "SET_T";
      case BrAction::SetNT: return "SET_NT";
      case BrAction::SetUN: return "SET_UN";
    }
    return "?";
}

size_t
FuncBat::totalActions() const
{
    size_t n = entryActions.size();
    for (const auto &l : onTaken)
        n += l.size();
    for (const auto &l : onNotTaken)
        n += l.size();
    return n;
}

namespace {

/**
 * Walks one edge region and accumulates the net action per branch.
 */
class RegionWalker
{
  public:
    RegionWalker(const Module &mod, const Function &fn,
                 const LocTable &locs, const Effects &fx,
                 const FuncCorrelation &corr, const CorrOptions &opts,
                 const DefMap &dm)
        : mod(mod), fn(fn), locs(locs), fx(fx), corr(corr), opts(opts),
          dm(dm)
    {}

    /**
     * Walk from @p start with optional initial fact (@p fact_loc ==
     * UINT32_MAX for none) and return the folded action list.
     */
    ActionList
    walk(BlockId start, uint32_t fact_loc, const Interval &fact)
    {
        facts.clear();
        loadFacts.clear();
        net.clear();

        if (fact_loc != UINT32_MAX) {
            facts[fact_loc] = fact;
            applyFact(fact_loc, fact, /*is_new_value=*/false);
        }

        std::set<BlockId> visited;
        BlockId cur = start;
        while (visited.insert(cur).second) {
            const BasicBlock &bb = fn.blocks[cur];
            for (const auto &in : bb.insts) {
                if (in.isTerminator())
                    break;
                step(in);
            }
            const Inst &term = bb.terminator();
            if (term.op != Op::Jmp)
                break; // Br: next edges take over; Ret: done
            cur = term.target;
        }

        ActionList out;
        out.reserve(net.size());
        for (const auto &[idx, act] : net)
            out.emplace_back(idx, act);
        return out;
    }

  private:
    void
    emit(uint32_t branch_idx, BrAction act)
    {
        net[branch_idx] = act;
    }

    /**
     * A location's value is (newly or still) known to lie in @p ival.
     * Emit SET_T / SET_NT to branches whose trigger it subsumes. If the
     * value was just (re)defined (@p is_new_value), branches we cannot
     * decide get SET_UN; a pure knowledge refinement leaves them alone.
     */
    void
    applyFact(uint32_t corr_loc, const Interval &ival, bool is_new_value)
    {
        for (uint32_t bidx : corr.locBranches[corr_loc]) {
            const BranchInfo &b = corr.branches[bidx];
            if (!ival.isInvalid() && ival.subsumedBy(b.takenSet))
                emit(bidx, BrAction::SetT);
            else if (!ival.isInvalid() &&
                     ival.subsumedBy(b.notTakenSet))
                emit(bidx, BrAction::SetNT);
            else if (is_new_value)
                emit(bidx, BrAction::SetUN);
        }
    }

    /** Kill every correlation location the clobber may touch. */
    void
    kill(const ClobberSet &cs)
    {
        if (cs.empty())
            return;
        size_t nLocs = locs.size();
        for (uint32_t cl = 0; cl < corr.numCorrLocs; cl++) {
            if (corr.locBranches[cl].empty() && !facts.count(cl))
                continue;
            bool hit;
            if (cl < nLocs) {
                hit = cs.hitsLoc(locs, cl);
            } else {
                hit = false;
                const PureSig &sig = corr.sigs[cl - nLocs];
                for (const auto &rr : sig.reads) {
                    if (cs.hitsRange(mod, rr.obj, rr.off, rr.len)) {
                        hit = true;
                        break;
                    }
                }
            }
            if (!hit)
                continue;
            facts.erase(cl);
            for (uint32_t bidx : corr.locBranches[cl])
                emit(bidx, BrAction::SetUN);
        }
    }

    /**
     * Value range of vreg @p v at this point in the region, if
     * derivable: a compile-time constant, or an affine transform of a
     * load executed inside the region under a live fact.
     */
    bool
    valueRange(Vreg v, Interval &out) const
    {
        int64_t c;
        if (opts.constStoreFacts && constValue(fn, dm, v, c)) {
            out = Interval::point(c);
            return true;
        }
        AffineExpr af = traceAffine(fn, dm, locs, v);
        if (!af.valid)
            return false;
        if (!opts.affineChains && (af.sign != 1 || af.offset != 0))
            return false;
        auto it = loadFacts.find(af.loadDst);
        if (it == loadFacts.end())
            return false;
        out = it->second.affineImage(af.sign, af.offset);
        return !out.isInvalid();
    }

    void
    step(const Inst &in)
    {
        // Record facts captured by loads executed inside the region:
        // the loaded register keeps this range forever (registers are
        // not attackable), even if memory is clobbered afterwards.
        if (in.op == Op::Load) {
            LocId l = locs.forInst(in);
            if (l != kNoLoc) {
                auto it = facts.find(l);
                if (it != facts.end())
                    loadFacts[in.dst] = it->second;
            }
            return;
        }

        if (in.op == Op::Store) {
            Interval stored;
            bool known = valueRange(in.srcA, stored);
            kill(fx.clobbers(fn.id, in));
            LocId l = locs.forInst(in);
            if (l != kNoLoc && known) {
                facts[l] = stored;
                applyFact(l, stored, /*is_new_value=*/true);
            }
            return;
        }

        // Everything else (indirect stores, calls) just clobbers.
        ClobberSet cs = fx.clobbers(fn.id, in);
        kill(cs);
    }

    const Module &mod;
    const Function &fn;
    const LocTable &locs;
    const Effects &fx;
    const FuncCorrelation &corr;
    const CorrOptions &opts;
    const DefMap &dm;

    std::map<uint32_t, Interval> facts;
    std::map<Vreg, Interval> loadFacts;
    std::map<uint32_t, BrAction> net;
};

} // namespace

FuncBat
buildBat(const Module &mod, const Function &fn, const LocTable &locs,
         const Effects &fx, const FuncCorrelation &corr,
         const CorrOptions &opts)
{
    FuncBat out;
    out.func = fn.id;
    out.numBranches = static_cast<uint32_t>(corr.branches.size());
    out.branchPcs.resize(out.numBranches);
    out.bcv.resize(out.numBranches, false);
    out.onTaken.resize(out.numBranches);
    out.onNotTaken.resize(out.numBranches);

    for (const auto &b : corr.branches) {
        out.branchPcs[b.idx] = b.pc;
        out.bcv[b.idx] = b.checkable;
    }

    DefMap dm(fn);
    RegionWalker walker(mod, fn, locs, fx, corr, opts, dm);

    out.entryActions = walker.walk(0, UINT32_MAX, Interval::full());

    for (const auto &b : corr.branches) {
        const Inst &br = fn.blocks[b.block].insts[b.instIdx];
        bool hasFact = b.kind != CondKind::Unknown && b.checkable;
        out.onTaken[b.idx] = walker.walk(
            br.target, hasFact ? b.corrLoc : UINT32_MAX, b.takenSet);
        out.onNotTaken[b.idx] =
            walker.walk(br.fallthrough,
                        hasFact ? b.corrLoc : UINT32_MAX,
                        b.notTakenSet);
    }
    return out;
}

} // namespace ipds
