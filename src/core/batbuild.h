#ifndef IPDS_CORE_BATBUILD_H
#define IPDS_CORE_BATBUILD_H

/**
 * @file
 * Branch Action Table construction — the algorithm of the paper's
 * Figure 5, reformulated over CFG edge regions.
 *
 * For each (branch, direction) edge — plus a pseudo-edge for function
 * entry — we walk the straight-line region the edge deterministically
 * executes (through unconditional jumps, up to the next conditional
 * branch or return) and fold its events into one net action per
 * affected branch:
 *
 *  - the edge's own range fact (branch direction => location range)
 *    emits SET_T / SET_NT to branches whose trigger range it subsumes;
 *  - a store with a derivable value range (constant, or an affine
 *    transform of a load made under a live fact) re-establishes the
 *    location and emits SET_T / SET_NT / SET_UN accordingly;
 *  - any other may-write (stores, call effects, input builtins) kills
 *    the affected locations and emits SET_UN;
 *  - later events override earlier ones, exactly as the runtime would
 *    apply them sequentially.
 *
 * The result is the logical BAT/BCV content for one function; packing
 * into bits is done by core/tables.
 */

#include <cstdint>
#include <vector>

#include "core/correlation.h"

namespace ipds {

/** The four BAT actions of the paper (§5.1). */
enum class BrAction : uint8_t
{
    NC = 0,    ///< no change
    SetT = 1,  ///< set expected direction to taken
    SetNT = 2, ///< set expected direction to not-taken
    SetUN = 3, ///< set expected direction to unknown
};

const char *brActionName(BrAction a);

/** Ordered list of (branch index, action) pairs for one trigger. */
using ActionList = std::vector<std::pair<uint32_t, BrAction>>;

/**
 * Logical per-function tables: which branches are checked (BCV) and
 * what each executed (branch, direction) does to the others (BAT).
 */
struct FuncBat
{
    FuncId func = kNoFunc;
    uint32_t numBranches = 0;
    /** PC of each branch, by branch index (hash-table keys). */
    std::vector<uint64_t> branchPcs;
    /** BCV: branch index -> checked? */
    std::vector<bool> bcv;
    /** BAT: actions applied after the branch executes taken. */
    std::vector<ActionList> onTaken;
    /** BAT: actions applied after the branch executes not-taken. */
    std::vector<ActionList> onNotTaken;
    /** Actions applied when the function is entered. */
    ActionList entryActions;

    /** Total number of (branch, action) entries across all lists. */
    size_t totalActions() const;
};

/** Build the logical tables for @p fn from its correlation result. */
FuncBat buildBat(const Module &mod, const Function &fn,
                 const LocTable &locs, const Effects &fx,
                 const FuncCorrelation &corr, const CorrOptions &opts);

} // namespace ipds

#endif // IPDS_CORE_BATBUILD_H
