#include "workloads/workloads.h"

#include "support/diag.h"

namespace ipds {

namespace {

// ====================================================================
// telnetd: login followed by a shell-like command loop. The privilege
// decision (`root` flag) lives on main's stack and is consulted by
// every privileged command — the classic non-control-data target.
// ====================================================================
const char *kTelnetd = R"(
int sessions;

int check_login(char *user, char *pass) {
    if (strcmp(user, "root") == 0) {
        if (strcmp(pass, "toor") == 0) {
            return 2;
        }
        return 0;
    }
    if (strcmp(user, "guest") == 0) {
        return 1;
    }
    return 0;
}

void main() {
    char user[16];
    char pass[16];
    char cmd[32];
    int level;
    int rounds;
    int failures;
    int logged;

    sessions = sessions + 1;
    failures = 0;
    level = 0;
    logged = 0;

    get_input_n(user, 16);
    get_input_n(pass, 16);
    level = check_login(user, pass);
    if (level == 0) {
        failures = failures + 1;
        print_str("login failed\n");
    } else {
        print_str("welcome\n");
    }

    rounds = 0;
    while (rounds < 6) {
        if (level > 2) {
            print_str("audit: impossible level\n");
        }
        // The shell prompt consults the privilege level every round,
        // exactly like a real shell: root gets '#', users get '$'.
        if (level == 2) {
            print_str("# ");
        } else {
            if (level == 0) {
                print_str("? ");
            } else {
                print_str("$ ");
            }
        }
        get_input_n(cmd, 32);
        if (strcmp(cmd, "quit") == 0) {
            rounds = 6;
        } else {
            if (strcmp(cmd, "whoami") == 0) {
                if (level == 2) {
                    print_str("root\n");
                } else {
                    // Paranoid consistency check: an unprivileged
                    // session must not carry the root login name.
                    if (strcmp(user, "root") == 0) {
                        print_str("audit: root name, no privilege\n");
                    } else {
                        if (level == 1) {
                            print_str("guest\n");
                        } else {
                            print_str("nobody\n");
                        }
                    }
                }
            }
            if (strcmp(cmd, "shutdown") == 0) {
                // Defense in depth: privileged commands re-verify the
                // login name as well as the session level.
                if (level == 2) {
                    if (strcmp(user, "root") == 0) {
                        print_str("system going down\n");
                    } else {
                        print_str("audit: level/user mismatch\n");
                    }
                } else {
                    print_str("permission denied\n");
                }
            }
            if (strcmp(cmd, "stats") == 0) {
                print_int(sessions);
                print_str(" sessions, ");
                print_int(failures);
                print_str(" failures\n");
            }
            if (strcmp(cmd, "uptime") == 0) {
                print_str("up since boot\n");
            }
            if (strncmp(cmd, "log ", 4) == 0) {
                // Only authenticated users may append to the audit
                // log, and the audit trail is rate limited.
                if (level >= 1) {
                    if (logged < 3) {
                        print_str("logged: ");
                        print_str(cmd + 4);
                        print_str("\n");
                        logged = logged + 1;
                    } else {
                        print_str("log rate limited\n");
                    }
                } else {
                    print_str("log: login first\n");
                }
            }
            rounds = rounds + 1;
        }
    }
    print_str("bye\n");
}
)";

// ====================================================================
// wu-ftpd: USER/PASS then transfer commands; the anonymous flag and
// the per-session transfer quota are both stack-resident decisions.
// ====================================================================
const char *kWuFtpd = R"(
int xfer_total;

void main() {
    char user[16];
    char pass[24];
    char cmd[32];
    char path[40];
    int anon;
    int quota;
    int sent;
    int i;

    print_str("220 ftp ready\n");
    get_input_n(user, 16);
    anon = 0;
    if (strcmp(user, "anonymous") == 0) {
        anon = 1;
    }
    get_input_n(pass, 24);

    quota = 3;
    if (anon == 1) {
        quota = 1;
    }

    sent = 0;
    i = 0;
    while (i < 5) {
        // Per-command session logging re-derives the account class
        // from the login name, as wu-ftpd's logging paths do.
        if (strcmp(user, "anonymous") == 0) {
            print_str("[anon] ");
        } else {
            print_str("[user] ");
        }
        if (anon == 1) {
            print_str("~ftp> ");
        } else {
            print_str("ftp> ");
        }
        if (quota > 3) {
            print_str("quota corrupt\n");
        }
        get_input_n(cmd, 32);
        if (strncmp(cmd, "RETR ", 5) == 0) {
            strncpy(path, cmd + 5, 32);
            if (anon == 1) {
                if (strncmp(path, "pub/", 4) == 0) {
                    if (sent < quota) {
                        print_str("150 sending ");
                        print_str(path);
                        print_str("\n");
                        sent = sent + 1;
                        xfer_total = xfer_total + 1;
                    } else {
                        print_str("452 quota exceeded\n");
                    }
                } else {
                    print_str("550 access denied\n");
                }
            } else {
                if (sent < quota) {
                    print_str("150 sending ");
                    print_str(path);
                    print_str("\n");
                    sent = sent + 1;
                    xfer_total = xfer_total + 1;
                } else {
                    print_str("452 quota exceeded\n");
                }
            }
        }
        if (strncmp(cmd, "CWD ", 4) == 0) {
            if (anon == 1) {
                if (strncmp(cmd + 4, "pub", 3) == 0) {
                    print_str("250 cwd ok\n");
                } else {
                    print_str("550 anonymous stays in pub\n");
                }
            } else {
                print_str("250 cwd ok\n");
            }
        }
        if (strcmp(cmd, "SYST") == 0) {
            print_str("215 UNIX Type: L8\n");
        }
        if (strncmp(cmd, "STOR ", 5) == 0) {
            if (anon == 1) {
                print_str("532 anonymous upload denied\n");
            } else {
                if (sent < quota) {
                    print_str("150 receiving\n");
                    sent = sent + 1;
                } else {
                    print_str("452 quota exceeded\n");
                }
            }
        }
        if (strncmp(cmd, "DELE ", 5) == 0) {
            if (anon == 1) {
                print_str("550 anonymous cannot delete\n");
            } else {
                print_str("250 deleted\n");
            }
        }
        if (strcmp(cmd, "QUIT") == 0) {
            i = 5;
        } else {
            i = i + 1;
        }
    }
    print_str("221 goodbye\n");
}
)";

// ====================================================================
// xinetd: super-server dispatch with per-service connection limits.
// Range checks on the spawn counters are the correlated branches.
// ====================================================================
const char *kXinetd = R"(
int started;

int lookup(char *svc) {
    if (strcmp(svc, "echo") == 0) { return 1; }
    if (strcmp(svc, "time") == 0) { return 2; }
    if (strcmp(svc, "admin") == 0) { return 3; }
    return 0;
}

void main() {
    char svc[16];
    char peer[24];
    int id;
    int echo_live;
    int admin_live;
    int round;
    int drop_all;

    echo_live = 0;
    admin_live = 0;
    drop_all = 0;
    round = 0;
    while (round < 6) {
        get_input_n(svc, 16);
        get_input_n(peer, 24);
        if (drop_all > 1) {
            print_str("audit: switch corrupt\n");
        }
        // Global kill switch, consulted on every connection.
        if (drop_all == 1) {
            print_str("refusing all connections\n");
            round = round + 1;
        } else {
        id = lookup(svc);
        if (id == 0) {
            print_str("unknown service\n");
        }
        if (id == 1) {
            if (echo_live < 4) {
                echo_live = echo_live + 1;
                started = started + 1;
                print_str("spawn echo\n");
            } else {
                print_str("echo: too many instances\n");
            }
        }
        if (id == 2) {
            started = started + 1;
            print_str("spawn time\n");
        }
        if (id == 3) {
            if (strncmp(peer, "10.", 3) == 0) {
                if (admin_live < 1) {
                    admin_live = admin_live + 1;
                    started = started + 1;
                    print_str("spawn admin\n");
                } else {
                    print_str("admin busy\n");
                }
            } else {
                print_str("admin: refused from ");
                print_str(peer);
                print_str("\n");
            }
        }
        round = round + 1;
        }
    }
    print_int(started);
    print_str(" services started\n");
}
)";

// ====================================================================
// crond: parses one crontab entry at startup (range validation, a
// privileged system-tab flag), then checks it against the clock every
// tick — so the parsed schedule and its validity flag are long-lived
// stack state consulted between every pair of input events.
// ====================================================================
const char *kCrond = R"(
int ran;

void main() {
    char job[24];
    int minute;
    int hour;
    int systab;
    int valid;
    int now_min;
    int now_hour;
    int tick;

    // --- parse the crontab entry once --------------------------------
    minute = input_int();
    hour = input_int();
    get_input_n(job, 24);

    valid = 0;
    if (minute >= 0) {
        if (minute < 60) {
            if (hour >= 0) {
                if (hour < 24) {
                    valid = 1;
                }
            }
        }
    }
    if (valid == 0) {
        print_str("bad schedule\n");
    }

    systab = 0;
    if (strncmp(job, "sys:", 4) == 0) {
        systab = 1;
    }

    // --- clock loop ---------------------------------------------------
    tick = 0;
    while (tick < 4) {
        now_min = input_int();
        now_hour = input_int();

        if (valid > 1) {
            print_str("audit: valid flag corrupt\n");
        }
        // Re-validate the parsed schedule at every dispatch: a
        // corrupted entry must never fire (defense in depth).
        if (minute > 59) {
            print_str("audit: schedule corrupt\n");
        }
        if (minute < 0) {
            print_str("audit: schedule corrupt\n");
        }
        if (hour > 23) {
            print_str("audit: schedule corrupt\n");
        }
        if (hour < 0) {
            print_str("audit: schedule corrupt\n");
        }
        if (valid == 1) {
            if (strncmp(job, "sys:", 4) == 0) {
                // The system-tab decision is re-derived from the job
                // spec at dispatch time (defense in depth vs the
                // cached flag).
                if (systab == 1) {
                    if (now_min == minute) {
                        if (now_hour == hour) {
                            print_str("run as root: ");
                            print_str(job);
                            print_str("\n");
                            ran = ran + 1;
                        }
                    }
                } else {
                    print_str("audit: systab mismatch\n");
                }
            } else {
                if (now_min == minute) {
                    if (now_hour == hour) {
                        print_str("run as user: ");
                        print_str(job);
                        print_str("\n");
                        ran = ran + 1;
                    }
                }
            }
        }
        tick = tick + 1;
    }
    print_int(ran);
    print_str(" jobs ran\n");
}
)";

// ====================================================================
// sysklogd: priority-filtered logging. The mask decision is recomputed
// per message from a stack-resident threshold.
// ====================================================================
const char *kSysklogd = R"(
int dropped;

void main() {
    char msg[48];
    int threshold;
    int pri;
    int count;
    int emergs;
    int enabled;

    threshold = 4;
    enabled = 1;
    emergs = 0;
    count = 0;
    while (count < 6) {
        pri = input_int();
        get_input_n(msg, 48);

        // Config integrity assertions, evaluated per message.
        if (threshold > 7) {
            print_str("config corrupt: threshold\n");
        }
        if (threshold < 0) {
            print_str("config corrupt: threshold\n");
        }
        // Logging can be toggled off by SIGHUP handling; the flag is
        // consulted for every message.
        if (enabled != 1) {
            dropped = dropped + 1;
            count = count + 1;
        } else {
        if (pri >= 0) {
            if (pri < 8) {
                if (pri <= threshold) {
                    print_str("log[");
                    print_int(pri);
                    print_str("]: ");
                    print_str(msg);
                    print_str("\n");
                } else {
                    dropped = dropped + 1;
                }
                if (pri == 0) {
                    emergs = emergs + 1;
                    print_str("wall: emergency!\n");
                }
            } else {
                print_str("bad priority\n");
            }
        } else {
            print_str("bad priority\n");
        }
        count = count + 1;
        }
    }
    if (emergs > 0) {
        print_str("had emergencies\n");
    }
}
)";

// ====================================================================
// atftpd: TFTP read/write requests with mode validation and a block
// transfer loop whose bounds are attack targets.
// ====================================================================
const char *kAtftpd = R"(
void main() {
    char fname[24];
    char mode[12];
    int opcode;
    int blocks;
    int blk;
    int allow_write;
    int secure;
    int round;

    allow_write = 0;
    secure = 1;
    round = 0;
    while (round < 3) {
        opcode = input_int();
        get_input_n(fname, 24);
        get_input_n(mode, 12);

        // Secure mode restricts served paths; checked per request.
        if (secure != 1) {
            print_str("server wide open\n");
        }
        if (allow_write != 0) {
            print_str("warning: uploads enabled\n");
        }
        if (strcmp(mode, "octet") == 0) {
            if (opcode == 1) {
                if (strncmp(fname, "boot/", 5) == 0) {
                    blocks = 4;
                    blk = 0;
                    while (blk < blocks) {
                        print_str("data block ");
                        print_int(blk);
                        print_str("\n");
                        blk = blk + 1;
                    }
                    print_str("read done\n");
                } else {
                    print_str("file not permitted\n");
                }
            }
            if (opcode == 2) {
                if (allow_write == 1) {
                    print_str("write accepted\n");
                } else {
                    print_str("write denied\n");
                }
            }
            if (opcode != 1) {
                if (opcode != 2) {
                    print_str("bad opcode\n");
                }
            }
        } else {
            print_str("bad mode\n");
        }
        round = round + 1;
    }
}
)";

// ====================================================================
// httpd: request parsing with method dispatch and an /admin realm
// guarded by a repeated credential check — the Figure 1 pattern.
// ====================================================================
const char *kHttpd = R"(
int hits;

void main() {
    char method[8];
    char url[32];
    char auth[24];
    int authed;
    int maintenance;
    int round;
    int served;

    // Session state: admin authentication persists across requests
    // (cookie-style), and a maintenance switch gates everything.
    authed = 0;
    maintenance = 0;
    served = 0;

    round = 0;
    while (round < 5) {
        get_input_n(method, 8);
        get_input_n(url, 32);
        get_input_n(auth, 24);
        hits = hits + 1;

        if (authed > 1) {
            print_str("500 session corrupt\n");
        }
        if (served > 20) {
            print_str("429 too many requests\n");
        }
        if (maintenance == 1) {
            print_str("503 maintenance\n");
        } else {
            served = served + 1;
            if (strcmp(auth, "secret") == 0) {
                authed = 1;
            }
            if (strcmp(url, "/health") == 0) {
                print_str("200 healthy\n");
            }
            if (strncmp(url, "/admin", 6) == 0) {
                if (authed == 1) {
                    if (strcmp(method, "GET") == 0) {
                        print_str("200 admin page\n");
                    } else {
                        print_str("200 admin update\n");
                    }
                } else {
                    print_str("401 unauthorized\n");
                }
            } else {
                if (strcmp(method, "GET") == 0) {
                    print_str("200 ok ");
                    print_str(url);
                    print_str("\n");
                } else {
                    if (strcmp(method, "HEAD") == 0) {
                        print_str("200\n");
                    } else {
                        if (strcmp(method, "POST") == 0) {
                            print_str("200 posted\n");
                        } else {
                            print_str("405 bad method\n");
                        }
                    }
                }
            }
        }
        round = round + 1;
    }
}
)";

// ====================================================================
// sendmail: SMTP state machine. The protocol state variable takes
// small constant values and is tested everywhere — dense correlations.
// ====================================================================
const char *kSendmail = R"(
int delivered;

void main() {
    char cmd[40];
    int state;
    int rcpts;
    int round;

    state = 0;
    rcpts = 0;
    print_str("220 smtp ready\n");

    round = 0;
    while (round < 8) {
        get_input_n(cmd, 40);

        if (state > 3) {
            print_str("500 protocol state corrupt\n");
        }
        if (rcpts > 4) {
            print_str("500 rcpt count corrupt\n");
        }
        if (strncmp(cmd, "HELO", 4) == 0) {
            if (state == 0) {
                state = 1;
                print_str("250 hello\n");
            } else {
                print_str("503 out of order\n");
            }
        }
        if (strncmp(cmd, "MAIL", 4) == 0) {
            if (state == 1) {
                state = 2;
                print_str("250 sender ok\n");
            } else {
                print_str("503 need HELO\n");
            }
        }
        if (strncmp(cmd, "RCPT", 4) == 0) {
            if (state == 2) {
                if (rcpts < 4) {
                    rcpts = rcpts + 1;
                    print_str("250 rcpt ok\n");
                } else {
                    print_str("452 too many rcpts\n");
                }
            } else {
                print_str("503 need MAIL\n");
            }
        }
        if (strncmp(cmd, "DATA", 4) == 0) {
            if (state == 2) {
                if (rcpts > 0) {
                    state = 3;
                    print_str("354 go ahead\n");
                } else {
                    print_str("554 no recipients\n");
                }
            } else {
                print_str("503 need RCPT\n");
            }
        }
        if (strcmp(cmd, "NOOP") == 0) {
            print_str("250 ok\n");
        }
        if (strcmp(cmd, "RSET") == 0) {
            if (state > 0) {
                state = 1;
                rcpts = 0;
                print_str("250 reset\n");
            } else {
                print_str("503 need HELO\n");
            }
        }
        if (strncmp(cmd, "VRFY", 4) == 0) {
            if (state >= 1) {
                print_str("252 cannot verify, will try\n");
            } else {
                print_str("503 need HELO\n");
            }
        }
        if (strcmp(cmd, ".") == 0) {
            if (state == 3) {
                delivered = delivered + 1;
                state = 1;
                rcpts = 0;
                print_str("250 delivered\n");
            }
        }
        if (strcmp(cmd, "QUIT") == 0) {
            round = 8;
        } else {
            round = round + 1;
        }
    }
    print_str("221 closing\n");
}
)";

// ====================================================================
// sshd: authentication with an attempt budget and privilege
// separation; the attempt counter is monotone (range correlation).
// ====================================================================
const char *kSshd = R"(
int logins;

void main() {
    char user[16];
    char key[32];
    int attempts;
    int authed;
    int privileged;
    int round;
    char sess[16];

    attempts = 0;
    authed = 0;
    privileged = 0;

    while (attempts < 3) {
        get_input_n(user, 16);
        get_input_n(key, 32);
        if (strcmp(user, "admin") == 0) {
            if (strcmp(key, "rsa-ok") == 0) {
                authed = 1;
                privileged = 1;
                attempts = 3;
            } else {
                attempts = attempts + 1;
                print_str("auth failed\n");
            }
        } else {
            if (strcmp(key, "rsa-ok") == 0) {
                authed = 1;
                attempts = 3;
            } else {
                attempts = attempts + 1;
                print_str("auth failed\n");
            }
        }
    }

    if (authed == 1) {
        logins = logins + 1;
        print_str("session open\n");
        round = 0;
        while (round < 3) {
            get_input_n(sess, 16);
            if (privileged > 1) {
                print_str("audit: privilege bits corrupt\n");
            }
            if (strcmp(sess, "sudo") == 0) {
                // Privilege separation re-checks the principal name.
                if (privileged == 1) {
                    if (strcmp(user, "admin") == 0) {
                        print_str("# root shell\n");
                    } else {
                        print_str("audit: priv/user mismatch\n");
                    }
                } else {
                    print_str("sudo: denied\n");
                }
            } else {
                print_str("$ ");
                print_str(sess);
                print_str("\n");
            }
            round = round + 1;
        }
        print_str("session closed\n");
    } else {
        print_str("too many failures\n");
    }
}
)";

// ====================================================================
// portmap: RPC program registry with bounds-checked table slots and an
// owner principal whose identity gates destructive operations.
// ====================================================================
const char *kPortmap = R"(
int table_prog[8];
int table_port[8];

void main() {
    char owner[16];
    int op;
    int prog;
    int port;
    int used;
    int i;
    int found;
    int round;
    int locked;
    int owner_ok;

    used = 0;
    locked = 0;
    round = 0;

    // The registry owner is established at startup and re-verified
    // whenever an unset request arrives.
    get_input_n(owner, 16);
    owner_ok = 0;
    if (strcmp(owner, "root") == 0) {
        owner_ok = 1;
    }

    while (round < 6) {
        op = input_int();
        prog = input_int();

        if (owner_ok > 1) {
            print_str("audit: owner bits corrupt\n");
        }
        // Registrations can be frozen by the admin; checked per call.
        if (locked == 1) {
            if (op == 1) {
                print_str("registry locked\n");
                op = 0;
            }
        }
        if (op == 3) {
            if (owner_ok == 1) {
                if (strcmp(owner, "root") == 0) {
                    print_str("unset ok\n");
                } else {
                    print_str("audit: owner mismatch\n");
                }
            } else {
                print_str("unset denied\n");
            }
        }
        if (op == 1) {
            port = input_int();
            if (used < 8) {
                if (prog > 0) {
                    if (port > 0) {
                        if (port < 65536) {
                            table_prog[used] = prog;
                            table_port[used] = port;
                            used = used + 1;
                            print_str("registered\n");
                        } else {
                            print_str("bad port\n");
                        }
                    } else {
                        print_str("bad port\n");
                    }
                } else {
                    print_str("bad program\n");
                }
            } else {
                print_str("table full\n");
            }
        }
        if (op == 2) {
            found = 0;
            i = 0;
            while (i < used) {
                if (table_prog[i] == prog) {
                    print_str("port ");
                    print_int(table_port[i]);
                    print_str("\n");
                    found = 1;
                    i = used;
                } else {
                    i = i + 1;
                }
            }
            if (found == 0) {
                print_str("not registered\n");
            }
        }
        round = round + 1;
    }
}
)";

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> out;
    out.push_back({"telnetd", "buffer overflow", kTelnetd,
                   {"guest", "guestpw", "whoami", "stats", "shutdown",
                    "whoami", "stats", "quit"}});
    out.push_back({"wu-ftpd", "format string", kWuFtpd,
                   {"anonymous", "me@example.org", "RETR pub/file1",
                    "RETR etc/passwd", "DELE pub/file1", "RETR pub/x",
                    "QUIT"}});
    out.push_back({"xinetd", "buffer overflow", kXinetd,
                   {"echo", "10.0.0.5", "time", "10.0.0.5", "admin",
                    "10.0.0.9", "admin", "192.168.0.4", "echo",
                    "10.1.2.3", "ident", "10.0.0.1"}});
    out.push_back({"crond", "buffer overflow", kCrond,
                   {"30", "12", "sys:rotate", "29", "12", "30", "12",
                    "30", "11", "30", "12"}});
    out.push_back({"sysklogd", "format string", kSysklogd,
                   {"3", "daemon started", "6", "debug chatter", "0",
                    "disk on fire", "4", "auth ok", "9",
                    "bogus priority", "2", "link up"}});
    out.push_back({"atftpd", "buffer overflow", kAtftpd,
                   {"1", "boot/kernel", "octet", "2", "upload.bin",
                    "octet", "1", "etc/shadow", "octet"}});
    out.push_back({"httpd", "buffer overflow", kHttpd,
                   {"GET", "/index.html", "-", "GET", "/admin/panel",
                    "wrongpass", "GET", "/admin/panel", "secret",
                    "POST", "/admin/config", "-", "PUT", "/file",
                    "-"}});
    out.push_back({"sendmail", "buffer overflow", kSendmail,
                   {"HELO relay", "MAIL FROM:<a>", "RCPT TO:<b>",
                    "RCPT TO:<c>", "DATA", ".", "MAIL FROM:<d>",
                    "QUIT"}});
    out.push_back({"sshd", "buffer overflow", kSshd,
                   {"admin", "rsa-bad", "admin", "rsa-ok", "ls",
                    "sudo", "logout"}});
    out.push_back({"portmap", "buffer overflow", kPortmap,
                   {"root", "1", "100003", "2049", "1", "100000",
                    "111", "2", "100003", "3", "100000", "1",
                    "100005", "70000", "2", "100000"}});
    return out;
}

// The registry: seeded once with the ten paper workloads, extended
// by registerWorkloads(). Mutation happens during harness setup
// (single-threaded), so a plain function-local static suffices.
std::vector<Workload> &
registry()
{
    static std::vector<Workload> wls = makeWorkloads();
    return wls;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    return registry();
}

const Workload &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    fatal("unknown workload '%s'", name.c_str());
}

void
registerWorkloads(std::span<const Workload> extra)
{
    std::vector<Workload> &wls = registry();
    // Validate the whole batch before mutating: a duplicate halfway
    // through must not leave the registry half-extended.
    for (const Workload &w : extra) {
        for (const Workload &have : wls)
            if (have.name == w.name)
                fatal("registerWorkloads: duplicate workload '%s'",
                      w.name.c_str());
        for (const Workload &other : extra)
            if (&other != &w && other.name == w.name)
                fatal("registerWorkloads: duplicate workload '%s'",
                      w.name.c_str());
    }
    wls.insert(wls.end(), extra.begin(), extra.end());
}

void
resetWorkloadRegistry()
{
    registry() = makeWorkloads();
}

} // namespace ipds
