#ifndef IPDS_WORKLOADS_WORKLOADS_H
#define IPDS_WORKLOADS_WORKLOADS_H

/**
 * @file
 * The benchmark suite: ten MiniC server-workalikes mirroring the ten
 * vulnerable servers of the paper's §6 (telnetd, wu-ftpd, xinetd,
 * crond, sysklogd, atftpd, httpd, sendmail, sshd, portmap).
 *
 * Each workload reproduces the *shape* that matters for the
 * experiments: session loops driven by input, authentication and
 * privilege flags held in stack locals, repeated string/range checks
 * the compiler can correlate, and scratch state whose corruption does
 * not change control flow (so that, as in the paper, only about half
 * of random tamperings are control-flow-relevant at all).
 */

#include <span>
#include <string>
#include <vector>

namespace ipds {

/** One benchmark program plus its benign session script. */
struct Workload
{
    std::string name;        ///< matches the paper's server name
    std::string vulnerability; ///< paper's vulnerability class
    std::string source;      ///< MiniC source text
    std::vector<std::string> benignInputs; ///< scripted session
};

/**
 * The workload registry: the ten paper workloads (in the paper's
 * order) plus everything added via registerWorkloads(). Every harness
 * that iterates allWorkloads() — fig7 campaigns, fault sweeps, the
 * service benches — picks up registered programs with no plumbing of
 * its own.
 */
const std::vector<Workload> &allWorkloads();

/** Find one by name; throws FatalError if missing. */
const Workload &workloadByName(const std::string &name);

/**
 * Append @p extra to the registry behind allWorkloads(). A name that
 * collides with an existing workload (bundled or registered) is a
 * FatalError and registers nothing. Not thread-safe: register during
 * harness setup, before any worker threads iterate the registry.
 */
void registerWorkloads(std::span<const Workload> extra);

/** Drop every registered workload, restoring the ten-workload
 *  default set (test isolation). */
void resetWorkloadRegistry();

} // namespace ipds

#endif // IPDS_WORKLOADS_WORKLOADS_H
