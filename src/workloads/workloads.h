#ifndef IPDS_WORKLOADS_WORKLOADS_H
#define IPDS_WORKLOADS_WORKLOADS_H

/**
 * @file
 * The benchmark suite: ten MiniC server-workalikes mirroring the ten
 * vulnerable servers of the paper's §6 (telnetd, wu-ftpd, xinetd,
 * crond, sysklogd, atftpd, httpd, sendmail, sshd, portmap).
 *
 * Each workload reproduces the *shape* that matters for the
 * experiments: session loops driven by input, authentication and
 * privilege flags held in stack locals, repeated string/range checks
 * the compiler can correlate, and scratch state whose corruption does
 * not change control flow (so that, as in the paper, only about half
 * of random tamperings are control-flow-relevant at all).
 */

#include <string>
#include <vector>

namespace ipds {

/** One benchmark program plus its benign session script. */
struct Workload
{
    std::string name;        ///< matches the paper's server name
    std::string vulnerability; ///< paper's vulnerability class
    std::string source;      ///< MiniC source text
    std::vector<std::string> benignInputs; ///< scripted session
};

/** The ten workloads, in the paper's order. */
const std::vector<Workload> &allWorkloads();

/** Find one by name; throws FatalError if missing. */
const Workload &workloadByName(const std::string &name);

} // namespace ipds

#endif // IPDS_WORKLOADS_WORKLOADS_H
