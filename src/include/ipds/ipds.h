#ifndef IPDS_INCLUDE_IPDS_IPDS_H
#define IPDS_INCLUDE_IPDS_IPDS_H

/**
 * @file
 * Umbrella header: the public API of the IPDS library.
 *
 * Typical embedding:
 *
 *   #include <ipds/ipds.h>
 *
 *   ipds::CompiledProgram prog =
 *       ipds::compileAndAnalyze(source, "myserver");
 *   ipds::Vm vm(prog.mod);
 *   vm.setInputs({"hello"});
 *   ipds::Detector det(prog);
 *   vm.addObserver(&det);
 *   ipds::RunResult r = vm.run();
 *   if (det.alarmed()) { ... }
 *
 * Layered headers, if you need less than everything:
 *   - frontend/codegen.h   MiniC -> IR only
 *   - core/program.h       compile + analysis pipeline
 *   - core/image.h         the attachable binary image (§5.4)
 *   - vm/vm.h              execution, tampering, traces
 *   - ipds/detector.h      the runtime checker
 *   - timing/cpu.h         Table 1 performance model
 *   - attack/campaign.h    attack experiments (pokes)
 *   - attack/overflow.h    attack experiments (planted overflows)
 *   - opt/passes.h         optional IR optimizations
 *   - baseline/stide.h     learned-model baseline
 */

#include "attack/campaign.h"
#include "attack/overflow.h"
#include "baseline/stide.h"
#include "core/image.h"
#include "core/program.h"
#include "frontend/codegen.h"
#include "ipds/detector.h"
#include "opt/passes.h"
#include "timing/cpu.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

#endif // IPDS_INCLUDE_IPDS_IPDS_H
