#ifndef IPDS_INCLUDE_IPDS_IPDS_H
#define IPDS_INCLUDE_IPDS_IPDS_H

/**
 * @file
 * Umbrella header: the public API of the IPDS library.
 *
 * Typical embedding — the ipds::Session facade assembles the whole
 * stack (VM, detector, optional timing model, metrics, tracing):
 *
 *   #include <ipds/ipds.h>
 *
 *   ipds::CompiledProgram prog =
 *       ipds::compileAndAnalyze(source, "myserver");
 *   ipds::Session s = ipds::Session::builder()
 *                         .program(prog)
 *                         .inputs({"hello"})
 *                         .build();
 *   s.run();
 *   if (s.alarmed()) { ... }
 *   std::puts(s.metricsJson().c_str());   // ipds.detector.* etc.
 *
 * Scale the same recipe up with .sessions(n).shards(k).threads(t) —
 * aggregates are bit-identical for every thread count — and attach
 * the Table 1 timing model with .timing(table1Config()).
 *
 * Advanced, layered headers, if you need less than everything (the
 * pre-Session wiring of Vm + Detector + CpuModel by hand remains
 * fully supported):
 *   - frontend/codegen.h   MiniC -> IR only
 *   - core/program.h       compile + analysis pipeline
 *   - core/image.h         the attachable binary image (§5.4)
 *   - vm/vm.h              execution, tampering, traces
 *   - ipds/detector.h      the runtime checker
 *   - timing/cpu.h         Table 1 performance model
 *   - attack/campaign.h    attack experiments (pokes)
 *   - attack/overflow.h    attack experiments (planted overflows)
 *   - gen/gen.h            seeded workload & attack-recipe generator
 *   - gen/corpus.h         corpus campaigns + differential oracles
 *   - opt/passes.h         optional IR optimizations
 *   - baseline/stide.h     learned-model baseline
 *   - obs/metrics.h        named counters/gauges/histograms
 *   - obs/trace.h          structured event tracer + exporters
 *   - obs/session.h        the Session facade on its own
 */

#include "attack/campaign.h"
#include "attack/overflow.h"
#include "baseline/stide.h"
#include "gen/corpus.h"
#include "gen/gen.h"
#include "core/image.h"
#include "core/program.h"
#include "frontend/codegen.h"
#include "ipds/detector.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "opt/passes.h"
#include "timing/cpu.h"
#include "vm/vm.h"
#include "workloads/workloads.h"

#endif // IPDS_INCLUDE_IPDS_IPDS_H
