#include "serve/server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/export.h"
#include "obs/names.h"
#include "replay/replay.h"
#include "support/diag.h"
#include "support/threadpool.h"

namespace ipds {
namespace serve {

namespace n = obs::names;
using Clock = std::chrono::steady_clock;

uint64_t
alarmDigest(const std::vector<Alarm> &alarms)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV-1a
    auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; i++) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const Alarm &a : alarms) {
        mix(a.func);
        mix(a.pc);
        mix(a.actualTaken ? 1 : 0);
        mix(static_cast<uint64_t>(a.expected));
        mix(a.branchIndex);
    }
    return h;
}

namespace {

/** Self-pipe messages: actors -> ingest thread. */
enum class Msg : uint8_t
{
    Done = 1,   ///< stream finished OK: send its Result frame
    Fail = 2,   ///< stream rejected: send its Error frame, close
    Resume = 3, ///< queue drained: re-enable POLLIN on the conn
    Stop = 4,   ///< requestStop(): shut the ingest loop down
    Ack = 5,    ///< sealed watermark advanced: send a ChunkAck
};

/** One TraceData payload (or the end-of-stream marker). */
struct Segment
{
    std::vector<uint8_t> bytes;
    Clock::time_point enq;
    bool eof = false;
    /** Absolute trace offset of bytes[0] (the resume dedup key). */
    uint64_t absStart = 0;
};

/** Per-stream state. The ingest thread frames; one actor decodes. */
struct Stream
{
    std::string tenant;
    Clock::time_point started;

    // Routing + resume identity. Written once at Hello (before any
    // segment is queued — the queue mutex is the fence), read-only
    // after.
    const CompiledProgram *prog = nullptr;
    uint64_t moduleHash = 0;
    bool resumable = false; ///< client declared a resume token
    uint64_t resumeToken = 0;

    // Ingest-thread-only transport state.
    uint64_t rxPos = 0; ///< abs trace offset of the next TraceData
    Clock::time_point parkDeadline{}; ///< while parked for resume
    bool resultSent = false; ///< Result/Error delivered (dedup)

    // Actor-only decode state (the actor invariant — at most one
    // scheduled task per stream — is the only lock it needs).
    std::vector<uint8_t> tbuf;
    size_t tpos = 0;
    bool haveHeader = false;
    std::unique_ptr<replay::ReplayEngine> engine;
    std::unique_ptr<replay::ReplayEngine::ShardCursor> cursor;
    uint32_t curShard = 0;
    std::vector<replay::ReplayShardResult> shardResults;
    uint64_t truncatedChunks = 0;
    uint64_t chunkCrcFailures = 0;
    bool sawFooter = false;    ///< valid v2 index footer chunk seen
    uint64_t indexBytes = 0;   ///< footer chunk + trailer bytes
    uint64_t absNext = 0;      ///< abs offset after the last ingested
                               ///< byte (actor's dedup watermark)
    uint64_t sealedChunks = 0; ///< data chunks fed to the cursor
    uint64_t lastAckChunks = 0; ///< sealedChunks at the last ack

    // Shared queue + flags (guarded by m).
    std::mutex m;
    std::deque<Segment> q;
    bool scheduled = false;
    bool pausedByServer = false;
    bool failed = false;
    bool finished = false;
    uint32_t connId = 0; ///< 0 while parked (acks have no target)
    // Sealed watermark, published by the actor for the ingest
    // thread's ChunkAck frames and resume-attach validation.
    uint64_t pubSealedBytes = 0;
    uint64_t pubSealedChunks = 0;
    uint64_t pubAbsNext = 0;

    // Written by the finishing actor before it posts Done/Fail; read
    // by the ingest thread after (the self-pipe is the fence).
    std::string reportText;

    // Transport meters (ingest thread until finish, then published).
    uint64_t frames = 0;
    uint64_t bytes = 0;
    uint64_t stalls = 0;
};

struct Conn
{
    int fd = -1;
    uint32_t id = 0;
    std::unique_ptr<wire::FrameDecoder> dec;
    std::vector<uint8_t> outbuf;
    size_t outOff = 0;
    std::shared_ptr<Stream> stream;
    bool paused = false;  ///< POLLIN off (admission control)
    bool closing = false; ///< flush outbuf, then close
};

struct TenantState
{
    uint64_t streams = 0;
    std::vector<Alarm> alarms;
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
    obs::MetricsRegistry reg; ///< replay-shaped, merged per stream
    uint64_t frames = 0;
    uint64_t bytes = 0;
    uint64_t stalls = 0;
};

void
setNonBlock(int fd)
{
    int fl = fcntl(fd, F_GETFL, 0);
    if (fl >= 0)
        fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

} // namespace

struct Server::Impl
{
    ServerConfig cfg;

    // Module registry: immutable once start() runs, so actors read it
    // without a lock. regOrder.front() serves v1 Hello streams.
    std::unordered_map<uint64_t, const CompiledProgram *> modules;
    std::vector<const CompiledProgram *> regOrder;

    int listenFd = -1;
    int tcpFd = -1;
    uint16_t tcpBoundPort = 0;
    int pipeRd = -1;
    int pipeWr = -1;
    std::thread ingest;
    bool started = false;
    bool joined = false;
    std::atomic<std::thread::id> ingestTid{};

    // Ingest-thread-only state.
    std::unordered_map<uint32_t, Conn> conns;
    uint32_t nextConnId = 1;
    std::deque<std::pair<Msg, uint32_t>> selfMsgs;
    /** Dropped resumable streams awaiting a reconnect, by token. */
    std::unordered_map<uint64_t, std::shared_ptr<Stream>> parked;
    /** Tokens owned by a live or parked stream (collision guard). */
    std::unordered_set<uint64_t> activeTokens;
    /** Shutdown in progress: closeConn fails instead of parking. */
    bool draining = false;

    // Shared state.
    mutable std::mutex mtx;
    std::condition_variable cv;
    bool stopped = false; ///< ingest loop exited
    uint64_t completed = 0;
    uint64_t failedStreams = 0;
    std::map<std::string, TenantState> tenants;
    obs::MetricsRegistry reg;
    std::vector<uint64_t> latencySamples; ///< ring of the newest cap
    size_t latencyNext = 0; ///< overwrite slot once the ring is full
    obs::MetricHandle hAccepted, hCompleted, hFailed, hFrames,
        hBytes, hFrameCrc, hOversized, hBadFrames, hStalls, hResumes,
        hReconnects, hResumedChunks, hUnknownModule, hAcceptErrors,
        hDroppedReply, hMaxActive, hLatency;

    // Declared LAST: ~Impl destroys members in reverse order, and
    // ~ThreadPool drains in-flight stream actors that still lock mtx
    // and touch tenants/reg/latencySamples — the pool must go first,
    // while all of that shared state is still alive.
    ThreadPool pool;

    explicit Impl(ServerConfig c)
        : cfg(std::move(c)), pool(cfg.threads)
    {
        hAccepted = reg.counter(n::kServeStreamsAccepted);
        hCompleted = reg.counter(n::kServeStreamsCompleted);
        hFailed = reg.counter(n::kServeStreamsFailed);
        hFrames = reg.counter(n::kServeFramesIn);
        hBytes = reg.counter(n::kServeBytesIn);
        hFrameCrc = reg.counter(n::kServeFrameCrcFailures);
        hOversized = reg.counter(n::kServeOversizedFrames);
        hBadFrames = reg.counter(n::kServeBadFrames);
        hStalls = reg.counter(n::kServeBackpressureStalls);
        hResumes = reg.counter(n::kServeResumes);
        hReconnects = reg.counter(n::kServeReconnects);
        hResumedChunks = reg.counter(n::kServeResumedChunks);
        hUnknownModule = reg.counter(n::kServeUnknownModule);
        hAcceptErrors = reg.counter(n::kServeAcceptErrors);
        hDroppedReply = reg.counter(n::kServeDroppedReplyBytes);
        hMaxActive = reg.gauge(n::kServeMaxActiveStreams);
        hLatency = reg.histogram(n::kServeIngestLatencyHist);
        if (cfg.maxFrameBytes == 0)
            cfg.maxFrameBytes = wire::kDefaultMaxFrameBytes;
        if (cfg.pendingChunkCap == 0)
            cfg.pendingChunkCap = 64;
        if (cfg.ackEveryChunks == 0)
            cfg.ackEveryChunks = 4;
    }

    // ---- self-pipe ---------------------------------------------------

    void postMsg(Msg t, uint32_t connId)
    {
        if (std::this_thread::get_id() == ingestTid.load()) {
            // The ingest thread is the pipe's only reader, so a
            // blocked write here would deadlock it — and actors DO
            // run on it (submit() is inline with a 1-worker pool).
            // Queue locally instead; the loop drains selfMsgs at
            // the top of every iteration, before the pipe.
            selfMsgs.emplace_back(t, connId);
            return;
        }
        uint8_t b[5];
        b[0] = static_cast<uint8_t>(t);
        replay::putU32(b + 1, connId);
        for (;;) {
            // <= PIPE_BUF, so the write is atomic: 5 bytes or none.
            ssize_t rc = write(pipeWr, b, sizeof b);
            if (rc == static_cast<ssize_t>(sizeof b))
                return;
            if (rc < 0 && errno == EINTR)
                continue;
            if (rc < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                // Full pipe (thousands of unread messages). A
                // dropped Done/Resume would hang that client
                // forever, so wait for the ingest thread to drain —
                // unless it already exited, in which case nobody
                // reads the pipe and the message is moot (results
                // were merged before Done is ever posted).
                {
                    std::lock_guard<std::mutex> lk(mtx);
                    if (stopped)
                        return;
                }
                pollfd p{pipeWr, POLLOUT, 0};
                poll(&p, 1, 10);
                continue;
            }
            return; // EBADF/EPIPE teardown race: nothing to signal
        }
    }

    // ---- actor side --------------------------------------------------

    void runActor(const std::shared_ptr<Stream> &s)
    {
        for (;;) {
            Segment seg;
            bool resume = false;
            uint32_t resumeConn = 0;
            bool skip;
            {
                std::lock_guard<std::mutex> lk(s->m);
                if (s->q.empty()) {
                    s->scheduled = false;
                    return;
                }
                seg = std::move(s->q.front());
                s->q.pop_front();
                if (s->pausedByServer &&
                    s->q.size() <= cfg.pendingChunkCap / 2) {
                    s->pausedByServer = false;
                    resume = true;
                    resumeConn = s->connId;
                }
                skip = s->failed || s->finished;
            }
            if (resume && resumeConn != 0)
                postMsg(Msg::Resume, resumeConn);

            if (!skip) {
                try {
                    if (seg.eof)
                        finishStream(s);
                    else
                        ingestSegment(s, seg);
                } catch (const FatalError &e) {
                    const char *w = e.what();
                    failStream(s, w,
                               std::strncmp(w, "transport:", 10) == 0
                                   ? wire::ErrorCode::Transport
                                   : wire::ErrorCode::Trace);
                }
                uint64_t us = static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   seg.enq)
                        .count());
                std::lock_guard<std::mutex> lk(mtx);
                reg.observe(hLatency, us);
                // Bounded ring: an open-ended daemon must not grow
                // memory per frame served. The histogram above keeps
                // the full-run aggregate.
                if (cfg.latencySampleCap > 0) {
                    if (latencySamples.size() <
                        cfg.latencySampleCap) {
                        latencySamples.push_back(us);
                    } else {
                        latencySamples[latencyNext] = us;
                        latencyNext = (latencyNext + 1) %
                                      cfg.latencySampleCap;
                    }
                }
            }
        }
    }

    /** Advance the shard cursor chain to own @p session. */
    void advanceShard(Stream &s, uint32_t session)
    {
        while (session >= s.cursor->end()) {
            s.cursor->finish();
            s.shardResults[s.curShard] =
                std::move(s.cursor->result());
            s.curShard++;
            if (s.curShard >= s.engine->shards())
                fatal("trace: chunk session %u past the last shard",
                      session);
            s.cursor = std::make_unique<
                replay::ReplayEngine::ShardCursor>(*s.engine,
                                                   s.curShard);
        }
    }

    /**
     * Dedup, ingest, publish. After a resume the client re-feeds
     * from the last acked watermark, so a segment may overlap bytes
     * this actor already ingested — absNext (bytes ever appended) is
     * the authoritative cut: drop the duplicate prefix, ingest the
     * rest. Bytes enter the detector exactly once, which is what
     * keeps the final Result bit-identical to an uninterrupted
     * stream.
     */
    void ingestSegment(const std::shared_ptr<Stream> &s,
                       const Segment &seg)
    {
        const uint8_t *p = seg.bytes.data();
        uint64_t n = seg.bytes.size();
        const uint64_t start = seg.absStart;
        if (start > s->absNext)
            fatal("transport: resume gap — client offset %llu past "
                  "the received stream (%llu)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(s->absNext));
        if (start + n <= s->absNext) {
            n = 0; // whole segment already ingested
        } else if (start < s->absNext) {
            const uint64_t dup = s->absNext - start;
            p += dup;
            n -= dup;
        }
        if (n > 0) {
            s->absNext += n;
            ingestBytes(*s, p, static_cast<size_t>(n));
        }
        if (!s->resumable)
            return;
        // Publish the sealed watermark; ack at the configured
        // cadence so a reconnecting client knows where to re-feed
        // from.
        bool ack = false;
        uint32_t ackConn = 0;
        {
            std::lock_guard<std::mutex> lk(s->m);
            s->pubAbsNext = s->absNext;
            s->pubSealedBytes =
                s->absNext - (s->tbuf.size() - s->tpos);
            s->pubSealedChunks = s->sealedChunks;
            if (s->sealedChunks - s->lastAckChunks >=
                cfg.ackEveryChunks) {
                s->lastAckChunks = s->sealedChunks;
                ack = true;
                ackConn = s->connId;
            }
        }
        if (ack && ackConn != 0)
            postMsg(Msg::Ack, ackConn);
    }

    void ingestBytes(Stream &s, const uint8_t *data, size_t len)
    {
        s.tbuf.insert(s.tbuf.end(), data, data + len);
        std::string err;
        if (!s.haveHeader) {
            replay::TraceMeta meta;
            size_t used = 0;
            switch (replay::parseHeader(s.tbuf.data(), s.tbuf.size(),
                                        meta, used, &err)) {
              case replay::ParseStatus::Ok:
                s.engine = std::make_unique<replay::ReplayEngine>(
                    meta, *s.prog); // foreign-module check throws here
                s.cursor = std::make_unique<
                    replay::ReplayEngine::ShardCursor>(*s.engine, 0);
                s.shardResults.resize(meta.shards);
                s.tpos = used;
                s.haveHeader = true;
                break;
              case replay::ParseStatus::NeedMore:
                return;
              default:
                fatal("trace: %s", err.c_str());
            }
        }
        for (;;) {
            const uint8_t *p = s.tbuf.data() + s.tpos;
            const size_t avail = s.tbuf.size() - s.tpos;
            // v2 index trailer: 16 bytes of metadata after the last
            // chunk. At a chunk boundary its magic cannot be mistaken
            // for a chunk header (a payloadLen spelling "IPDS" is far
            // past every length cap).
            if (s.engine->meta().version >= 2 && avail >= 8 &&
                std::memcmp(p, replay::kIndexTrailerMagic, 8) == 0) {
                if (avail < replay::kIndexTrailerBytes)
                    break; // wait for the rest (or stream end)
                s.indexBytes += replay::kIndexTrailerBytes;
                s.tpos += replay::kIndexTrailerBytes;
                continue;
            }
            replay::ChunkRef c;
            size_t used = 0;
            replay::ParseStatus st = replay::parseChunk(
                p, avail, c, used, &err);
            if (st == replay::ParseStatus::NeedMore)
                break;
            // The v2 index footer chunk is advisory metadata — ingest
            // detection never reads it, so like the offline scan a
            // defect in it degrades to "no index", not to a failed
            // stream.
            const bool footer = s.engine->meta().version >= 2 &&
                avail >= 12 &&
                replay::getU32(p + 8) == replay::kIndexSession;
            if (footer) {
                if (st == replay::ParseStatus::Ok) {
                    if (c.payloadLen % replay::kIndexEntryBytes ==
                            0 &&
                        static_cast<uint64_t>(c.events) *
                                replay::kIndexEntryBytes ==
                            c.payloadLen)
                        s.sawFooter = true;
                    s.indexBytes += used;
                    s.tpos += used;
                    continue;
                }
                if (st == replay::ParseStatus::ChunkCrcMismatch) {
                    // parseFail overloaded `used` with the defect
                    // offset; recompute the skip from the header.
                    size_t skip =
                        replay::kChunkHeaderBytes + c.payloadLen;
                    s.indexBytes += skip;
                    s.tpos += skip;
                    continue;
                }
                fatal("trace: %s", err.c_str());
            }
            if (st == replay::ParseStatus::ChunkCrcMismatch) {
                s.chunkCrcFailures++;
                fatal("trace: %s", err.c_str());
            }
            if (st != replay::ParseStatus::Ok)
                fatal("trace: %s", err.c_str());
            advanceShard(s, c.session);
            s.cursor->feed(c, s.tbuf.data() + s.tpos + c.payloadOff);
            s.tpos += used;
            s.sealedChunks++;
        }
        // Keep at most one partial chunk buffered.
        if (s.tpos > 0) {
            s.tbuf.erase(s.tbuf.begin(),
                         s.tbuf.begin() +
                             static_cast<ptrdiff_t>(s.tpos));
            s.tpos = 0;
        }
    }

    void finishStream(const std::shared_ptr<Stream> &s)
    {
        if (!s->haveHeader) {
            s->truncatedChunks++;
            fatal("trace: truncated trace header at stream end");
        }
        if (s->tpos != s->tbuf.size()) {
            // A tail that is recognizably the v2 index (truncated
            // footer chunk or trailer) is advisory metadata, exactly
            // as in TraceFile's scan — the stream's data chunks all
            // landed, so the stream still succeeds (without an index).
            const uint8_t *p = s->tbuf.data() + s->tpos;
            const size_t rem = s->tbuf.size() - s->tpos;
            const bool idxTail = s->engine->meta().version >= 2 &&
                ((rem >= 8 &&
                  std::memcmp(p, replay::kIndexTrailerMagic, 8) ==
                      0) ||
                 (rem >= 12 &&
                  replay::getU32(p + 8) == replay::kIndexSession));
            if (!idxTail) {
                s->truncatedChunks++;
                fatal("trace: truncated chunk at stream end");
            }
            s->indexBytes += rem;
        }
        // Seal the remaining shards; finish() fatals if any owned
        // session never ran to its end record.
        for (;;) {
            s->cursor->finish();
            s->shardResults[s->curShard] =
                std::move(s->cursor->result());
            s->curShard++;
            if (s->curShard >= s->engine->shards())
                break;
            s->cursor = std::make_unique<
                replay::ReplayEngine::ShardCursor>(*s->engine,
                                                   s->curShard);
        }

        const replay::TraceMeta &m = s->engine->meta();
        double secs = std::chrono::duration<double>(Clock::now() -
                                                    s->started)
                          .count();

        // Aggregate in shard order, building the per-stream registry
        // in EXACTLY the offline-replay registration order — the
        // bit-identity contract is checked by diffing this text
        // against Session ReplayPlan metrics.
        DetectorStats det;
        TimingStats tim;
        FaultStats fault;
        std::vector<Alarm> alarms;
        obs::MetricsRegistry sreg;
        uint64_t totalEvents = 0;
        uint64_t sessionsRun = 0;
        for (const replay::ReplayShardResult &r : s->shardResults) {
            det.merge(r.det);
            tim.merge(r.tim);
            fault.merge(r.fault);
            alarms.insert(alarms.end(), r.alarms.begin(),
                          r.alarms.end());
            totalEvents += r.events;
            sessionsRun += r.runs;

            obs::MetricsRegistry reg1;
            reg1.add(reg1.counter(n::kSessRuns), r.runs);
            reg1.add(reg1.counter(n::kSessSteps), r.steps);
            reg1.add(reg1.counter(n::kSessInputEvents),
                     r.inputEvents);
            reg1.add(reg1.counter(n::kSessTraceDropped), 0);
            reg1.add(reg1.counter(n::kVmInstructions),
                     r.vmInstructions);
            reg1.add(reg1.counter(n::kVmBlocks), r.vmBlocks);
            reg1.add(reg1.counter(n::kVmEventBatchFlushes),
                     r.vmFlushes);
            if (m.detectorOn())
                obs::exportDetectorStats(r.det, r.alarms.size(),
                                         reg1);
            if (m.hasTiming)
                obs::exportTimingStats(r.tim, reg1);
            if (m.faultCaptured())
                obs::exportFaultStats(r.fault, reg1);
            reg1.add(reg1.counter(n::kReplayChunks), r.chunks);
            reg1.add(reg1.counter(n::kReplayBytes), r.bytes);
            reg1.add(reg1.counter(n::kReplayEvents), r.events);
            reg1.add(reg1.counter(n::kReplaySnapshotsWritten),
                     r.snapshots);
            sreg.merge(reg1);
        }
        sreg.add(sreg.counter(n::kReplayBytes),
                 replay::headerBytes(m) + s->indexBytes);
        sreg.add(sreg.counter(n::kReplaySessions), m.sessions);
        sreg.add(sreg.counter(n::kReplayCrcFailures),
                 s->chunkCrcFailures);
        sreg.add(sreg.counter(n::kReplayTruncatedChunks),
                 s->truncatedChunks);
        sreg.add(sreg.counter(n::kReplayVersionMismatches), 0);
        sreg.add(sreg.counter(n::kReplayIndexMissing),
                 s->sawFooter ? 0 : 1);
        sreg.add(sreg.counter(n::kReplaySeeks), 0);
        sreg.add(sreg.counter(n::kReplaySnapshotsUsed), 0);
        sreg.set(sreg.gauge(n::kReplayWorkers), 1);
        sreg.set(sreg.gauge(n::kReplayEventsPerSec),
                 secs > 0.0
                     ? static_cast<uint64_t>(totalEvents / secs)
                     : 0);

        std::string report = strprintf(
            "ok 1\ntenant %s\nsessions %llu\nalarms %llu\n"
            "alarm_digest 0x%016llx\n",
            s->tenant.c_str(),
            static_cast<unsigned long long>(sessionsRun),
            static_cast<unsigned long long>(alarms.size()),
            static_cast<unsigned long long>(alarmDigest(alarms)));
        report += sreg.toText();

        uint64_t frames, bytes, stalls;
        uint32_t connId;
        {
            std::lock_guard<std::mutex> lk(s->m);
            s->finished = true;
            s->reportText = std::move(report);
            frames = s->frames;
            bytes = s->bytes;
            stalls = s->stalls;
            connId = s->connId;
        }
        // Merge the tenant aggregate BEFORE posting Done: the Result
        // frame is the client's signal that the stream landed, so
        // snapshot()/statsz taken after it must already see it.
        {
            std::lock_guard<std::mutex> lk(mtx);
            TenantState &t = tenants[s->tenant];
            t.streams++;
            t.det.merge(det);
            t.tim.merge(tim);
            t.fault.merge(fault);
            t.alarms.insert(t.alarms.end(), alarms.begin(),
                            alarms.end());
            t.reg.merge(sreg);
            t.frames += frames;
            t.bytes += bytes;
            t.stalls += stalls;
        }
        // Post Done BEFORE bumping the completion count: a waiter in
        // waitForStreams() may call requestStop() the moment the
        // count trips, and messages are ordered — counting after the
        // post guarantees the ingest thread sends this stream's
        // Result frame before it can ever see Stop.
        postMsg(Msg::Done, connId);
        {
            std::lock_guard<std::mutex> lk(mtx);
            completed++;
            reg.add(hCompleted);
            cv.notify_all();
        }
    }

    void failStream(const std::shared_ptr<Stream> &s,
                    const std::string &why,
                    wire::ErrorCode code = wire::ErrorCode::Trace)
    {
        uint64_t frames, bytes, stalls;
        uint32_t connId;
        {
            std::lock_guard<std::mutex> lk(s->m);
            if (s->failed || s->finished)
                return;
            s->failed = true;
            s->reportText = wire::taggedError(code, why);
            frames = s->frames;
            bytes = s->bytes;
            stalls = s->stalls;
            connId = s->connId;
        }
        // Same shape as finishStream: merge first (an Error frame
        // implies the meters landed), count + notify only after the
        // post so a woken waiter's Stop cannot overtake the Fail.
        {
            std::lock_guard<std::mutex> lk(mtx);
            if (!s->tenant.empty()) {
                TenantState &t = tenants[s->tenant];
                t.frames += frames;
                t.bytes += bytes;
                t.stalls += stalls;
            }
        }
        postMsg(Msg::Fail, connId);
        {
            std::lock_guard<std::mutex> lk(mtx);
            failedStreams++;
            reg.add(hFailed);
            cv.notify_all();
        }
    }

    // ---- ingest thread -----------------------------------------------

    void sendFrameBytes(Conn &c, wire::FrameType t, const uint8_t *p,
                        size_t n)
    {
        wire::appendFrame(c.outbuf, t, p, n);
        flushOut(c);
    }

    void sendFrame(Conn &c, wire::FrameType t, const std::string &text)
    {
        sendFrameBytes(
            c, t, reinterpret_cast<const uint8_t *>(text.data()),
            text.size());
    }

    /** Write as much of outbuf as the socket takes (rest on POLLOUT). */
    void flushOut(Conn &c)
    {
        while (c.outOff < c.outbuf.size()) {
            // MSG_NOSIGNAL: a client that drops mid-reply must give
            // EPIPE, never SIGPIPE the whole server.
            ssize_t w = ::send(c.fd, c.outbuf.data() + c.outOff,
                               c.outbuf.size() - c.outOff,
                               MSG_NOSIGNAL);
            if (w > 0) {
                c.outOff += static_cast<size_t>(w);
                continue;
            }
            if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;
            // Peer vanished mid-write: drop the rest (counted so an
            // operator can see replies that never landed), close
            // below.
            {
                std::lock_guard<std::mutex> lk(mtx);
                reg.add(hDroppedReply, c.outbuf.size() - c.outOff);
            }
            c.closing = true;
            c.outOff = c.outbuf.size();
            return;
        }
        c.outbuf.clear();
        c.outOff = 0;
    }

    void closeConn(uint32_t id)
    {
        auto it = conns.find(id);
        if (it == conns.end())
            return;
        if (it->second.stream) {
            // A dropped client mid-stream: a stream that declared a
            // resume token is PARKED for the grace period (the
            // client may reconnect and re-feed from the last ack);
            // anything else is a failed stream — with the actor
            // path's one-transition guard so a stream that already
            // finished/failed is not re-counted.
            std::shared_ptr<Stream> s = it->second.stream;
            bool active;
            {
                std::lock_guard<std::mutex> lk(s->m);
                active = !s->failed && !s->finished;
                s->connId = 0; // detach: acks have no target now
            }
            if (s->resumable && !s->resultSent && !draining) {
                s->parkDeadline =
                    Clock::now() +
                    std::chrono::milliseconds(cfg.resumeGraceMs);
                parked[s->resumeToken] = s;
            } else if (active) {
                failStream(s,
                           "transport: connection dropped "
                           "mid-stream (truncated)",
                           wire::ErrorCode::Transport);
            }
        }
        close(it->second.fd);
        conns.erase(it);
    }

    void noteBadFrame(bool crc, bool oversized)
    {
        std::lock_guard<std::mutex> lk(mtx);
        if (crc)
            reg.add(hFrameCrc);
        else if (oversized)
            reg.add(hOversized);
        else
            reg.add(hBadFrames);
    }

    void rejectConn(Conn &c, wire::ErrorCode code,
                    const std::string &why, bool crc, bool oversized)
    {
        noteBadFrame(crc, oversized);
        sendError(c, code, why);
    }

    /** Typed Error frame + close, without the bad-frame meters. */
    void sendError(Conn &c, wire::ErrorCode code,
                   const std::string &why)
    {
        sendFrame(c, wire::FrameType::Error,
                  wire::taggedError(code, why));
        c.closing = true;
    }

    void handleFrame(Conn &c, const wire::Frame &f)
    {
        {
            std::lock_guard<std::mutex> lk(mtx);
            reg.add(hFrames);
            reg.add(hBytes,
                    wire::kFrameHeaderBytes + f.payloadLen);
        }
        switch (f.type) {
          case wire::FrameType::Hello: {
            if (c.stream) {
                rejectConn(c, wire::ErrorCode::Protocol,
                           "protocol: duplicate Hello", false,
                           false);
                return;
            }
            if (f.payloadLen == 0 || f.payloadLen > 256) {
                rejectConn(c, wire::ErrorCode::Protocol,
                           "protocol: bad tenant name", false,
                           false);
                return;
            }
            // v1 Hello carries no module hash: route to the first
            // registered module (single-program servers keep their
            // PR 6 wire behavior).
            openStream(c,
                       std::string(reinterpret_cast<const char *>(
                                       f.payload),
                                   f.payloadLen),
                       regOrder.front(), 0, 0);
            break;
          }
          case wire::FrameType::Hello2:
            handleHello2(c, f);
            break;
          case wire::FrameType::TraceData:
          case wire::FrameType::StreamEnd: {
            if (!c.stream) {
                rejectConn(c, wire::ErrorCode::Protocol,
                           "protocol: no Hello", false, false);
                return;
            }
            std::shared_ptr<Stream> s = c.stream;
            Segment seg;
            seg.enq = Clock::now();
            if (f.type == wire::FrameType::StreamEnd) {
                seg.eof = true;
            } else {
                seg.bytes.assign(f.payload,
                                 f.payload + f.payloadLen);
                seg.absStart = s->rxPos;
                s->rxPos += f.payloadLen;
            }
            bool schedule = false;
            bool stalled = false;
            {
                std::lock_guard<std::mutex> lk(s->m);
                s->frames++;
                s->bytes += wire::kFrameHeaderBytes + f.payloadLen;
                s->q.push_back(std::move(seg));
                if (!s->scheduled) {
                    s->scheduled = true;
                    schedule = true;
                }
                if (s->q.size() >= cfg.pendingChunkCap &&
                    !c.paused) {
                    s->pausedByServer = true;
                    c.paused = true;
                    s->stalls++;
                    stalled = true;
                }
            }
            if (stalled) {
                std::lock_guard<std::mutex> lk(mtx);
                reg.add(hStalls);
            }
            // Outside s->m: with a single-worker pool submit() runs
            // the actor inline on this thread, and it takes s->m.
            if (schedule)
                pool.submit([this, s] { runActor(s); });
            break;
          }
          case wire::FrameType::StatsReq:
            sendFrame(c, wire::FrameType::Stats, statszLocked());
            break;
          default:
            rejectConn(c, wire::ErrorCode::Protocol,
                       "protocol: unexpected frame type", false,
                       false);
            break;
        }
    }

    /** Attach a fresh stream to @p c (both Hello versions land here). */
    void openStream(Conn &c, std::string tenant,
                    const CompiledProgram *prog, uint64_t moduleHash,
                    uint64_t resumeToken)
    {
        c.stream = std::make_shared<Stream>();
        c.stream->connId = c.id;
        c.stream->tenant = std::move(tenant);
        c.stream->started = Clock::now();
        c.stream->prog = prog;
        c.stream->moduleHash = moduleHash;
        c.stream->resumeToken = resumeToken;
        c.stream->resumable = resumeToken != 0;
        if (resumeToken != 0)
            activeTokens.insert(resumeToken);
        std::lock_guard<std::mutex> lk(mtx);
        reg.add(hAccepted);
        uint64_t active = 0;
        for (const auto &kv : conns)
            if (kv.second.stream)
                active++;
        reg.setMax(hMaxActive, active);
    }

    void handleHello2(Conn &c, const wire::Frame &f)
    {
        if (c.stream) {
            rejectConn(c, wire::ErrorCode::Protocol,
                       "protocol: duplicate Hello", false, false);
            return;
        }
        wire::HelloV2 h;
        if (!wire::decodeHello2(f.payload, f.payloadLen, h)) {
            rejectConn(c, wire::ErrorCode::Protocol,
                       "protocol: malformed Hello2", false, false);
            return;
        }
        if (h.resume) {
            attachResume(c, h);
            return;
        }
        auto mit = modules.find(h.moduleHash);
        if (mit == modules.end()) {
            // Typed reject; the connection carried a well-formed
            // frame, so the bad-frame meters stay untouched and no
            // tenant aggregate is created.
            {
                std::lock_guard<std::mutex> lk(mtx);
                reg.add(hUnknownModule);
            }
            sendError(c, wire::ErrorCode::UnknownModule,
                      strprintf("serve: module %016llx is not "
                                "registered",
                                static_cast<unsigned long long>(
                                    h.moduleHash)));
            return;
        }
        if (h.resumeToken != 0 &&
            (activeTokens.count(h.resumeToken) ||
             parked.count(h.resumeToken))) {
            rejectConn(c, wire::ErrorCode::Protocol,
                       "protocol: resume token already in use",
                       false, false);
            return;
        }
        openStream(c, std::move(h.tenant), mit->second, h.moduleHash,
                   h.resumeToken);
    }

    void attachResume(Conn &c, const wire::HelloV2 &h)
    {
        auto pit = parked.find(h.resumeToken);
        if (pit == parked.end()) {
            sendError(c, wire::ErrorCode::UnknownResume,
                      "serve: unknown or expired resume token");
            return;
        }
        std::shared_ptr<Stream> s = pit->second;
        if (s->tenant != h.tenant || s->moduleHash != h.moduleHash) {
            sendError(c, wire::ErrorCode::UnknownResume,
                      "serve: resume token does not match the "
                      "stream's tenant/module");
            return;
        }
        bool finished, failed;
        uint64_t pubBytes, pubChunks, pubNext;
        {
            std::lock_guard<std::mutex> lk(s->m);
            finished = s->finished;
            failed = s->failed;
            pubBytes = s->pubSealedBytes;
            pubChunks = s->pubSealedChunks;
            pubNext = s->pubAbsNext;
        }
        if (!finished && !failed && h.resumeOffset > pubNext) {
            // The client claims bytes this server never received.
            // Leave the stream parked (an honest retry with a real
            // watermark can still attach within the grace period).
            sendError(c, wire::ErrorCode::UnknownResume,
                      "serve: resume offset past the received "
                      "stream");
            return;
        }
        parked.erase(pit);
        {
            std::lock_guard<std::mutex> lk(s->m);
            s->connId = c.id;
            s->pausedByServer = false;
        }
        c.stream = s;
        s->rxPos = h.resumeOffset;
        {
            std::lock_guard<std::mutex> lk(mtx);
            reg.add(hReconnects);
            if (pubChunks >= h.resumeChunks)
                reg.add(hResumedChunks, pubChunks - h.resumeChunks);
        }
        // A stream that reached its verdict while parked gets it
        // now; the selfMsgs queue keeps the ingest thread the only
        // frame writer and resultSent dedupes against the actor's
        // own (dropped) Done/Fail post.
        if (finished || failed) {
            selfMsgs.emplace_back(finished ? Msg::Done : Msg::Fail,
                                  c.id);
            return;
        }
        // First frame back is the watermark the re-feed is judged
        // against.
        std::vector<uint8_t> ack =
            wire::encodeChunkAck(pubBytes, pubChunks);
        sendFrameBytes(c, wire::FrameType::ChunkAck, ack.data(),
                       ack.size());
    }

    void readConn(Conn &c)
    {
        uint8_t buf[16384];
        for (;;) {
            ssize_t r = read(c.fd, buf, sizeof buf);
            if (r > 0) {
                c.dec->append(buf, static_cast<size_t>(r));
                wire::Frame f;
                for (;;) {
                    wire::DecodeStatus st = c.dec->next(f);
                    if (st == wire::DecodeStatus::Frame) {
                        handleFrame(c, f);
                        if (c.closing)
                            return;
                        continue;
                    }
                    if (st == wire::DecodeStatus::NeedMore)
                        break;
                    const bool crc =
                        st == wire::DecodeStatus::CrcMismatch;
                    const bool oversized =
                        st == wire::DecodeStatus::Oversized;
                    const char *why =
                        crc ? "frame CRC mismatch"
                            : oversized ? "oversized frame"
                                        : "bad frame";
                    if (c.stream) {
                        // One Error frame per connection: the
                        // Msg::Fail path sends it (with reportText)
                        // and closes; rejectConn's immediate frame
                        // would make it two.
                        noteBadFrame(crc, oversized);
                        failStream(c.stream,
                                   std::string("transport: ") + why,
                                   wire::ErrorCode::Transport);
                    } else {
                        rejectConn(c, wire::ErrorCode::Transport,
                                   std::string("transport: ") + why,
                                   crc, oversized);
                    }
                    return;
                }
                if (c.paused)
                    return; // admission control: stop reading
                continue;
            }
            if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return;
            if (r < 0 && errno == EINTR)
                continue;
            // EOF (or hard error). A partial frame here is the
            // "connection drop mid-frame" failure path.
            closeConn(c.id);
            return;
        }
    }

    void handleMsg(Msg t, uint32_t connId, bool &stopSeen)
    {
        if (t == Msg::Stop) {
            stopSeen = true;
            return;
        }
        auto it = conns.find(connId);
        if (it == conns.end())
            return;
        Conn &c = it->second;
        switch (t) {
          case Msg::Resume: {
            if (c.paused) {
                c.paused = false;
                std::lock_guard<std::mutex> lk(mtx);
                reg.add(hResumes);
            }
            break;
          }
          case Msg::Ack: {
            if (!c.stream || c.stream->resultSent)
                break;
            uint64_t b, k;
            {
                std::lock_guard<std::mutex> lk(c.stream->m);
                b = c.stream->pubSealedBytes;
                k = c.stream->pubSealedChunks;
            }
            std::vector<uint8_t> p = wire::encodeChunkAck(b, k);
            sendFrameBytes(c, wire::FrameType::ChunkAck, p.data(),
                           p.size());
            break;
          }
          case Msg::Done:
          case Msg::Fail: {
            if (c.stream && c.stream->resultSent)
                break; // resume race: verdict already delivered
            std::string report;
            if (c.stream) {
                c.stream->resultSent = true;
                if (c.stream->resumeToken != 0)
                    activeTokens.erase(c.stream->resumeToken);
                std::lock_guard<std::mutex> lk(c.stream->m);
                report = c.stream->reportText;
            }
            sendFrame(c,
                      t == Msg::Done ? wire::FrameType::Result
                                     : wire::FrameType::Error,
                      report);
            if (t == Msg::Fail)
                c.closing = true;
            else
                c.stream.reset(); // stream done; conn may StatsReq
            break;
          }
          default:
            break;
        }
    }

    void ingestLoop()
    {
        ingestTid.store(std::this_thread::get_id());
        bool stopSeen = false;
        std::vector<pollfd> pfds;
        std::vector<uint32_t> ids;
        while (!stopSeen) {
            // Messages this thread posted to itself (inline actors,
            // failStream from the read path). Drained before pfds
            // are built so a Fail's closing flag masks POLLIN for
            // the same iteration, and before the pipe so Done keeps
            // its posted-before-Stop ordering.
            while (!selfMsgs.empty()) {
                std::pair<Msg, uint32_t> m = selfMsgs.front();
                selfMsgs.pop_front();
                handleMsg(m.first, m.second, stopSeen);
            }
            if (stopSeen)
                break;
            // Parked streams whose resume grace ran out fail as
            // truncation — exactly what a non-resumable drop gets.
            if (!parked.empty()) {
                Clock::time_point now = Clock::now();
                for (auto it = parked.begin();
                     it != parked.end();) {
                    if (now >= it->second->parkDeadline) {
                        std::shared_ptr<Stream> s = it->second;
                        activeTokens.erase(it->first);
                        it = parked.erase(it);
                        failStream(s,
                                   "transport: resume grace "
                                   "expired after a dropped "
                                   "connection (truncated)",
                                   wire::ErrorCode::Transport);
                    } else {
                        ++it;
                    }
                }
            }
            pfds.clear();
            ids.clear();
            pfds.push_back({pipeRd, POLLIN, 0});
            std::vector<int> lfds;
            if (listenFd >= 0)
                lfds.push_back(listenFd);
            if (tcpFd >= 0)
                lfds.push_back(tcpFd);
            for (int lfd : lfds)
                pfds.push_back({lfd, POLLIN, 0});
            for (auto &kv : conns) {
                short ev = 0;
                if (!kv.second.paused && !kv.second.closing)
                    ev |= POLLIN;
                if (kv.second.outOff < kv.second.outbuf.size())
                    ev |= POLLOUT;
                if (ev == 0 && kv.second.closing)
                    ev = POLLOUT; // wake to close
                pfds.push_back({kv.second.fd, ev, 0});
                ids.push_back(kv.first);
            }
            // Finite timeout only while a parked stream's grace
            // deadline needs watching.
            if (poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                     parked.empty() ? -1 : 50) < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            if (pfds[0].revents & POLLIN) {
                uint8_t b[5 * 64];
                ssize_t r = read(pipeRd, b, sizeof b);
                for (ssize_t i = 0; i + 5 <= r; i += 5)
                    handleMsg(static_cast<Msg>(b[i]),
                              replay::getU32(b + i + 1), stopSeen);
            }
            for (size_t li = 0; li < lfds.size(); li++) {
                if (!(pfds[1 + li].revents & POLLIN))
                    continue;
                const int lfd = lfds[li];
                const bool isTcp = lfd == tcpFd;
                for (;;) {
                    int fd = accept(lfd, nullptr, nullptr);
                    if (fd < 0) {
                        if (errno == EINTR ||
                            errno == ECONNABORTED)
                            continue; // transient; keep draining
                        if (errno == EAGAIN ||
                            errno == EWOULDBLOCK)
                            break; // backlog drained
                        // EMFILE/ENFILE/…: count it — a silently
                        // abandoned drain reads as "no connections",
                        // which is exactly how fd exhaustion hides.
                        // poll() is level-triggered, so the backlog
                        // is retried next iteration.
                        {
                            std::lock_guard<std::mutex> lk(mtx);
                            reg.add(hAcceptErrors);
                        }
                        break;
                    }
                    setNonBlock(fd);
                    if (isTcp) {
                        int one = 1;
                        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY,
                                   &one, sizeof one);
                    }
                    Conn c;
                    c.fd = fd;
                    c.id = nextConnId++;
                    c.dec = std::make_unique<wire::FrameDecoder>(
                        cfg.maxFrameBytes);
                    conns.emplace(c.id, std::move(c));
                }
            }
            for (size_t i = 0; i < ids.size(); i++) {
                auto it = conns.find(ids[i]);
                if (it == conns.end())
                    continue;
                Conn &c = it->second;
                short re = pfds[i + 1 + lfds.size()].revents;
                if (re & POLLOUT)
                    flushOut(c);
                if (c.closing && c.outOff >= c.outbuf.size()) {
                    closeConn(c.id);
                    continue;
                }
                if (re & POLLIN)
                    readConn(c); // may erase the conn
                it = conns.find(ids[i]);
                if (it != conns.end() &&
                    (re & (POLLHUP | POLLERR)) &&
                    !(re & POLLIN))
                    closeConn(ids[i]);
            }
        }
        // Shutdown: parked streams cannot survive the server — fail
        // them now so their meters land and waiters see the count.
        draining = true;
        {
            std::unordered_map<uint64_t, std::shared_ptr<Stream>>
                still = std::move(parked);
            parked.clear();
            activeTokens.clear();
            for (auto &kv : still)
                failStream(kv.second,
                           "transport: server stopped before the "
                           "stream could resume (truncated)",
                           wire::ErrorCode::Transport);
        }
        // Best-effort drain of queued replies — a Result/Error frame
        // that hit EAGAIN just before Stop must still reach its
        // client before the socket closes.
        for (unsigned round = 0; round < cfg.shutdownDrainRounds;
             round++) {
            bool pending = false;
            for (auto &kv : conns) {
                Conn &c = kv.second;
                if (c.outOff >= c.outbuf.size())
                    continue;
                pollfd p{c.fd, POLLOUT, 0};
                poll(&p, 1, 10);
                flushOut(c);
                if (c.outOff < c.outbuf.size())
                    pending = true;
            }
            if (!pending)
                break;
        }
        // Whatever the drain could not deliver is dropped — counted,
        // never silent: an operator diffing statsz must be able to
        // see replies that never landed.
        {
            uint64_t leftover = 0;
            for (auto &kv : conns)
                if (kv.second.outOff < kv.second.outbuf.size())
                    leftover +=
                        kv.second.outbuf.size() - kv.second.outOff;
            if (leftover > 0) {
                std::lock_guard<std::mutex> lk(mtx);
                reg.add(hDroppedReply, leftover);
            }
            for (auto &kv : conns) // closeConn must not re-count
                kv.second.outOff = kv.second.outbuf.size();
        }
        // Then close every socket; in-flight actors finish on the
        // pool (their late Done/Fail messages land in a pipe nobody
        // reads, which is fine — results are already merged).
        std::vector<uint32_t> all;
        for (auto &kv : conns)
            all.push_back(kv.first);
        for (uint32_t id : all)
            closeConn(id);
        if (listenFd >= 0) {
            close(listenFd);
            listenFd = -1;
            unlink(cfg.socketPath.c_str());
        }
        if (tcpFd >= 0) {
            close(tcpFd);
            tcpFd = -1;
        }
        std::lock_guard<std::mutex> lk(mtx);
        stopped = true;
        cv.notify_all();
    }

    // ---- statsz ------------------------------------------------------

    std::string statszLocked() const
    {
        std::lock_guard<std::mutex> lk(mtx);
        std::string out = "# ipds_serve statsz\n";
        out += reg.toText();
        for (const auto &kv : tenants) {
            const TenantState &t = kv.second;
            out += strprintf("# tenant %s\n", kv.first.c_str());
            obs::MetricsRegistry tr = t.reg;
            tr.add(tr.counter(n::kTenantStreams), t.streams);
            tr.add(tr.counter(n::kTenantFrames), t.frames);
            tr.add(tr.counter(n::kTenantBytes), t.bytes);
            tr.add(tr.counter(n::kTenantBackpressureStalls),
                   t.stalls);
            tr.add(tr.counter(n::kTenantAlarms), t.alarms.size());
            out += tr.toText();
        }
        return out;
    }
};

Server::Server(ServerConfig cfg)
    : impl(std::make_unique<Impl>(std::move(cfg)))
{}

Server::Server(const CompiledProgram &prog, ServerConfig cfg)
    : Server(std::move(cfg))
{
    registerModule(prog);
}

void
Server::registerModule(const CompiledProgram &prog)
{
    Impl &im = *impl;
    if (im.started)
        fatal("serve: registerModule() after start()");
    uint64_t h = replay::moduleContentHash(prog.mod);
    if (im.modules.emplace(h, &prog).second)
        im.regOrder.push_back(&prog);
}

uint16_t
Server::boundTcpPort() const
{
    return impl->tcpBoundPort;
}

Server::~Server()
{
    stopAndJoin();
    int rd = impl->pipeRd;
    int wr = impl->pipeWr;
    // Destroy Impl FIRST: its ThreadPool drains queued actors, and a
    // draining actor may still postMsg — the pipe fds must outlive
    // the pool, so they close last.
    impl.reset();
    if (rd >= 0)
        close(rd);
    if (wr >= 0)
        close(wr);
}

void
Server::start()
{
    Impl &im = *impl;
    if (im.started)
        fatal("serve: start() called twice");
    if (im.cfg.socketPath.empty() && im.cfg.tcpHost.empty())
        fatal("serve: no listener configured (socketPath or "
              "tcpHost)");
    if (im.regOrder.empty())
        fatal("serve: no module registered");

    if (!im.cfg.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (im.cfg.socketPath.size() >= sizeof addr.sun_path)
            fatal("serve: socket path too long: '%s'",
                  im.cfg.socketPath.c_str());
        std::memcpy(addr.sun_path, im.cfg.socketPath.c_str(),
                    im.cfg.socketPath.size() + 1);

        int fd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            fatal("serve: socket(): %s", std::strerror(errno));
        unlink(im.cfg.socketPath.c_str());
        if (bind(fd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof addr) < 0) {
            int e = errno;
            close(fd);
            fatal("serve: cannot bind '%s': %s",
                  im.cfg.socketPath.c_str(), std::strerror(e));
        }
        if (listen(fd, im.cfg.listenBacklog) < 0) {
            int e = errno;
            close(fd);
            fatal("serve: listen(): %s", std::strerror(e));
        }
        setNonBlock(fd);
        im.listenFd = fd;
    }

    if (!im.cfg.tcpHost.empty()) {
        auto bail = [&im](const char *what, int e) {
            if (im.listenFd >= 0) {
                close(im.listenFd);
                im.listenFd = -1;
                unlink(im.cfg.socketPath.c_str());
            }
            fatal("serve: %s: %s", what, std::strerror(e));
        };
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(im.cfg.tcpPort);
        if (inet_pton(AF_INET, im.cfg.tcpHost.c_str(),
                      &addr.sin_addr) != 1) {
            if (im.listenFd >= 0) {
                close(im.listenFd);
                im.listenFd = -1;
                unlink(im.cfg.socketPath.c_str());
            }
            fatal("serve: bad TCP address '%s' (IPv4 dotted quad "
                  "expected)",
                  im.cfg.tcpHost.c_str());
        }
        int fd = socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            bail("socket()", errno);
        int one = 1;
        setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (bind(fd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof addr) < 0) {
            int e = errno;
            close(fd);
            bail("cannot bind TCP listener", e);
        }
        if (listen(fd, im.cfg.listenBacklog) < 0) {
            int e = errno;
            close(fd);
            bail("listen()", e);
        }
        sockaddr_in bound{};
        socklen_t blen = sizeof bound;
        if (getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                        &blen) == 0)
            im.tcpBoundPort = ntohs(bound.sin_port);
        setNonBlock(fd);
        im.tcpFd = fd;
    }

    int p[2];
    if (pipe(p) < 0) {
        int e = errno;
        if (im.listenFd >= 0) {
            close(im.listenFd);
            im.listenFd = -1;
            unlink(im.cfg.socketPath.c_str());
        }
        if (im.tcpFd >= 0) {
            close(im.tcpFd);
            im.tcpFd = -1;
        }
        fatal("serve: pipe(): %s", std::strerror(e));
    }
    im.pipeRd = p[0];
    im.pipeWr = p[1];
    setNonBlock(im.pipeWr);

    im.started = true;
    im.ingest = std::thread([&im] { im.ingestLoop(); });
}

void
Server::requestStop()
{
    if (impl->started)
        impl->postMsg(Msg::Stop, 0);
}

void
Server::waitForStreams(uint64_t n)
{
    Impl &im = *impl;
    std::unique_lock<std::mutex> lk(im.mtx);
    im.cv.wait(lk, [&] {
        return im.stopped || im.completed + im.failedStreams >= n;
    });
}

void
Server::stopAndJoin()
{
    Impl &im = *impl;
    if (!im.started || im.joined)
        return;
    requestStop();
    im.ingest.join();
    im.joined = true;
}

uint64_t
Server::streamsCompleted() const
{
    std::lock_guard<std::mutex> lk(impl->mtx);
    return impl->completed;
}

uint64_t
Server::streamsFailed() const
{
    std::lock_guard<std::mutex> lk(impl->mtx);
    return impl->failedStreams;
}

std::vector<TenantSnapshot>
Server::snapshot() const
{
    std::lock_guard<std::mutex> lk(impl->mtx);
    std::vector<TenantSnapshot> out;
    for (const auto &kv : impl->tenants) {
        TenantSnapshot s;
        s.name = kv.first;
        s.streams = kv.second.streams;
        s.alarms = kv.second.alarms;
        s.det = kv.second.det;
        s.tim = kv.second.tim;
        s.fault = kv.second.fault;
        s.reg = kv.second.reg;
        s.reg.add(s.reg.counter(n::kTenantStreams),
                  kv.second.streams);
        s.reg.add(s.reg.counter(n::kTenantFrames), kv.second.frames);
        s.reg.add(s.reg.counter(n::kTenantBytes), kv.second.bytes);
        s.reg.add(s.reg.counter(n::kTenantBackpressureStalls),
                  kv.second.stalls);
        s.reg.add(s.reg.counter(n::kTenantAlarms),
                  kv.second.alarms.size());
        out.push_back(std::move(s));
    }
    return out; // std::map iteration is already name-sorted
}

std::string
Server::statszText() const
{
    return impl->statszLocked();
}

std::vector<uint64_t>
Server::ingestLatencySamplesMicros() const
{
    std::lock_guard<std::mutex> lk(impl->mtx);
    const std::vector<uint64_t> &ring = impl->latencySamples;
    std::vector<uint64_t> out;
    out.reserve(ring.size());
    // Rotate so the oldest retained sample comes first (latencyNext
    // is 0 until the ring wraps, so this is a plain copy then).
    out.insert(out.end(),
               ring.begin() +
                   static_cast<ptrdiff_t>(impl->latencyNext),
               ring.end());
    out.insert(out.end(), ring.begin(),
               ring.begin() +
                   static_cast<ptrdiff_t>(impl->latencyNext));
    return out;
}

} // namespace serve
} // namespace ipds
