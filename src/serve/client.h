#ifndef IPDS_SERVE_CLIENT_H
#define IPDS_SERVE_CLIENT_H

/**
 * @file
 * Blocking client for the detection service: connect, name your
 * tenant, stream a recorded trace, read the verdict.
 *
 *   serve::Client c;
 *   c.connect("/tmp/ipds.sock");
 *   c.hello("tenant-a");
 *   c.sendTraceFile("run.ipds");
 *   serve::StreamResult r = c.end();
 *   if (!r.ok) ...            // server rejected the stream
 *   if (r.alarms > 0) ...     // detection fired at ingest
 *
 * The client is intentionally dumb: it frames bytes (serve/wire.h)
 * and parses the server's text report. All detection intelligence is
 * server-side; the trace bytes travel unmodified, so what the server
 * detects is exactly what offline replay of the same file detects.
 * One Client is one connection; not thread-safe.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace ipds {
namespace serve {

/** Parsed Result/Error report for one streamed trace. */
struct StreamResult
{
    bool ok = false;          ///< stream accepted and fully detected
    uint64_t sessions = 0;    ///< sessions the server replayed
    uint64_t alarms = 0;      ///< alarms raised at ingest
    uint64_t alarmDigest = 0; ///< order-sensitive FNV digest
    std::string text;         ///< full report (metrics text after ok)
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the server socket. FatalError on failure. */
    void connect(const std::string &socketPath);

    /** Open a stream as @p tenant (first frame on the wire). */
    void hello(const std::string &tenant);

    /**
     * Stream raw trace bytes, split into TraceData frames of at most
     * @p frameBytes payload (0 = 64 KiB; must not exceed the
     * server's frame cap).
     */
    void sendTraceBytes(const uint8_t *p, size_t bytes,
                        size_t frameBytes = 0);

    /** sendTraceBytes() over a whole trace file. */
    void sendTraceFile(const std::string &path,
                       size_t frameBytes = 0);

    /**
     * Close the stream (StreamEnd) and block for the server's
     * Result/Error report. FatalError only on transport failure —
     * a rejected stream returns ok = false with the diagnostic in
     * text.
     */
    StreamResult end();

    /** Fetch the server's /statsz text (StatsReq/Stats). */
    std::string statsz();

    /** Send pre-encoded bytes verbatim (tests: malformed frames). */
    void sendRaw(const std::vector<uint8_t> &bytes);

    void close();
    bool connected() const { return fd >= 0; }

  private:
    void writeAll(const uint8_t *p, size_t bytes);
    /** Block for the next frame; payload copied into @p payload. */
    wire::FrameType readFrame(std::vector<uint8_t> &payload);

    int fd = -1;
    wire::FrameDecoder dec;
};

} // namespace serve
} // namespace ipds

#endif // IPDS_SERVE_CLIENT_H
