#ifndef IPDS_SERVE_CLIENT_H
#define IPDS_SERVE_CLIENT_H

/**
 * @file
 * Blocking client for the detection service: connect, name your
 * tenant, stream a recorded trace, read the verdict.
 *
 *   serve::Client c;
 *   c.connect("/tmp/ipds.sock");      // or c.connectTcp(host, port)
 *   c.hello("tenant-a");              // or c.helloV2(tenant, hash)
 *   c.sendTraceFile("run.ipds");
 *   serve::StreamResult r = c.end();
 *   if (!r.ok) ...            // server rejected the stream
 *   if (r.alarms > 0) ...     // detection fired at ingest
 *
 * The client is intentionally dumb: it frames bytes (serve/wire.h)
 * and parses the server's text report. All detection intelligence is
 * server-side; the trace bytes travel unmodified, so what the server
 * detects is exactly what offline replay of the same file detects.
 * One Client is one connection; not thread-safe.
 *
 * RECONNECT/RESUME: helloV2() declares a resume token. The server
 * then acks its sealed watermark (ChunkAck) every few chunks; the
 * client retains the unacked tail of the trace. When the connection
 * drops mid-stream, the client redials (bounded exponential
 * backoff), replays Hello2 with the resume flag and the last acked
 * (offset, chunks) watermark, and re-feeds from there. The server
 * dedupes the overlap, so the final Result is bit-identical to an
 * uninterrupted stream. v1 hello() keeps the old fail-on-drop
 * behavior.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace ipds {
namespace serve {

/** Parsed Result/Error report for one streamed trace. */
struct StreamResult
{
    bool ok = false;          ///< stream accepted and fully detected
    bool malformed = false;   ///< Result frame missing required keys
    uint64_t sessions = 0;    ///< sessions the server replayed
    uint64_t alarms = 0;      ///< alarms raised at ingest
    uint64_t alarmDigest = 0; ///< order-sensitive FNV digest
    std::string errorCode;    ///< typed Error slug ("" on Result)
    std::string text;         ///< full report (metrics text after ok)
};

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the server's unix socket. FatalError on failure. */
    void connect(const std::string &socketPath);

    /** Connect to the server's TCP listener (IPv4 dotted quad). */
    void connectTcp(const std::string &host, uint16_t port);

    /** Open a stream as @p tenant (v1 hello: first registered
     *  module, no resume). */
    void hello(const std::string &tenant);

    /**
     * Open a stream with the versioned hello: route to the module
     * whose FNV-1a content hash is @p moduleHash and enable
     * reconnect/resume. @p resumeToken identifies the stream across
     * reconnects (0 = choose a random one).
     */
    void helloV2(const std::string &tenant, uint64_t moduleHash,
                 uint64_t resumeToken = 0);

    /** Reconnect attempts per drop and the base backoff (doubled per
     *  attempt). Defaults: 8 attempts, 10 ms. */
    void reconnectPolicy(unsigned attempts, unsigned backoffMs);

    /**
     * Stream raw trace bytes, split into TraceData frames of at most
     * @p frameBytes payload (0 = 64 KiB; must not exceed the
     * server's frame cap).
     */
    void sendTraceBytes(const uint8_t *p, size_t bytes,
                        size_t frameBytes = 0);

    /** sendTraceBytes() over a whole trace file. */
    void sendTraceFile(const std::string &path,
                       size_t frameBytes = 0);

    /**
     * Close the stream (StreamEnd) and block for the server's
     * Result/Error report. FatalError only on transport failure —
     * a rejected stream returns ok = false with the diagnostic in
     * text (and the typed slug in errorCode).
     */
    StreamResult end();

    /** Fetch the server's /statsz text (StatsReq/Stats). */
    std::string statsz();

    /** Send pre-encoded bytes verbatim (tests: malformed frames). */
    void sendRaw(const std::vector<uint8_t> &bytes);

    /**
     * Test/bench hook: sever the connection as a network drop would,
     * keeping all resume state. The next send on a helloV2 stream
     * reconnects and resumes.
     */
    void abortConnection();

    void close();
    bool connected() const { return fd >= 0; }

    /** Successful reconnect+resume handshakes so far. */
    uint64_t reconnects() const { return reconnectCount; }
    /** The server's last acked sealed byte offset (resume streams). */
    uint64_t lastAckedBytes() const { return pendingBase; }

  private:
    void doConnect();
    /** False when the peer closed (latched); FatalError otherwise. */
    bool writeAll(const uint8_t *p, size_t bytes);
    /** Block for the next frame; payload copied into @p payload. */
    wire::FrameType readFrame(std::vector<uint8_t> &payload);
    /** readFrame that returns false on connection loss. */
    bool tryReadFrame(wire::FrameType &t,
                      std::vector<uint8_t> &payload);
    void handleAck(uint64_t bytes, uint64_t chunks);
    void applyAheadAck();
    /** Consume any frames already readable without blocking. */
    void drainAcks();
    /** Send pending bytes from sendPos; reconnects on drops. */
    void pump();
    /** Redial + Hello2(resume) + rewind sendPos. FatalError when the
     *  attempts run out. */
    void reconnectAndResume();
    bool sendStreamEnd();

    int fd = -1;
    wire::FrameDecoder dec;

    // Dial target (for redials).
    bool tcpMode = false;
    std::string target; ///< socket path or IPv4 host
    uint16_t tcpPort = 0;

    bool peerClosed = false; ///< latched: later writes are no-ops
    bool rxClosed = false;   ///< read side saw EOF/reset: drained dry

    // Resume state (helloV2 streams only).
    bool resumeOn = false;
    std::string tenantName;
    uint64_t modHash = 0;
    uint64_t token = 0;
    size_t frameBytesUsed = 64 * 1024;
    unsigned maxAttempts = 8;
    unsigned backoffBaseMs = 10;
    uint64_t reconnectCount = 0;
    // Retained unacked trace tail: bytes [pendingBase, pendingBase +
    // pending.size()); sendPos is the next absolute offset to send.
    std::vector<uint8_t> pending;
    uint64_t pendingBase = 0;
    uint64_t sendPos = 0;
    uint64_t ackChunksEcho = 0; ///< chunk count paired w/ pendingBase
    // An ack ahead of sendPos (server sealed re-sent bytes we have
    // not re-reached yet); applied once sendPos catches up so the
    // (offset, chunks) resume pair always comes from one ChunkAck.
    bool aheadValid = false;
    uint64_t aheadBytes = 0, aheadChunks = 0;
    // A Result/Error that arrived while sending (e.g. the stream
    // finished while parked); end() consumes it.
    bool haveEarly = false;
    wire::FrameType earlyType = wire::FrameType::Result;
    std::vector<uint8_t> earlyPayload;
};

} // namespace serve
} // namespace ipds

#endif // IPDS_SERVE_CLIENT_H
