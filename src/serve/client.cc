#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/diag.h"

namespace ipds {
namespace serve {

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
Client::abortConnection()
{
    close();
}

void
Client::doConnect()
{
    int s;
    if (tcpMode) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(tcpPort);
        if (inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1)
            fatal("client: bad TCP address '%s' (IPv4 dotted quad "
                  "expected)",
                  target.c_str());
        s = socket(AF_INET, SOCK_STREAM, 0);
        if (s < 0)
            fatal("client: socket(): %s", std::strerror(errno));
        if (::connect(s, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) < 0) {
            int e = errno;
            ::close(s);
            fatal("client: cannot connect %s:%u: %s", target.c_str(),
                  unsigned(tcpPort), std::strerror(e));
        }
        int one = 1;
        setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    } else {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (target.size() >= sizeof addr.sun_path)
            fatal("client: socket path too long: '%s'",
                  target.c_str());
        std::memcpy(addr.sun_path, target.c_str(),
                    target.size() + 1);
        s = socket(AF_UNIX, SOCK_STREAM, 0);
        if (s < 0)
            fatal("client: socket(): %s", std::strerror(errno));
        if (::connect(s, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) < 0) {
            int e = errno;
            ::close(s);
            fatal("client: cannot connect '%s': %s", target.c_str(),
                  std::strerror(e));
        }
    }
    fd = s;
    peerClosed = false;
    rxClosed = false;
    dec = wire::FrameDecoder();
}

void
Client::connect(const std::string &socketPath)
{
    if (fd >= 0)
        fatal("client: already connected");
    tcpMode = false;
    target = socketPath;
    doConnect();
}

void
Client::connectTcp(const std::string &host, uint16_t port)
{
    if (fd >= 0)
        fatal("client: already connected");
    tcpMode = true;
    target = host;
    tcpPort = port;
    doConnect();
}

void
Client::reconnectPolicy(unsigned attempts, unsigned backoffMs)
{
    maxAttempts = attempts;
    backoffBaseMs = backoffMs;
}

bool
Client::writeAll(const uint8_t *p, size_t bytes)
{
    if (fd < 0 || peerClosed)
        return false;
    size_t off = 0;
    while (off < bytes) {
        // MSG_NOSIGNAL: a server that rejects the stream closes its
        // end while we may still be sending — that must surface as
        // EPIPE, not kill the process with SIGPIPE.
        ssize_t w = ::send(fd, p + off, bytes - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (w == 0 || (w < 0 && (errno == EPIPE ||
                                 errno == ECONNRESET))) {
            // The peer hung up (a 0-byte send is the same condition,
            // not a fatal error with whatever errno was left over).
            // Latch it: every later write is a no-op, and any
            // verdict the server sent before closing is still
            // buffered for readFrame() to report.
            peerClosed = true;
            return false;
        }
        fatal("client: write failed: %s", std::strerror(errno));
    }
    return true;
}

void
Client::sendRaw(const std::vector<uint8_t> &bytes)
{
    if (fd < 0)
        fatal("client: not connected");
    writeAll(bytes.data(), bytes.size());
}

void
Client::hello(const std::string &tenant)
{
    if (fd < 0)
        fatal("client: not connected");
    std::vector<uint8_t> f =
        wire::encodeTextFrame(wire::FrameType::Hello, tenant);
    writeAll(f.data(), f.size());
}

void
Client::helloV2(const std::string &tenant, uint64_t moduleHash,
                uint64_t resumeToken)
{
    if (fd < 0)
        fatal("client: not connected");
    if (resumeToken == 0) {
        std::random_device rd;
        do {
            resumeToken = (uint64_t(rd()) << 32) | uint64_t(rd());
        } while (resumeToken == 0);
    }
    resumeOn = true;
    tenantName = tenant;
    modHash = moduleHash;
    token = resumeToken;
    pending.clear();
    pendingBase = 0;
    sendPos = 0;
    ackChunksEcho = 0;
    aheadValid = false;
    haveEarly = false;

    wire::HelloV2 h;
    h.resume = false;
    h.tenant = tenant;
    h.moduleHash = moduleHash;
    h.resumeToken = resumeToken;
    std::vector<uint8_t> p = wire::encodeHello2(h);
    std::vector<uint8_t> f = wire::encodeFrame(
        wire::FrameType::Hello2, p.data(), p.size());
    if (!writeAll(f.data(), f.size()))
        reconnectAndResume();
}

void
Client::handleAck(uint64_t bytes, uint64_t chunks)
{
    if (bytes > sendPos) {
        // The server sealed re-sent bytes we have not re-reached yet
        // (it kept decoding queued segments while we were gone).
        // Hold the pair until sendPos catches up — trimming now
        // would drop bytes still scheduled for (re-)send.
        aheadValid = true;
        aheadBytes = bytes;
        aheadChunks = chunks;
        return;
    }
    if (bytes <= pendingBase)
        return; // stale
    pending.erase(pending.begin(),
                  pending.begin() +
                      static_cast<ptrdiff_t>(bytes - pendingBase));
    pendingBase = bytes;
    ackChunksEcho = chunks;
}

void
Client::applyAheadAck()
{
    if (aheadValid && aheadBytes <= sendPos) {
        aheadValid = false;
        handleAck(aheadBytes, aheadChunks);
    }
}

void
Client::drainAcks()
{
    if (fd < 0)
        return;
    uint8_t buf[16384];
    for (;;) {
        wire::Frame f;
        wire::DecodeStatus st = dec.next(f);
        if (st == wire::DecodeStatus::Frame) {
            if (f.type == wire::FrameType::ChunkAck) {
                uint64_t b, k;
                if (wire::decodeChunkAck(f.payload, f.payloadLen, b,
                                         k))
                    handleAck(b, k);
            } else if (f.type == wire::FrameType::Result ||
                       f.type == wire::FrameType::Error) {
                haveEarly = true;
                earlyType = f.type;
                earlyPayload.assign(f.payload,
                                    f.payload + f.payloadLen);
            }
            continue;
        }
        if (st != wire::DecodeStatus::NeedMore)
            fatal("client: malformed server frame");
        ssize_t r = recv(fd, buf, sizeof buf, MSG_DONTWAIT);
        if (r > 0) {
            dec.append(buf, static_cast<size_t>(r));
            continue;
        }
        if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (r < 0 && errno == EINTR)
            continue;
        // EOF/reset: nothing more will ever arrive on this socket.
        peerClosed = true;
        rxClosed = true;
        return;
    }
}

void
Client::reconnectAndResume()
{
    if (!resumeOn)
        fatal("client: connection lost (no resume token declared)");
    // The drop may be a REJECT, not a network failure: the server
    // sends its final Error (typed) and closes. Drain the old socket
    // for that verdict before redialing — reconnecting past it would
    // retry a stream the server already refused.
    if (fd >= 0) {
        for (int spins = 0; spins < 20 && !haveEarly && !rxClosed;
             spins++) {
            drainAcks();
            if (haveEarly || rxClosed || fd < 0)
                break;
            pollfd p{};
            p.fd = fd;
            p.events = POLLIN;
            if (::poll(&p, 1, 10) < 0 && errno != EINTR)
                break;
        }
        if (haveEarly)
            return; // callers consume the verdict instead
    }
    unsigned backoff = backoffBaseMs;
    for (unsigned attempt = 0; attempt < maxAttempts; attempt++) {
        close();
        if (backoff > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
        if (backoff < 1000)
            backoff *= 2;
        try {
            doConnect();
        } catch (const FatalError &) {
            continue; // server not back yet
        }
        wire::HelloV2 h;
        h.resume = true;
        h.tenant = tenantName;
        h.moduleHash = modHash;
        h.resumeToken = token;
        h.resumeOffset = pendingBase;
        h.resumeChunks = ackChunksEcho;
        std::vector<uint8_t> p = wire::encodeHello2(h);
        std::vector<uint8_t> f = wire::encodeFrame(
            wire::FrameType::Hello2, p.data(), p.size());
        if (!writeAll(f.data(), f.size()))
            continue;
        // Re-feed everything the server never acked. Its dedup drops
        // whatever actually landed before the drop.
        sendPos = pendingBase;
        aheadValid = false;
        reconnectCount++;
        return;
    }
    fatal("client: could not reconnect after %u attempts",
          maxAttempts);
}

void
Client::pump()
{
    std::vector<uint8_t> f;
    while (sendPos < pendingBase + pending.size()) {
        if (haveEarly)
            return; // the server already delivered a verdict
        if (fd < 0 || peerClosed) {
            reconnectAndResume();
            continue;
        }
        const size_t off =
            static_cast<size_t>(sendPos - pendingBase);
        const size_t n = std::min(frameBytesUsed,
                                  pending.size() - off);
        f.clear();
        wire::appendFrame(f, wire::FrameType::TraceData,
                          pending.data() + off, n);
        if (!writeAll(f.data(), f.size())) {
            reconnectAndResume();
            continue;
        }
        sendPos += n;
        drainAcks();
        applyAheadAck();
    }
}

void
Client::sendTraceBytes(const uint8_t *p, size_t bytes,
                       size_t frameBytes)
{
    if (frameBytes == 0)
        frameBytes = 64 * 1024;
    if (resumeOn) {
        frameBytesUsed = frameBytes;
        pending.insert(pending.end(), p, p + bytes);
        pump();
        return;
    }
    std::vector<uint8_t> f;
    for (size_t off = 0; off < bytes; off += frameBytes) {
        size_t n = std::min(frameBytes, bytes - off);
        f.clear();
        wire::appendFrame(f, wire::FrameType::TraceData, p + off, n);
        if (!writeAll(f.data(), f.size()))
            return; // peer closed; readFrame() reports its verdict
    }
}

void
Client::sendTraceFile(const std::string &path, size_t frameBytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("client: cannot open trace '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("client: read error on '%s'", path.c_str());
    sendTraceBytes(bytes.data(), bytes.size(), frameBytes);
}

bool
Client::tryReadFrame(wire::FrameType &t,
                     std::vector<uint8_t> &payload)
{
    if (fd < 0)
        return false;
    wire::Frame f;
    uint8_t buf[16384];
    for (;;) {
        wire::DecodeStatus st = dec.next(f);
        if (st == wire::DecodeStatus::Frame) {
            t = f.type;
            payload.assign(f.payload, f.payload + f.payloadLen);
            return true;
        }
        if (st != wire::DecodeStatus::NeedMore)
            fatal("client: malformed server frame");
        ssize_t r = read(fd, buf, sizeof buf);
        if (r > 0) {
            dec.append(buf, static_cast<size_t>(r));
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        return false; // EOF or reset
    }
}

wire::FrameType
Client::readFrame(std::vector<uint8_t> &payload)
{
    for (;;) {
        wire::FrameType t;
        if (!tryReadFrame(t, payload))
            fatal("client: connection closed by server%s",
                  dec.buffered() ? " mid-frame (truncated)" : "");
        if (t == wire::FrameType::ChunkAck) {
            uint64_t b, k;
            if (wire::decodeChunkAck(payload.data(), payload.size(),
                                     b, k)) {
                handleAck(b, k);
                applyAheadAck();
            }
            continue; // acks are bookkeeping, not the reply
        }
        return t;
    }
}

namespace {

/**
 * "key value" line scanner over the server's text report. Found-ness
 * is the return value — a missing key must never parse as a
 * legitimate zero.
 */
bool
reportField(const std::string &text, const std::string &key,
            uint64_t &out, int base = 10)
{
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        if (text.compare(pos, key.size(), key) == 0 &&
            pos + key.size() < eol &&
            text[pos + key.size()] == ' ') {
            out = std::strtoull(
                text.c_str() + pos + key.size() + 1, nullptr, base);
            return true;
        }
        pos = eol + 1;
    }
    return false;
}

} // namespace

bool
Client::sendStreamEnd()
{
    std::vector<uint8_t> f =
        wire::encodeTextFrame(wire::FrameType::StreamEnd, "");
    return writeAll(f.data(), f.size());
}

StreamResult
Client::end()
{
    std::vector<uint8_t> payload;
    wire::FrameType t = wire::FrameType::Result;
    if (resumeOn) {
        if (!haveEarly)
            sendStreamEnd(); // on failure the loop below resumes
        for (;;) {
            if (haveEarly) {
                t = earlyType;
                payload = std::move(earlyPayload);
                haveEarly = false;
                break;
            }
            if (fd < 0 || peerClosed) {
                reconnectAndResume();
                pump();
                sendStreamEnd();
                continue;
            }
            if (!tryReadFrame(t, payload)) {
                peerClosed = true;
                continue; // dropped while waiting: resume above
            }
            if (t == wire::FrameType::ChunkAck) {
                uint64_t b, k;
                if (wire::decodeChunkAck(payload.data(),
                                         payload.size(), b, k)) {
                    handleAck(b, k);
                    applyAheadAck();
                }
                continue;
            }
            break;
        }
    } else {
        sendStreamEnd(); // peer-closed no-op is fine: verdict below
        t = readFrame(payload);
    }

    StreamResult r;
    r.text.assign(payload.begin(), payload.end());
    if (t == wire::FrameType::Result) {
        uint64_t ok = 0;
        const bool fOk = reportField(r.text, "ok", ok);
        const bool fSess =
            reportField(r.text, "sessions", r.sessions);
        const bool fAl = reportField(r.text, "alarms", r.alarms);
        const bool fDig =
            reportField(r.text, "alarm_digest", r.alarmDigest, 16);
        if (!fOk || !fSess || !fAl || !fDig) {
            // A Result that does not carry the full contract is a
            // protocol defect, not a clean zero-alarm stream.
            r.ok = false;
            r.malformed = true;
        } else {
            r.ok = ok == 1;
        }
    } else if (t == wire::FrameType::Error) {
        r.ok = false;
        r.errorCode = wire::parseErrorCode(r.text);
    } else {
        fatal("client: unexpected frame type %u from server",
              static_cast<unsigned>(t));
    }
    return r;
}

std::string
Client::statsz()
{
    std::vector<uint8_t> f =
        wire::encodeTextFrame(wire::FrameType::StatsReq, "");
    writeAll(f.data(), f.size());
    std::vector<uint8_t> payload;
    wire::FrameType t = readFrame(payload);
    if (t != wire::FrameType::Stats)
        fatal("client: expected Stats frame, got %u",
              static_cast<unsigned>(t));
    return std::string(payload.begin(), payload.end());
}

} // namespace serve
} // namespace ipds
