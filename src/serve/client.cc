#include "serve/client.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/diag.h"

namespace ipds {
namespace serve {

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
Client::connect(const std::string &socketPath)
{
    if (fd >= 0)
        fatal("client: already connected");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof addr.sun_path)
        fatal("client: socket path too long: '%s'",
              socketPath.c_str());
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    int s = socket(AF_UNIX, SOCK_STREAM, 0);
    if (s < 0)
        fatal("client: socket(): %s", std::strerror(errno));
    if (::connect(s, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        int e = errno;
        ::close(s);
        fatal("client: cannot connect '%s': %s", socketPath.c_str(),
              std::strerror(e));
    }
    fd = s;
}

void
Client::writeAll(const uint8_t *p, size_t bytes)
{
    if (fd < 0)
        fatal("client: not connected");
    size_t off = 0;
    while (off < bytes) {
        // MSG_NOSIGNAL: a server that rejects the stream closes its
        // end while we may still be sending — that must surface as
        // EPIPE, not kill the process with SIGPIPE.
        ssize_t w = ::send(fd, p + off, bytes - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<size_t>(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (w < 0 && (errno == EPIPE || errno == ECONNRESET)) {
            // The peer hung up. On AF_UNIX any verdict it sent before
            // closing (the Error frame) is still buffered for us to
            // read, so stop sending and let the next readFrame()
            // report what the server actually said.
            return;
        }
        fatal("client: write failed: %s", std::strerror(errno));
    }
}

void
Client::sendRaw(const std::vector<uint8_t> &bytes)
{
    writeAll(bytes.data(), bytes.size());
}

void
Client::hello(const std::string &tenant)
{
    std::vector<uint8_t> f =
        wire::encodeTextFrame(wire::FrameType::Hello, tenant);
    writeAll(f.data(), f.size());
}

void
Client::sendTraceBytes(const uint8_t *p, size_t bytes,
                       size_t frameBytes)
{
    if (frameBytes == 0)
        frameBytes = 64 * 1024;
    std::vector<uint8_t> f;
    for (size_t off = 0; off < bytes; off += frameBytes) {
        size_t n = std::min(frameBytes, bytes - off);
        f.clear();
        wire::appendFrame(f, wire::FrameType::TraceData, p + off, n);
        writeAll(f.data(), f.size());
    }
}

void
Client::sendTraceFile(const std::string &path, size_t frameBytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("client: cannot open trace '%s'", path.c_str());
    std::vector<uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        fatal("client: read error on '%s'", path.c_str());
    sendTraceBytes(bytes.data(), bytes.size(), frameBytes);
}

wire::FrameType
Client::readFrame(std::vector<uint8_t> &payload)
{
    wire::Frame f;
    uint8_t buf[16384];
    for (;;) {
        wire::DecodeStatus st = dec.next(f);
        if (st == wire::DecodeStatus::Frame) {
            payload.assign(f.payload, f.payload + f.payloadLen);
            return f.type;
        }
        if (st != wire::DecodeStatus::NeedMore)
            fatal("client: malformed server frame");
        ssize_t r = read(fd, buf, sizeof buf);
        if (r > 0) {
            dec.append(buf, static_cast<size_t>(r));
            continue;
        }
        if (r < 0 && errno == EINTR)
            continue;
        fatal("client: connection closed by server%s",
              dec.buffered() ? " mid-frame (truncated)" : "");
    }
}

namespace {

/** "key value" line scanner over the server's text report. */
uint64_t
reportField(const std::string &text, const std::string &key,
            int base = 10)
{
    size_t pos = 0;
    while (pos < text.size()) {
        size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        if (text.compare(pos, key.size(), key) == 0 &&
            pos + key.size() < eol &&
            text[pos + key.size()] == ' ') {
            return std::strtoull(
                text.c_str() + pos + key.size() + 1, nullptr, base);
        }
        pos = eol + 1;
    }
    return 0;
}

} // namespace

StreamResult
Client::end()
{
    std::vector<uint8_t> f =
        wire::encodeTextFrame(wire::FrameType::StreamEnd, "");
    writeAll(f.data(), f.size());

    std::vector<uint8_t> payload;
    wire::FrameType t = readFrame(payload);
    StreamResult r;
    r.text.assign(payload.begin(), payload.end());
    if (t == wire::FrameType::Result) {
        r.ok = reportField(r.text, "ok") == 1;
        r.sessions = reportField(r.text, "sessions");
        r.alarms = reportField(r.text, "alarms");
        r.alarmDigest = reportField(r.text, "alarm_digest", 16);
    } else if (t == wire::FrameType::Error) {
        r.ok = false;
    } else {
        fatal("client: unexpected frame type %u from server",
              static_cast<unsigned>(t));
    }
    return r;
}

std::string
Client::statsz()
{
    std::vector<uint8_t> f =
        wire::encodeTextFrame(wire::FrameType::StatsReq, "");
    writeAll(f.data(), f.size());
    std::vector<uint8_t> payload;
    wire::FrameType t = readFrame(payload);
    if (t != wire::FrameType::Stats)
        fatal("client: expected Stats frame, got %u",
              static_cast<unsigned>(t));
    return std::string(payload.begin(), payload.end());
}

} // namespace serve
} // namespace ipds
