#ifndef IPDS_SERVE_WIRE_H
#define IPDS_SERVE_WIRE_H

/**
 * @file
 * Transport framing for the detection service.
 *
 * A client session is a sequence of FRAMES over a stream socket. The
 * frame envelope is deliberately independent of the trace format it
 * carries: the v1 trace bytes (replay/format.h) travel inside
 * TraceData frames unchanged, so the server's detection input is the
 * exact byte stream a CapturePlan wrote — ingest-time detection can
 * be diffed against offline replay of the same file byte for byte.
 *
 * Frame layout (little-endian):
 *
 *   u32 magic      "IPF1" (kFrameMagic)
 *   u8  type       (FrameType)
 *   u8  pad[3]     zero
 *   u32 payloadLen (<= negotiated max, kDefaultMaxFrameBytes default)
 *   u32 payloadCrc (crc32 of the payload bytes)
 *   u8  payload[payloadLen]
 *
 * Client->server: Hello (payload = tenant name), Hello2 (versioned
 * header: tenant + module hash + resume token, layout below),
 * TraceData (payload = raw trace bytes, any split), StreamEnd
 * (empty), StatsReq (empty).
 * Server->client: Result (text report), Error (text diagnostic —
 * first line "code <slug>" carries the typed error), Stats (the
 * /statsz text), ChunkAck (resume watermark: the absolute trace byte
 * offset and chunk count the server has sealed into the detector, so
 * a reconnecting client knows where to re-feed from).
 *
 * Hello v2 payload (little-endian, 36 bytes + tenant):
 *
 *   u8  version      (2; anything else is rejected)
 *   u8  flags        (bit0: resume an earlier stream)
 *   u16 tenantLen    (1..256)
 *   u64 moduleHash   FNV-1a content hash of the protected module
 *                    (replay::moduleContentHash; the trace header
 *                    carries the same value)
 *   u64 resumeToken  client-chosen stream identity (0 = no resume
 *                    support; must be nonzero when flags bit0 is set)
 *   u64 resumeOffset absolute trace byte offset to re-feed from
 *                    (resume only; must be <= a prior ChunkAck)
 *   u64 resumeChunks sealed chunk count paired with resumeOffset
 *                    (from the same ChunkAck; 0 on first attach)
 *   u8  tenant[tenantLen]
 *
 * ChunkAck payload: u64 sealedBytes, u64 sealedChunks (16 bytes).
 *
 * Error taxonomy mirrors the reader satellite's retry-vs-reject
 * contract: a SHORT frame at connection drop is truncation (the
 * stream failed, nothing to retry within it), a frame whose CRC does
 * not match is corruption (reject), and a frame whose length exceeds
 * the negotiated max is rejected before buffering (admission
 * control, not trust-the-length).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipds {
namespace serve {
namespace wire {

inline constexpr uint32_t kFrameMagic = 0x31465049u; ///< "IPF1" LE
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint8_t
{
    Hello = 1,     ///< client: tenant name (UTF-8, 1..256 bytes)
    TraceData = 2, ///< client: raw trace bytes
    StreamEnd = 3, ///< client: stream complete, report back
    Result = 4,    ///< server: per-stream detection report (text)
    Error = 5,     ///< server: stream rejected (text diagnostic)
    StatsReq = 6,  ///< client: request /statsz
    Stats = 7,     ///< server: /statsz text
    Hello2 = 8,    ///< client: versioned hello (tenant, module, resume)
    ChunkAck = 9,  ///< server: sealed-watermark ack (resume support)
};

/**
 * Typed error codes. The Error frame payload's first line is
 * "code <slug>"; the human-readable diagnostic follows on the next
 * line(s). Slugs are the wire contract — clients switch on them.
 */
enum class ErrorCode : uint8_t
{
    None = 0,
    Protocol,      ///< framing misuse (duplicate Hello, bad order…)
    Transport,     ///< corrupt/oversized frame, truncation, shutdown
    Trace,         ///< trace payload failed decode/detection
    UnknownModule, ///< Hello2 module hash not in the registry
    UnknownResume, ///< resume token unknown, expired, or mismatched
};

/** Wire slug for @p c ("protocol", "unknown_module", …). */
const char *errorCodeSlug(ErrorCode c);

/** Parse the "code <slug>" first line of an Error payload. Returns
 *  the slug ("" when absent) and points @p rest at the diagnostic. */
std::string parseErrorCode(const std::string &payload);

/** Prefix @p why with the "code <slug>" line. */
std::string taggedError(ErrorCode c, const std::string &why);

/** Decoded Hello v2 (see the layout in the file comment). */
struct HelloV2
{
    uint8_t version = 2;
    bool resume = false;
    std::string tenant;
    uint64_t moduleHash = 0;
    uint64_t resumeToken = 0;
    uint64_t resumeOffset = 0;
    uint64_t resumeChunks = 0;
};

inline constexpr size_t kHello2FixedBytes = 36;

/** Encode a Hello2 payload (not the frame envelope). */
std::vector<uint8_t> encodeHello2(const HelloV2 &h);

/** Decode a Hello2 payload. False on malformed/unsupported input. */
bool decodeHello2(const uint8_t *p, size_t n, HelloV2 &out);

/** Encode a ChunkAck payload (not the frame envelope). */
std::vector<uint8_t> encodeChunkAck(uint64_t sealedBytes,
                                    uint64_t sealedChunks);

/** Decode a ChunkAck payload. False unless exactly 16 bytes. */
bool decodeChunkAck(const uint8_t *p, size_t n, uint64_t &sealedBytes,
                    uint64_t &sealedChunks);

/** A decoded frame (payload is a view into the decoder's buffer). */
struct Frame
{
    FrameType type = FrameType::Hello;
    const uint8_t *payload = nullptr;
    uint32_t payloadLen = 0;
};

enum class DecodeStatus : uint8_t
{
    Frame,       ///< out filled; call again for the next frame
    NeedMore,    ///< feed more bytes
    BadMagic,    ///< not a frame stream — reject connection
    BadType,     ///< unknown frame type — reject connection
    Oversized,   ///< payloadLen exceeds the configured max — reject
    CrcMismatch, ///< payload corrupt — reject connection
};

/**
 * Incremental frame decoder: append() socket bytes as they arrive,
 * then next() until NeedMore. Any reject status is sticky. A frame's
 * payload view stays valid until the next append()/next() call.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(size_t maxFrameBytes = kDefaultMaxFrameBytes)
        : maxBytes(maxFrameBytes)
    {}

    void append(const uint8_t *p, size_t n);

    DecodeStatus next(Frame &out);

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf.size() - consumed; }

    /** True when the stream ended cleanly between frames. */
    bool atFrameBoundary() const { return buffered() == 0; }

  private:
    size_t maxBytes;
    std::vector<uint8_t> buf;
    size_t consumed = 0;
    DecodeStatus poisoned = DecodeStatus::NeedMore; ///< sticky reject
};

/** Append one encoded frame to @p out. */
void appendFrame(std::vector<uint8_t> &out, FrameType type,
                 const uint8_t *payload, size_t payloadLen);

/** Encode one frame (convenience over appendFrame). */
std::vector<uint8_t> encodeFrame(FrameType type, const uint8_t *payload,
                                 size_t payloadLen);

/** Encode a text frame (Hello / Result / Error / Stats). */
std::vector<uint8_t> encodeTextFrame(FrameType type,
                                     const std::string &text);

} // namespace wire
} // namespace serve
} // namespace ipds

#endif // IPDS_SERVE_WIRE_H
