#ifndef IPDS_SERVE_WIRE_H
#define IPDS_SERVE_WIRE_H

/**
 * @file
 * Transport framing for the detection service.
 *
 * A client session is a sequence of FRAMES over a stream socket. The
 * frame envelope is deliberately independent of the trace format it
 * carries: the v1 trace bytes (replay/format.h) travel inside
 * TraceData frames unchanged, so the server's detection input is the
 * exact byte stream a CapturePlan wrote — ingest-time detection can
 * be diffed against offline replay of the same file byte for byte.
 *
 * Frame layout (little-endian):
 *
 *   u32 magic      "IPF1" (kFrameMagic)
 *   u8  type       (FrameType)
 *   u8  pad[3]     zero
 *   u32 payloadLen (<= negotiated max, kDefaultMaxFrameBytes default)
 *   u32 payloadCrc (crc32 of the payload bytes)
 *   u8  payload[payloadLen]
 *
 * Client->server: Hello (payload = tenant name), TraceData (payload =
 * raw trace bytes, any split), StreamEnd (empty), StatsReq (empty).
 * Server->client: Result (text report), Error (text diagnostic),
 * Stats (the /statsz text).
 *
 * Error taxonomy mirrors the reader satellite's retry-vs-reject
 * contract: a SHORT frame at connection drop is truncation (the
 * stream failed, nothing to retry within it), a frame whose CRC does
 * not match is corruption (reject), and a frame whose length exceeds
 * the negotiated max is rejected before buffering (admission
 * control, not trust-the-length).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ipds {
namespace serve {
namespace wire {

inline constexpr uint32_t kFrameMagic = 0x31465049u; ///< "IPF1" LE
inline constexpr size_t kFrameHeaderBytes = 16;
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

enum class FrameType : uint8_t
{
    Hello = 1,     ///< client: tenant name (UTF-8, 1..256 bytes)
    TraceData = 2, ///< client: raw trace bytes
    StreamEnd = 3, ///< client: stream complete, report back
    Result = 4,    ///< server: per-stream detection report (text)
    Error = 5,     ///< server: stream rejected (text diagnostic)
    StatsReq = 6,  ///< client: request /statsz
    Stats = 7,     ///< server: /statsz text
};

/** A decoded frame (payload is a view into the decoder's buffer). */
struct Frame
{
    FrameType type = FrameType::Hello;
    const uint8_t *payload = nullptr;
    uint32_t payloadLen = 0;
};

enum class DecodeStatus : uint8_t
{
    Frame,       ///< out filled; call again for the next frame
    NeedMore,    ///< feed more bytes
    BadMagic,    ///< not a frame stream — reject connection
    BadType,     ///< unknown frame type — reject connection
    Oversized,   ///< payloadLen exceeds the configured max — reject
    CrcMismatch, ///< payload corrupt — reject connection
};

/**
 * Incremental frame decoder: append() socket bytes as they arrive,
 * then next() until NeedMore. Any reject status is sticky. A frame's
 * payload view stays valid until the next append()/next() call.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(size_t maxFrameBytes = kDefaultMaxFrameBytes)
        : maxBytes(maxFrameBytes)
    {}

    void append(const uint8_t *p, size_t n);

    DecodeStatus next(Frame &out);

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf.size() - consumed; }

    /** True when the stream ended cleanly between frames. */
    bool atFrameBoundary() const { return buffered() == 0; }

  private:
    size_t maxBytes;
    std::vector<uint8_t> buf;
    size_t consumed = 0;
    DecodeStatus poisoned = DecodeStatus::NeedMore; ///< sticky reject
};

/** Append one encoded frame to @p out. */
void appendFrame(std::vector<uint8_t> &out, FrameType type,
                 const uint8_t *payload, size_t payloadLen);

/** Encode one frame (convenience over appendFrame). */
std::vector<uint8_t> encodeFrame(FrameType type, const uint8_t *payload,
                                 size_t payloadLen);

/** Encode a text frame (Hello / Result / Error / Stats). */
std::vector<uint8_t> encodeTextFrame(FrameType type,
                                     const std::string &text);

} // namespace wire
} // namespace serve
} // namespace ipds

#endif // IPDS_SERVE_WIRE_H
