#include "serve/wire.h"

#include <cstring>

#include "replay/format.h"

namespace ipds {
namespace serve {
namespace wire {

void
FrameDecoder::append(const uint8_t *p, size_t n)
{
    // Compact before growing: the steady state keeps the buffer at
    // one partial frame, not the whole connection history.
    if (consumed > 0 && consumed == buf.size()) {
        buf.clear();
        consumed = 0;
    } else if (consumed > 4096 && consumed > buf.size() / 2) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(consumed));
        consumed = 0;
    }
    buf.insert(buf.end(), p, p + n);
}

DecodeStatus
FrameDecoder::next(Frame &out)
{
    if (poisoned != DecodeStatus::NeedMore)
        return poisoned;
    const size_t have = buf.size() - consumed;
    if (have < kFrameHeaderBytes)
        return DecodeStatus::NeedMore;
    const uint8_t *h = buf.data() + consumed;
    if (replay::getU32(h) != kFrameMagic)
        return poisoned = DecodeStatus::BadMagic;
    uint8_t type = h[4];
    if (type < static_cast<uint8_t>(FrameType::Hello) ||
        type > static_cast<uint8_t>(FrameType::Stats))
        return poisoned = DecodeStatus::BadType;
    uint32_t len = replay::getU32(h + 8);
    if (len > maxBytes)
        return poisoned = DecodeStatus::Oversized;
    if (have - kFrameHeaderBytes < len)
        return DecodeStatus::NeedMore;
    uint32_t crc = replay::getU32(h + 12);
    const uint8_t *payload = h + kFrameHeaderBytes;
    if (replay::crc32(payload, len) != crc)
        return poisoned = DecodeStatus::CrcMismatch;
    out.type = static_cast<FrameType>(type);
    out.payload = payload;
    out.payloadLen = len;
    consumed += kFrameHeaderBytes + len;
    return DecodeStatus::Frame;
}

void
appendFrame(std::vector<uint8_t> &out, FrameType type,
            const uint8_t *payload, size_t payloadLen)
{
    uint8_t h[kFrameHeaderBytes] = {};
    replay::putU32(h, kFrameMagic);
    h[4] = static_cast<uint8_t>(type);
    replay::putU32(h + 8, static_cast<uint32_t>(payloadLen));
    replay::putU32(h + 12, replay::crc32(payload, payloadLen));
    out.insert(out.end(), h, h + kFrameHeaderBytes);
    out.insert(out.end(), payload, payload + payloadLen);
}

std::vector<uint8_t>
encodeFrame(FrameType type, const uint8_t *payload, size_t payloadLen)
{
    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + payloadLen);
    appendFrame(out, type, payload, payloadLen);
    return out;
}

std::vector<uint8_t>
encodeTextFrame(FrameType type, const std::string &text)
{
    return encodeFrame(
        type, reinterpret_cast<const uint8_t *>(text.data()),
        text.size());
}

} // namespace wire
} // namespace serve
} // namespace ipds
