#include "serve/wire.h"

#include <cstring>

#include "replay/format.h"

namespace ipds {
namespace serve {
namespace wire {

void
FrameDecoder::append(const uint8_t *p, size_t n)
{
    // Compact before growing: the steady state keeps the buffer at
    // one partial frame, not the whole connection history.
    if (consumed > 0 && consumed == buf.size()) {
        buf.clear();
        consumed = 0;
    } else if (consumed > 4096 && consumed > buf.size() / 2) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(consumed));
        consumed = 0;
    }
    buf.insert(buf.end(), p, p + n);
}

DecodeStatus
FrameDecoder::next(Frame &out)
{
    if (poisoned != DecodeStatus::NeedMore)
        return poisoned;
    const size_t have = buf.size() - consumed;
    if (have < kFrameHeaderBytes)
        return DecodeStatus::NeedMore;
    const uint8_t *h = buf.data() + consumed;
    if (replay::getU32(h) != kFrameMagic)
        return poisoned = DecodeStatus::BadMagic;
    uint8_t type = h[4];
    if (type < static_cast<uint8_t>(FrameType::Hello) ||
        type > static_cast<uint8_t>(FrameType::ChunkAck))
        return poisoned = DecodeStatus::BadType;
    uint32_t len = replay::getU32(h + 8);
    if (len > maxBytes)
        return poisoned = DecodeStatus::Oversized;
    if (have - kFrameHeaderBytes < len)
        return DecodeStatus::NeedMore;
    uint32_t crc = replay::getU32(h + 12);
    const uint8_t *payload = h + kFrameHeaderBytes;
    if (replay::crc32(payload, len) != crc)
        return poisoned = DecodeStatus::CrcMismatch;
    out.type = static_cast<FrameType>(type);
    out.payload = payload;
    out.payloadLen = len;
    consumed += kFrameHeaderBytes + len;
    return DecodeStatus::Frame;
}

void
appendFrame(std::vector<uint8_t> &out, FrameType type,
            const uint8_t *payload, size_t payloadLen)
{
    uint8_t h[kFrameHeaderBytes] = {};
    replay::putU32(h, kFrameMagic);
    h[4] = static_cast<uint8_t>(type);
    replay::putU32(h + 8, static_cast<uint32_t>(payloadLen));
    replay::putU32(h + 12, replay::crc32(payload, payloadLen));
    out.insert(out.end(), h, h + kFrameHeaderBytes);
    out.insert(out.end(), payload, payload + payloadLen);
}

std::vector<uint8_t>
encodeFrame(FrameType type, const uint8_t *payload, size_t payloadLen)
{
    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + payloadLen);
    appendFrame(out, type, payload, payloadLen);
    return out;
}

std::vector<uint8_t>
encodeTextFrame(FrameType type, const std::string &text)
{
    return encodeFrame(
        type, reinterpret_cast<const uint8_t *>(text.data()),
        text.size());
}

const char *
errorCodeSlug(ErrorCode c)
{
    switch (c) {
    case ErrorCode::Protocol:
        return "protocol";
    case ErrorCode::Transport:
        return "transport";
    case ErrorCode::Trace:
        return "trace";
    case ErrorCode::UnknownModule:
        return "unknown_module";
    case ErrorCode::UnknownResume:
        return "unknown_resume";
    case ErrorCode::None:
        break;
    }
    return "";
}

std::string
parseErrorCode(const std::string &payload)
{
    if (payload.compare(0, 5, "code ") != 0)
        return "";
    size_t eol = payload.find('\n');
    if (eol == std::string::npos)
        eol = payload.size();
    return payload.substr(5, eol - 5);
}

std::string
taggedError(ErrorCode c, const std::string &why)
{
    std::string out = "code ";
    out += errorCodeSlug(c);
    out += '\n';
    out += why;
    return out;
}

std::vector<uint8_t>
encodeHello2(const HelloV2 &h)
{
    std::vector<uint8_t> out(kHello2FixedBytes + h.tenant.size());
    out[0] = h.version;
    out[1] = h.resume ? 1 : 0;
    out[2] = static_cast<uint8_t>(h.tenant.size() & 0xff);
    out[3] = static_cast<uint8_t>((h.tenant.size() >> 8) & 0xff);
    replay::putU64(out.data() + 4, h.moduleHash);
    replay::putU64(out.data() + 12, h.resumeToken);
    replay::putU64(out.data() + 20, h.resumeOffset);
    replay::putU64(out.data() + 28, h.resumeChunks);
    std::memcpy(out.data() + kHello2FixedBytes, h.tenant.data(),
                h.tenant.size());
    return out;
}

bool
decodeHello2(const uint8_t *p, size_t n, HelloV2 &out)
{
    if (n < kHello2FixedBytes)
        return false;
    out.version = p[0];
    if (out.version != 2)
        return false;
    uint8_t flags = p[1];
    if (flags & ~uint8_t(1))
        return false;
    out.resume = (flags & 1) != 0;
    size_t tenantLen = size_t(p[2]) | (size_t(p[3]) << 8);
    if (tenantLen == 0 || tenantLen > 256 ||
        n != kHello2FixedBytes + tenantLen)
        return false;
    out.moduleHash = replay::getU64(p + 4);
    out.resumeToken = replay::getU64(p + 12);
    out.resumeOffset = replay::getU64(p + 20);
    out.resumeChunks = replay::getU64(p + 28);
    if (out.resume && out.resumeToken == 0)
        return false;
    out.tenant.assign(
        reinterpret_cast<const char *>(p + kHello2FixedBytes),
        tenantLen);
    return true;
}

std::vector<uint8_t>
encodeChunkAck(uint64_t sealedBytes, uint64_t sealedChunks)
{
    std::vector<uint8_t> out(16);
    replay::putU64(out.data(), sealedBytes);
    replay::putU64(out.data() + 8, sealedChunks);
    return out;
}

bool
decodeChunkAck(const uint8_t *p, size_t n, uint64_t &sealedBytes,
               uint64_t &sealedChunks)
{
    if (n != 16)
        return false;
    sealedBytes = replay::getU64(p);
    sealedChunks = replay::getU64(p + 8);
    return true;
}

} // namespace wire
} // namespace serve
} // namespace ipds
