#ifndef IPDS_SERVE_SERVER_H
#define IPDS_SERVE_SERVER_H

/**
 * @file
 * The multi-tenant detection service.
 *
 * One Server owns a stream socket (AF_UNIX) and detects recorded
 * trace streams AT INGEST, as the bytes arrive, for many concurrent
 * clients. Architecture (DESIGN.md "Detection service"):
 *
 *   clients ──► ingest thread ──► per-stream actor tasks ──► tenants
 *              (poll + framing)     (ThreadPool::submit)     (merge)
 *
 *  - ONE ingest thread owns every socket: it accepts connections,
 *    decodes the wire framing (serve/wire.h), and appends TraceData
 *    payload segments to the owning stream's queue. It never touches
 *    trace decoding, so a slow decode cannot stall accept/read.
 *  - Each stream is an ACTOR: at most one worker task processes its
 *    queue at a time (chunks decode strictly in arrival order), while
 *    different streams decode concurrently on the shared ThreadPool.
 *    The decode loop is ReplayEngine::ShardCursor — the same code
 *    offline replay runs — so ingest-time alarms, DetectorStats and
 *    per-tenant metrics are bit-identical to a ReplayPlan over the
 *    same bytes (modulo the transport-only ipds.tenant.* meters and
 *    the events_per_sec gauge, which measures wall-clock).
 *  - Admission control mirrors the RequestRing design: bounded
 *    per-stream queue; when a client outruns its actor the server
 *    PAUSES reading that one socket (counted, ipds.serve.
 *    backpressure_stalls) and resumes when the actor drains — the
 *    slow client backs up on its own socket, never deadlocks the
 *    server, never starves other tenants.
 *  - Cross-thread signalling is a self-pipe: actors post
 *    done/fail/resume messages; requestStop() posts stop. The ingest
 *    thread is the only writer to any socket.
 *
 * Failure taxonomy is the reader satellite's retry-vs-reject
 * contract end to end: a short frame at connection drop or a trace
 * that ends mid-chunk is truncation (stream failed, counted in
 * truncated meters), a frame/chunk CRC mismatch is corruption
 * (rejected with an Error frame naming "CRC"), an oversized frame is
 * rejected before buffering, and a foreign-module trace is rejected
 * by the same content-hash check offline replay applies.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "obs/metrics.h"
#include "serve/wire.h"
#include "timing/cpu.h"

namespace ipds {
namespace serve {

struct ServerConfig
{
    std::string socketPath;
    /** Worker pool size, including none spare (0 = one per core). */
    unsigned threads = 0;
    /** Reject frames larger than this before buffering. */
    size_t maxFrameBytes = wire::kDefaultMaxFrameBytes;
    /** Per-stream ingest segments in flight before pausing reads. */
    size_t pendingChunkCap = 64;
    int listenBacklog = 16;
    /**
     * Newest per-segment latency samples retained for
     * ingestLatencySamplesMicros() (ring buffer; 0 disables). Keeps
     * an open-ended daemon's memory bounded — the
     * ipds.serve.ingest_latency_us histogram still aggregates every
     * segment.
     */
    size_t latencySampleCap = 1u << 16;
};

/** One tenant's aggregate, merged over its completed streams. */
struct TenantSnapshot
{
    std::string name;
    uint64_t streams = 0;
    std::vector<Alarm> alarms; ///< stream order, shard order within
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
    /** Replay-shaped metrics + ipds.tenant.* transport meters. */
    obs::MetricsRegistry reg;
};

/** FNV-1a digest of an alarm list (order-sensitive, like the list). */
uint64_t alarmDigest(const std::vector<Alarm> &alarms);

class Server
{
  public:
    /** @p prog must outlive the server. */
    Server(const CompiledProgram &prog, ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and start the ingest thread. FatalError if the
     * path cannot be bound. An existing socket file is replaced.
     */
    void start();

    /** Ask the ingest loop to shut down. Thread-safe, idempotent. */
    void requestStop();

    /**
     * Block until @p n streams FINISHED (completed + failed) since
     * start(), or the server stopped.
     */
    void waitForStreams(uint64_t n);

    /** requestStop() + join the ingest thread. Idempotent. */
    void stopAndJoin();

    uint64_t streamsCompleted() const;
    uint64_t streamsFailed() const;

    /** Per-tenant aggregates, sorted by tenant name. */
    std::vector<TenantSnapshot> snapshot() const;

    /** The /statsz text: server section + per-tenant sections. */
    std::string statszText() const;

    /**
     * Per-segment ingest latencies (enqueue to decoded) in
     * microseconds — the newest ServerConfig::latencySampleCap
     * samples, oldest first. For the bench harness.
     */
    std::vector<uint64_t> ingestLatencySamplesMicros() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace serve
} // namespace ipds

#endif // IPDS_SERVE_SERVER_H
