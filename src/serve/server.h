#ifndef IPDS_SERVE_SERVER_H
#define IPDS_SERVE_SERVER_H

/**
 * @file
 * The multi-tenant detection service.
 *
 * One Server owns its listeners (AF_UNIX and/or TCP, both sharing
 * one poll loop) and detects recorded trace streams AT INGEST, as
 * the bytes arrive, for many concurrent clients. It hosts a
 * MULTI-PROGRAM registry: N compiled modules keyed by FNV-1a content
 * hash; Hello v2 routes each stream to its module, unknown hashes
 * are rejected with a typed Error (code unknown_module). Streams
 * that declare a resume token get periodic ChunkAck watermarks and
 * may reconnect after a drop: the server parks the stream for a
 * grace period, dedupes re-sent bytes by absolute trace offset, and
 * the final Result stays bit-identical to an uninterrupted stream.
 * Architecture (DESIGN.md "Detection service"):
 *
 *   clients ──► ingest thread ──► per-stream actor tasks ──► tenants
 *              (poll + framing)     (ThreadPool::submit)     (merge)
 *
 *  - ONE ingest thread owns every socket: it accepts connections,
 *    decodes the wire framing (serve/wire.h), and appends TraceData
 *    payload segments to the owning stream's queue. It never touches
 *    trace decoding, so a slow decode cannot stall accept/read.
 *  - Each stream is an ACTOR: at most one worker task processes its
 *    queue at a time (chunks decode strictly in arrival order), while
 *    different streams decode concurrently on the shared ThreadPool.
 *    The decode loop is ReplayEngine::ShardCursor — the same code
 *    offline replay runs — so ingest-time alarms, DetectorStats and
 *    per-tenant metrics are bit-identical to a ReplayPlan over the
 *    same bytes (modulo the transport-only ipds.tenant.* meters and
 *    the events_per_sec gauge, which measures wall-clock).
 *  - Admission control mirrors the RequestRing design: bounded
 *    per-stream queue; when a client outruns its actor the server
 *    PAUSES reading that one socket (counted, ipds.serve.
 *    backpressure_stalls) and resumes when the actor drains — the
 *    slow client backs up on its own socket, never deadlocks the
 *    server, never starves other tenants.
 *  - Cross-thread signalling is a self-pipe: actors post
 *    done/fail/resume messages; requestStop() posts stop. The ingest
 *    thread is the only writer to any socket.
 *
 * Failure taxonomy is the reader satellite's retry-vs-reject
 * contract end to end: a short frame at connection drop or a trace
 * that ends mid-chunk is truncation (stream failed, counted in
 * truncated meters), a frame/chunk CRC mismatch is corruption
 * (rejected with an Error frame naming "CRC"), an oversized frame is
 * rejected before buffering, and a foreign-module trace is rejected
 * by the same content-hash check offline replay applies.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/program.h"
#include "inject/fault.h"
#include "ipds/detector.h"
#include "obs/metrics.h"
#include "serve/wire.h"
#include "timing/cpu.h"

namespace ipds {
namespace serve {

struct ServerConfig
{
    /** AF_UNIX listener path ("" = no unix listener). */
    std::string socketPath;
    /**
     * TCP listener: IPv4 address to bind ("" = no TCP listener;
     * "0.0.0.0" for all interfaces). Both listeners may be active at
     * once, sharing the poll loop and actor pool.
     */
    std::string tcpHost;
    /** TCP port (0 = ephemeral; read back with boundTcpPort()). */
    uint16_t tcpPort = 0;
    /** Worker pool size, including none spare (0 = one per core). */
    unsigned threads = 0;
    /** Reject frames larger than this before buffering. */
    size_t maxFrameBytes = wire::kDefaultMaxFrameBytes;
    /** Per-stream ingest segments in flight before pausing reads. */
    size_t pendingChunkCap = 64;
    int listenBacklog = 16;
    /**
     * Send a ChunkAck after this many newly sealed chunks on streams
     * that declared a resume token (Hello v2). The ack is the
     * client's re-feed watermark after a reconnect.
     */
    uint64_t ackEveryChunks = 4;
    /**
     * How long a dropped resumable stream stays parked awaiting a
     * reconnect before it is failed as truncated.
     */
    uint64_t resumeGraceMs = 30000;
    /**
     * Shutdown drain: rounds of 10ms flush attempts for queued reply
     * bytes before they are dropped (and counted in
     * ipds.serve.dropped_reply_bytes).
     */
    unsigned shutdownDrainRounds = 100;
    /**
     * Newest per-segment latency samples retained for
     * ingestLatencySamplesMicros() (ring buffer; 0 disables). Keeps
     * an open-ended daemon's memory bounded — the
     * ipds.serve.ingest_latency_us histogram still aggregates every
     * segment.
     */
    size_t latencySampleCap = 1u << 16;
};

/** One tenant's aggregate, merged over its completed streams. */
struct TenantSnapshot
{
    std::string name;
    uint64_t streams = 0;
    std::vector<Alarm> alarms; ///< stream order, shard order within
    DetectorStats det;
    TimingStats tim;
    FaultStats fault;
    /** Replay-shaped metrics + ipds.tenant.* transport meters. */
    obs::MetricsRegistry reg;
};

/** FNV-1a digest of an alarm list (order-sensitive, like the list). */
uint64_t alarmDigest(const std::vector<Alarm> &alarms);

class Server
{
  public:
    /** Empty registry; registerModule() before start(). */
    explicit Server(ServerConfig cfg);
    /** Convenience: registry of one. @p prog must outlive the server. */
    Server(const CompiledProgram &prog, ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Add @p prog to the module registry, keyed by its FNV-1a content
     * hash (replay::moduleContentHash). Hello v2 streams route to the
     * module matching their hash; v1 Hello streams get the first
     * registered module. Must be called before start(); @p prog must
     * outlive the server. Re-registering the same hash is a no-op.
     */
    void registerModule(const CompiledProgram &prog);

    /**
     * Bind the configured listeners and start the ingest thread.
     * FatalError if neither listener is configured, the registry is
     * empty, or a bind fails. An existing unix socket file is
     * replaced.
     */
    void start();

    /** Bound TCP port after start() (resolves tcpPort == 0). */
    uint16_t boundTcpPort() const;

    /** Ask the ingest loop to shut down. Thread-safe, idempotent. */
    void requestStop();

    /**
     * Block until @p n streams FINISHED (completed + failed) since
     * start(), or the server stopped.
     */
    void waitForStreams(uint64_t n);

    /** requestStop() + join the ingest thread. Idempotent. */
    void stopAndJoin();

    uint64_t streamsCompleted() const;
    uint64_t streamsFailed() const;

    /** Per-tenant aggregates, sorted by tenant name. */
    std::vector<TenantSnapshot> snapshot() const;

    /** The /statsz text: server section + per-tenant sections. */
    std::string statszText() const;

    /**
     * Per-segment ingest latencies (enqueue to decoded) in
     * microseconds — the newest ServerConfig::latencySampleCap
     * samples, oldest first. For the bench harness.
     */
    std::vector<uint64_t> ingestLatencySamplesMicros() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace serve
} // namespace ipds

#endif // IPDS_SERVE_SERVER_H
