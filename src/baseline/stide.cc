#include "baseline/stide.h"

#include "support/diag.h"

namespace ipds {

StideModel::StideModel(uint32_t w)
    : window(w)
{
    if (window == 0)
        panic("StideModel: window must be nonzero");
}

std::vector<uint16_t>
StideModel::windowAt(const std::vector<uint16_t> &trace, size_t i) const
{
    return {trace.begin() + static_cast<ptrdiff_t>(i),
            trace.begin() + static_cast<ptrdiff_t>(i + window)};
}

void
StideModel::train(const std::vector<uint16_t> &trace)
{
    if (trace.size() < window) {
        // Short traces are stored whole so they can still match.
        grams.insert(trace);
        return;
    }
    for (size_t i = 0; i + window <= trace.size(); i++)
        grams.insert(windowAt(trace, i));
}

uint64_t
StideModel::anomalies(const std::vector<uint16_t> &trace) const
{
    if (trace.size() < window)
        return grams.count(trace) ? 0 : 1;
    uint64_t n = 0;
    for (size_t i = 0; i + window <= trace.size(); i++)
        n += grams.count(windowAt(trace, i)) ? 0 : 1;
    return n;
}

} // namespace ipds
