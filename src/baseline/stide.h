#ifndef IPDS_BASELINE_STIDE_H
#define IPDS_BASELINE_STIDE_H

/**
 * @file
 * Baseline anomaly detector: sliding-window system-call sequence
 * modeling after Forrest et al., "A Sense of Self for Unix Processes"
 * (the paper's reference [7]) — the prior art IPDS argues against.
 *
 * The model records every length-N window of system-call identifiers
 * seen during training; at detection time, any window absent from the
 * database is an anomaly. The paper's argument is about granularity:
 * system calls are orders of magnitude sparser than branches, so
 * attacks that warp control flow *between* system calls — or that
 * change only which data flows into the same call sequence — are
 * invisible at this level, while IPDS sees them. Conversely, stide
 * alarms on any benign behaviour missing from training (false
 * positives), which IPDS structurally cannot do.
 *
 * "System calls" in this reproduction are the VM's builtin calls
 * (input/output/library entry points), which is exactly the program/
 * OS boundary the original work instrumented.
 */

#include <cstdint>
#include <set>
#include <vector>

#include "vm/vm.h"

namespace ipds {

/** Records the system-call (builtin) id sequence of a run. */
class SyscallTrace : public ExecObserver
{
  public:
    void
    onInst(const Inst &in, uint64_t, uint32_t, bool) override
    {
        if (in.op == Op::Call && in.builtin != Builtin::None)
            seq.push_back(static_cast<uint16_t>(in.builtin));
    }

    const std::vector<uint16_t> &sequence() const { return seq; }
    void clear() { seq.clear(); }

  private:
    std::vector<uint16_t> seq;
};

/** The stide N-gram database. */
class StideModel
{
  public:
    /** @p window is the paper-era default of 6 unless overridden. */
    explicit StideModel(uint32_t window = 6);

    /** Add every window of @p trace to the normal database. */
    void train(const std::vector<uint16_t> &trace);

    /**
     * Number of windows of @p trace absent from the database. Zero
     * means "normal".
     */
    uint64_t anomalies(const std::vector<uint16_t> &trace) const;

    /** True if the trace contains any anomalous window. */
    bool
    flags(const std::vector<uint16_t> &trace) const
    {
        return anomalies(trace) > 0;
    }

    /** Distinct windows stored. */
    size_t patterns() const { return grams.size(); }

    uint32_t windowSize() const { return window; }

  private:
    std::vector<uint16_t> windowAt(const std::vector<uint16_t> &trace,
                                   size_t i) const;

    uint32_t window;
    std::set<std::vector<uint16_t>> grams;
};

} // namespace ipds

#endif // IPDS_BASELINE_STIDE_H
