#include "ipds/detector.h"

#include <cassert>

#include "support/diag.h"

namespace ipds {

Detector::Detector(const CompiledProgram &prog)
    : prog(prog), pool(prog.funcs.size())
{}

void
Detector::reset()
{
    // Retire live frames back to their pools instead of freeing them,
    // so a reused detector stays allocation-free.
    stack.clear();
    curFunc = kNoFunc;
    curTables = nullptr;
    curFrame = nullptr;
    for (FuncPool &p : pool)
        p.live = 0;
    alarmList.clear();
    stat = {};
    curSeq = 0;
}

void
Detector::setRequestRing(RequestRing *r)
{
    ring = r;
}

void
Detector::setRequestSink(std::function<void(const IpdsRequest &)> s)
{
    sink = std::move(s);
}

// onFunctionEnter / onFunctionExit / onBranch / applyActions are
// defined inline in detector.h so concrete callers can inline them.

} // namespace ipds
