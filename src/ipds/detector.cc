#include "ipds/detector.h"

#include <cassert>

#include "support/diag.h"

namespace ipds {

Detector::Detector(const CompiledProgram &prog)
    : prog(prog), pool(prog.funcs.size())
{}

void
Detector::reset()
{
    // Retire live frames back to their pools instead of freeing them,
    // so a reused detector stays allocation-free.
    stack.clear();
    curFunc = kNoFunc;
    curTables = nullptr;
    curFrame = nullptr;
    for (FuncPool &p : pool)
        p.live = 0;
    alarmList.clear();
    stat = {};
    curSeq = 0;
}

void
Detector::captureState(DetectorSnapshot &out) const
{
    out.activations.clear();
    auto add = [&](FuncId f, const FuncTables *t, const Frame *fr) {
        DetectorSnapshot::Activation a;
        a.func = f;
        uint32_t space = t->hash.space();
        for (uint32_t slot = 0; slot < space; ++slot) {
            BsvState s = read(*fr, slot);
            if (s != BsvState::Unknown)
                a.slots.emplace_back(slot,
                                     static_cast<uint8_t>(s));
        }
        out.activations.push_back(std::move(a));
    };
    // stack[0] is the pre-entry sentinel; live activations are
    // stack[1..] plus the unpacked current one.
    for (size_t i = 1; i < stack.size(); ++i)
        add(stack[i].func, stack[i].tables, stack[i].frame);
    if (curFunc != kNoFunc)
        add(curFunc, curTables, curFrame);
    out.stats = stat;
    out.alarmsSoFar = alarmList.size();
}

void
Detector::restoreState(const DetectorSnapshot &snap)
{
    reset();
    for (const auto &act : snap.activations) {
        if (act.func >= prog.funcs.size())
            fatal("detector snapshot: function %u out of range",
                  act.func);
        const FuncTables &t = prog.funcs[act.func].tables;
        FuncPool &p = pool[act.func];
        if (p.live == p.frames.size()) {
            auto fresh = std::make_unique<Frame>();
            fresh->word.assign(t.hash.space(), 0);
            p.frames.push_back(std::move(fresh));
            framesAllocated++;
        }
        Frame &fr = *p.frames[p.live++];
        if (fr.epoch >= kMaxEpoch) {
            std::fill(fr.word.begin(), fr.word.end(), 0);
            fr.epoch = 0;
        }
        fr.epoch++;
        for (const auto &sl : act.slots) {
            if (sl.first >= t.hash.space())
                fatal("detector snapshot: slot %u out of range for "
                      "function %u",
                      sl.first, act.func);
            write(fr, sl.first, static_cast<BsvState>(sl.second & 3));
        }
        stack.push_back({curFunc, curTables, curFrame});
        curFunc = act.func;
        curTables = &t;
        curFrame = &fr;
    }
    stat = snap.stats;
}

void
Detector::setRequestRing(RequestRing *r)
{
    ring = r;
}

void
Detector::setRequestSink(std::function<void(const IpdsRequest &)> s)
{
    sink = std::move(s);
}

// onFunctionEnter / onFunctionExit / onBranch / applyActions are
// defined inline in detector.h so concrete callers can inline them.

} // namespace ipds
