#ifndef IPDS_IPDS_DETECTOR_H
#define IPDS_IPDS_DETECTOR_H

/**
 * @file
 * The runtime half of IPDS (paper §5.4), functionally modelled.
 *
 * Per protected process the hardware keeps stacks of BSV/BCV/BAT
 * tables, one frame per active function. Every committed conditional
 * branch is hashed into its function's tables; if the BCV marks it, the
 * actual direction is verified against the BSV's expected direction
 * (UNKNOWN matches anything; any other mismatch is an attack alarm).
 * The branch's BAT action list then updates the BSVs.
 *
 * Hot-path engineering (see DESIGN.md "Runtime fast path"):
 *  - branch slots and BCV bits come from the table-layout-time
 *    slotLookup, so onBranch performs two array reads, no hashing;
 *  - BSV frames are pooled per function and reset lazily with a
 *    generation stamp, so entry/exit are O(entryActions) and
 *    allocation-free in steady state;
 *  - hardware requests stream through a RequestRing written inline,
 *    not through a type-erased callback (the std::function sink is
 *    kept as a slower compatibility path).
 *
 * Timing (queueing, spills, latency) is modelled separately in
 * src/timing; this class is exact w.r.t. detection semantics and also
 * emits request descriptors the timing model consumes. The pre-overhaul
 * implementation survives as ReferenceDetector (ipds/reference.h) and
 * the two are held byte-identical by differential tests.
 */

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "core/program.h"
#include "ipds/request_ring.h"
#include "obs/trace.h"
#include "support/diag.h"
#include "vm/vm.h"

namespace ipds {

/** Expected-direction encoding stored in the BSV (2 bits). */
enum class BsvState : uint8_t
{
    Unknown = 0,
    Taken = 1,
    NotTaken = 2,
};

/** One detected infeasible path. */
struct Alarm
{
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    bool actualTaken = false;
    BsvState expected = BsvState::Unknown;
    uint64_t branchIndex = 0; ///< dynamic branch count at detection
};

/**
 * Aggregate functional statistics of one run. Field names follow the
 * shared metric naming scheme (obs/names.h): branchesSeen is exported
 * as "ipds.detector.branches_seen", and so on.
 */
struct DetectorStats
{
    uint64_t branchesSeen = 0;
    uint64_t checksEnqueued = 0;
    uint64_t updatesApplied = 0;
    uint64_t actionsApplied = 0;
    uint64_t framesPushed = 0;
    size_t maxStackDepth = 0;

    /**
     * Accumulate another run's counters (multi-session aggregation):
     * counts sum, the depth gauge takes the maximum.
     */
    void
    merge(const DetectorStats &o)
    {
        branchesSeen += o.branchesSeen;
        checksEnqueued += o.checksEnqueued;
        updatesApplied += o.updatesApplied;
        actionsApplied += o.actionsApplied;
        framesPushed += o.framesPushed;
        maxStackDepth = std::max(maxStackDepth, o.maxStackDepth);
    }

    bool
    operator==(const DetectorStats &o) const
    {
        return branchesSeen == o.branchesSeen &&
            checksEnqueued == o.checksEnqueued &&
            updatesApplied == o.updatesApplied &&
            actionsApplied == o.actionsApplied &&
            framesPushed == o.framesPushed &&
            maxStackDepth == o.maxStackDepth;
    }
};

/**
 * Portable image of a detector's live state at one instant of a
 * session: the BSV frame stack (bottom→top, each frame reduced to its
 * known slots) plus the running counters. Captured by the trace
 * writer's periodic snapshots (replay/snapshot.h) and restored by
 * seekable replay to resume mid-session without re-feeding the prefix.
 */
struct DetectorSnapshot
{
    struct Activation
    {
        FuncId func = kNoFunc;
        /** (slot, BsvState) pairs for every non-Unknown slot,
         *  ascending by slot. */
        std::vector<std::pair<uint32_t, uint8_t>> slots;
    };
    std::vector<Activation> activations; ///< bottom→top
    DetectorStats stats;
    uint64_t alarmsSoFar = 0;
};

/**
 * Functional IPDS detector; attach to a Vm as an ExecObserver.
 *
 * The class is final and its event handlers are defined inline below:
 * callers that hold a concrete Detector (the replay/bench loops, the
 * sharded session runners) get devirtualized, fully inlined hot paths;
 * only dispatch through an ExecObserver* pays a virtual call.
 */
class Detector final : public ExecObserver
{
  public:
    /** @p prog must outlive the detector. */
    explicit Detector(const CompiledProgram &prog);

    /** Clear all state between runs (pooled frames are kept). */
    void reset();

    /**
     * Fast request path: every hardware request is written into @p ring
     * inline. The ring must be drained by the consumer at least once
     * per committed instruction (CpuModel does). Overrides any sink.
     */
    void setRequestRing(RequestRing *ring);

    /** Compatibility sink; ignored while a request ring is attached. */
    void setRequestSink(std::function<void(const IpdsRequest &)> sink);

    /**
     * Attach a structured-event tracer (obs/trace.h): branch commits,
     * check enqueues, frame push/pop and alarms are recorded under
     * their categories. Null (the default) keeps the hot path at a
     * single predictable branch per event.
     */
    void setTracer(obs::Tracer *t) { trc = t; }

    /**
     * Branches are the only events the detector consumes (the paper's
     * hardware watches the branch stream); declaring that lets the
     * threaded engine skip instruction-event delivery entirely when
     * the detector is the only observer.
     */
    bool wantsInstEvents() const override { return false; }

    void onFunctionEnter(FuncId f) override;
    void onFunctionExit(FuncId f) override;
    void onBranch(FuncId f, uint64_t pc, bool taken) override;

    /**
     * Batched delivery: one virtual call per block instead of two per
     * branch. Only branch events matter to the detector (onInst is a
     * no-op), and the batch contract guarantees every branch event
     * belongs to b.func, so this is a direct devirtualized loop over
     * the events. Requests are stamped with the in-batch event index
     * (IpdsRequest::seq) so a draining consumer can replay them at
     * per-instruction cadence.
     */
    void
    onBatch(const EventBatch &b) override
    {
        for (uint32_t i = 0; i < b.n; i++) {
            const VmInstEvent &e = b.ev[i];
            if (e.isBranch) {
                curSeq = i;
                onBranch(b.func, e.inst->pc, e.taken);
            }
        }
        curSeq = 0;
    }

    bool alarmed() const { return !alarmList.empty(); }
    const std::vector<Alarm> &alarms() const { return alarmList; }
    const DetectorStats &stats() const { return stat; }

    /** Frames ever allocated (pool growth; tests assert reuse). */
    size_t allocatedFrames() const { return framesAllocated; }

    /**
     * Capture the live frame stack + counters into @p out (see
     * DetectorSnapshot). The alarm list itself is not serialized —
     * only its count — so a restored detector reports alarms raised
     * after the snapshot point.
     */
    void captureState(DetectorSnapshot &out) const;

    /**
     * Replace this detector's state with @p snap: reset(), then
     * re-acquire pooled frames for each recorded activation (no entry
     * actions, requests or tracing — the snapshot already reflects
     * them) and restore the known slots and counters. FatalError on a
     * snapshot naming functions or slots this program does not have
     * (foreign/corrupt snapshot blob).
     */
    void restoreState(const DetectorSnapshot &snap);

    /** Hash space of the live top frame (0 if none) — the valid slot
     *  range for injectBsvState (fault injection). */
    uint32_t
    topFrameSpace() const
    {
        return curTables ? curTables->hash.space() : 0;
    }

    /**
     * Fault injection: overwrite @p slot of the live top BSV frame
     * with @p s, modelling a bit flip in the on-chip table state.
     * Returns false (no-op) when no frame is live or @p slot is out
     * of range. ReferenceDetector mirrors this hook so differential
     * oracles can corrupt both models identically.
     */
    bool
    injectBsvState(uint32_t slot, BsvState s)
    {
        if (!curFrame || !curTables ||
            slot >= curTables->hash.space())
            return false;
        write(*curFrame, slot, s);
        return true;
    }

  private:
    /**
     * One pooled BSV frame. Each slot packs (epoch << 2) | state; a
     * slot whose stamp differs from the frame's current epoch reads as
     * Unknown, so re-acquiring a frame needs no O(space) clear — just
     * an epoch bump (with a real clear every 2^30 reuses on wrap).
     */
    struct Frame
    {
        std::vector<uint32_t> word;
        uint32_t epoch = 0;
    };
    static constexpr uint32_t kMaxEpoch = (1u << 30) - 1;

    /**
     * A suspended activation. The *current* activation lives unpacked
     * in curFunc/curTables/curFrame so the per-branch path reads plain
     * members instead of chasing stack.back(); enter pushes the old
     * top here (including the initial sentinel, so stack.size() is the
     * live frame count) and exit pops it back.
     */
    struct StackEntry
    {
        FuncId func = kNoFunc;
        const FuncTables *tables = nullptr;
        Frame *frame = nullptr; ///< borrowed from the function's pool
    };

    /**
     * Per-function frame pool. Activations of one function retire in
     * LIFO order (calls nest), so frames[0..live) are exactly the live
     * activations: acquire is frames[live++], release is live--.
     * Frames never move, so StackEntry can hold a stable raw pointer.
     */
    struct FuncPool
    {
        std::vector<std::unique_ptr<Frame>> frames;
        uint32_t live = 0;
    };

    BsvState
    read(const Frame &fr, uint32_t slot) const
    {
        uint32_t w = fr.word[slot];
        return (w >> 2) == fr.epoch ? static_cast<BsvState>(w & 3)
                                    : BsvState::Unknown;
    }

    void
    write(Frame &fr, uint32_t slot, BsvState s)
    {
        fr.word[slot] = (fr.epoch << 2) | static_cast<uint32_t>(s);
    }

    void
    emit(const IpdsRequest &rq)
    {
        if (ring)
            ring->push(rq);
        else if (sink)
            sink(rq);
    }

    void applyActions(Frame &fr, const SlotAction *acts, uint32_t n);

    const CompiledProgram &prog;
    /** Current activation, unpacked (see StackEntry). */
    FuncId curFunc = kNoFunc;
    const FuncTables *curTables = nullptr;
    Frame *curFrame = nullptr;
    std::vector<StackEntry> stack; ///< suspended activations
    std::vector<FuncPool> pool;
    size_t framesAllocated = 0;
    std::vector<Alarm> alarmList;
    DetectorStats stat;
    RequestRing *ring = nullptr;
    std::function<void(const IpdsRequest &)> sink;
    /** In-batch event index stamped onto emitted requests (onBatch). */
    uint32_t curSeq = 0;
    obs::Tracer *trc = nullptr;
};

// ---- inline hot path ---------------------------------------------------

inline void
Detector::applyActions(Frame &fr, const SlotAction *acts, uint32_t n)
{
    for (uint32_t i = 0; i < n; i++) {
        const SlotAction &sa = acts[i];
        switch (sa.act) {
          case BrAction::NC:
            break;
          case BrAction::SetT:
            write(fr, sa.slot, BsvState::Taken);
            break;
          case BrAction::SetNT:
            write(fr, sa.slot, BsvState::NotTaken);
            break;
          case BrAction::SetUN:
            write(fr, sa.slot, BsvState::Unknown);
            break;
        }
        stat.actionsApplied++;
    }
}

inline void
Detector::onFunctionEnter(FuncId f)
{
    const FuncTables &t = prog.funcs[f].tables;
    FuncPool &p = pool[f];
    if (p.live == p.frames.size()) {
        auto fresh = std::make_unique<Frame>();
        fresh->word.assign(t.hash.space(), 0);
        p.frames.push_back(std::move(fresh));
        framesAllocated++;
    }
    Frame &fr = *p.frames[p.live++];
    if (fr.epoch >= kMaxEpoch) {
        // Stamp wrap: one real clear every 2^30 reuses.
        std::fill(fr.word.begin(), fr.word.end(), 0);
        fr.epoch = 0;
    }
    fr.epoch++;

    applyActions(fr, t.entryActions.data(),
                 static_cast<uint32_t>(t.entryActions.size()));
    stack.push_back({curFunc, curTables, curFrame});
    curFunc = f;
    curTables = &t;
    curFrame = &fr;
    stat.framesPushed++;
    stat.maxStackDepth = std::max(stat.maxStackDepth, stack.size());

    if (ring || sink) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::PushFrame;
        rq.func = f;
        rq.actionCount =
            static_cast<uint32_t>(t.entryActions.size());
        rq.tableBits = t.bsvBits + t.bcvBits + t.batBits;
        emit(rq);
    }
    if (trc)
        trc->record(obs::kCatFrame, obs::TraceKind::FramePush, f, 0,
                    t.bsvBits + t.bcvBits + t.batBits,
                    static_cast<uint32_t>(t.entryActions.size()));
}

inline void
Detector::onFunctionExit(FuncId f)
{
    if (f != curFunc)
        panic("Detector: frame stack out of sync on exit of %s",
              prog.mod.functions[f].name.c_str());
    const FuncTables &t = *curTables;
    pool[f].live--;
    StackEntry &e = stack.back();
    curFunc = e.func;
    curTables = e.tables;
    curFrame = e.frame;
    stack.pop_back();

    if (ring || sink) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::PopFrame;
        rq.func = f;
        rq.tableBits = t.bsvBits + t.bcvBits + t.batBits;
        emit(rq);
    }
    if (trc)
        trc->record(obs::kCatFrame, obs::TraceKind::FramePop, f, 0,
                    t.bsvBits + t.bcvBits + t.batBits);
}

inline void
Detector::onBranch(FuncId f, uint64_t pc, bool taken)
{
    stat.branchesSeen++;
    if (f != curFunc)
        panic("Detector: frame stack out of sync at branch in %s",
              prog.mod.functions[f].name.c_str());
    const FuncTables &t = *curTables;
    Frame &fr = *curFrame;

    uint32_t slot;
    uint32_t checked;
    const SlotAction *acts;
    uint32_t nActs;
    if (!t.branchRecs.empty()) {
        // Fast path: slot, BCV bit and action spans were resolved at
        // table-layout time; one record read, no hashing, no
        // vector-of-vector chasing.
        uint64_t idx = (pc - t.lookupBasePc) >> 2;
        assert(idx < t.branchRecs.size() && "branch pc outside lookup");
        const BranchRec &rec = t.branchRecs[idx];
        assert(rec.slot != kNoBranchSlot && "pc is not a known branch");
        assert(rec.slot == t.hash.apply(pc) && "cached slot mismatch");
        assert(rec.checked == (t.bcv[rec.slot] ? 1u : 0u) &&
               "cached BCV mismatch");
        assert(rec.takenLen == t.onTaken[rec.slot].size() &&
               rec.notTakenLen == t.onNotTaken[rec.slot].size() &&
               "cached action span mismatch");
        slot = rec.slot;
        checked = rec.checked;
        acts = t.actionPool.data() +
            (taken ? rec.takenOff : rec.notTakenOff);
        nActs = taken ? rec.takenLen : rec.notTakenLen;
    } else {
        // Tables reconstructed from a packed image carry no pcs.
        slot = t.hash.apply(pc);
        checked = t.bcv[slot] ? 1 : 0;
        const auto &list = taken ? t.onTaken[slot] : t.onNotTaken[slot];
        acts = list.data();
        nActs = static_cast<uint32_t>(list.size());
    }

    // Check: only BCV-marked branches are verified (§5.4). The BSV
    // read is unconditional (slot is always valid) so `checked` — a
    // data-dependent bit — steers arithmetic, not jumps; the only
    // branch left is the alarm push, which benign runs never take.
    stat.checksEnqueued += checked;
    BsvState expected = read(fr, slot);
    bool mismatch = checked != 0 &&
        ((expected == BsvState::Taken && !taken) ||
         (expected == BsvState::NotTaken && taken));
    if (mismatch) {
        Alarm a;
        a.func = f;
        a.pc = pc;
        a.actualTaken = taken;
        a.expected = expected;
        a.branchIndex = stat.branchesSeen;
        alarmList.push_back(a);
        if (trc)
            trc->record(obs::kCatAlarm, obs::TraceKind::Alarm, f, pc,
                        taken ? 1 : 0,
                        static_cast<uint32_t>(expected));
    }

    if (ring) {
        // Stage a Check in the next ring slot and publish it only for
        // checked branches; the Update that every branch queues (§5.4)
        // then lands either on top of the abandoned Check or after the
        // committed one.
        IpdsRequest &cq = ring->stage();
        cq.kind = IpdsRequest::Kind::Check;
        cq.func = f;
        cq.pc = pc;
        cq.actionCount = 0;
        cq.tableBits = 0;
        cq.seq = curSeq;
        ring->advance(checked != 0);
        IpdsRequest &uq = ring->stage();
        uq.kind = IpdsRequest::Kind::Update;
        uq.func = f;
        uq.pc = pc;
        uq.actionCount = nActs;
        uq.tableBits = 0;
        uq.seq = curSeq;
        ring->advance(true);
    } else if (sink) {
        IpdsRequest rq;
        rq.func = f;
        rq.pc = pc;
        rq.seq = curSeq;
        if (checked) {
            rq.kind = IpdsRequest::Kind::Check;
            sink(rq);
        }
        rq.kind = IpdsRequest::Kind::Update;
        rq.actionCount = nActs;
        sink(rq);
    }

    if (trc) {
        trc->record(obs::kCatBranch, obs::TraceKind::BranchCommit, f,
                    pc, taken ? 1 : 0, checked);
        if (checked)
            trc->record(obs::kCatCheck, obs::TraceKind::CheckEnqueue,
                        f, pc, taken ? 1 : 0);
    }

    applyActions(fr, acts, nActs);
    stat.updatesApplied++;
}

} // namespace ipds

#endif // IPDS_IPDS_DETECTOR_H
