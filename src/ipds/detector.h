#ifndef IPDS_IPDS_DETECTOR_H
#define IPDS_IPDS_DETECTOR_H

/**
 * @file
 * The runtime half of IPDS (paper §5.4), functionally modelled.
 *
 * Per protected process the hardware keeps stacks of BSV/BCV/BAT
 * tables, one frame per active function. Every committed conditional
 * branch is hashed into its function's tables; if the BCV marks it, the
 * actual direction is verified against the BSV's expected direction
 * (UNKNOWN matches anything; any other mismatch is an attack alarm).
 * The branch's BAT action list then updates the BSVs.
 *
 * Timing (queueing, spills, latency) is modelled separately in
 * src/timing; this class is exact w.r.t. detection semantics and also
 * emits request descriptors the timing model consumes.
 */

#include <functional>
#include <vector>

#include "core/program.h"
#include "vm/vm.h"

namespace ipds {

/** Expected-direction encoding stored in the BSV (2 bits). */
enum class BsvState : uint8_t
{
    Unknown = 0,
    Taken = 1,
    NotTaken = 2,
};

/** One detected infeasible path. */
struct Alarm
{
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    bool actualTaken = false;
    BsvState expected = BsvState::Unknown;
    uint64_t branchIndex = 0; ///< dynamic branch count at detection
};

/** A unit of work sent to the (modelled) IPDS hardware engine. */
struct IpdsRequest
{
    enum class Kind : uint8_t
    {
        Check,     ///< verify actual vs expected direction
        Update,    ///< apply a BAT action list
        PushFrame, ///< function entry: push fresh tables
        PopFrame,  ///< function exit: pop tables
    };
    Kind kind = Kind::Update;
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    /** BAT entries walked by an Update (list walk cost, §6). */
    uint32_t actionCount = 0;
    /** Table bits pushed/popped (spill cost modelling). */
    uint64_t tableBits = 0;
};

/** Aggregate functional statistics of one run. */
struct DetectorStats
{
    uint64_t branchesSeen = 0;
    uint64_t checksPerformed = 0;
    uint64_t updatesApplied = 0;
    uint64_t actionsApplied = 0;
    uint64_t framesPushed = 0;
    size_t maxStackDepth = 0;
};

/**
 * Functional IPDS detector; attach to a Vm as an ExecObserver.
 */
class Detector : public ExecObserver
{
  public:
    /** @p prog must outlive the detector. */
    explicit Detector(const CompiledProgram &prog);

    /** Clear all state between runs. */
    void reset();

    /** Optional sink receiving every hardware request in order. */
    void setRequestSink(std::function<void(const IpdsRequest &)> sink);

    void onFunctionEnter(FuncId f) override;
    void onFunctionExit(FuncId f) override;
    void onBranch(FuncId f, uint64_t pc, bool taken) override;

    bool alarmed() const { return !alarmList.empty(); }
    const std::vector<Alarm> &alarms() const { return alarmList; }
    const DetectorStats &stats() const { return stat; }

  private:
    struct FrameTables
    {
        FuncId func = kNoFunc;
        std::vector<BsvState> bsv; ///< indexed by hash slot
    };

    void applyActions(FrameTables &ft,
                      const std::vector<SlotAction> &list);

    const CompiledProgram &prog;
    std::vector<FrameTables> stack;
    std::vector<Alarm> alarmList;
    DetectorStats stat;
    std::function<void(const IpdsRequest &)> sink;
};

} // namespace ipds

#endif // IPDS_IPDS_DETECTOR_H
