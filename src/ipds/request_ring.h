#ifndef IPDS_IPDS_REQUEST_RING_H
#define IPDS_IPDS_REQUEST_RING_H

/**
 * @file
 * The request descriptor sent from the detector to the (modelled) IPDS
 * hardware engine, and the small-buffer ring that transports it.
 *
 * The ring replaces the old `std::function` sink on the hot path: the
 * detector writes records inline (no indirect call, no allocation) and
 * the timing model drains them in batches at the commit point of the
 * triggering instruction. Producer and consumer run on the same thread
 * (both are Vm observers), so no synchronization is needed; the ring
 * only bounds how far the producer may run ahead of a drain.
 */

#include <array>
#include <cstdint>

#include "ir/ir.h"
#include "support/diag.h"

namespace ipds {

/** A unit of work sent to the (modelled) IPDS hardware engine. */
struct IpdsRequest
{
    enum class Kind : uint8_t
    {
        Check,     ///< verify actual vs expected direction
        Update,    ///< apply a BAT action list
        PushFrame, ///< function entry: push fresh tables
        PopFrame,  ///< function exit: pop tables
    };
    Kind kind = Kind::Update;
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    /** BAT entries walked by an Update (list walk cost, §6). */
    uint32_t actionCount = 0;
    /** Table bits pushed/popped (spill cost modelling). */
    uint64_t tableBits = 0;
    /**
     * Transport metadata, not request content: index of the producing
     * event within its EventBatch (0 for per-event delivery and for
     * frame push/pop). Lets a consumer that receives a whole batch of
     * requests up front drain them at the same per-instruction cadence
     * as per-event delivery (drainThrough), so queue-depth accounting
     * and timing stay identical across delivery modes. Excluded from
     * operator== — request streams compare equal across modes.
     */
    uint32_t seq = 0;

    bool operator==(const IpdsRequest &o) const
    {
        return kind == o.kind && func == o.func && pc == o.pc &&
            actionCount == o.actionCount && tableBits == o.tableBits;
    }
};

/** drainThrough() limit that admits every request. */
inline constexpr uint32_t kDrainAllSeq = 0xffffffffu;

/**
 * Fixed-capacity FIFO of IpdsRequest. A committed instruction produces
 * at most a handful of requests before the consumer's next drain, so
 * overflow indicates a missing drain and is treated as a bug.
 */
class RequestRing
{
  public:
    static constexpr uint32_t kCapacity = 1024; // power of two

    void push(const IpdsRequest &rq)
    {
        if (tail - head == kCapacity)
            panic("RequestRing overflow: %u requests pending without "
                  "a drain", kCapacity);
        buf[tail & kMask] = rq;
        tail++;
    }

    /**
     * Branchless producer path: stage() exposes the next free slot for
     * in-place construction; advance(commit) then publishes it (or
     * abandons it when @p commit is false, with no branch taken). Lets
     * the detector build a conditional request without a data-dependent
     * jump.
     */
    IpdsRequest &
    stage()
    {
        if (tail - head == kCapacity)
            panic("RequestRing overflow: %u requests pending without "
                  "a drain", kCapacity);
        return buf[tail & kMask];
    }

    void advance(bool commit) { tail += commit ? 1 : 0; }

    bool empty() const { return head == tail; }
    uint32_t size() const { return tail - head; }
    void clear() { head = tail; }

    /**
     * Pop every pending request, oldest first, into @p fn. Occupancy
     * accounting (high-water mark, drain count) lives here on the
     * consumer side, so the producer path stays store-only.
     */
    template <typename Fn>
    void drain(Fn &&fn)
    {
        uint32_t pending = tail - head;
        if (pending == 0)
            return; // empty drain: no accounting, no stores
        if (pending > highWater)
            highWater = pending;
        drains++;
        do {
            fn(buf[head & kMask]);
            head++;
        } while (head != tail);
    }

    /**
     * Pop oldest-first while the head request's seq is <= @p seq_limit.
     * With kDrainAllSeq this is drain(). Accounting counts what was
     * POPPED, not what was pending: a batched producer enqueues a whole
     * block's requests ahead of the consumer's replay, so pending would
     * overstate occupancy relative to per-event delivery, while the
     * popped count at each commit point is identical in both modes.
     */
    template <typename Fn>
    void drainThrough(uint32_t seq_limit, Fn &&fn)
    {
        uint32_t popped = 0;
        while (head != tail && buf[head & kMask].seq <= seq_limit) {
            fn(buf[head & kMask]);
            head++;
            popped++;
        }
        if (popped == 0)
            return;
        if (popped > highWater)
            highWater = popped;
        drains++;
    }

    /** Deepest queue occupancy ever seen at a drain point. */
    uint32_t maxOccupancy() const { return highWater; }
    /** Non-empty drains (each models one commit-point batch). */
    uint64_t drainCount() const { return drains; }
    void resetStats()
    {
        highWater = 0;
        drains = 0;
    }

  private:
    static constexpr uint32_t kMask = kCapacity - 1;
    std::array<IpdsRequest, kCapacity> buf;
    uint32_t head = 0;
    uint32_t tail = 0;
    uint32_t highWater = 0;
    uint64_t drains = 0;
};

} // namespace ipds

#endif // IPDS_IPDS_REQUEST_RING_H
