#ifndef IPDS_IPDS_REQUEST_RING_H
#define IPDS_IPDS_REQUEST_RING_H

/**
 * @file
 * The request descriptor sent from the detector to the (modelled) IPDS
 * hardware engine, and the small-buffer ring that transports it.
 *
 * The ring replaces the old `std::function` sink on the hot path: the
 * detector writes records inline (no indirect call, no allocation) and
 * the timing model drains them in batches at the commit point of the
 * triggering instruction. Producer and consumer run on the same thread
 * (both are Vm observers), so no synchronization is needed; the ring
 * only bounds how far the producer may run ahead of a drain.
 *
 * Overflow is NOT a process abort: a block with pathologically long
 * BAT action lists (or a consumer that drains late) can legitimately
 * outrun the configured capacity. When the ring fills it either
 * chunk-flushes the oldest half into an overflow sink (backpressure —
 * the CpuModel feeds them straight to the engine) or, with no sink
 * installed, doubles its capacity. Both paths are counted so tests and
 * metrics can see the pressure.
 *
 * Storage is a small-buffer design tuned so the deployed
 * configuration pays nothing for the added flexibility: a fixed
 * inline array of kInlineCapacity slots serves every configured
 * capacity up to that size (any occupancy window <= kInlineCapacity
 * maps to distinct slots under the inline mask, so a smaller logical
 * capacity needs no relinearization). The producer and clean-drain
 * paths index it with a compile-time mask at a constant offset from
 * `this` — the same code the fixed-capacity ring this generalizes
 * compiled to — guarded by ONE predictable compare against `hotCap`.
 * hotCap doubles as the mode switch: it holds the logical capacity in
 * inline mode and 0 once a heap buffer takes over (capacity > inline,
 * or growth past it), so heap-mode traffic diverts through the cold
 * out-of-line paths without the hot path ever testing a second flag.
 * Heap mode exists for stress harnesses, not deployment, and its
 * per-request cost is irrelevant there.
 *
 * For fault-injection experiments (src/inject/) the ring can apply a
 * deterministic, RNG-seeded drop/duplicate filter at its drain
 * boundaries: since pop order and cadence are bit-identical across
 * per-event and batched delivery, the perturbed request stream — and
 * therefore every timing statistic — stays identical across engines.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "ir/ir.h"
#include "support/rng.h"

namespace ipds {

/** A unit of work sent to the (modelled) IPDS hardware engine. */
struct IpdsRequest
{
    enum class Kind : uint8_t
    {
        Check,     ///< verify actual vs expected direction
        Update,    ///< apply a BAT action list
        PushFrame, ///< function entry: push fresh tables
        PopFrame,  ///< function exit: pop tables
    };
    Kind kind = Kind::Update;
    FuncId func = kNoFunc;
    uint64_t pc = 0;
    /** BAT entries walked by an Update (list walk cost, §6). */
    uint32_t actionCount = 0;
    /** Table bits pushed/popped (spill cost modelling). */
    uint64_t tableBits = 0;
    /**
     * Transport metadata, not request content: index of the producing
     * event within its EventBatch (0 for per-event delivery and for
     * frame push/pop). Lets a consumer that receives a whole batch of
     * requests up front drain them at the same per-instruction cadence
     * as per-event delivery (drainThrough), so queue-depth accounting
     * and timing stay identical across delivery modes. Excluded from
     * operator== — request streams compare equal across modes.
     */
    uint32_t seq = 0;

    bool operator==(const IpdsRequest &o) const
    {
        return kind == o.kind && func == o.func && pc == o.pc &&
            actionCount == o.actionCount && tableBits == o.tableBits;
    }
};

/** drainThrough() limit that admits every request. */
inline constexpr uint32_t kDrainAllSeq = 0xffffffffu;

/**
 * FIFO of IpdsRequest with a configurable power-of-two capacity. A
 * committed instruction produces at most a handful of requests before
 * the consumer's next drain, so reaching the capacity signals
 * backpressure — handled by chunk-flushing into the overflow sink or
 * by growing, never by aborting the process.
 */
class RequestRing
{
  public:
    static constexpr uint32_t kCapacity = 1024; ///< default capacity
    /** Inline storage size; capacities up to this stay heap-free. */
    static constexpr uint32_t kInlineCapacity = 1024;

    /** @p capacity is rounded up to a power of two (min 16). */
    explicit RequestRing(uint32_t capacity = kCapacity)
    {
        uint32_t c = 16;
        while (c < capacity && c < (1u << 30))
            c <<= 1;
        cap = c;
        if (cap > kInlineCapacity) {
            hbuf.resize(cap);
            hmask = cap - 1;
            hotCap = 0; // heap mode: everything takes the cold paths
        } else {
            hotCap = cap;
        }
    }

    /**
     * Receives the oldest half of the ring when the producer outruns
     * the consumer (chunked-flush backpressure). Without a sink the
     * ring grows instead. The sink must be drain-equivalent: CpuModel
     * forwards straight into the engine at the current cycle.
     */
    void setOverflowSink(std::function<void(const IpdsRequest &)> fn)
    {
        overflowSink = std::move(fn);
    }

    /**
     * Arm the deterministic drain-boundary fault filter: each popped
     * request is dropped with probability @p drop_permille / 1000 and
     * delivered twice with probability @p dup_permille / 1000, decided
     * by an RNG seeded with @p seed. Rates of zero disarm the filter
     * (and the clean drain path pays nothing).
     */
    void
    setFault(uint32_t drop_permille, uint32_t dup_permille,
             uint64_t seed)
    {
        dropPermille = drop_permille;
        dupPermille = dup_permille;
        faultRng = Rng(seed);
        faultOn = dropPermille != 0 || dupPermille != 0;
    }

    void push(const IpdsRequest &rq)
    {
        // Full ring (or heap mode, where hotCap is 0 and the compare
        // always trips) continues in the cold helper and never rejoins
        // — so the hot store below keeps its constant base and mask,
        // exactly the code the fixed-buffer ring compiled to.
        if (__builtin_expect(tail - head >= hotCap, 0)) {
            coldPush(rq);
            return;
        }
        ibuf[tail & kInlineMask] = rq;
        tail++;
    }

    /**
     * Branchless producer path: stage() exposes the next free slot for
     * in-place construction; advance(commit) then publishes it (or
     * abandons it when @p commit is false, with no branch taken). Lets
     * the detector build a conditional request without a data-dependent
     * jump.
     */
    IpdsRequest &
    stage()
    {
        if (__builtin_expect(tail - head >= hotCap, 0))
            return coldStage(); // see push()
        return ibuf[tail & kInlineMask];
    }

    void advance(bool commit) { tail += commit ? 1 : 0; }

    bool empty() const { return head == tail; }
    uint32_t size() const { return tail - head; }
    uint32_t capacity() const { return cap; }
    void clear() { head = tail; }

    /**
     * Pop every pending request, oldest first, into @p fn. Occupancy
     * accounting (high-water mark, drain count) lives here on the
     * consumer side, so the producer path stays store-only. @p fn must
     * not push into this ring (a growth could move the heap buffer
     * under the hoisted pointer in the cold path); no consumer does.
     */
    template <typename Fn>
    void drain(Fn &&fn)
    {
        uint32_t pending = tail - head;
        if (pending == 0)
            return; // empty drain: no accounting, no stores
        if (pending > highWater)
            highWater = pending;
        drains++;
        // Clean inline-mode fast path: constant base and mask, no
        // flag soup — hotCap != 0 means inline storage, and faultOn
        // is the one extra (perfectly predicted) test.
        if (__builtin_expect(hotCap != 0 && !faultOn, 1)) {
            const IpdsRequest *b = ibuf.data();
            const uint32_t t = tail;
            for (uint32_t h = head; h != t; h++)
                fn(b[h & kInlineMask]);
            head = t;
            return;
        }
        do {
            deliver(fn, slot(head));
            head++;
        } while (head != tail);
    }

    /**
     * Pop oldest-first while the head request's seq is <= @p seq_limit.
     * With kDrainAllSeq this is drain(). Accounting counts what was
     * POPPED, not what was pending: a batched producer enqueues a whole
     * block's requests ahead of the consumer's replay, so pending would
     * overstate occupancy relative to per-event delivery, while the
     * popped count at each commit point is identical in both modes.
     */
    template <typename Fn>
    void drainThrough(uint32_t seq_limit, Fn &&fn)
    {
        uint32_t popped = 0;
        if (__builtin_expect(hotCap != 0 && !faultOn, 1)) {
            // Same fast path as drain() (see the note there).
            const IpdsRequest *b = ibuf.data();
            const uint32_t t = tail;
            uint32_t h = head;
            while (h != t && b[h & kInlineMask].seq <= seq_limit) {
                fn(b[h & kInlineMask]);
                h++;
                popped++;
            }
            head = h;
        } else {
            while (head != tail && slot(head).seq <= seq_limit) {
                deliver(fn, slot(head));
                head++;
                popped++;
            }
        }
        if (popped == 0)
            return;
        if (popped > highWater)
            highWater = popped;
        drains++;
    }

    /** Deepest queue occupancy ever seen at a drain point. */
    uint32_t maxOccupancy() const { return highWater; }
    /** Non-empty drains (each models one commit-point batch). */
    uint64_t drainCount() const { return drains; }
    /** Chunked flushes into the overflow sink (backpressure events). */
    uint64_t overflowFlushCount() const { return overflowFlushes; }
    /** Capacity doublings (overflow with no sink installed). */
    uint64_t growCount() const { return grows; }
    /** Requests dropped by the armed fault filter. */
    uint64_t faultDropCount() const { return faultDrops; }
    /** Requests duplicated by the armed fault filter. */
    uint64_t faultDupCount() const { return faultDups; }
    void resetStats()
    {
        highWater = 0;
        drains = 0;
        overflowFlushes = 0;
        grows = 0;
        faultDrops = 0;
        faultDups = 0;
    }

  private:
    static constexpr uint32_t kInlineMask = kInlineCapacity - 1;

    bool heapMode() const { return hotCap == 0; }

    /** Slot for ring position @p pos in the active storage. */
    IpdsRequest &
    slot(uint32_t pos)
    {
        if (heapMode())
            return hbuf[pos & hmask];
        return ibuf[pos & kInlineMask];
    }

    /** Deliver @p rq, applying the armed fault filter (one predictable
     *  branch when disarmed). */
    template <typename Fn>
    void
    deliver(Fn &&fn, const IpdsRequest &rq)
    {
        if (!faultOn) {
            fn(rq);
            return;
        }
        if (dropPermille != 0 &&
            faultRng.below(1000) < dropPermille) {
            faultDrops++;
            return;
        }
        fn(rq);
        if (dupPermille != 0 && faultRng.below(1000) < dupPermille) {
            faultDups++;
            fn(rq);
        }
    }

    /** Cold continuation of push(): genuinely full, or heap mode. */
    __attribute__((noinline, cold)) void
    coldPush(const IpdsRequest &rq)
    {
        if (tail - head == cap)
            overflow();
        slot(tail) = rq;
        tail++;
    }

    /** Cold continuation of stage(): genuinely full, or heap mode. */
    __attribute__((noinline, cold)) IpdsRequest &
    coldStage()
    {
        if (tail - head == cap)
            overflow();
        return slot(tail);
    }

    /** Full ring: chunk-flush the oldest half into the sink, or grow. */
    __attribute__((noinline, cold)) void
    overflow()
    {
        if (overflowSink) {
            uint32_t n = (tail - head) / 2;
            if (n == 0)
                n = 1;
            for (uint32_t i = 0; i < n; i++) {
                overflowSink(slot(head));
                head++;
            }
            overflowFlushes++;
            return;
        }
        // Double the capacity. While the new capacity still fits the
        // inline buffer the contents need no move at all (every window
        // <= kInlineCapacity already maps to distinct inline slots);
        // past that, re-linearize into a heap buffer so index math
        // stays a single mask. Rare (counted); the steady state never
        // grows.
        grows++;
        if (!heapMode() && cap * 2 <= kInlineCapacity) {
            cap *= 2;
            hotCap = cap;
            return;
        }
        uint32_t n = tail - head;
        std::vector<IpdsRequest> bigger(cap * 2);
        for (uint32_t i = 0; i < n; i++)
            bigger[i] = slot(head + i);
        hbuf = std::move(bigger);
        cap *= 2;
        hmask = cap - 1;
        hotCap = 0; // heap mode from here on
        head = 0;
        tail = n;
    }

    std::array<IpdsRequest, kInlineCapacity> ibuf;
    std::vector<IpdsRequest> hbuf;
    uint32_t cap = kCapacity;
    uint32_t hmask = 0;
    /** Inline-mode logical capacity, or 0 in heap mode (hot guard). */
    uint32_t hotCap = kCapacity;
    uint32_t head = 0;
    uint32_t tail = 0;
    uint32_t highWater = 0;
    uint64_t drains = 0;
    uint64_t overflowFlushes = 0;
    uint64_t grows = 0;
    uint64_t faultDrops = 0;
    uint64_t faultDups = 0;
    std::function<void(const IpdsRequest &)> overflowSink;
    Rng faultRng{1};
    uint32_t dropPermille = 0;
    uint32_t dupPermille = 0;
    bool faultOn = false;
};

} // namespace ipds

#endif // IPDS_IPDS_REQUEST_RING_H
