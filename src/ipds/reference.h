#ifndef IPDS_IPDS_REFERENCE_H
#define IPDS_IPDS_REFERENCE_H

/**
 * @file
 * The pre-overhaul IPDS detector, kept verbatim as the golden
 * reference model.
 *
 * This is the original straight-line implementation: it re-hashes
 * every committed branch with HashParams::apply, heap-allocates and
 * zero-fills a fresh BSV vector per function entry, and reports
 * requests through a std::function sink. It is deliberately simple and
 * obviously correct; the optimized Detector (ipds/detector.h) must
 * produce byte-identical alarms, statistics and request streams, and
 * differential tests (tests/test_detector.cc, tests/test_e2e.cc) plus
 * the abl_hotpath bench hold the two in lockstep.
 *
 * Do not optimize this class — its value is being the fixed point the
 * fast path is measured and verified against.
 */

#include <functional>
#include <vector>

#include "core/program.h"
#include "ipds/detector.h"
#include "vm/vm.h"

namespace ipds {

/** Functional IPDS reference detector; attach to a Vm as an observer. */
class ReferenceDetector : public ExecObserver
{
  public:
    /** @p prog must outlive the detector. */
    explicit ReferenceDetector(const CompiledProgram &prog);

    /** Clear all state between runs. */
    void reset();

    /** Optional sink receiving every hardware request in order. */
    void setRequestSink(std::function<void(const IpdsRequest &)> sink);

    void onFunctionEnter(FuncId f) override;
    void onFunctionExit(FuncId f) override;
    void onBranch(FuncId f, uint64_t pc, bool taken) override;

    bool alarmed() const { return !alarmList.empty(); }
    const std::vector<Alarm> &alarms() const { return alarmList; }
    const DetectorStats &stats() const { return stat; }

    /** Hash space of the live top frame (0 if none). */
    uint32_t
    topFrameSpace() const
    {
        return stack.empty()
            ? 0
            : static_cast<uint32_t>(stack.back().bsv.size());
    }

    /** Fault injection: mirror of Detector::injectBsvState. */
    bool
    injectBsvState(uint32_t slot, BsvState s)
    {
        if (stack.empty() || slot >= stack.back().bsv.size())
            return false;
        stack.back().bsv[slot] = s;
        return true;
    }

  private:
    struct FrameTables
    {
        FuncId func = kNoFunc;
        std::vector<BsvState> bsv; ///< indexed by hash slot
    };

    void applyActions(FrameTables &ft,
                      const std::vector<SlotAction> &list);

    const CompiledProgram &prog;
    std::vector<FrameTables> stack;
    std::vector<Alarm> alarmList;
    DetectorStats stat;
    std::function<void(const IpdsRequest &)> sink;
};

} // namespace ipds

#endif // IPDS_IPDS_REFERENCE_H
