#include "ipds/reference.h"

#include "support/diag.h"

namespace ipds {

ReferenceDetector::ReferenceDetector(const CompiledProgram &prog)
    : prog(prog)
{}

void
ReferenceDetector::reset()
{
    stack.clear();
    alarmList.clear();
    stat = {};
}

void
ReferenceDetector::setRequestSink(
    std::function<void(const IpdsRequest &)> s)
{
    sink = std::move(s);
}

void
ReferenceDetector::onFunctionEnter(FuncId f)
{
    const FuncTables &t = prog.funcs[f].tables;
    FrameTables ft;
    ft.func = f;
    ft.bsv.assign(t.hash.space(), BsvState::Unknown);
    applyActions(ft, t.entryActions);
    stack.push_back(std::move(ft));
    stat.framesPushed++;
    stat.maxStackDepth = std::max(stat.maxStackDepth, stack.size());

    if (sink) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::PushFrame;
        rq.func = f;
        rq.actionCount =
            static_cast<uint32_t>(t.entryActions.size());
        rq.tableBits = t.bsvBits + t.bcvBits + t.batBits;
        sink(rq);
    }
}

void
ReferenceDetector::onFunctionExit(FuncId f)
{
    if (stack.empty() || stack.back().func != f)
        panic("Detector: frame stack out of sync on exit of %s",
              prog.mod.functions[f].name.c_str());
    const FuncTables &t = prog.funcs[f].tables;
    stack.pop_back();

    if (sink) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::PopFrame;
        rq.func = f;
        rq.tableBits = t.bsvBits + t.bcvBits + t.batBits;
        sink(rq);
    }
}

void
ReferenceDetector::applyActions(FrameTables &ft,
                                const std::vector<SlotAction> &list)
{
    for (const auto &sa : list) {
        switch (sa.act) {
          case BrAction::NC:
            break;
          case BrAction::SetT:
            ft.bsv[sa.slot] = BsvState::Taken;
            break;
          case BrAction::SetNT:
            ft.bsv[sa.slot] = BsvState::NotTaken;
            break;
          case BrAction::SetUN:
            ft.bsv[sa.slot] = BsvState::Unknown;
            break;
        }
        stat.actionsApplied++;
    }
}

void
ReferenceDetector::onBranch(FuncId f, uint64_t pc, bool taken)
{
    stat.branchesSeen++;
    if (stack.empty() || stack.back().func != f)
        panic("Detector: frame stack out of sync at branch in %s",
              prog.mod.functions[f].name.c_str());
    FrameTables &ft = stack.back();
    const FuncTables &t = prog.funcs[f].tables;
    uint32_t slot = t.hash.apply(pc);

    // Check request: only for BCV-marked branches (§5.4).
    if (t.bcv[slot]) {
        stat.checksEnqueued++;
        BsvState expected = ft.bsv[slot];
        bool mismatch =
            (expected == BsvState::Taken && !taken) ||
            (expected == BsvState::NotTaken && taken);
        if (mismatch) {
            Alarm a;
            a.func = f;
            a.pc = pc;
            a.actualTaken = taken;
            a.expected = expected;
            a.branchIndex = stat.branchesSeen;
            alarmList.push_back(a);
        }
        if (sink) {
            IpdsRequest rq;
            rq.kind = IpdsRequest::Kind::Check;
            rq.func = f;
            rq.pc = pc;
            sink(rq);
        }
    }

    // Update request: always queued, whether or not checked (§5.4).
    const auto &list = taken ? t.onTaken[slot] : t.onNotTaken[slot];
    applyActions(ft, list);
    stat.updatesApplied++;
    if (sink) {
        IpdsRequest rq;
        rq.kind = IpdsRequest::Kind::Update;
        rq.func = f;
        rq.pc = pc;
        rq.actionCount = static_cast<uint32_t>(list.size());
        sink(rq);
    }
}

} // namespace ipds
