#ifndef IPDS_FRONTEND_CODEGEN_H
#define IPDS_FRONTEND_CODEGEN_H

/**
 * @file
 * MiniC AST -> IR lowering.
 *
 * Lowering decisions that matter to the rest of the system:
 *
 *  - Every variable (including parameters) gets a memory slot; parameters
 *    are spilled at function entry. Variables are therefore
 *    memory-resident and attackable, as the paper's model requires.
 *  - Scalar variable reads/writes lower to direct Load/Store on the
 *    object; array accesses with a constant index lower to direct
 *    accesses at a constant offset; everything else is indirect.
 *  - Conditions lower through recursive cond-branch generation so that
 *    `&&`, `||` and `!` become CFG structure and every conditional
 *    branch tests the result of a single Cmp (or a != 0 test). This is
 *    the canonical shape the branch-correlation analysis recognises.
 */

#include <string>

#include "frontend/ast.h"
#include "ir/ir.h"

namespace ipds {

/** Lower a parsed program. Throws FatalError on semantic errors. */
Module compileProgram(const Program &prog, const std::string &mod_name);

/**
 * One-call convenience: parse + lower + assign addresses + verify.
 * This is the entry point used by tests, examples and the workloads.
 */
Module compileMiniC(const std::string &src, const std::string &mod_name);

} // namespace ipds

#endif // IPDS_FRONTEND_CODEGEN_H
