#ifndef IPDS_FRONTEND_PARSER_H
#define IPDS_FRONTEND_PARSER_H

/**
 * @file
 * Recursive-descent parser for MiniC. Produces an AST Program; all
 * syntax errors throw FatalError with a source line.
 */

#include <string>

#include "frontend/ast.h"

namespace ipds {

/** Parse MiniC source text into an AST. */
Program parseProgram(const std::string &src);

} // namespace ipds

#endif // IPDS_FRONTEND_PARSER_H
